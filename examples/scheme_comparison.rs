//! Run the full benchmark suite under all four coherence schemes and
//! print the paper's headline comparison (miss rates and execution times).
//!
//! ```text
//! cargo run --release --example scheme_comparison [--paper]
//! ```
//!
//! Uses test-scale inputs by default so it finishes in seconds; pass
//! `--paper` for the evaluation-scale inputs.

use tpi::tables::{pct, Table};
use tpi::Runner;
use tpi_proto::registry;
use tpi_workloads::{Kernel, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = if std::env::args().any(|a| a == "--paper") {
        Scale::Paper
    } else {
        Scale::Test
    };
    let mut misses = Table::new("Read miss rates");
    misses.headers(["bench", "BASE", "SC", "TPI", "HW"]);
    let mut times = Table::new("Execution time, normalized to the full-map directory");
    times.headers(["bench", "BASE", "SC", "TPI", "HW"]);

    // The whole 6 kernels x 4 schemes matrix in one memoized, parallel run:
    // each kernel is traced once and simulated under all four schemes.
    let runner = Runner::new();
    let grid = runner
        .grid()
        .kernels(Kernel::ALL)
        .scale(scale)
        .schemes(registry::global().main_schemes())
        .run()?;

    for kernel in Kernel::ALL {
        let mut miss_row = vec![kernel.name().to_string()];
        let mut cycles = Vec::new();
        for scheme in registry::global().main_schemes() {
            let r = grid.get(kernel, scheme);
            miss_row.push(pct(r.sim.miss_rate()));
            cycles.push(r.sim.total_cycles);
        }
        misses.row(miss_row);
        let hw = cycles[3].max(1) as f64;
        let mut time_row = vec![kernel.name().to_string()];
        for c in cycles {
            time_row.push(format!("{:.2}", c as f64 / hw));
        }
        times.row(time_row);
    }
    println!("{misses}");
    println!("{times}");
    println!(
        "Shape check (the paper's conclusion): TPI tracks HW closely on every\n\
         benchmark while SC and BASE trail far behind — coherence from compiler\n\
         knowledge plus per-word timetags, with zero directory storage."
    );
    Ok(())
}
