//! Section 5: critical sections and lock variables on an HSCD machine.
//!
//! Compares two ways of building a shared histogram: a lock-guarded
//! critical section per element (serialized, uncached access under TPI)
//! versus privatized per-processor bins merged in a final pass (the
//! restructuring the paper's compiler-centric world view encourages).
//!
//! ```text
//! cargo run --release --example critical_sections
//! ```

use tpi::tables::{pct, Table};
use tpi::{run_program, ExperimentConfig};
use tpi_ir::{subs, Program, ProgramBuilder};
use tpi_proto::SchemeId;

const N: i64 = 4096;
const BINS: u64 = 64;

/// Histogram via a single lock around every update.
fn locked_histogram() -> Program {
    let mut p = ProgramBuilder::new();
    let hist = p.shared("HIST", [BINS]);
    let data = p.shared("DATA", [N as u64]);
    let lock = p.lock();
    let main = p.proc("main", |f| {
        f.doall(0, N - 1, |i, f| f.store(data.at(subs![i]), vec![], 2));
        let bin = f.opaque();
        f.doall(0, N - 1, |i, f| {
            f.critical(lock, |f| {
                f.store(
                    hist.at(subs![bin]),
                    vec![hist.at(subs![bin]), data.at(subs![i])],
                    3,
                );
            });
        });
    });
    p.finish(main).expect("valid")
}

/// Histogram via privatized bins plus a merge epoch.
fn privatized_histogram() -> Program {
    let mut p = ProgramBuilder::new();
    let hist = p.shared("HIST", [BINS]);
    // One bin row per processor block; merged in a second parallel pass.
    let parts = p.shared("PARTS", [16, BINS]);
    let data = p.shared("DATA", [N as u64]);
    let main = p.proc("main", |f| {
        f.doall(0, N - 1, |i, f| f.store(data.at(subs![i]), vec![], 2));
        // Each of the 16 blocks accumulates into its own row.
        let bin = f.opaque();
        f.doall(0, 15, |b, f| {
            f.serial(0, N / 16 - 1, |k, f| {
                f.store(
                    parts.at(subs![b, bin]),
                    vec![
                        parts.at(subs![b, bin]),
                        data.at(subs![
                            tpi_ir::Affine::var(b) * (N / 16) + tpi_ir::Affine::var(k)
                        ]),
                    ],
                    3,
                );
            });
        });
        // Merge: one bin per iteration, reading every block's row.
        f.doall(0, BINS as i64 - 1, |j, f| {
            f.serial(0, 15, |b, f| {
                f.store(
                    hist.at(subs![j]),
                    vec![hist.at(subs![j]), parts.at(subs![b, j])],
                    2,
                );
            });
        });
    });
    p.finish(main).expect("valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut t = Table::new("Shared histogram, 4096 updates into 64 bins, 16 processors");
    t.headers(["variant", "scheme", "cycles", "miss rate", "lock waits"]);
    for (name, prog) in [
        ("locked", locked_histogram()),
        ("privatized", privatized_histogram()),
    ] {
        for scheme in [SchemeId::TPI, SchemeId::FULL_MAP] {
            let cfg = ExperimentConfig::builder().scheme(scheme).build()?;
            let r = run_program(&prog, &cfg)?;
            t.row([
                name.to_string(),
                scheme.label().to_string(),
                r.sim.total_cycles.to_string(),
                pct(r.sim.miss_rate()),
                r.sim.lock_wait_cycles.to_string(),
            ]);
        }
    }
    println!("{t}");
    println!(
        "The lock serializes the machine regardless of coherence scheme; the\n\
         privatized version runs at memory speed. Section 5's point: an HSCD\n\
         machine handles critical sections correctly (uncached, lock-ordered\n\
         access), but the compiler should privatize whenever it can."
    );
    Ok(())
}
