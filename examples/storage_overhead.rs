//! Figure 5: why a full-map directory cannot scale to 1024 processors,
//! and what TPI costs instead.
//!
//! ```text
//! cargo run --example storage_overhead
//! ```

use tpi::tables::{f, Table};
use tpi_proto::storage::{
    full_map, limitless_as_tabulated, limitless_pointer_width, tpi, StorageParams,
};

fn main() {
    let p = StorageParams::paper_figure5();
    let mut t = Table::new(format!(
        "Bookkeeping storage, P={}, {}-line node caches, {}K memory blocks/node",
        p.processors,
        p.cache_lines_per_node,
        p.mem_blocks_per_node / 1024
    ));
    t.headers(["scheme", "SRAM (MiB)", "DRAM (GiB)"]);
    for (name, o) in [
        ("full-map directory", full_map(p)),
        ("LimitLess i=10 (as tabulated)", limitless_as_tabulated(p)),
        ("LimitLess i=10 (pointer-width)", limitless_pointer_width(p)),
        ("TPI, 8-bit timetags", tpi(p)),
    ] {
        t.row([name.to_string(), f(o.sram_mib(), 2), f(o.dram_gib(), 2)]);
    }
    println!("{t}");

    let mut sweep = Table::new("TPI tag SRAM vs timetag width (P=1024)");
    sweep.headers(["tag bits", "SRAM (MiB)"]);
    for bits in [2u64, 4, 8, 16] {
        let mut pp = p;
        pp.tag_bits = bits;
        sweep.row([format!("{bits}"), f(tpi(pp).sram_mib(), 2)]);
    }
    println!("{sweep}");
    println!(
        "TPI trades ~{:.0} GiB of directory DRAM for {:.0} MiB of cache tag\n\
         SRAM — storage proportional to cache size, not memory size.",
        full_map(p).dram_gib(),
        tpi(p).sram_mib()
    );
}
