//! Section 5: pipelined (doacross) loops via post/wait events.
//!
//! A 2-D wavefront — cell `(i, j)` depends on `(i-1, j)` — is parallelized
//! over rows with post/wait synchronization at a configurable column
//! granularity. Fine-grained posts fill the pipeline quickly but pay a
//! synchronization per block; coarse posts amortize synchronization but
//! leave processors waiting at the start. The sweep exposes the classic
//! granularity optimum.
//!
//! ```text
//! cargo run --release --example doacross_pipeline
//! ```

use tpi::tables::Table;
use tpi::{run_program, ExperimentConfig};
use tpi_ir::{subs, Cond, Program, ProgramBuilder};
use tpi_proto::SchemeId;

const N: i64 = 64;

/// Builds the row-pipelined wavefront with posts every `g` columns.
fn pipeline(g: i64) -> Program {
    let mut p = ProgramBuilder::new();
    let x = p.shared("X", [N as u64, N as u64]);
    let ev = p.event();
    let main = p.proc("main", |f| {
        f.doall(0, N - 1, |i, f| {
            f.serial(0, N - 1, |j, f| f.store(x.at(subs![i, j]), vec![], 1));
        });
        f.doall(0, N - 1, |i, f| {
            f.serial_step(0, N - 1, g, |jj, f| {
                f.if_else(
                    // Row 0 has no predecessor.
                    Cond::EveryN {
                        var: i,
                        modulus: i64::MAX,
                        phase: 0,
                    },
                    |f| {
                        f.serial(jj, jj + g - 1, |j, f| {
                            f.store(x.at(subs![i, j]), vec![x.at(subs![i, j])], 4);
                        });
                    },
                    |f| {
                        f.wait(ev, (i - 1) * N + jj);
                        f.serial(jj, jj + g - 1, |j, f| {
                            f.store(
                                x.at(subs![i, j]),
                                vec![x.at(subs![i - 1, j]), x.at(subs![i, j])],
                                4,
                            );
                        });
                    },
                );
                f.post(ev, i * N + jj);
            });
        });
    });
    p.finish(main).expect("pipeline is well-formed")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ExperimentConfig::builder().scheme(SchemeId::TPI).build()?;
    let mut t = Table::new(format!(
        "{N}x{N} wavefront on 16 processors under TPI, varying post granularity"
    ));
    t.headers(["post every", "cycles", "posts", "wait cycles"]);
    for g in [2i64, 4, 8, 16, 32, 64] {
        let r = run_program(&pipeline(g), &cfg)?;
        t.row([
            format!("{g} cols"),
            r.sim.total_cycles.to_string(),
            r.trace.posts.to_string(),
            r.sim.lock_wait_cycles.to_string(),
        ]);
    }
    println!("{t}");

    // The schedule matters even more than the granularity: block
    // scheduling serializes consecutive rows on one processor, while
    // cyclic scheduling hands row i-1's consumer to the next processor —
    // the textbook doacross mapping.
    let mut ts = Table::new("Same wavefront (post every 8), varying the DOALL schedule");
    ts.headers(["schedule", "cycles", "wait cycles"]);
    for (name, policy) in [
        ("static-block", tpi_trace::SchedulePolicy::StaticBlock),
        ("static-cyclic", tpi_trace::SchedulePolicy::StaticCyclic),
    ] {
        let c = ExperimentConfig::builder()
            .scheme(SchemeId::TPI)
            .policy(policy)
            .build()?;
        let r = run_program(&pipeline(8), &c)?;
        ts.row([
            name.to_string(),
            r.sim.total_cycles.to_string(),
            r.sim.lock_wait_cycles.to_string(),
        ]);
    }
    println!("{ts}");
    println!(
        "Small blocks start the pipeline early but synchronize constantly;\n\
         one big block degenerates to serial execution of the rows. The HSCD\n\
         machine supports the whole spectrum: post fences the producer's\n\
         write-through stores, wait orders the consumer, and the consumer's\n\
         distance-0 Time-Reads fetch the freshly published cells."
    );
    Ok(())
}
