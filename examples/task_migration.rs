//! Section 5 of the paper: TPI under dynamic scheduling and task
//! migration.
//!
//! The compiler never knows which processor runs which DOALL iteration, so
//! its marking must stay sound under *any* schedule — including chunks that
//! migrate between processors mid-epoch. This example runs QCD2 under four
//! schedules; the simulator's shadow versions verify every verified hit
//! really observed fresh data (a violation would panic in debug builds).
//!
//! ```text
//! cargo run --release --example task_migration
//! ```

use tpi::tables::{pct, Table};
use tpi::Runner;
use tpi_proto::SchemeId;
use tpi_trace::SchedulePolicy;
use tpi_workloads::{Kernel, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = Kernel::Qcd2;
    let policies: [(&str, SchedulePolicy); 4] = [
        ("static-block", SchedulePolicy::StaticBlock),
        ("static-cyclic", SchedulePolicy::StaticCyclic),
        ("dynamic (chunk 4)", SchedulePolicy::Dynamic { chunk: 4 }),
        (
            "dynamic + migration",
            SchedulePolicy::DynamicMigrating {
                chunk: 4,
                migrate_per_1024: 256,
            },
        ),
    ];
    let mut t = Table::new(format!("{kernel} under TPI, varying the DOALL schedule"));
    t.headers(["schedule", "cycles", "miss rate", "conservative share"]);
    // A schedule change invalidates the trace but not the marking, so the
    // Runner compiles the kernel once and re-traces per policy — in parallel.
    let runner = Runner::new();
    let grid = runner
        .grid()
        .kernel(kernel)
        .scale(Scale::Paper)
        .scheme(SchemeId::TPI)
        .sweep(policies.map(|(_, p)| p), |cfg, p| cfg.policy = *p)
        .run()?;
    for (i, (name, _)) in policies.into_iter().enumerate() {
        let r = grid.at(kernel, SchemeId::TPI, i);
        let cons = r.sim.agg.misses(tpi_proto::MissClass::Conservative) as f64
            / r.sim.agg.read_misses().max(1) as f64;
        t.row([
            name.to_string(),
            r.sim.total_cycles.to_string(),
            pct(r.sim.miss_rate()),
            pct(cons),
        ]);
    }
    println!("{t}");
    println!(
        "Locality-oblivious schedules cost misses (the compiler marking stays\n\
         sound either way): exactly the trade-off Section 5 discusses for\n\
         dynamic scheduling and task migration on an HSCD machine."
    );
    Ok(())
}
