//! Drive the analysis suite programmatically: lint a kernel with the
//! default pass registry, add a custom pass, and replay the staleness
//! oracle across optimization levels.
//!
//! This is the library-API view of what the `tpi-lint` binary does:
//! build a [`PassRegistry`], run it over a program, render diagnostics in
//! both human and JSON form, then hand the same program to the
//! differential oracle to prove the marking sound at every level.
//!
//! ```text
//! cargo run --example lint_kernel
//! ```

use tpi::runner::ProgramSource;
use tpi::Runner;
use tpi_analysis::{
    check_sources, diagnostics_json, lint_program, total_violations, Code, Diagnostic,
    DifferentialOptions, LintContext, LintOptions, LintPass, PassRegistry, Severity,
};
use tpi_compiler::{mark_program, CompilerOptions, EpochFlowGraph};
use tpi_workloads::{Kernel, Scale};

/// A custom pass: summarize the epoch flow graph the compiler analyzed.
/// Registered alongside the built-in `TPI00x` passes to show the registry
/// is open for extension — a pass sees the program, the graph, and the
/// marking through its [`LintContext`].
struct EpochShape;

impl LintPass for EpochShape {
    fn code(&self) -> Code {
        Code::Tpi999
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let total = cx.graph.nodes().len();
        let doalls = cx
            .graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, tpi_compiler::EpochKind::Doall(_)))
            .count();
        out.push(
            Diagnostic::new(
                Code::Tpi999,
                Severity::Info,
                format!("{doalls} of {total} epochs are DOALLs"),
            )
            .with("epochs", total)
            .with("doalls", doalls),
        );
    }
}

fn main() {
    let kernel = Kernel::Qcd2;
    let program = kernel.build(Scale::Test);

    // One-call form: build the graph and marking, run the default passes.
    println!("--- {} under the default registry ---", kernel.name());
    let diags = lint_program(&program, &LintOptions::default());
    for d in &diags {
        println!("{}", d.human());
    }

    // Assembled form: the same registry plus a custom pass, fed a context
    // we built ourselves (so the graph/marking can be reused elsewhere).
    println!("\n--- with a custom pass, as JSON ---");
    let graph = EpochFlowGraph::of_program(&program);
    let marking = mark_program(&program, &CompilerOptions::default());
    let mut registry = PassRegistry::with_default_passes();
    registry.register(Box::new(EpochShape));
    let cx = LintContext {
        program: &program,
        graph: &graph,
        marking: &marking,
        tag_bits: 8,
    };
    println!("{}", diagnostics_json(&registry.run(&cx)));

    // Dynamic half: replay the kernel at every optimization level and let
    // the oracle hunt for stale observations. The runner memoizes, so the
    // three levels share one program build and the traces would be reused
    // by any simulation grid on the same runner.
    println!("\n--- staleness oracle, all levels ---");
    let runner = Runner::new();
    let sources = [ProgramSource::Kernel(kernel, Scale::Test)];
    let reports = check_sources(&runner, &sources, &DifferentialOptions::default())
        .expect("kernels are race-free");
    for cell in &reports {
        for r in &cell.reports {
            println!(
                "{} {}/{}: {} violation(s), {} of {} marked reads never needed marking",
                cell.label,
                r.mode.label(),
                cell.level,
                r.violations.len(),
                r.stats.unneeded_marked,
                r.stats.marked_reads,
            );
        }
    }
    assert_eq!(total_violations(&reports), 0);
    println!("\nmarking is sound at every level");
}
