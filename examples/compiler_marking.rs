//! Watch the compiler work: build the paper's running example and print
//! every marking decision.
//!
//! The program mirrors the paper's Figure 1/2 discussion: a producer epoch,
//! an unrelated epoch, consumers at different distances, a same-epoch
//! neighbour read, and an unanalyzable subscript. The example prints the
//! program, then each read site's verdict under full, intraprocedural, and
//! naive analysis.
//!
//! ```text
//! cargo run --example compiler_marking
//! ```

use tpi_compiler::{mark_program, CompilerOptions, OptLevel};
use tpi_ir::{display, subs, ProgramBuilder, RefSite, StmtId};
use tpi_mem::ReadKind;

fn main() {
    let n = 63i64;
    let mut p = ProgramBuilder::new();
    let a = p.shared("A", [64]);
    let b = p.shared("B", [64]);
    let c = p.shared("C", [65]);
    let helper = p.proc("writes_only_b", |f| {
        f.doall(0, n, |i, f| f.store(b.at(subs![i]), vec![], 1));
    });
    let main = p.proc("main", |f| {
        // Epoch 0: produce A.
        f.doall(0, n, |i, f| f.store(a.at(subs![i]), vec![], 1)); // S1
                                                                  // Epoch 1: a call that writes only B.
        f.call(helper);
        // Epoch 2: consume A (distance 2 across the call), read C with a
        // same-epoch neighbour conflict, and re-read A (covered).
        let gather = f.opaque();
        f.doall(0, n, |i, f| {
            f.store(c.at(subs![i]), vec![a.at(subs![i]), c.at(subs![i + 1])], 2); // S2: reads A(i) d=2, C(i+1) d=0
            f.load(vec![a.at(subs![i])], 1); // S3: covered -> plain
            f.load(vec![b.at(subs![gather])], 1); // S4: opaque gather of B
        });
    });
    let prog = p.finish(main).expect("valid program");
    println!("{}", display::program_to_string(&prog));

    let sites: [(&str, RefSite); 4] = [
        (
            "S2 reads A(i)   ",
            RefSite {
                stmt: StmtId(2),
                idx: 0,
            },
        ),
        (
            "S2 reads C(i+1) ",
            RefSite {
                stmt: StmtId(2),
                idx: 1,
            },
        ),
        (
            "S3 reads A(i)   ",
            RefSite {
                stmt: StmtId(3),
                idx: 0,
            },
        ),
        (
            "S4 reads B(f(i))",
            RefSite {
                stmt: StmtId(4),
                idx: 0,
            },
        ),
    ];

    for level in [OptLevel::Full, OptLevel::Intra, OptLevel::Naive] {
        let marking = mark_program(&prog, &CompilerOptions { level });
        println!("--- analysis level: {level} ---");
        for (label, site) in sites {
            let verdict = match marking.tpi_kind(site) {
                ReadKind::Plain => "plain (never stale)".to_string(),
                ReadKind::TimeRead { distance } => {
                    format!("Time-Read, window {distance} epoch(s)")
                }
                ReadKind::Bypass => "bypass".to_string(),
                ReadKind::Critical => "critical (uncached)".to_string(),
            };
            let reason = marking
                .decision(site)
                .map_or("-".to_string(), |d| format!("{:?}", d.reason));
            println!("  {label} -> {verdict:<28} [{reason}]");
        }
        let s = marking.summary();
        println!(
            "  total: {} shared reads, {} marked, {} plain\n",
            s.shared_reads, s.marked, s.plain
        );
    }
    println!(
        "Full analysis keeps the A-reuse window open across the call (it\n\
         knows the callee writes only B); intraprocedural analysis collapses\n\
         it to one epoch; naive marking forces distance 0 everywhere."
    );
}
