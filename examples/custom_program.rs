//! The full user journey: build a program with the builder API, export it
//! to the textual format, re-parse it, watch the compiler mark it, and
//! simulate it under every scheme with the canned report tables.
//!
//! ```text
//! cargo run --release --example custom_program
//! ```

use tpi::{report, Runner};
use tpi_ir::{parse_program, program_to_source, subs, ProgramBuilder};
use tpi_proto::{registry, SchemeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build: a red-black Gauss–Seidel sweep (disjoint strided sections:
    //    the red pass and black pass never conflict within an epoch).
    let n = 128i64;
    let mut p = ProgramBuilder::new();
    let u = p.shared("U", [n as u64 + 2]);
    let main = p.proc("main", |f| {
        f.doall(0, n + 1, |i, f| f.store(u.at(subs![i]), vec![], 1));
        f.serial(0, 7, |_t, f| {
            // Red points (odd indices) from black neighbours.
            f.doall_step(1, n, 2, |i, f| {
                f.store(
                    u.at(subs![i]),
                    vec![u.at(subs![i - 1]), u.at(subs![i + 1])],
                    3,
                );
            });
            // Black points (even indices) from red neighbours.
            f.doall_step(2, n, 2, |i, f| {
                f.store(
                    u.at(subs![i]),
                    vec![u.at(subs![i - 1]), u.at(subs![i + 1])],
                    3,
                );
            });
        });
    });
    let program = p.finish(main)?;

    // 2. Export + re-parse: the textual format is a faithful interchange.
    let source = program_to_source(&program);
    println!("--- exported source ---\n{source}");
    let program = parse_program(&source)?;

    // 3. Simulate under every scheme (one shared trace, parallel cells)
    //    and print the canonical reports.
    let runner = Runner::new();
    let grid = runner
        .grid()
        .program("red-black", program)
        .schemes(registry::global().main_schemes())
        .run()?;
    let rows: Vec<(&str, &tpi::ExperimentResult)> = registry::global()
        .main_schemes()
        .iter()
        .map(|&s| (s.label(), grid.at_program("red-black", s, 0)))
        .collect();
    println!(
        "{}",
        report::scheme_comparison("Red-black Gauss-Seidel, 128 points, 16 processors", &rows)
    );
    let tpi_result = grid.at_program("red-black", SchemeId::TPI, 0);
    println!(
        "{}",
        report::marking_summary("Compiler marking (TPI)", tpi_result)
    );
    println!(
        "{}",
        report::miss_classes("TPI misses by cause", tpi_result)
    );
    println!("{}", report::hot_arrays("Hot arrays", tpi_result, 4));
    println!(
        "The red/black passes read only the opposite colour — the section\n\
         analysis proves the strided sets disjoint within each epoch, so\n\
         every halo read gets a one-epoch Time-Read window instead of the\n\
         conservative distance 0."
    );
    Ok(())
}
