//! Quickstart: simulate one benchmark under TPI and under a full-map
//! directory, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tpi::tables::{pct, Table};
use tpi::Runner;
use tpi_proto::SchemeId;
use tpi_workloads::{Kernel, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = Kernel::Flo52;
    println!(
        "Simulating {kernel} ({}) on the paper's 16-processor machine...\n",
        kernel.description()
    );

    let mut table = Table::new(format!("{kernel}: TPI vs full-map directory"));
    table.headers(["metric", "TPI", "HW"]);

    // One Runner: the kernel is built, marked, and traced once, then both
    // schemes are simulated (in parallel) from the shared trace.
    let runner = Runner::new();
    let grid = runner
        .grid()
        .kernel(kernel)
        .scale(Scale::Paper)
        .schemes([SchemeId::TPI, SchemeId::FULL_MAP])
        .run()?;
    let tpi = grid.get(kernel, SchemeId::TPI);
    let hw = grid.get(kernel, SchemeId::FULL_MAP);

    table.row([
        "execution cycles".to_string(),
        tpi.sim.total_cycles.to_string(),
        hw.sim.total_cycles.to_string(),
    ]);
    table.row([
        "read miss rate".to_string(),
        pct(tpi.sim.miss_rate()),
        pct(hw.sim.miss_rate()),
    ]);
    table.row([
        "avg miss latency".to_string(),
        format!("{:.1}", tpi.sim.avg_miss_latency()),
        format!("{:.1}", hw.sim.avg_miss_latency()),
    ]);
    table.row([
        "network words".to_string(),
        tpi.sim.traffic.total_words().to_string(),
        hw.sim.traffic.total_words().to_string(),
    ]);
    println!("{table}");

    println!(
        "The compiler marked {} of {} shared read sites as potentially stale\n\
         ({} proven safe, {} of them by task-local coverage).",
        tpi.marking.marked, tpi.marking.shared_reads, tpi.marking.plain, tpi.marking.covered
    );
    println!(
        "\nTPI runs at {:.2}x the directory machine's time with no directory\n\
         memory at all — the paper's headline trade-off.",
        tpi.sim.total_cycles as f64 / hw.sim.total_cycles as f64
    );
    Ok(())
}
