//! Root package of the TPI reproduction workspace.
//!
//! The library code lives in the `crates/` members; this package hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`). See `README.md` for the map of the workspace and
//! `DESIGN.md` / `EXPERIMENTS.md` for the reproduction methodology.

pub use tpi;
