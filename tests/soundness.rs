//! TPI soundness: a verified Time-Read hit must never observe stale data.
//!
//! The TPI engine carries shadow versions on every cached word and
//! `debug_assert`s on every hit that the observed version equals the
//! version the execution requires. These tests sweep the dimensions that
//! could break that guarantee — tag width (wrap-around), reset strategy,
//! scheduling policy (including migration), analysis level, and line size —
//! across all six kernels. Any unsound marking, epoch count disagreement,
//! fill-rule mistake, or reset-discipline bug panics here.

use tpi::{run_kernel, ConfigBuilder, ExperimentConfig};
use tpi_cache::{ResetStrategy, WritePolicy};
use tpi_compiler::OptLevel;
use tpi_proto::SchemeId;
use tpi_trace::SchedulePolicy;
use tpi_workloads::{Kernel, Scale};

fn tpi_cfg() -> ConfigBuilder {
    ExperimentConfig::builder().scheme(SchemeId::TPI)
}

#[test]
fn sound_across_tag_widths_and_reset_strategies() {
    for kernel in Kernel::ALL {
        for bits in [2u32, 3, 4, 8] {
            for strategy in [ResetStrategy::TwoPhase, ResetStrategy::FullFlushOnWrap] {
                let cfg = tpi_cfg()
                    .tag_bits(bits)
                    .reset_strategy(strategy)
                    .build()
                    .unwrap();
                let r = run_kernel(kernel, Scale::Test, &cfg)
                    .unwrap_or_else(|e| panic!("{kernel} b={bits}: {e}"));
                assert!(r.sim.total_cycles > 0);
            }
        }
    }
}

#[test]
fn sound_across_schedules_including_migration() {
    let policies = [
        SchedulePolicy::StaticBlock,
        SchedulePolicy::StaticCyclic,
        SchedulePolicy::Dynamic { chunk: 1 },
        SchedulePolicy::Dynamic { chunk: 8 },
        SchedulePolicy::DynamicMigrating {
            chunk: 8,
            migrate_per_1024: 512,
        },
    ];
    for kernel in Kernel::ALL {
        for (i, policy) in policies.iter().enumerate() {
            // Tight tags + migration is the hardest combination.
            let cfg = tpi_cfg()
                .policy(*policy)
                .seed(0x5EED + i as u64)
                .tag_bits(3)
                .build()
                .unwrap();
            run_kernel(kernel, Scale::Test, &cfg)
                .unwrap_or_else(|e| panic!("{kernel} {policy}: {e}"));
        }
    }
}

#[test]
fn sound_across_analysis_levels() {
    // Less precise analysis must still be *correct* (just slower).
    for kernel in Kernel::ALL {
        let mut cycles = Vec::new();
        for level in [OptLevel::Naive, OptLevel::Intra, OptLevel::Full] {
            let cfg = tpi_cfg().opt_level(level).build().unwrap();
            let r = run_kernel(kernel, Scale::Test, &cfg).unwrap();
            cycles.push(r.sim.total_cycles);
        }
        // Better analysis never loses (ties allowed).
        assert!(
            cycles[2] <= cycles[0],
            "{kernel}: full {} vs naive {}",
            cycles[2],
            cycles[0]
        );
    }
}

#[test]
fn sound_across_line_sizes_and_associativity() {
    for kernel in [Kernel::Arc2d, Kernel::Ocean, Kernel::Qcd2] {
        for line_words in [1u32, 2, 8, 16] {
            for assoc in [1u32, 2, 4] {
                let cfg = tpi_cfg()
                    .line_words(line_words)
                    .assoc(assoc)
                    .build()
                    .unwrap();
                run_kernel(kernel, Scale::Test, &cfg)
                    .unwrap_or_else(|e| panic!("{kernel} L={line_words} a={assoc}: {e}"));
            }
        }
    }
}

#[test]
fn sc_is_sound_too() {
    for kernel in Kernel::ALL {
        for policy in [
            SchedulePolicy::StaticCyclic,
            SchedulePolicy::DynamicMigrating {
                chunk: 4,
                migrate_per_1024: 512,
            },
        ] {
            let cfg = tpi_cfg()
                .scheme(SchemeId::SC)
                .policy(policy)
                .build()
                .unwrap();
            run_kernel(kernel, Scale::Test, &cfg).unwrap();
        }
    }
}

#[test]
fn directory_is_sound_under_every_schedule() {
    for kernel in Kernel::ALL {
        let cfg = tpi_cfg()
            .scheme(SchemeId::FULL_MAP)
            .policy(SchedulePolicy::Dynamic { chunk: 2 })
            .build()
            .unwrap();
        run_kernel(kernel, Scale::Test, &cfg).unwrap();
    }
}

#[test]
fn write_back_at_boundary_is_sound() {
    // Memory is stale mid-epoch under this policy; the tag discipline must
    // still prevent any stale hit (shadow versions assert it).
    for kernel in Kernel::ALL {
        for bits in [2u32, 8] {
            let cfg = tpi_cfg()
                .write_policy(WritePolicy::BackAtBoundary)
                .tag_bits(bits)
                .build()
                .unwrap();
            run_kernel(kernel, Scale::Test, &cfg)
                .unwrap_or_else(|e| panic!("{kernel} b={bits}: {e}"));
        }
    }
    // And combined with migration + tiny caches.
    let cfg = tpi_cfg()
        .write_policy(WritePolicy::BackAtBoundary)
        .policy(SchedulePolicy::DynamicMigrating {
            chunk: 4,
            migrate_per_1024: 512,
        })
        .cache_bytes(4096)
        .build()
        .unwrap();
    run_kernel(Kernel::Arc2d, Scale::Test, &cfg).unwrap();
}

#[test]
fn serial_rotation_is_sound_and_hurts_hw_more() {
    // The compiler already assumes serial epochs may run anywhere, so TPI's
    // marking stays sound under rotation; the directory scheme pays real
    // migration misses instead.
    let mut tpi_cost = [0u64; 2];
    let mut hw_cost = [0u64; 2];
    for (i, rotate) in [false, true].into_iter().enumerate() {
        let cfg = tpi_cfg().rotate_serial(rotate).build().unwrap();
        tpi_cost[i] = run_kernel(Kernel::Flo52, Scale::Test, &cfg)
            .unwrap()
            .sim
            .total_cycles;
        let cfg = tpi_cfg()
            .scheme(SchemeId::FULL_MAP)
            .rotate_serial(rotate)
            .build()
            .unwrap();
        hw_cost[i] = run_kernel(Kernel::Flo52, Scale::Test, &cfg)
            .unwrap()
            .sim
            .total_cycles;
    }
    // Soundness is the main assertion (no panics above); rotation must not
    // help anyone, and every kernel must stay sound under it.
    assert!(tpi_cost[1] >= tpi_cost[0]);
    assert!(hw_cost[1] >= hw_cost[0]);
    for kernel in Kernel::ALL {
        let cfg = tpi_cfg().rotate_serial(true).tag_bits(3).build().unwrap();
        run_kernel(kernel, Scale::Test, &cfg).unwrap_or_else(|e| panic!("{kernel}: {e}"));
    }
}

#[test]
fn two_level_tpi_is_sound() {
    // Section 3's off-the-shelf implementation: a stock L1 over the tagged
    // off-chip cache. Shadow versions verify no stale L1 hit slips through.
    for kernel in Kernel::ALL {
        let cfg = tpi_cfg()
            .l1(Some(tpi_proto::L1Config::paper_default()))
            .tag_bits(3)
            .build()
            .unwrap();
        run_kernel(kernel, Scale::Test, &cfg).unwrap_or_else(|e| panic!("{kernel}: {e}"));
    }
    // With migration and a tiny L1.
    let cfg = tpi_cfg()
        .l1(Some(tpi_proto::L1Config {
            size_bytes: 1024,
            assoc: 1,
            l2_hit_cycles: 5,
        }))
        .policy(SchedulePolicy::DynamicMigrating {
            chunk: 4,
            migrate_per_1024: 512,
        })
        .build()
        .unwrap();
    run_kernel(Kernel::Mdg, Scale::Test, &cfg).unwrap();
}

#[test]
fn word_granular_coherence_fetch_is_sound() {
    for kernel in Kernel::ALL {
        let cfg = tpi_cfg()
            .coherence_fetch(tpi_proto::FetchGranularity::Word)
            .tag_bits(3)
            .build()
            .unwrap();
        run_kernel(kernel, Scale::Test, &cfg).unwrap_or_else(|e| panic!("{kernel}: {e}"));
    }
}

#[test]
fn mark_ignoring_schemes_are_fresh_on_every_kernel() {
    // Tardis and the hybrid update/invalidate protocol ignore compiler
    // marks entirely, so the marking-replay oracle cannot vouch for them.
    // Freshness verification makes their soundness executable instead: any
    // cache hit observing stale data panics inside the engine.
    for kernel in Kernel::ALL {
        for scheme in [SchemeId::TARDIS, SchemeId::HYBRID] {
            for level in [OptLevel::Naive, OptLevel::Intra, OptLevel::Full] {
                let cfg = tpi_cfg()
                    .scheme(scheme)
                    .opt_level(level)
                    .verify_freshness(true)
                    .build()
                    .unwrap();
                let r = run_kernel(kernel, Scale::Test, &cfg)
                    .unwrap_or_else(|e| panic!("{kernel} {scheme} {level}: {e}"));
                assert!(r.sim.total_cycles > 0, "{kernel} {scheme} {level}");
            }
        }
    }
}

#[test]
fn tiny_caches_still_sound() {
    // Brutal conflict pressure: 2 KB direct-mapped with 8-word lines.
    for kernel in Kernel::ALL {
        let cfg = tpi_cfg()
            .cache_bytes(2048)
            .line_words(8)
            .tag_bits(2)
            .build()
            .unwrap();
        run_kernel(kernel, Scale::Test, &cfg).unwrap();
    }
}
