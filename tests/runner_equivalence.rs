//! The Runner's contract: a memoized, parallel grid is *observably
//! identical* to fresh, serial runs — same cycle counts, same traffic,
//! same rendered tables — and the artifact cache is invalidated by
//! exactly the options each pipeline stage depends on.

use tpi::{run_kernel, run_program, ExperimentConfig, Runner};
use tpi_compiler::OptLevel;
use tpi_ir::{subs, ProgramBuilder};
use tpi_proto::{registry, SchemeId};
use tpi_testkit::prelude::*;
use tpi_workloads::{Kernel, Scale};

fn cfg(scheme: SchemeId) -> ExperimentConfig {
    ExperimentConfig::builder().scheme(scheme).build().unwrap()
}

#[test]
fn memoized_grid_equals_fresh_runs() {
    // Every cell of a kernels x schemes grid must be bit-identical to a
    // one-off run_kernel with the same configuration.
    let runner = Runner::new();
    let grid = runner
        .grid()
        .kernels([Kernel::Flo52, Kernel::Ocean, Kernel::Qcd2])
        .scale(Scale::Test)
        .schemes(registry::global().main_schemes())
        .run()
        .unwrap();
    for kernel in [Kernel::Flo52, Kernel::Ocean, Kernel::Qcd2] {
        for scheme in registry::global().main_schemes() {
            let memo = grid.get(kernel, scheme);
            let fresh = run_kernel(kernel, Scale::Test, &cfg(scheme)).unwrap();
            assert_eq!(
                memo.sim.total_cycles, fresh.sim.total_cycles,
                "{kernel}/{scheme}"
            );
            assert_eq!(memo.sim.agg, fresh.sim.agg, "{kernel}/{scheme}");
            assert_eq!(memo.sim.traffic, fresh.sim.traffic, "{kernel}/{scheme}");
            assert_eq!(memo.marking, fresh.marking, "{kernel}/{scheme}");
            assert_eq!(memo.trace, fresh.trace, "{kernel}/{scheme}");
        }
    }
    // The whole 12-cell grid interpreted each kernel exactly once.
    assert_eq!(runner.stats().traces_built, 3);
    assert_eq!(runner.stats().trace_hits, 9);
}

#[test]
fn parallel_equals_serial() {
    // Same grid on a single worker thread and on many: identical results
    // in identical order.
    let build = |runner: &Runner| {
        runner
            .grid()
            .kernels(Kernel::ALL)
            .scale(Scale::Test)
            .schemes([SchemeId::TPI, SchemeId::FULL_MAP])
            .sweep([2u32, 8], |c, bits| c.tag_bits = *bits)
            .run()
            .unwrap()
    };
    let serial = build(&Runner::serial());
    let parallel = build(&Runner::with_threads(8));
    let (s, p): (Vec<_>, Vec<_>) = (serial.iter().collect(), parallel.iter().collect());
    assert_eq!(s.len(), p.len());
    assert_eq!(s.len(), Kernel::ALL.len() * 2 * 2);
    for (a, b) in s.iter().zip(&p) {
        assert_eq!(a.sim.total_cycles, b.sim.total_cycles);
        assert_eq!(a.sim.agg, b.sim.agg);
        assert_eq!(a.sim.traffic, b.sim.traffic);
    }
}

#[test]
fn no_cache_mode_equals_memoized() {
    // `Runner::without_memoization` (the `repro --fresh` baseline) must be
    // observably identical to the cached engine — only the stats differ.
    let build = |runner: &Runner| {
        runner
            .grid()
            .kernels([Kernel::Trfd, Kernel::Spec77])
            .scale(Scale::Test)
            .schemes(registry::global().main_schemes())
            .run()
            .unwrap()
    };
    let memo_runner = Runner::new();
    let memo = build(&memo_runner);
    let fresh_runner = Runner::new().without_memoization();
    let fresh = build(&fresh_runner);
    for (a, b) in memo.iter().zip(fresh.iter()) {
        assert_eq!(a.sim.total_cycles, b.sim.total_cycles);
        assert_eq!(a.sim.agg, b.sim.agg);
        assert_eq!(a.sim.traffic, b.sim.traffic);
        assert_eq!(a.marking, b.marking);
    }
    assert_eq!(memo_runner.stats().traces_built, 2);
    assert_eq!(fresh_runner.stats().traces_built, 8, "one per cell");
    assert_eq!(fresh_runner.stats().trace_hits, 0);
}

#[test]
fn rendered_tables_are_identical() {
    // The user-visible artifact — the rendered report — must not change
    // between the memoized-parallel and fresh-serial paths.
    let render = |results: &[(&str, &tpi::ExperimentResult)]| {
        tpi::report::scheme_comparison("equivalence", results).to_string()
    };
    let runner = Runner::new();
    let grid = runner
        .grid()
        .kernel(Kernel::Arc2d)
        .scale(Scale::Test)
        .schemes(registry::global().main_schemes())
        .run()
        .unwrap();
    let memo_rows: Vec<_> = registry::global()
        .main_schemes()
        .iter()
        .map(|&s| (s.label(), grid.get(Kernel::Arc2d, s)))
        .collect();
    let fresh: Vec<_> = registry::global()
        .main_schemes()
        .iter()
        .map(|&s| (s, run_kernel(Kernel::Arc2d, Scale::Test, &cfg(s)).unwrap()))
        .collect();
    let fresh_rows: Vec<_> = fresh.iter().map(|(s, r)| (s.label(), r)).collect();
    assert_eq!(render(&memo_rows), render(&fresh_rows));
}

#[test]
fn cache_keys_track_stage_dependencies() {
    // scheme / geometry -> only the simulation reruns;
    // opt level          -> marking and trace rebuild;
    // schedule or seed   -> trace rebuilds, marking survives.
    let runner = Runner::new();
    let base = cfg(SchemeId::TPI);

    runner
        .run_kernel(Kernel::Ocean, Scale::Test, &base)
        .unwrap();
    let s0 = runner.stats();
    assert_eq!(
        (s0.programs_built, s0.markings_built, s0.traces_built),
        (1, 1, 1)
    );

    // A pure machine change shares everything upstream.
    let machine = ExperimentConfig::builder()
        .scheme(SchemeId::FULL_MAP)
        .cache_bytes(32 * 1024)
        .build()
        .unwrap();
    runner
        .run_kernel(Kernel::Ocean, Scale::Test, &machine)
        .unwrap();
    let s1 = runner.stats();
    assert_eq!((s1.markings_built, s1.traces_built), (1, 1));
    assert_eq!((s1.marking_hits, s1.trace_hits), (1, 1));

    // A compiler change invalidates the marking (and hence the trace).
    let naive = ExperimentConfig::builder()
        .scheme(SchemeId::TPI)
        .opt_level(OptLevel::Naive)
        .build()
        .unwrap();
    runner
        .run_kernel(Kernel::Ocean, Scale::Test, &naive)
        .unwrap();
    let s2 = runner.stats();
    assert_eq!((s2.markings_built, s2.traces_built), (2, 2));

    // A schedule change invalidates only the trace.
    let cyclic = ExperimentConfig::builder()
        .scheme(SchemeId::TPI)
        .policy(tpi_trace::SchedulePolicy::StaticCyclic)
        .build()
        .unwrap();
    runner
        .run_kernel(Kernel::Ocean, Scale::Test, &cyclic)
        .unwrap();
    let s3 = runner.stats();
    assert_eq!(s3.markings_built, 2, "marking is schedule-independent");
    assert_eq!(s3.traces_built, 3);

    // The program itself was only ever built once.
    assert_eq!(s3.programs_built, 1);
}

#[test]
fn custom_programs_memoize_and_match_run_program() {
    let prog = {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [128]);
        let b = p.shared("B", [128]);
        let main = p.proc("main", |f| {
            f.doall(0, 127, |i, f| f.store(a.at(subs![i]), vec![], 2));
            f.doall(0, 127, |i, f| {
                f.store(b.at(subs![i]), vec![a.at(subs![i])], 2)
            });
        });
        p.finish(main).unwrap()
    };
    let fresh = run_program(&prog, &cfg(SchemeId::TPI)).unwrap();
    let runner = Runner::new();
    let grid = runner
        .grid()
        .program("pc", prog)
        .schemes([SchemeId::TPI, SchemeId::SC])
        .run()
        .unwrap();
    let memo = grid.at_program("pc", SchemeId::TPI, 0);
    assert_eq!(memo.sim.total_cycles, fresh.sim.total_cycles);
    assert_eq!(memo.sim.agg, fresh.sim.agg);
    assert_eq!(
        runner.stats().traces_built,
        1,
        "both schemes share the trace"
    );
}

/// Field-by-field [`tpi_sim::SimResult`] identity, excluding only the
/// host-side wall-clock self-measurement (which is never deterministic).
fn assert_sim_identical(a: &tpi_sim::SimResult, b: &tpi_sim::SimResult, ctx: &str) {
    assert_eq!(a.scheme, b.scheme, "{ctx}: scheme");
    assert_eq!(a.total_cycles, b.total_cycles, "{ctx}: total_cycles");
    assert_eq!(a.busy_cycles, b.busy_cycles, "{ctx}: busy_cycles");
    assert_eq!(a.agg, b.agg, "{ctx}: agg");
    assert_eq!(a.per_proc, b.per_proc, "{ctx}: per_proc");
    assert_eq!(a.traffic, b.traffic, "{ctx}: traffic");
    assert_eq!(a.wbuffer, b.wbuffer, "{ctx}: wbuffer");
    assert_eq!(a.epochs, b.epochs, "{ctx}: epochs");
    assert_eq!(a.lock_acquires, b.lock_acquires, "{ctx}: lock_acquires");
    assert_eq!(
        a.lock_wait_cycles, b.lock_wait_cycles,
        "{ctx}: lock_wait_cycles"
    );
    assert_eq!(a.profile, b.profile, "{ctx}: profile");
    assert_eq!(a.miss_by_array, b.miss_by_array, "{ctx}: miss_by_array");
}

#[test]
fn sharded_replay_is_bit_identical_for_every_scheme() {
    // The tentpole pin: for EVERY registered scheme, a sharded runner must
    // produce results bit-identical to the serial replay loop. MDG
    // exercises the sync-ful dispatcher path (lock-guarded critical
    // sections route through the owner shard's engine replica); FSHARE
    // exercises heavy cross-shard false sharing. Shard-safe engines
    // (BASE, SC, TPI, IDEAL) take the flat per-shard path; order-sensitive
    // ones (HW, LL, TARDIS, HYB) must detect themselves and fall back —
    // either way the observable result is the same.
    let schemes: Vec<SchemeId> = registry::global().all().iter().map(|s| s.id()).collect();
    assert!(schemes.len() >= 8, "the full registry is under test");
    for kernel in [Kernel::Mdg, Kernel::FalseShare] {
        for &scheme in &schemes {
            let serial = Runner::serial()
                .with_sim_shards(1)
                .run_kernel(kernel, Scale::Test, &cfg(scheme))
                .unwrap();
            let sharded = Runner::serial()
                .with_sim_shards(4)
                .run_kernel(kernel, Scale::Test, &cfg(scheme))
                .unwrap();
            assert_sim_identical(&serial.sim, &sharded.sim, &format!("{kernel}/{scheme}"));
            assert_eq!(serial.marking, sharded.marking, "{kernel}/{scheme}");
            assert_eq!(serial.trace, sharded.trace, "{kernel}/{scheme}");
        }
    }
}

#[test]
fn shard_counts_one_two_seven_and_sixty_four_agree() {
    // `sim_shards` is an execution knob, not a model parameter: any count
    // (including one exceeding the processor count, which clamps) must
    // yield the identical result.
    let reference = Runner::serial()
        .with_sim_shards(1)
        .run_kernel(Kernel::Qcd2, Scale::Test, &cfg(SchemeId::TPI))
        .unwrap();
    for shards in [2usize, 7, 64] {
        let got = Runner::serial()
            .with_sim_shards(shards)
            .run_kernel(Kernel::Qcd2, Scale::Test, &cfg(SchemeId::TPI))
            .unwrap();
        assert_sim_identical(&reference.sim, &got.sim, &format!("shards={shards}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn shard_count_never_changes_results(
        seed in any::<u64>(),
        shards in prop_oneof![Just(2usize), Just(3), Just(7), Just(64)],
        scheme in prop_oneof![Just(SchemeId::TPI), Just(SchemeId::SC)],
    ) {
        // Randomized seeds vary the opaque-subscript gather targets, so
        // the shard-count-independence claim is checked across many
        // distinct traces, not one golden input.
        let config = ExperimentConfig::builder()
            .scheme(scheme)
            .seed(seed)
            .build()
            .unwrap();
        let serial = Runner::serial()
            .with_sim_shards(1)
            .run_kernel(Kernel::Qcd2, Scale::Test, &config)
            .unwrap();
        let sharded = Runner::serial()
            .with_sim_shards(shards)
            .run_kernel(Kernel::Qcd2, Scale::Test, &config)
            .unwrap();
        prop_assert_eq!(serial.sim.total_cycles, sharded.sim.total_cycles);
        prop_assert_eq!(&serial.sim.agg, &sharded.sim.agg);
        prop_assert_eq!(&serial.sim.per_proc, &sharded.sim.per_proc);
        prop_assert_eq!(&serial.sim.traffic, &sharded.sim.traffic);
        prop_assert_eq!(&serial.sim.miss_by_array, &sharded.sim.miss_by_array);
    }
}
