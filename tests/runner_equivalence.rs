//! The Runner's contract: a memoized, parallel grid is *observably
//! identical* to fresh, serial runs — same cycle counts, same traffic,
//! same rendered tables — and the artifact cache is invalidated by
//! exactly the options each pipeline stage depends on.

use tpi::{run_kernel, run_program, ExperimentConfig, Runner};
use tpi_compiler::OptLevel;
use tpi_ir::{subs, ProgramBuilder};
use tpi_proto::{registry, SchemeId};
use tpi_workloads::{Kernel, Scale};

fn cfg(scheme: SchemeId) -> ExperimentConfig {
    ExperimentConfig::builder().scheme(scheme).build().unwrap()
}

#[test]
fn memoized_grid_equals_fresh_runs() {
    // Every cell of a kernels x schemes grid must be bit-identical to a
    // one-off run_kernel with the same configuration.
    let runner = Runner::new();
    let grid = runner
        .grid()
        .kernels([Kernel::Flo52, Kernel::Ocean, Kernel::Qcd2])
        .scale(Scale::Test)
        .schemes(registry::global().main_schemes())
        .run()
        .unwrap();
    for kernel in [Kernel::Flo52, Kernel::Ocean, Kernel::Qcd2] {
        for scheme in registry::global().main_schemes() {
            let memo = grid.get(kernel, scheme);
            let fresh = run_kernel(kernel, Scale::Test, &cfg(scheme)).unwrap();
            assert_eq!(
                memo.sim.total_cycles, fresh.sim.total_cycles,
                "{kernel}/{scheme}"
            );
            assert_eq!(memo.sim.agg, fresh.sim.agg, "{kernel}/{scheme}");
            assert_eq!(memo.sim.traffic, fresh.sim.traffic, "{kernel}/{scheme}");
            assert_eq!(memo.marking, fresh.marking, "{kernel}/{scheme}");
            assert_eq!(memo.trace, fresh.trace, "{kernel}/{scheme}");
        }
    }
    // The whole 12-cell grid interpreted each kernel exactly once.
    assert_eq!(runner.stats().traces_built, 3);
    assert_eq!(runner.stats().trace_hits, 9);
}

#[test]
fn parallel_equals_serial() {
    // Same grid on a single worker thread and on many: identical results
    // in identical order.
    let build = |runner: &Runner| {
        runner
            .grid()
            .kernels(Kernel::ALL)
            .scale(Scale::Test)
            .schemes([SchemeId::TPI, SchemeId::FULL_MAP])
            .sweep([2u32, 8], |c, bits| c.tag_bits = *bits)
            .run()
            .unwrap()
    };
    let serial = build(&Runner::serial());
    let parallel = build(&Runner::with_threads(8));
    let (s, p): (Vec<_>, Vec<_>) = (serial.iter().collect(), parallel.iter().collect());
    assert_eq!(s.len(), p.len());
    assert_eq!(s.len(), Kernel::ALL.len() * 2 * 2);
    for (a, b) in s.iter().zip(&p) {
        assert_eq!(a.sim.total_cycles, b.sim.total_cycles);
        assert_eq!(a.sim.agg, b.sim.agg);
        assert_eq!(a.sim.traffic, b.sim.traffic);
    }
}

#[test]
fn no_cache_mode_equals_memoized() {
    // `Runner::without_memoization` (the `repro --fresh` baseline) must be
    // observably identical to the cached engine — only the stats differ.
    let build = |runner: &Runner| {
        runner
            .grid()
            .kernels([Kernel::Trfd, Kernel::Spec77])
            .scale(Scale::Test)
            .schemes(registry::global().main_schemes())
            .run()
            .unwrap()
    };
    let memo_runner = Runner::new();
    let memo = build(&memo_runner);
    let fresh_runner = Runner::new().without_memoization();
    let fresh = build(&fresh_runner);
    for (a, b) in memo.iter().zip(fresh.iter()) {
        assert_eq!(a.sim.total_cycles, b.sim.total_cycles);
        assert_eq!(a.sim.agg, b.sim.agg);
        assert_eq!(a.sim.traffic, b.sim.traffic);
        assert_eq!(a.marking, b.marking);
    }
    assert_eq!(memo_runner.stats().traces_built, 2);
    assert_eq!(fresh_runner.stats().traces_built, 8, "one per cell");
    assert_eq!(fresh_runner.stats().trace_hits, 0);
}

#[test]
fn rendered_tables_are_identical() {
    // The user-visible artifact — the rendered report — must not change
    // between the memoized-parallel and fresh-serial paths.
    let render = |results: &[(&str, &tpi::ExperimentResult)]| {
        tpi::report::scheme_comparison("equivalence", results).to_string()
    };
    let runner = Runner::new();
    let grid = runner
        .grid()
        .kernel(Kernel::Arc2d)
        .scale(Scale::Test)
        .schemes(registry::global().main_schemes())
        .run()
        .unwrap();
    let memo_rows: Vec<_> = registry::global()
        .main_schemes()
        .iter()
        .map(|&s| (s.label(), grid.get(Kernel::Arc2d, s)))
        .collect();
    let fresh: Vec<_> = registry::global()
        .main_schemes()
        .iter()
        .map(|&s| (s, run_kernel(Kernel::Arc2d, Scale::Test, &cfg(s)).unwrap()))
        .collect();
    let fresh_rows: Vec<_> = fresh.iter().map(|(s, r)| (s.label(), r)).collect();
    assert_eq!(render(&memo_rows), render(&fresh_rows));
}

#[test]
fn cache_keys_track_stage_dependencies() {
    // scheme / geometry -> only the simulation reruns;
    // opt level          -> marking and trace rebuild;
    // schedule or seed   -> trace rebuilds, marking survives.
    let runner = Runner::new();
    let base = cfg(SchemeId::TPI);

    runner
        .run_kernel(Kernel::Ocean, Scale::Test, &base)
        .unwrap();
    let s0 = runner.stats();
    assert_eq!(
        (s0.programs_built, s0.markings_built, s0.traces_built),
        (1, 1, 1)
    );

    // A pure machine change shares everything upstream.
    let machine = ExperimentConfig::builder()
        .scheme(SchemeId::FULL_MAP)
        .cache_bytes(32 * 1024)
        .build()
        .unwrap();
    runner
        .run_kernel(Kernel::Ocean, Scale::Test, &machine)
        .unwrap();
    let s1 = runner.stats();
    assert_eq!((s1.markings_built, s1.traces_built), (1, 1));
    assert_eq!((s1.marking_hits, s1.trace_hits), (1, 1));

    // A compiler change invalidates the marking (and hence the trace).
    let naive = ExperimentConfig::builder()
        .scheme(SchemeId::TPI)
        .opt_level(OptLevel::Naive)
        .build()
        .unwrap();
    runner
        .run_kernel(Kernel::Ocean, Scale::Test, &naive)
        .unwrap();
    let s2 = runner.stats();
    assert_eq!((s2.markings_built, s2.traces_built), (2, 2));

    // A schedule change invalidates only the trace.
    let cyclic = ExperimentConfig::builder()
        .scheme(SchemeId::TPI)
        .policy(tpi_trace::SchedulePolicy::StaticCyclic)
        .build()
        .unwrap();
    runner
        .run_kernel(Kernel::Ocean, Scale::Test, &cyclic)
        .unwrap();
    let s3 = runner.stats();
    assert_eq!(s3.markings_built, 2, "marking is schedule-independent");
    assert_eq!(s3.traces_built, 3);

    // The program itself was only ever built once.
    assert_eq!(s3.programs_built, 1);
}

#[test]
fn custom_programs_memoize_and_match_run_program() {
    let prog = {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [128]);
        let b = p.shared("B", [128]);
        let main = p.proc("main", |f| {
            f.doall(0, 127, |i, f| f.store(a.at(subs![i]), vec![], 2));
            f.doall(0, 127, |i, f| {
                f.store(b.at(subs![i]), vec![a.at(subs![i])], 2)
            });
        });
        p.finish(main).unwrap()
    };
    let fresh = run_program(&prog, &cfg(SchemeId::TPI)).unwrap();
    let runner = Runner::new();
    let grid = runner
        .grid()
        .program("pc", prog)
        .schemes([SchemeId::TPI, SchemeId::SC])
        .run()
        .unwrap();
    let memo = grid.at_program("pc", SchemeId::TPI, 0);
    assert_eq!(memo.sim.total_cycles, fresh.sim.total_cycles);
    assert_eq!(memo.sim.agg, fresh.sim.agg);
    assert_eq!(
        runner.stats().traces_built,
        1,
        "both schemes share the trace"
    );
}
