//! Section 5 integration: lock-guarded critical sections across the whole
//! stack — compiler conservatism, uncached HSCD access, coherent directory
//! access, and lock serialization in the timing model.

use tpi::{run_kernel, run_program, ExperimentConfig};
use tpi_ir::{subs, ProgramBuilder};
use tpi_proto::{registry, MissClass, SchemeId};
use tpi_trace::SchedulePolicy;
use tpi_workloads::{Kernel, Scale};

fn cfg(scheme: SchemeId) -> ExperimentConfig {
    ExperimentConfig::builder().scheme(scheme).build().unwrap()
}

#[test]
fn mdg_runs_soundly_under_every_scheme() {
    // The shadow-version debug_asserts inside the engines verify that no
    // verified hit ever observes stale data, including around the
    // lock-serialized accumulation.
    for scheme in registry::global().main_schemes() {
        let r = run_kernel(Kernel::Mdg, Scale::Test, &cfg(scheme))
            .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert!(r.sim.total_cycles > 0);
        assert!(r.sim.lock_acquires > 0, "{scheme}: locks must be exercised");
    }
}

#[test]
fn mdg_sound_under_wild_schedules_and_tiny_tags() {
    for policy in [
        SchedulePolicy::StaticCyclic,
        SchedulePolicy::Dynamic { chunk: 2 },
        SchedulePolicy::DynamicMigrating {
            chunk: 4,
            migrate_per_1024: 512,
        },
    ] {
        let c = ExperimentConfig::builder()
            .scheme(SchemeId::TPI)
            .policy(policy)
            .tag_bits(2)
            .build()
            .unwrap();
        run_kernel(Kernel::Mdg, Scale::Test, &c).unwrap();
    }
}

#[test]
fn lock_contention_serializes_execution() {
    // A program that does nothing but fight over one lock: adding
    // processors cannot make the critical phase faster than serial.
    let build = || {
        let mut p = ProgramBuilder::new();
        let acc = p.shared("ACC", [4]);
        let lock = p.lock();
        let main = p.proc("main", |f| {
            let bin = f.opaque();
            f.doall(0, 255, |_i, f| {
                f.critical(lock, |f| {
                    f.store(acc.at(subs![bin]), vec![acc.at(subs![bin])], 2);
                });
            });
        });
        p.finish(main).unwrap()
    };
    let prog = build();
    let c1 = ExperimentConfig::builder()
        .scheme(SchemeId::TPI)
        .procs(1)
        .build()
        .unwrap();
    let serial = run_program(&prog, &c1).unwrap();
    let c16 = ExperimentConfig::builder()
        .scheme(SchemeId::TPI)
        .procs(16)
        .build()
        .unwrap();
    let parallel = run_program(&prog, &c16).unwrap();
    assert!(parallel.sim.lock_wait_cycles > 0, "16 procs must contend");
    // Lock-bound: 16 processors buy little; well under the ~16x a truly
    // parallel loop would approach.
    let speedup = serial.sim.total_cycles as f64 / parallel.sim.total_cycles as f64;
    assert!(
        speedup < 4.0,
        "a single lock must bound speedup, got {speedup:.1}x"
    );
}

#[test]
fn hscd_critical_reads_are_uncached_but_directory_reads_cohere() {
    let r_tpi = run_kernel(Kernel::Mdg, Scale::Test, &cfg(SchemeId::TPI)).unwrap();
    assert!(
        r_tpi.sim.agg.misses(MissClass::Uncached) > 0,
        "TPI critical reads bypass the cache"
    );
    let r_hw = run_kernel(Kernel::Mdg, Scale::Test, &cfg(SchemeId::FULL_MAP)).unwrap();
    assert_eq!(
        r_hw.sim.agg.misses(MissClass::Uncached),
        0,
        "the directory reads critical data coherently"
    );
}

#[test]
fn critical_data_read_after_the_epoch_is_fresh() {
    // Accumulate under a lock, then read the total in a serial epoch and
    // in a later parallel epoch: every consumer must see the final value
    // (the engines' debug_asserts verify the versions).
    let mut p = ProgramBuilder::new();
    let acc = p.shared("ACC", [8]);
    let out = p.shared("OUT", [64]);
    let lock = p.lock();
    let main = p.proc("main", |f| {
        f.doall(0, 7, |b, f| f.store(acc.at(subs![b]), vec![], 1));
        let bin = f.opaque();
        f.doall(0, 63, |_i, f| {
            f.critical(lock, |f| {
                f.store(acc.at(subs![bin]), vec![acc.at(subs![bin])], 2);
            });
        });
        // Parallel consumers of the lock-built data.
        f.doall(0, 63, |i, f| {
            f.store(out.at(subs![i]), vec![acc.at(subs![0])], 2);
        });
    });
    let prog = p.finish(main).unwrap();
    for scheme in registry::global().main_schemes() {
        let c = ExperimentConfig::builder()
            .scheme(scheme)
            .tag_bits(3)
            .build()
            .unwrap();
        run_program(&prog, &c).unwrap_or_else(|e| panic!("{scheme}: {e}"));
    }
}

#[test]
fn validator_rejects_misplaced_criticals() {
    use tpi_ir::ValidateError;
    // Critical outside a DOALL.
    let mut p = ProgramBuilder::new();
    let a = p.shared("A", [4]);
    let lock = p.lock();
    let main = p.proc("main", |f| {
        f.serial(0, 3, |i, f| {
            f.critical(lock, |f| f.store(a.at(subs![i]), vec![], 1));
        });
    });
    assert!(matches!(
        p.finish(main),
        Err(ValidateError::CriticalOutsideDoall { .. })
    ));
    // Undeclared lock.
    let mut p2 = ProgramBuilder::new();
    let a2 = p2.shared("A", [4]);
    let main2 = p2.proc("main", |f| {
        f.doall(0, 3, |i, f| {
            f.critical(tpi_ir::LockId(7), |f| f.store(a2.at(subs![i]), vec![], 1));
        });
    });
    assert!(matches!(
        p2.finish(main2),
        Err(ValidateError::UnknownLock { .. })
    ));
}

#[test]
fn coalescing_buffer_does_not_swallow_critical_ordering() {
    use tpi_cache::WriteBufferKind;
    let c = ExperimentConfig::builder()
        .scheme(SchemeId::TPI)
        .wbuffer(WriteBufferKind::Coalescing)
        .build()
        .unwrap();
    run_kernel(Kernel::Mdg, Scale::Test, &c).unwrap();
}
