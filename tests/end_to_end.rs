//! Cross-crate integration: the full pipeline (IR → compiler → trace →
//! engine → timing) on every benchmark under every scheme.

use tpi::{run_kernel, ExperimentConfig};
use tpi_proto::{registry, MissClass, SchemeId};
use tpi_workloads::{Kernel, Scale};

fn cfg(scheme: SchemeId) -> ExperimentConfig {
    ExperimentConfig::builder().scheme(scheme).build().unwrap()
}

#[test]
fn every_kernel_runs_under_every_scheme() {
    for kernel in Kernel::ALL {
        for scheme in registry::global().main_schemes() {
            let r = run_kernel(kernel, Scale::Test, &cfg(scheme))
                .unwrap_or_else(|e| panic!("{kernel}/{scheme}: {e}"));
            assert!(r.sim.total_cycles > 0);
            assert!(r.sim.agg.reads > 0);
            // Classification invariant: every miss has exactly one class.
            assert_eq!(
                r.sim.agg.read_hits + r.sim.agg.read_misses(),
                r.sim.agg.reads,
                "{kernel}/{scheme}"
            );
        }
    }
}

#[test]
fn determinism_across_runs() {
    for scheme in registry::global().main_schemes() {
        let a = run_kernel(Kernel::Qcd2, Scale::Test, &cfg(scheme)).unwrap();
        let b = run_kernel(Kernel::Qcd2, Scale::Test, &cfg(scheme)).unwrap();
        assert_eq!(a.sim.total_cycles, b.sim.total_cycles, "{scheme}");
        assert_eq!(a.sim.traffic, b.sim.traffic, "{scheme}");
        assert_eq!(a.sim.agg, b.sim.agg, "{scheme}");
    }
}

#[test]
fn base_never_caches_shared_data() {
    for kernel in Kernel::ALL {
        let r = run_kernel(kernel, Scale::Test, &cfg(SchemeId::BASE)).unwrap();
        // All shared reads are uncached remote accesses.
        assert!(r.sim.agg.misses(MissClass::Uncached) > 0, "{kernel}");
        assert_eq!(
            r.sim.agg.misses(MissClass::CoherenceTrue)
                + r.sim.agg.misses(MissClass::FalseSharing)
                + r.sim.agg.misses(MissClass::Conservative),
            0,
            "{kernel}: BASE has no coherence misses"
        );
    }
}

#[test]
fn tpi_has_no_false_sharing_and_hw_has_no_conservative_misses() {
    for kernel in Kernel::ALL {
        let t = run_kernel(kernel, Scale::Test, &cfg(SchemeId::TPI)).unwrap();
        assert_eq!(
            t.sim.agg.misses(MissClass::FalseSharing),
            0,
            "{kernel}: word-granular TPI cannot false-share"
        );
        let h = run_kernel(kernel, Scale::Test, &cfg(SchemeId::FULL_MAP)).unwrap();
        assert_eq!(
            h.sim.agg.misses(MissClass::Conservative),
            0,
            "{kernel}: the directory never guesses conservatively"
        );
        assert_eq!(
            h.sim.agg.misses(MissClass::Reset),
            0,
            "{kernel}: the directory has no timetags to reset"
        );
    }
}

#[test]
fn tpi_and_hw_beat_base_and_sc_everywhere() {
    for kernel in Kernel::ALL {
        let cycles: Vec<u64> = registry::global()
            .main_schemes()
            .iter()
            .map(|&s| {
                run_kernel(kernel, Scale::Test, &cfg(s))
                    .unwrap()
                    .sim
                    .total_cycles
            })
            .collect();
        let (base, sc, tpi, hw) = (cycles[0], cycles[1], cycles[2], cycles[3]);
        assert!(tpi < base, "{kernel}: TPI {tpi} vs BASE {base}");
        assert!(hw < base, "{kernel}: HW {hw} vs BASE {base}");
        assert!(tpi <= sc, "{kernel}: TPI {tpi} vs SC {sc}");
    }
}

#[test]
fn headline_tpi_comparable_to_hw() {
    // "the performance of the proposed HSCD scheme can be comparable to
    // that of a full-map hardware directory scheme"
    for kernel in Kernel::ALL {
        let tpi = run_kernel(kernel, Scale::Test, &cfg(SchemeId::TPI)).unwrap();
        let hw = run_kernel(kernel, Scale::Test, &cfg(SchemeId::FULL_MAP)).unwrap();
        let ratio = tpi.sim.total_cycles as f64 / hw.sim.total_cycles as f64;
        assert!(
            (0.3..=2.5).contains(&ratio),
            "{kernel}: TPI/HW = {ratio:.2} out of the comparable band"
        );
    }
}

#[test]
fn sc_bypasses_lose_intertask_locality_on_broadcast_tables() {
    // SPEC77's coefficient table: TPI keeps it cached, SC re-fetches it on
    // every single read.
    let tpi = run_kernel(Kernel::Spec77, Scale::Test, &cfg(SchemeId::TPI)).unwrap();
    let sc = run_kernel(Kernel::Spec77, Scale::Test, &cfg(SchemeId::SC)).unwrap();
    assert!(
        sc.sim.miss_rate() > 4.0 * tpi.sim.miss_rate(),
        "SC {:.3} vs TPI {:.3}",
        sc.sim.miss_rate(),
        tpi.sim.miss_rate()
    );
}

#[test]
fn trfd_write_traffic_dominates_under_tpi() {
    use tpi_net::TrafficClass;
    let tpi = run_kernel(Kernel::Trfd, Scale::Test, &cfg(SchemeId::TPI)).unwrap();
    let hw = run_kernel(Kernel::Trfd, Scale::Test, &cfg(SchemeId::FULL_MAP)).unwrap();
    assert!(
        tpi.sim.traffic.words(TrafficClass::Write) > 2 * hw.sim.traffic.words(TrafficClass::Write),
        "write-through TPI must emit far more write traffic on TRFD: {} vs {}",
        tpi.sim.traffic.words(TrafficClass::Write),
        hw.sim.traffic.words(TrafficClass::Write)
    );
}

#[test]
fn marking_summary_reaches_result() {
    let r = run_kernel(Kernel::Ocean, Scale::Test, &cfg(SchemeId::TPI)).unwrap();
    assert!(r.marking.shared_reads > 0);
    assert!(r.marking.marked > 0);
    assert_eq!(r.marking.marked + r.marking.plain, r.marking.shared_reads);
    assert!(r.trace.epochs > 0);
}
