//! Regression gate over the committed fuzz corpus.
//!
//! Every `.tpi` file under `tests/corpus/` is a minimized reproducer the
//! fuzzer minted against a deliberately *sabotaged* engine (the header
//! comments name the hook and the exact `tpi-fuzz` invocation). On
//! healthy engines the same kernels must pass the entire differential
//! predicate — lints, trace generation, the staleness oracle, freshness-
//! verified simulation under every registry scheme, miss accounting,
//! structural invariants, and cross-scheme agreement. A failure here
//! means a regression reached an engine, the compiler, or the oracle.

use std::sync::Arc;
use tpi_fuzz::{check_kernel, FuzzOptions};
use tpi_ir::parse_program;

fn corpus_files() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus must exist")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "tpi"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_present_and_annotated() {
    let files = corpus_files();
    assert!(
        files.len() >= 3,
        "expected at least three committed reproducers, found {}",
        files.len()
    );
    for path in files {
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.starts_with("! error[TPI902] fuzz-violation:"),
            "{} must open with its TPI902 provenance comment",
            path.display()
        );
        assert!(
            text.lines().any(|l| l.starts_with("! reproduce: tpi-fuzz")),
            "{} must record its reproduction command",
            path.display()
        );
    }
}

#[test]
fn corpus_reproducers_pass_on_healthy_engines() {
    let schemes = FuzzOptions::default().schemes;
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let program = Arc::new(
            parse_program(&text)
                .unwrap_or_else(|e| panic!("{} no longer parses: {e}", path.display())),
        );
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        // A fixed seed keeps the verdict reproducible; the exact value is
        // immaterial because healthy engines must be clean under any.
        let violations = check_kernel(&name, &program, 0xC0FFEE, &schemes);
        assert!(
            violations.is_empty(),
            "{} violates on healthy engines: {:?}",
            path.display(),
            violations
                .iter()
                .map(|v| v.diagnostic().human())
                .collect::<Vec<_>>()
        );
    }
}
