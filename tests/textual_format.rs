//! The textual program format: parse → mark → trace → simulate, end to
//! end, including the shipped sample programs.

use tpi::{run_program, ExperimentConfig};
use tpi_ir::parse_program;
use tpi_proto::{registry, SchemeId};

fn cfg(scheme: SchemeId) -> ExperimentConfig {
    ExperimentConfig::builder().scheme(scheme).build().unwrap()
}

#[test]
fn shipped_sample_programs_parse_and_run() {
    let dir = std::fs::read_dir("examples/programs").expect("programs dir");
    let mut count = 0;
    for entry in dir {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("tpi") {
            continue;
        }
        count += 1;
        let src = std::fs::read_to_string(&path).unwrap();
        let program = parse_program(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        for scheme in registry::global().main_schemes() {
            let r = run_program(&program, &cfg(scheme))
                .unwrap_or_else(|e| panic!("{} under {scheme}: {e}", path.display()));
            assert!(r.sim.total_cycles > 0);
        }
        // And the export/parse round trip holds for every shipped program.
        let exported = tpi_ir::program_to_source(&program);
        let p2 = parse_program(&exported).unwrap();
        assert_eq!(p2.num_assigns, program.num_assigns, "{}", path.display());
    }
    assert!(
        count >= 3,
        "expected the shipped sample programs, found {count}"
    );
}

#[test]
fn textual_and_builder_forms_agree() {
    // The same producer/consumer program, written both ways, must produce
    // identical simulation results.
    let text = parse_program(
        r"
shared A(256)
shared B(256)
proc main
  doall i = 0, 255
    A(i) = f[2]()
  end
  doall i = 0, 255
    B(i) = f[2](A(i))
  end
end
",
    )
    .expect("parses");

    let built = {
        let mut p = tpi_ir::ProgramBuilder::new();
        let a = p.shared("A", [256]);
        let b = p.shared("B", [256]);
        let main = p.proc("main", |f| {
            f.doall(0, 255, |i, f| f.store(a.at(tpi_ir::subs![i]), vec![], 2));
            f.doall(0, 255, |i, f| {
                f.store(b.at(tpi_ir::subs![i]), vec![a.at(tpi_ir::subs![i])], 2)
            });
        });
        p.finish(main).unwrap()
    };

    for scheme in [SchemeId::TPI, SchemeId::FULL_MAP] {
        let rt = run_program(&text, &cfg(scheme)).unwrap();
        let rb = run_program(&built, &cfg(scheme)).unwrap();
        assert_eq!(rt.sim.total_cycles, rb.sim.total_cycles, "{scheme}");
        assert_eq!(rt.sim.traffic, rb.sim.traffic, "{scheme}");
        assert_eq!(rt.marking, rb.marking, "{scheme}");
    }
}

#[test]
fn parse_errors_are_informative() {
    let cases = [
        ("shared A(0)\nproc main\n  compute[1]\nend\n", "extents"),
        (
            "shared A(4)\nproc main\n  doall i = 0\n  end\nend\n",
            "lo, hi",
        ),
        (
            "shared A(4)\nproc main\n  doall i = 0, 3\n",
            "missing `end`",
        ),
    ];
    for (src, needle) in cases {
        let e = parse_program(src).expect_err("must not parse");
        let msg = e.to_string();
        assert!(msg.to_lowercase().contains(needle), "`{src}` -> {msg}");
    }
}

#[test]
fn parsed_doacross_prefix_sum_is_correctly_ordered() {
    // The histogram sample ends with a post/wait prefix scan; under tight
    // tags and cyclic scheduling the shadow versions verify freshness.
    let src = std::fs::read_to_string("examples/programs/histogram.tpi").unwrap();
    let program = parse_program(&src).unwrap();
    let c = ExperimentConfig::builder()
        .scheme(SchemeId::TPI)
        .tag_bits(3)
        .policy(tpi_trace::SchedulePolicy::StaticCyclic)
        .build()
        .unwrap();
    run_program(&program, &c).expect("ordered and race-free");
}
