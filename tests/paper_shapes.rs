//! Shape-regression tests: the qualitative claims recorded in
//! EXPERIMENTS.md, pinned as assertions so refactors cannot silently bend
//! the reproduction's conclusions.
//!
//! The fast subset runs at test scale in the normal suite; the full
//! paper-scale sweep is `#[ignore]`d (run with `cargo test -- --ignored`,
//! ~1 minute in release).

use tpi::{run_kernel, ExperimentConfig};
use tpi_proto::storage::{full_map, tpi as tpi_storage, StorageParams};
use tpi_proto::{MissClass, SchemeId};
use tpi_workloads::{Kernel, Scale};

fn cfg(scheme: SchemeId) -> ExperimentConfig {
    ExperimentConfig::builder().scheme(scheme).build().unwrap()
}

#[test]
fn figure5_storage_claims() {
    // "4MB SRAM / 64.5GB DRAM" for the full map; "64MB SRAM only" for TPI.
    let p = StorageParams::paper_figure5();
    assert!((full_map(p).sram_mib() - 4.0).abs() < 0.05);
    assert!((full_map(p).dram_gib() - 64.5).abs() < 1.0);
    assert!((tpi_storage(p).sram_mib() - 64.0).abs() < 0.05);
    assert_eq!(tpi_storage(p).dram_bits, 0);
}

#[test]
fn headline_geomean_band_test_scale() {
    // EXPERIMENTS.md E7: TPI within a modest factor of HW in geometric
    // mean, SC and BASE far behind.
    let mut logs = [0.0f64; 3]; // BASE, SC, TPI (normalized to HW)
    for kernel in Kernel::ALL {
        let hw = run_kernel(kernel, Scale::Test, &cfg(SchemeId::FULL_MAP))
            .unwrap()
            .sim
            .total_cycles
            .max(1) as f64;
        for (i, s) in [SchemeId::BASE, SchemeId::SC, SchemeId::TPI]
            .into_iter()
            .enumerate()
        {
            let c = run_kernel(kernel, Scale::Test, &cfg(s))
                .unwrap()
                .sim
                .total_cycles as f64;
            logs[i] += (c / hw).ln();
        }
    }
    let n = Kernel::ALL.len() as f64;
    let (base, sc, tpi) = (
        (logs[0] / n).exp(),
        (logs[1] / n).exp(),
        (logs[2] / n).exp(),
    );
    assert!(
        tpi < 1.8,
        "TPI geomean {tpi:.2}x must stay comparable to HW"
    );
    assert!(
        sc > 2.0 * tpi,
        "SC geomean {sc:.2}x must trail TPI far behind"
    );
    assert!(
        base > 2.0 * tpi,
        "BASE geomean {base:.2}x must trail TPI far behind"
    );
}

#[test]
fn unnecessary_miss_mechanism_swap() {
    // E4: TPI's unnecessary misses are compiler conservatism, never false
    // sharing; HW's are false sharing, never conservatism.
    for kernel in Kernel::ALL {
        let t = run_kernel(kernel, Scale::Test, &cfg(SchemeId::TPI)).unwrap();
        assert_eq!(t.sim.agg.misses(MissClass::FalseSharing), 0, "{kernel}");
        let h = run_kernel(kernel, Scale::Test, &cfg(SchemeId::FULL_MAP)).unwrap();
        assert_eq!(h.sim.agg.misses(MissClass::Conservative), 0, "{kernel}");
    }
}

#[test]
#[ignore = "paper-scale shape sweep (~1 min in release); run with --ignored"]
fn paper_scale_shapes() {
    // E3/E7 at evaluation scale: the bands recorded in EXPERIMENTS.md.
    for kernel in Kernel::ALL {
        let hw = run_kernel(kernel, Scale::Paper, &cfg(SchemeId::FULL_MAP)).unwrap();
        let tpi = run_kernel(kernel, Scale::Paper, &cfg(SchemeId::TPI)).unwrap();
        let ratio = tpi.sim.total_cycles as f64 / hw.sim.total_cycles.max(1) as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "{kernel}: TPI/HW = {ratio:.2} out of the E7 band"
        );
        // E5 shape: TPI's average miss latency stays in a flat band around
        // the loaded two-hop fetch.
        let lat = tpi.sim.avg_miss_latency();
        assert!(
            (100.0..160.0).contains(&lat),
            "{kernel}: TPI avg miss latency {lat:.1} left the flat band"
        );
    }
    // E12: the coalescing buffer eliminates a large share of TRFD's write
    // traffic.
    use tpi_net::TrafficClass;
    let fifo = run_kernel(Kernel::Trfd, Scale::Paper, &cfg(SchemeId::TPI)).unwrap();
    let coal_cfg = ExperimentConfig::builder()
        .scheme(SchemeId::TPI)
        .wbuffer(tpi_cache::WriteBufferKind::Coalescing)
        .build()
        .unwrap();
    let coal = run_kernel(Kernel::Trfd, Scale::Paper, &coal_cfg).unwrap();
    let saved = 1.0
        - coal.sim.traffic.words(TrafficClass::Write) as f64
            / fifo.sim.traffic.words(TrafficClass::Write).max(1) as f64;
    assert!(
        saved > 0.4,
        "TRFD write-word elimination {saved:.2} below the E12 band"
    );
    // E8: tiny tags stay within a percent of 8-bit tags.
    let full = run_kernel(Kernel::Qcd2, Scale::Paper, &cfg(SchemeId::TPI))
        .unwrap()
        .sim
        .total_cycles;
    let tiny_cfg = ExperimentConfig::builder()
        .scheme(SchemeId::TPI)
        .tag_bits(2)
        .build()
        .unwrap();
    let tiny = run_kernel(Kernel::Qcd2, Scale::Paper, &tiny_cfg)
        .unwrap()
        .sim
        .total_cycles;
    assert!(
        (tiny as f64 / full as f64) < 1.05,
        "2-bit tags cost more than the E8 band allows"
    );
}
