//! Property-based soundness: random DOALL programs, every scheme, every
//! schedule.
//!
//! The generator produces arbitrary (but race-free by construction)
//! parallel programs: random epoch sequences, serial loops around them,
//! branches, owner-computes DOALL writes, shifted and opaque reads, and
//! serial epochs touching arbitrary elements. For every generated program
//! the real compiler computes Time-Read distances and the real engines
//! replay the trace; the TPI/SC engines `debug_assert` on every hit that
//! the observed data version is exactly what the execution requires, and
//! the directory engine's cross-invariants are checked after the run. Any
//! unsoundness anywhere in the stack fails these tests.

use tpi_compiler::{mark_program, CompilerOptions, OptLevel};
use tpi_ir::{subs, Cond, Program, ProgramBuilder};
use tpi_proto::{build_engine, DirectoryEngine, EngineConfig, SchemeId};
use tpi_sim::{run_trace, verify_accounting, SimOptions};
use tpi_testkit::prelude::*;
use tpi_trace::{generate_trace, SchedulePolicy, TraceOptions};

const N_ITER: i64 = 31; // DOALL range 0..=31
const ARR: u64 = 40; // array extent (>= N_ITER + max shift + 1)
const N_ARRAYS: usize = 3;

/// One read in a DOALL body.
#[derive(Debug, Clone)]
struct ReadSpec {
    array: usize,
    shift: i64,
    opaque: bool,
}

/// One epoch-to-be.
#[derive(Debug, Clone)]
enum SegSpec {
    /// `doall i: A_w[i] = f(reads...)` — owner-computes, race-free.
    Doall { write: usize, reads: Vec<ReadSpec> },
    /// Serial epoch touching fixed elements on processor 0.
    Serial { accesses: Vec<(usize, i64, bool)> },
}

#[derive(Debug, Clone)]
struct ProgSpec {
    head: Vec<SegSpec>,
    body: Vec<(SegSpec, Option<SegSpec>)>, // (item, Some(else) => branch)
    iters: i64,
    tail: Vec<SegSpec>,
}

fn read_spec() -> impl Strategy<Value = ReadSpec> {
    (0..N_ARRAYS, 0..5i64, prop::bool::weighted(0.15)).prop_map(|(array, shift, opaque)| ReadSpec {
        array,
        shift,
        opaque,
    })
}

fn seg_spec() -> impl Strategy<Value = SegSpec> {
    prop_oneof![
        4 => (0..N_ARRAYS, prop::collection::vec(read_spec(), 0..3))
            .prop_map(|(write, reads)| SegSpec::Doall { write, reads }),
        1 => prop::collection::vec((0..N_ARRAYS, 0..ARR as i64, any::<bool>()), 1..4)
            .prop_map(|accesses| SegSpec::Serial { accesses }),
    ]
}

fn prog_spec() -> impl Strategy<Value = ProgSpec> {
    (
        prop::collection::vec(seg_spec(), 0..2),
        prop::collection::vec((seg_spec(), prop::option::of(seg_spec())), 1..4),
        1..4i64,
        prop::collection::vec(seg_spec(), 0..2),
    )
        .prop_map(|(head, body, iters, tail)| ProgSpec {
            head,
            body,
            iters,
            tail,
        })
}

fn emit_seg(seg: &SegSpec, arrays: &[tpi_ir::ArrayHandle], f: &mut tpi_ir::BodyBuilder<'_>) {
    match seg {
        SegSpec::Doall { write, reads } => {
            // Race-freedom repairs: a read of the array this epoch writes
            // must target the owner's own element (shift 0, no opaque
            // indexing), otherwise iteration `i` could read what iteration
            // `i + shift` writes.
            let write = *write;
            let reads: Vec<ReadSpec> = reads
                .iter()
                .map(|r| {
                    if r.array == write {
                        ReadSpec {
                            array: r.array,
                            shift: 0,
                            opaque: false,
                        }
                    } else {
                        r.clone()
                    }
                })
                .collect();
            let arrays = arrays.to_vec();
            let opaques: Vec<_> = reads.iter().map(|r| r.opaque.then(|| f.opaque())).collect();
            f.doall(0, N_ITER, move |i, f| {
                let read_refs: Vec<_> = reads
                    .iter()
                    .zip(&opaques)
                    .map(|(r, o)| match o {
                        Some(op) => arrays[r.array].at(subs![*op]),
                        None => arrays[r.array].at(subs![i + r.shift]),
                    })
                    .collect();
                f.store(arrays[write].at(subs![i]), read_refs, 2);
            });
        }
        SegSpec::Serial { accesses } => {
            for &(a, idx, is_write) in accesses {
                if is_write {
                    f.store(arrays[a].at(subs![idx]), vec![], 1);
                } else {
                    f.load(vec![arrays[a].at(subs![idx])], 1);
                }
            }
        }
    }
}

fn build_program(spec: &ProgSpec) -> Program {
    let mut p = ProgramBuilder::new();
    let arrays: Vec<_> = (0..N_ARRAYS)
        .map(|k| p.shared(&format!("A{k}"), [ARR]))
        .collect();
    let main = p.proc("main", |f| {
        // Initialize every array so reads always have writers to find.
        for a in &arrays {
            let a = *a;
            f.doall(0, ARR as i64 - 1, move |i, f| {
                f.store(a.at(subs![i]), vec![], 1)
            });
        }
        for seg in &spec.head {
            emit_seg(seg, &arrays, f);
        }
        f.serial(0, spec.iters - 1, |t, f| {
            for (seg, alt) in &spec.body {
                match alt {
                    None => emit_seg(seg, &arrays, f),
                    Some(else_seg) => {
                        f.if_else(
                            Cond::EveryN {
                                var: t,
                                modulus: 2,
                                phase: 0,
                            },
                            |f| emit_seg(seg, &arrays, f),
                            |f| emit_seg(else_seg, &arrays, f),
                        );
                    }
                }
            }
        });
        for seg in &spec.tail {
            emit_seg(seg, &arrays, f);
        }
    });
    p.finish(main).expect("generated programs are well-formed")
}

fn exercise(program: &Program, level: OptLevel, policy: SchedulePolicy, tag_bits: u32) {
    let marking = mark_program(program, &CompilerOptions { level });
    let opts = TraceOptions {
        num_procs: 8,
        policy,
        seed: 0xFEED,
        check_races: true,
        geometry: tpi_mem::LineGeometry::new(4),
        rotate_serial: false,
    };
    let trace = generate_trace(program, &marking, &opts).expect("race-free by construction");
    for scheme in [SchemeId::TPI, SchemeId::SC] {
        let mut cfg = EngineConfig::paper_default(trace.layout.total_words());
        cfg.procs = 8;
        cfg.net = tpi_net::NetworkConfig::paper_default(8);
        cfg.tag_bits = tag_bits;
        cfg.cache.size_bytes = 4096; // tiny: force replacements too
        let mut engine = build_engine(scheme, cfg);
        // Shadow-version debug_asserts fire inside on any stale observation.
        let result = run_trace(&trace, engine.as_mut(), &SimOptions::default());
        verify_accounting(&result).expect("accounting identity");
    }
    // Directory engine with its cross-invariants checked post-run.
    let mut cfg = EngineConfig::paper_default(trace.layout.total_words());
    cfg.procs = 8;
    cfg.net = tpi_net::NetworkConfig::paper_default(8);
    cfg.cache.size_bytes = 4096;
    let mut dir = DirectoryEngine::full_map(cfg);
    let result = run_trace(&trace, &mut dir, &SimOptions::default());
    verify_accounting(&result).expect("accounting identity");
    dir.verify_invariants().expect("directory invariants");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn random_programs_are_sound_under_full_analysis(spec in prog_spec()) {
        let program = build_program(&spec);
        exercise(&program, OptLevel::Full, SchedulePolicy::StaticBlock, 8);
    }

    #[test]
    fn random_programs_are_sound_with_tight_tags_and_wild_schedules(spec in prog_spec()) {
        let program = build_program(&spec);
        exercise(
            &program,
            OptLevel::Full,
            SchedulePolicy::DynamicMigrating { chunk: 2, migrate_per_1024: 512 },
            2,
        );
        exercise(&program, OptLevel::Full, SchedulePolicy::StaticCyclic, 3);
    }

    #[test]
    fn random_programs_are_sound_under_weaker_analysis(spec in prog_spec()) {
        let program = build_program(&spec);
        exercise(&program, OptLevel::Intra, SchedulePolicy::Dynamic { chunk: 4 }, 4);
        exercise(&program, OptLevel::Naive, SchedulePolicy::StaticBlock, 8);
    }

    #[test]
    fn marking_is_monotone_in_analysis_power(spec in prog_spec()) {
        // A more powerful analysis never marks more reads stale.
        let program = build_program(&spec);
        let naive = mark_program(&program, &CompilerOptions { level: OptLevel::Naive }).summary();
        let intra = mark_program(&program, &CompilerOptions { level: OptLevel::Intra }).summary();
        let full = mark_program(&program, &CompilerOptions { level: OptLevel::Full }).summary();
        prop_assert!(full.marked <= intra.marked, "full {} intra {}", full.marked, intra.marked);
        prop_assert!(intra.marked <= naive.marked, "intra {} naive {}", intra.marked, naive.marked);
        prop_assert_eq!(naive.marked, naive.shared_reads);
    }

    #[test]
    fn textual_export_is_a_parse_fixed_point(spec in prog_spec()) {
        // program -> source -> program -> source must converge after one
        // round trip (names canonicalize; salts regenerate).
        let program = build_program(&spec);
        let src1 = tpi_ir::program_to_source(&program);
        let p2 = tpi_ir::parse_program(&src1)
            .unwrap_or_else(|e| panic!("exported source failed to parse: {e}\n{src1}"));
        prop_assert_eq!(p2.num_assigns, program.num_assigns);
        prop_assert_eq!(p2.arrays.len(), program.arrays.len());
        prop_assert_eq!(p2.procs.len(), program.procs.len());
        let src2 = tpi_ir::program_to_source(&p2);
        prop_assert_eq!(src1, src2);
        // And the re-parsed program is still sound to execute.
        let marking = mark_program(&p2, &CompilerOptions::default());
        let opts = TraceOptions { num_procs: 8, ..TraceOptions::default() };
        generate_trace(&p2, &marking, &opts).expect("round-tripped program is race-free");
    }

    #[test]
    fn traces_are_schedule_invariant_in_event_counts(spec in prog_spec()) {
        // Scheduling moves events between processors but never changes what
        // the program does.
        let program = build_program(&spec);
        let marking = mark_program(&program, &CompilerOptions::default());
        let mut counts = Vec::new();
        for policy in [
            SchedulePolicy::StaticBlock,
            SchedulePolicy::StaticCyclic,
            SchedulePolicy::Dynamic { chunk: 3 },
        ] {
            let opts = TraceOptions { policy, ..TraceOptions::default() };
            let t = generate_trace(&program, &marking, &opts).expect("race-free");
            counts.push((t.stats.reads, t.stats.writes, t.stats.epochs));
        }
        prop_assert_eq!(counts[0], counts[1]);
        prop_assert_eq!(counts[1], counts[2]);
    }
}
