//! Section 5 "threads with inter-thread communication": doacross-style
//! post/wait pipelining across DOALL iterations.

use tpi::{run_program, ExperimentConfig};
use tpi_ir::{subs, Cond, Program, ProgramBuilder};
use tpi_proto::{registry, SchemeId};

/// A forward wavefront: iteration `i` consumes iteration `i-1`'s value,
/// ordered by post/wait. Iteration 1 starts the chain without waiting.
fn wavefront(n: i64, work: u32) -> Program {
    let mut p = ProgramBuilder::new();
    let x = p.shared("X", [n as u64 + 1]);
    let ev = p.event();
    let main = p.proc("main", |f| {
        f.store(x.at(subs![0]), vec![], 1); // serial seed epoch
        f.doall(1, n, |i, f| {
            f.if_else(
                // True exactly when i == 1 (i ranges over 1..=n < modulus).
                Cond::EveryN {
                    var: i,
                    modulus: i64::MAX,
                    phase: 1,
                },
                |f| {
                    // Head of the chain: no predecessor within the epoch.
                    f.store(x.at(subs![i]), vec![], work);
                },
                |f| {
                    f.wait(ev, i - 1);
                    f.store(x.at(subs![i]), vec![x.at(subs![i - 1])], work);
                },
            );
            f.post(ev, i);
        });
    });
    p.finish(main).expect("wavefront is well-formed")
}

fn cfg(scheme: SchemeId) -> ExperimentConfig {
    ExperimentConfig::builder().scheme(scheme).build().unwrap()
}

#[test]
fn wavefront_runs_and_pipelines() {
    let prog = wavefront(256, 8);
    for scheme in registry::global().main_schemes() {
        let r = run_program(&prog, &cfg(scheme)).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert!(r.sim.total_cycles > 0, "{scheme}");
        assert!(r.trace.posts >= 256, "{scheme}: posts missing");
    }
}

#[test]
fn wavefront_is_serialized_by_the_dependence_chain() {
    // The chain forces ~n sequential steps: total time must grow linearly
    // with n even though the loop is "parallel".
    // Heavy per-link work makes the chain dominate the fixed costs.
    let short = run_program(&wavefront(64, 64), &cfg(SchemeId::TPI)).unwrap();
    let long = run_program(&wavefront(256, 64), &cfg(SchemeId::TPI)).unwrap();
    let ratio = long.sim.total_cycles as f64 / short.sim.total_cycles as f64;
    assert!(
        ratio > 2.5,
        "256-long chain must cost ~4x the 64-long chain, got {ratio:.2}x"
    );
    // And the chain bounds the total from below despite 16 processors.
    assert!(long.sim.total_cycles >= 256 * 64);
    assert!(long.sim.lock_wait_cycles > 0, "waits must actually block");
}

#[test]
fn unsynchronized_wavefront_is_a_race() {
    // The same loop without post/wait must be rejected by the checker.
    let mut p = ProgramBuilder::new();
    let x = p.shared("X", [257]);
    let main = p.proc("main", |f| {
        f.doall(1, 256, |i, f| {
            f.store(x.at(subs![i]), vec![x.at(subs![i - 1])], 4);
        });
    });
    let prog = p.finish(main).unwrap();
    assert!(run_program(&prog, &cfg(SchemeId::TPI)).is_err());
}

#[test]
fn wavefront_values_are_fresh_under_every_scheme() {
    // The shadow versions inside the engines verify each consumer observed
    // its producer's value; tight tags stress the tag machinery too.
    let prog = wavefront(128, 4);
    for scheme in registry::global().main_schemes() {
        let c = ExperimentConfig::builder()
            .scheme(scheme)
            .tag_bits(3)
            .build()
            .unwrap();
        run_program(&prog, &c).unwrap_or_else(|e| panic!("{scheme}: {e}"));
    }
}

#[test]
fn validator_rejects_sync_outside_doall() {
    use tpi_ir::ValidateError;
    let mut p = ProgramBuilder::new();
    let ev = p.event();
    let main = p.proc("main", |f| {
        f.serial(0, 3, |i, f| f.post(ev, i));
    });
    assert!(matches!(
        p.finish(main),
        Err(ValidateError::SyncOutsideDoall { .. })
    ));
    let mut p2 = ProgramBuilder::new();
    let a = p2.shared("A", [4]);
    let main2 = p2.proc("main", |f| {
        f.doall(0, 3, |i, f| {
            f.wait(tpi_ir::EventId(9), i);
            f.store(a.at(subs![i]), vec![], 1);
        });
    });
    assert!(matches!(
        p2.finish(main2),
        Err(ValidateError::UnknownEvent { .. })
    ));
}

#[test]
fn doacross_is_deterministic() {
    let prog = wavefront(512, 16);
    let a = run_program(&prog, &cfg(SchemeId::FULL_MAP)).unwrap();
    let b = run_program(&prog, &cfg(SchemeId::FULL_MAP)).unwrap();
    assert_eq!(a.sim.total_cycles, b.sim.total_cycles);
    // The chain bounds time from below: >= n dependent steps of `work`.
    assert!(a.sim.total_cycles >= 512 * 16);
}
