//! Property tests for the DOALL schedulers: every policy must produce an
//! exact partition of the iteration space, deterministically.

use tpi_testkit::prelude::*;
use tpi_trace::{assign, SchedulePolicy};

fn policies() -> impl Strategy<Value = SchedulePolicy> {
    prop_oneof![
        Just(SchedulePolicy::StaticBlock),
        Just(SchedulePolicy::StaticCyclic),
        (1u64..8).prop_map(|chunk| SchedulePolicy::Dynamic { chunk }),
        (1u64..8, 0u16..1024).prop_map(|(chunk, p)| SchedulePolicy::DynamicMigrating {
            chunk,
            migrate_per_1024: p
        }),
    ]
}

proptest! {
    #[test]
    fn every_policy_partitions_exactly(
        n in 0i64..200,
        procs in 1u32..33,
        policy in policies(),
        seed in any::<u64>(),
        epoch in any::<u64>(),
    ) {
        let values: Vec<i64> = (0..n).collect();
        let a = assign(&values, procs, policy, seed, epoch);
        let mut all: Vec<i64> = a.per_proc().iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, values, "{} is not a partition", policy);
        prop_assert_eq!(a.per_proc().len(), procs as usize);
    }

    #[test]
    fn assignment_is_deterministic(
        n in 0i64..100,
        procs in 1u32..17,
        policy in policies(),
        seed in any::<u64>(),
        epoch in any::<u64>(),
    ) {
        let values: Vec<i64> = (0..n).collect();
        let a = assign(&values, procs, policy, seed, epoch);
        let b = assign(&values, procs, policy, seed, epoch);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn per_proc_iteration_order_is_ascending_for_static(
        n in 0i64..200,
        procs in 1u32..17,
    ) {
        for policy in [SchedulePolicy::StaticBlock, SchedulePolicy::StaticCyclic] {
            let values: Vec<i64> = (0..n).collect();
            let a = assign(&values, procs, policy, 0, 0);
            for p in a.per_proc() {
                prop_assert!(p.windows(2).all(|w| w[0] < w[1]), "{policy}");
            }
        }
    }

    #[test]
    fn static_block_is_balanced(
        n in 1i64..300,
        procs in 1u32..17,
    ) {
        let values: Vec<i64> = (0..n).collect();
        let a = assign(&values, procs, SchedulePolicy::StaticBlock, 0, 0);
        let block = (n as usize).div_ceil(procs as usize);
        for p in a.per_proc() {
            prop_assert!(p.len() <= block, "block {} got {}", block, p.len());
        }
    }
}
