//! Execution-driven memory-event generation for the TPI coherence study.
//!
//! The paper evaluates its coherence schemes with execution-driven
//! simulation (Poulsen & Yew's tools): the compiler-marked benchmark is
//! *executed* and instrumented to emit memory events, which a timing
//! simulator then replays against a machine model. This crate is that front
//! half: an interpreter over the `tpi-ir` program representation that
//!
//! * schedules DOALL iterations over `P` logical processors under several
//!   policies (static block/cyclic, dynamic self-scheduling, and the task
//!   migration model of the paper's Section 5),
//! * numbers runtime epochs with exactly the compiler's segmentation,
//! * attaches the compiler's per-reference marking to every load,
//! * tracks a global per-word version counter for freshness checking, and
//! * verifies DOALL race freedom (the execution model's precondition).
//!
//! # Example
//!
//! ```
//! use tpi_compiler::{mark_program, CompilerOptions};
//! use tpi_ir::{ProgramBuilder, subs};
//! use tpi_trace::{generate_trace, TraceOptions};
//!
//! let mut p = ProgramBuilder::new();
//! let a = p.shared("A", [64]);
//! let main = p.proc("main", |f| {
//!     f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1));
//!     f.doall(0, 63, |i, f| f.load(vec![a.at(subs![i])], 1));
//! });
//! let prog = p.finish(main).expect("valid");
//! let marking = mark_program(&prog, &CompilerOptions::default());
//! let trace = generate_trace(&prog, &marking, &TraceOptions::default())?;
//! assert_eq!(trace.epochs.len(), 2);
//! # Ok::<(), tpi_trace::TraceError>(())
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod interp;
pub mod sched;
pub mod truth;

pub use event::{EpochEvents, EpochExecKind, Event, InterpHostProfile, Trace, TraceStats};
pub use interp::{generate_trace, TraceError, TraceOptions};
pub use sched::{assign, Assignment, SchedulePolicy};
pub use truth::{GroundTruth, Writer};
