//! The execution-driven interpreter: runs an IR program over `P` logical
//! processors and emits the per-epoch memory-event streams the timing
//! simulators consume.
//!
//! The interpreter uses the *same* epoch segmentation as the compiler
//! (`tpi_ir::epochs`), which is what makes compiler-computed Time-Read
//! distances meaningful at runtime. It also maintains a global per-word
//! version counter (attached to every event) and checks DOALL race freedom —
//! the paper's correctness precondition ("doall" iterations are independent
//! tasks).

use crate::event::{EpochEvents, EpochExecKind, Event, InterpHostProfile, Trace};
use crate::sched::{assign, SchedulePolicy};
use std::error::Error;
use std::fmt;
use std::time::Instant;
use tpi_compiler::Marking;
use tpi_ir::epochs::{EpochShape, Segment};
use tpi_ir::{ArrayRef, Env, Program, RefSite, Stmt, Subscript};
use tpi_mem::{Epoch, FastMap, LineGeometry, MemLayout, ProcId, ReadKind, Sharing, WordAddr};

/// Options controlling trace generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceOptions {
    /// Number of processors (the paper simulates 16).
    pub num_procs: u32,
    /// DOALL scheduling policy.
    pub policy: SchedulePolicy,
    /// Seed for dynamic scheduling decisions.
    pub seed: u64,
    /// Whether to verify DOALL race freedom (cheap; recommended).
    pub check_races: bool,
    /// Line geometry used to align array bases.
    pub geometry: LineGeometry,
    /// Rotate serial epochs across processors (epoch `k` runs on processor
    /// `k mod P`) instead of pinning them to processor 0. The compiler is
    /// already conservative about serial-epoch placement, so its marking
    /// is sound either way — this knob measures what that conservatism
    /// buys.
    pub rotate_serial: bool,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            num_procs: 16,
            policy: SchedulePolicy::StaticBlock,
            seed: 0xC0FF_EE00,
            check_races: true,
            geometry: LineGeometry::new(4),
            rotate_serial: false,
        }
    }
}

/// Trace generation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Two different DOALL iterations of one epoch conflicted on a word —
    /// the program is not a valid DOALL program.
    Race {
        /// Conflicting address.
        addr: WordAddr,
        /// Epoch in which the conflict occurred.
        epoch: Epoch,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Race { addr, epoch } => {
                write!(
                    f,
                    "DOALL race on {addr} in {epoch}: iterations are not independent"
                )
            }
        }
    }
}

impl Error for TraceError {}

/// Runs `program` under `marking` and returns its event trace.
///
/// # Errors
///
/// Returns [`TraceError::Race`] if race checking is enabled and two DOALL
/// iterations of one epoch conflict on a word.
pub fn generate_trace(
    program: &Program,
    marking: &Marking,
    opts: &TraceOptions,
) -> Result<Trace, TraceError> {
    let shape = EpochShape::of(program);
    let layout = MemLayout::new(program.arrays.clone(), opts.geometry);
    let mut interp = Interp {
        program,
        shape: &shape,
        marking,
        opts,
        layout: &layout,
        versions: FastMap::default(),
        races: FastMap::default(),
        posts: FastMap::default(),
        epochs: Vec::new(),
        error: None,
        host: InterpHostProfile::default(),
    };
    let segs = shape.segment_proc(program, program.entry);
    let mut env = Env::new();
    interp.exec_segments(&segs, &mut env);
    if let Some(e) = interp.error {
        return Err(e);
    }
    let stats = Trace::compute_stats(&interp.epochs);
    let host = interp.host;
    Ok(Trace {
        epochs: interp.epochs,
        layout,
        num_procs: opts.num_procs,
        stats,
        host,
    })
}

/// Merged lock context of all accesses to a word within one epoch.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
enum LockCtx {
    /// No access recorded yet.
    #[default]
    Empty,
    /// Every access so far was critical under this lock.
    Uniform(u32),
    /// Mixed contexts (non-critical, or different locks).
    Tainted,
}

impl LockCtx {
    fn merge(self, ctx: Option<u32>) -> LockCtx {
        match (self, ctx) {
            (LockCtx::Empty, Some(l)) => LockCtx::Uniform(l),
            (LockCtx::Uniform(a), Some(l)) if a == l => LockCtx::Uniform(a),
            _ => LockCtx::Tainted,
        }
    }
}

/// Per-epoch race bookkeeping for one word.
#[derive(Debug, Default, Clone, Copy)]
struct WordAccess {
    writer: Option<i64>,
    first_reader: Option<i64>,
    multi_reader: bool,
    ctx: LockCtx,
}

struct Interp<'a> {
    program: &'a Program,
    shape: &'a EpochShape,
    marking: &'a Marking,
    opts: &'a TraceOptions,
    layout: &'a MemLayout,
    versions: FastMap<u64, u64>,
    /// Per-epoch race table, hoisted here so its capacity is reused across
    /// epochs (cleared at the start of every DOALL epoch).
    races: FastMap<u64, WordAccess>,
    /// Per-epoch post table ((event, index) -> posting task), likewise
    /// hoisted and cleared per epoch.
    posts: FastMap<(u32, i64), i64>,
    epochs: Vec<EpochEvents>,
    error: Option<TraceError>,
    host: InterpHostProfile,
}

impl<'a> Interp<'a> {
    fn exec_segments(&mut self, segs: &[Segment<'a>], env: &mut Env) {
        for seg in segs {
            if self.error.is_some() {
                return;
            }
            match seg {
                Segment::Serial(stmts) => self.exec_serial_epoch(stmts, env),
                Segment::Doall(l) => self.exec_doall_epoch(l, env),
                Segment::SerialLoop { l, body } => {
                    let lo = l.lo.eval(env);
                    let hi = l.hi.eval(env);
                    let mut v = lo;
                    while v <= hi {
                        env.bind(l.var, v);
                        self.exec_segments(body, env);
                        v += l.step;
                        if self.error.is_some() {
                            break;
                        }
                    }
                    env.unbind(l.var);
                }
                Segment::Branch {
                    s,
                    then_seg,
                    else_seg,
                } => {
                    if s.cond.eval(env) {
                        self.exec_segments(then_seg, env);
                    } else {
                        self.exec_segments(else_seg, env);
                    }
                }
                Segment::Call(callee) => {
                    let body = &self.program.proc(*callee).body;
                    let segs = self.shape.segment(body);
                    let mut callee_env = Env::new();
                    self.exec_segments(&segs, &mut callee_env);
                }
            }
        }
    }

    fn exec_serial_epoch(&mut self, stmts: &[&'a Stmt], env: &mut Env) {
        let host_start = Instant::now();
        let epoch = Epoch(self.epochs.len() as u64);
        let mut per_proc: Vec<Vec<Event>> = vec![Vec::new(); self.opts.num_procs as usize];
        self.posts.clear();
        let serial_proc = if self.opts.rotate_serial {
            (epoch.0 % u64::from(self.opts.num_procs)) as u32
        } else {
            0
        };
        {
            let mut task = TaskCtx {
                interp_versions: &mut self.versions,
                layout: self.layout,
                program: self.program,
                marking: self.marking,
                num_procs: self.opts.num_procs,
                proc: ProcId(serial_proc),
                sink: &mut per_proc[serial_proc as usize],
                races: None,
                task_id: 0,
                race_found: None,
                critical: None,
                posts: &mut self.posts,
                waited: Vec::new(),
            };
            for s in stmts {
                task.exec_stmt(s, env);
            }
        }
        self.epochs.push(EpochEvents {
            epoch,
            kind: EpochExecKind::Serial,
            per_proc,
        });
        self.host.serial_nanos = self
            .host
            .serial_nanos
            .saturating_add(u64::try_from(host_start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }

    fn exec_doall_epoch(&mut self, l: &'a tpi_ir::Loop, env: &mut Env) {
        let host_start = Instant::now();
        let epoch = Epoch(self.epochs.len() as u64);
        let lo = l.lo.eval(env);
        let hi = l.hi.eval(env);
        let mut values = Vec::new();
        let mut v = lo;
        while v <= hi {
            values.push(v);
            v += l.step;
        }
        let assignment = assign(
            &values,
            self.opts.num_procs,
            self.opts.policy,
            self.opts.seed,
            epoch.0,
        );
        let mut per_proc: Vec<Vec<Event>> = vec![Vec::new(); self.opts.num_procs as usize];
        self.races.clear();
        self.posts.clear();
        // Iterations run in a merged order that respects each processor's
        // schedule while globally favouring the smallest iteration value:
        // for ascending per-processor schedules this is ascending iteration
        // order, which makes forward post/wait dependences (doacross)
        // functionally consistent.
        let procs = self.opts.num_procs as usize;
        let mut fronts = vec![0usize; procs];
        loop {
            let mut next: Option<usize> = None;
            for p in 0..procs {
                let q = assignment.iterations(ProcId(p as u32));
                if fronts[p] < q.len()
                    && next.is_none_or(|b: usize| {
                        q[fronts[p]] < assignment.iterations(ProcId(b as u32))[fronts[b]]
                    })
                {
                    next = Some(p);
                }
            }
            let Some(p) = next else { break };
            let iter = assignment.iterations(ProcId(p as u32))[fronts[p]];
            fronts[p] += 1;
            env.bind(l.var, iter);
            let mut task = TaskCtx {
                interp_versions: &mut self.versions,
                layout: self.layout,
                program: self.program,
                marking: self.marking,
                num_procs: self.opts.num_procs,
                proc: ProcId(p as u32),
                sink: &mut per_proc[p],
                races: self.opts.check_races.then_some(&mut self.races),
                task_id: iter,
                race_found: None,
                critical: None,
                posts: &mut self.posts,
                waited: Vec::new(),
            };
            for s in &l.body {
                task.exec_stmt(s, env);
            }
            if let Some(bad) = task.race_found {
                self.error = Some(TraceError::Race { addr: bad, epoch });
                env.unbind(l.var);
                return;
            }
        }
        env.unbind(l.var);
        self.epochs.push(EpochEvents {
            epoch,
            kind: EpochExecKind::Doall {
                iterations: values.len() as u64,
            },
            per_proc,
        });
        self.host.doall_nanos = self
            .host
            .doall_nanos
            .saturating_add(u64::try_from(host_start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
}

/// Execution context of one task (a serial epoch or one DOALL iteration).
struct TaskCtx<'a, 'b> {
    interp_versions: &'b mut FastMap<u64, u64>,
    layout: &'a MemLayout,
    program: &'a Program,
    marking: &'a Marking,
    num_procs: u32,
    proc: ProcId,
    sink: &'b mut Vec<Event>,
    races: Option<&'b mut FastMap<u64, WordAccess>>,
    task_id: i64,
    race_found: Option<WordAddr>,
    /// Lock currently held (inside a critical section).
    critical: Option<u32>,
    /// Posts performed so far this epoch: (event, index) -> posting task.
    posts: &'b mut FastMap<(u32, i64), i64>,
    /// (event, index) pairs this task has waited on so far.
    waited: Vec<(u32, i64)>,
}

impl<'a, 'b> TaskCtx<'a, 'b> {
    fn exec_stmt(&mut self, s: &'a Stmt, env: &mut Env) {
        match s {
            Stmt::Assign(a) => {
                for (idx, r) in a.reads.iter().enumerate() {
                    let site = RefSite {
                        stmt: a.id,
                        idx: idx as u32,
                    };
                    self.do_read(r, site, env);
                }
                if a.cost > 0 {
                    self.sink.push(Event::Compute(a.cost));
                }
                if let Some(w) = &a.write {
                    self.do_write(w, env);
                }
            }
            Stmt::Loop(l) => {
                let lo = l.lo.eval(env);
                let hi = l.hi.eval(env);
                let mut v = lo;
                while v <= hi {
                    env.bind(l.var, v);
                    for s in &l.body {
                        self.exec_stmt(s, env);
                    }
                    v += l.step;
                }
                env.unbind(l.var);
            }
            Stmt::If(i) => {
                let body = if i.cond.eval(env) {
                    &i.then_body
                } else {
                    &i.else_body
                };
                for s in body {
                    self.exec_stmt(s, env);
                }
            }
            Stmt::Call(p) => {
                // Validator guarantees calls only appear in serial context;
                // a serial-only callee executes inline in this epoch.
                let mut callee_env = Env::new();
                for s in &self.program.proc(*p).body {
                    self.exec_stmt(s, &mut callee_env);
                }
            }
            Stmt::Critical(c) => {
                self.sink.push(Event::AcquireLock(c.lock.0));
                let prev = self.critical.replace(c.lock.0);
                for s in &c.body {
                    self.exec_stmt(s, env);
                }
                self.critical = prev;
                self.sink.push(Event::ReleaseLock(c.lock.0));
            }
            Stmt::Post { event, index } => {
                let k = index.eval(env);
                self.posts.insert((event.0, k), self.task_id);
                self.sink.push(Event::PostEvent {
                    event: event.0,
                    index: k,
                });
            }
            Stmt::Wait { event, index } => {
                let k = index.eval(env);
                self.waited.push((event.0, k));
                self.sink.push(Event::WaitEvent {
                    event: event.0,
                    index: k,
                });
            }
            Stmt::Doall(_) => {
                unreachable!("segmentation guarantees no DOALL inside an epoch body")
            }
        }
    }

    fn addr_of(&self, r: &ArrayRef, env: &Env) -> (WordAddr, bool) {
        // addr_of runs once per memory reference — the interpreter's
        // innermost hot path — so subscripts are evaluated into a fixed
        // stack buffer instead of a fresh Vec per access. Ranks above the
        // buffer size (unheard of in the paper's kernels) fall back to heap.
        const MAX_RANK: usize = 8;
        let decl = self.program.array(r.array);
        let eval_sub = |(s, &extent): (&Subscript, &u64)| match s {
            Subscript::Affine(a) => a.eval(env),
            Subscript::Opaque(o) => o.eval(env, extent),
        };
        let mut stack = [0i64; MAX_RANK];
        let heap: Vec<i64>;
        let indices: &[i64] = if r.subs.len() <= MAX_RANK {
            let mut n = 0;
            for pair in r.subs.iter().zip(decl.dims()) {
                stack[n] = eval_sub(pair);
                n += 1;
            }
            &stack[..n]
        } else {
            heap = r.subs.iter().zip(decl.dims()).map(eval_sub).collect();
            &heap
        };
        let base = self.layout.addr(r.array, indices);
        match decl.sharing() {
            Sharing::Shared => (base, true),
            Sharing::Private => {
                // Each processor owns a disjoint replica region above the
                // shared segment.
                let span = self.layout.total_words();
                (
                    WordAddr(base.0 + span * (u64::from(self.proc.0) + 1)),
                    false,
                )
            }
        }
    }

    fn do_read(&mut self, r: &ArrayRef, site: RefSite, env: &Env) {
        let (addr, shared) = self.addr_of(r, env);
        if shared {
            self.track_race(addr, false);
        }
        let version = self.interp_versions.get(&addr.0).copied().unwrap_or(0);
        let kind = if !shared {
            ReadKind::Plain
        } else if self.critical.is_some() {
            ReadKind::Critical
        } else {
            self.marking.tpi_kind(site)
        };
        self.sink.push(Event::Read {
            addr,
            kind,
            version,
        });
    }

    fn do_write(&mut self, w: &ArrayRef, env: &Env) {
        let (addr, shared) = self.addr_of(w, env);
        if shared {
            self.track_race(addr, true);
        }
        let v = self.interp_versions.entry(addr.0).or_insert(0);
        *v += 1;
        let version = *v;
        if shared && self.critical.is_some() {
            self.sink.push(Event::CriticalWrite { addr, version });
        } else {
            self.sink.push(Event::Write { addr, version });
        }
    }

    fn track_race(&mut self, addr: WordAddr, is_write: bool) {
        let task = self.task_id;
        let _ = self.num_procs;
        let ctx = self.critical;
        if let Some(races) = self.races.as_deref_mut() {
            let e = races.entry(addr.0).or_default();
            e.ctx = e.ctx.merge(ctx);
            let conflict = if is_write {
                let w_conf = e.writer.is_some_and(|w| w != task);
                let r_conf = e.multi_reader || e.first_reader.is_some_and(|r| r != task);
                e.writer = Some(task);
                w_conf || r_conf
            } else {
                match e.first_reader {
                    None => e.first_reader = Some(task),
                    Some(r) if r != task => e.multi_reader = true,
                    _ => {}
                }
                e.writer.is_some_and(|w| w != task)
            };
            // Cross-task conflicts are permitted when every access to the
            // word is critical under one single lock, or when this task has
            // synchronized (waited on an event posted by) the prior
            // accessor — the doacross ordering of Section 5.
            let serialized = matches!(e.ctx, LockCtx::Uniform(_));
            let prior = if is_write {
                e.first_reader.or(e.writer)
            } else {
                e.writer
            };
            let ordered = prior.is_some_and(|other| {
                self.waited
                    .iter()
                    .any(|key| self.posts.get(key) == Some(&other))
            });
            if conflict && !serialized && !ordered && self.race_found.is_none() {
                self.race_found = Some(addr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_compiler::{mark_program, CompilerOptions};
    use tpi_ir::{subs, ProgramBuilder};

    fn trace_of(
        build: impl FnOnce(&mut ProgramBuilder) -> tpi_ir::ProcIdx,
        opts: &TraceOptions,
    ) -> Result<Trace, TraceError> {
        let mut p = ProgramBuilder::new();
        let main = build(&mut p);
        let prog = p.finish(main).expect("valid program");
        let marking = mark_program(&prog, &CompilerOptions::default());
        generate_trace(&prog, &marking, opts)
    }

    #[test]
    fn two_epoch_trace_shape() {
        let t = trace_of(
            |p| {
                let a = p.shared("A", [64]);
                p.proc("main", |f| {
                    f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 2));
                    f.doall(0, 63, |i, f| f.load(vec![a.at(subs![i])], 2));
                })
            },
            &TraceOptions::default(),
        )
        .unwrap();
        assert_eq!(t.epochs.len(), 2);
        assert_eq!(t.stats.writes, 64);
        assert_eq!(t.stats.reads, 64);
        assert_eq!(t.stats.marked_reads, 64);
        assert_eq!(t.stats.iterations, 128);
        // Static block on 16 procs: each proc has 4 iterations.
        assert_eq!(t.epochs[0].per_proc[0].len(), 4 * 2); // compute + write
    }

    #[test]
    fn versions_record_write_then_read() {
        let t = trace_of(
            |p| {
                let a = p.shared("A", [16]);
                p.proc("main", |f| {
                    f.doall(0, 15, |i, f| f.store(a.at(subs![i]), vec![], 1));
                    f.doall(0, 15, |i, f| f.load(vec![a.at(subs![i])], 1));
                })
            },
            &TraceOptions {
                num_procs: 4,
                ..TraceOptions::default()
            },
        )
        .unwrap();
        for ev in t.epochs[1].per_proc.iter().flatten() {
            if let Event::Read { version, .. } = ev {
                assert_eq!(*version, 1, "read must observe the first write");
            }
        }
    }

    #[test]
    fn race_detected_on_cross_iteration_conflict() {
        let err = trace_of(
            |p| {
                let a = p.shared("A", [64]);
                p.proc("main", |f| {
                    // Every iteration writes A(0): an output race.
                    f.doall(0, 63, |_i, f| f.store(a.at(subs![0]), vec![], 1));
                })
            },
            &TraceOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TraceError::Race { .. }));
        assert!(err.to_string().contains("race"));
    }

    #[test]
    fn read_write_race_detected() {
        let err = trace_of(
            |p| {
                let a = p.shared("A", [64]);
                p.proc("main", |f| {
                    // iteration i reads A(i+1) while iteration i+1 writes it.
                    f.doall(0, 62, |i, f| {
                        f.store(a.at(subs![i]), vec![a.at(subs![i + 1])], 1)
                    });
                })
            },
            &TraceOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TraceError::Race { .. }));
    }

    #[test]
    fn concurrent_reads_are_not_a_race() {
        let t = trace_of(
            |p| {
                let a = p.shared("A", [1]);
                let b = p.shared("B", [64]);
                p.proc("main", |f| {
                    f.store(a.at(subs![0]), vec![], 1);
                    // every iteration reads the same broadcast word: fine.
                    f.doall(0, 63, |i, f| {
                        f.store(b.at(subs![i]), vec![a.at(subs![0])], 1)
                    });
                })
            },
            &TraceOptions::default(),
        );
        assert!(t.is_ok());
    }

    #[test]
    fn private_arrays_are_replicated_per_proc() {
        let t = trace_of(
            |p| {
                let w = p.private("W", [16]);
                p.proc("main", |f| {
                    // Every iteration writes W(i%16)... use i directly over
                    // 16 iterations so all procs hit the same *logical*
                    // indices without racing (private data).
                    f.doall(0, 15, |i, f| f.store(w.at(subs![i]), vec![], 1));
                })
            },
            &TraceOptions {
                num_procs: 4,
                ..TraceOptions::default()
            },
        )
        .unwrap();
        // Collect write addresses per proc; the address sets must be
        // disjoint because each proc has its own replica region.
        let mut per_proc_addrs: Vec<Vec<u64>> = Vec::new();
        for evs in &t.epochs[0].per_proc {
            let addrs: Vec<u64> = evs
                .iter()
                .filter_map(|e| match e {
                    Event::Write { addr, .. } => Some(addr.0),
                    _ => None,
                })
                .collect();
            per_proc_addrs.push(addrs);
        }
        for i in 0..4 {
            for j in (i + 1)..4 {
                for a in &per_proc_addrs[i] {
                    assert!(
                        !per_proc_addrs[j].contains(a),
                        "private replicas must be disjoint"
                    );
                }
            }
        }
    }

    #[test]
    fn serial_epochs_run_on_proc_zero() {
        let t = trace_of(
            |p| {
                let a = p.shared("A", [8]);
                p.proc("main", |f| {
                    f.serial(0, 7, |i, f| f.store(a.at(subs![i]), vec![], 1));
                })
            },
            &TraceOptions::default(),
        )
        .unwrap();
        assert_eq!(t.epochs.len(), 1);
        assert!(!t.epochs[0].per_proc[0].is_empty());
        for p in 1..16 {
            assert!(t.epochs[0].per_proc[p].is_empty());
        }
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let opts = TraceOptions {
            policy: SchedulePolicy::Dynamic { chunk: 2 },
            ..TraceOptions::default()
        };
        let build = |p: &mut ProgramBuilder| {
            let a = p.shared("A", [128]);
            p.proc("main", |f| {
                f.doall(0, 127, |i, f| f.store(a.at(subs![i]), vec![], 1));
                f.doall(0, 127, |i, f| f.load(vec![a.at(subs![i])], 1));
            })
        };
        let t1 = trace_of(build, &opts).unwrap();
        let t2 = trace_of(build, &opts).unwrap();
        for (e1, e2) in t1.epochs.iter().zip(&t2.epochs) {
            assert_eq!(e1.per_proc, e2.per_proc);
        }
    }

    #[test]
    fn serial_loop_of_doalls_counts_epochs() {
        let t = trace_of(
            |p| {
                let a = p.shared("A", [32]);
                p.proc("main", |f| {
                    f.serial(0, 4, |_t, f| {
                        f.doall(0, 31, |i, f| {
                            f.store(a.at(subs![i]), vec![a.at(subs![i])], 1)
                        });
                    });
                })
            },
            &TraceOptions::default(),
        )
        .unwrap();
        assert_eq!(t.epochs.len(), 5);
        assert_eq!(t.epochs[4].epoch, Epoch(4));
    }
}
