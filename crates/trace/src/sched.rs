//! DOALL iteration scheduling policies.
//!
//! The paper's base execution model assigns the iterations of each parallel
//! loop to processors with compile-time-*unknown* scheduling; Section 5
//! generalizes to dynamic scheduling and task migration. The compiler never
//! sees the schedule, so every policy here must be safe under the same
//! marking — which is exactly what the cross-scheme property tests check.

use tpi_mem::ProcId;

/// How DOALL iterations are distributed over processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulePolicy {
    /// Contiguous blocks of `ceil(n/P)` iterations per processor (the
    /// common Polaris/static default; maximizes spatial locality).
    #[default]
    StaticBlock,
    /// Iteration `i` on processor `i mod P`.
    StaticCyclic,
    /// Self-scheduling with the given chunk size: chunks are claimed in a
    /// deterministic pseudo-random order (standing in for timing-dependent
    /// claiming, which the compiler cannot predict).
    Dynamic {
        /// Iterations per claimed chunk.
        chunk: u64,
    },
    /// Dynamic scheduling where tasks may additionally *migrate*: a claimed
    /// chunk can be split mid-way and finish on a different processor
    /// (Section 5's task-migration model).
    DynamicMigrating {
        /// Iterations per claimed chunk.
        chunk: u64,
        /// Probability (out of 1024) that a chunk migrates mid-way.
        migrate_per_1024: u16,
    },
}

impl std::fmt::Display for SchedulePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulePolicy::StaticBlock => write!(f, "static-block"),
            SchedulePolicy::StaticCyclic => write!(f, "static-cyclic"),
            SchedulePolicy::Dynamic { chunk } => write!(f, "dynamic(chunk={chunk})"),
            SchedulePolicy::DynamicMigrating {
                chunk,
                migrate_per_1024,
            } => {
                write!(
                    f,
                    "dynamic-migrating(chunk={chunk}, p={migrate_per_1024}/1024)"
                )
            }
        }
    }
}

/// The iteration lists each processor executes, in per-processor order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    per_proc: Vec<Vec<i64>>,
}

impl Assignment {
    /// Iterations of `proc`, in execution order.
    #[must_use]
    pub fn iterations(&self, proc: ProcId) -> &[i64] {
        &self.per_proc[proc.0 as usize]
    }

    /// Per-processor iteration lists.
    #[must_use]
    pub fn per_proc(&self) -> &[Vec<i64>] {
        &self.per_proc
    }

    /// Total iterations assigned.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.per_proc.iter().map(|v| v.len() as u64).sum()
    }
}

/// Computes the iteration assignment for one DOALL epoch.
///
/// `values` must be the loop's iteration values in ascending order; `seed`
/// and `epoch_salt` make dynamic policies deterministic per epoch.
///
/// # Examples
///
/// ```
/// use tpi_mem::ProcId;
/// use tpi_trace::{assign, SchedulePolicy};
///
/// let iters: Vec<i64> = (0..8).collect();
/// let a = assign(&iters, 4, SchedulePolicy::StaticBlock, 0, 0);
/// assert_eq!(a.iterations(ProcId(0)), &[0, 1]);
/// assert_eq!(a.total(), 8);
/// ```
///
/// # Panics
///
/// Panics if `procs` is zero.
#[must_use]
pub fn assign(
    values: &[i64],
    procs: u32,
    policy: SchedulePolicy,
    seed: u64,
    epoch_salt: u64,
) -> Assignment {
    assert!(procs > 0, "need at least one processor");
    let p = procs as usize;
    let mut per_proc: Vec<Vec<i64>> = vec![Vec::new(); p];
    let n = values.len();
    match policy {
        SchedulePolicy::StaticBlock => {
            let block = n.div_ceil(p).max(1);
            for (i, &v) in values.iter().enumerate() {
                per_proc[(i / block).min(p - 1)].push(v);
            }
        }
        SchedulePolicy::StaticCyclic => {
            for (i, &v) in values.iter().enumerate() {
                per_proc[i % p].push(v);
            }
        }
        SchedulePolicy::Dynamic { chunk } => {
            let chunk = chunk.max(1) as usize;
            let order = chunk_order(n.div_ceil(chunk), seed, epoch_salt);
            // Chunks are claimed round-robin by processors in a permuted
            // order: processor k executes the chunks at positions k, k+P, ...
            for (pos, &ci) in order.iter().enumerate() {
                let proc = pos % p;
                let lo = ci * chunk;
                let hi = (lo + chunk).min(n);
                per_proc[proc].extend_from_slice(&values[lo..hi]);
            }
        }
        SchedulePolicy::DynamicMigrating {
            chunk,
            migrate_per_1024,
        } => {
            let chunk = chunk.max(1) as usize;
            let order = chunk_order(n.div_ceil(chunk), seed, epoch_salt);
            for (pos, &ci) in order.iter().enumerate() {
                let proc = pos % p;
                let lo = ci * chunk;
                let hi = (lo + chunk).min(n);
                let h = mix(seed ^ epoch_salt, 0x6d1f_37c9 ^ ci as u64);
                if hi - lo >= 2 && (h % 1024) < u64::from(migrate_per_1024) {
                    // Split the chunk: the tail migrates to another proc.
                    let cut = lo + 1 + (mix(h, 17) as usize % (hi - lo - 1));
                    let dest = (proc + 1 + (mix(h, 23) as usize % p.max(2).saturating_sub(1)))
                        .rem_euclid(p);
                    per_proc[proc].extend_from_slice(&values[lo..cut]);
                    per_proc[dest].extend_from_slice(&values[cut..hi]);
                } else {
                    per_proc[proc].extend_from_slice(&values[lo..hi]);
                }
            }
        }
    }
    Assignment { per_proc }
}

/// Deterministic permutation of `0..chunks`.
fn chunk_order(chunks: usize, seed: u64, epoch_salt: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..chunks).collect();
    // Fisher-Yates with a SplitMix64 stream.
    let mut state = mix(seed, epoch_salt);
    for i in (1..chunks).rev() {
        state = mix(state, i as u64);
        let j = (state % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

fn mix(a: u64, b: u64) -> u64 {
    let mut h = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: i64) -> Vec<i64> {
        (0..n).collect()
    }

    fn assert_partition(a: &Assignment, values: &[i64]) {
        let mut all: Vec<i64> = a.per_proc().iter().flatten().copied().collect();
        all.sort_unstable();
        let mut want = values.to_vec();
        want.sort_unstable();
        assert_eq!(all, want, "every iteration exactly once");
    }

    #[test]
    fn static_block_is_contiguous() {
        let v = vals(16);
        let a = assign(&v, 4, SchedulePolicy::StaticBlock, 0, 0);
        assert_eq!(a.iterations(ProcId(0)), &[0, 1, 2, 3]);
        assert_eq!(a.iterations(ProcId(3)), &[12, 13, 14, 15]);
        assert_partition(&a, &v);
    }

    #[test]
    fn static_block_uneven() {
        let v = vals(10);
        let a = assign(&v, 4, SchedulePolicy::StaticBlock, 0, 0);
        assert_partition(&a, &v);
        assert_eq!(a.iterations(ProcId(0)).len(), 3);
        assert_eq!(a.iterations(ProcId(3)).len(), 1);
    }

    #[test]
    fn static_cyclic_interleaves() {
        let v = vals(8);
        let a = assign(&v, 4, SchedulePolicy::StaticCyclic, 0, 0);
        assert_eq!(a.iterations(ProcId(1)), &[1, 5]);
        assert_partition(&a, &v);
    }

    #[test]
    fn dynamic_is_deterministic_and_complete() {
        let v = vals(100);
        let a1 = assign(&v, 8, SchedulePolicy::Dynamic { chunk: 4 }, 7, 3);
        let a2 = assign(&v, 8, SchedulePolicy::Dynamic { chunk: 4 }, 7, 3);
        assert_eq!(a1, a2, "same seed/epoch -> same schedule");
        assert_partition(&a1, &v);
        let a3 = assign(&v, 8, SchedulePolicy::Dynamic { chunk: 4 }, 7, 4);
        assert_ne!(a1, a3, "different epoch -> different schedule (w.h.p.)");
    }

    #[test]
    fn migration_still_partitions() {
        let v = vals(128);
        let a = assign(
            &v,
            8,
            SchedulePolicy::DynamicMigrating {
                chunk: 8,
                migrate_per_1024: 512,
            },
            42,
            1,
        );
        assert_partition(&a, &v);
    }

    #[test]
    fn single_proc_gets_everything() {
        let v = vals(9);
        for pol in [
            SchedulePolicy::StaticBlock,
            SchedulePolicy::StaticCyclic,
            SchedulePolicy::Dynamic { chunk: 2 },
        ] {
            let a = assign(&v, 1, pol, 0, 0);
            assert_eq!(a.iterations(ProcId(0)).len(), 9);
        }
    }

    #[test]
    fn empty_iteration_space() {
        let a = assign(&[], 4, SchedulePolicy::StaticBlock, 0, 0);
        assert_eq!(a.total(), 0);
    }

    #[test]
    fn display_policies() {
        assert_eq!(SchedulePolicy::StaticBlock.to_string(), "static-block");
        assert!(SchedulePolicy::Dynamic { chunk: 4 }
            .to_string()
            .contains("chunk=4"));
    }
}
