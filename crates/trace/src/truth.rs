//! Per-word ground truth recovered from a trace: who wrote each version.
//!
//! Every [`Event::Write`]/[`Event::CriticalWrite`] in a trace carries the
//! global version the word holds *after* the store, and the epoch/processor
//! of the store are positional (which [`crate::EpochEvents`] and which `per_proc`
//! lane it sits in). Scanning the trace therefore recovers, for every
//! `(word, version)` pair, the runtime epoch and processor that produced
//! it — the "last writer" oracle the analysis layer replays markings
//! against. No extra instrumentation of the interpreter is required.

use crate::event::{Event, Trace};
use std::collections::HashMap;
use tpi_mem::{Epoch, ProcId, WordAddr};

/// Provenance of one written word version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writer {
    /// Runtime epoch the store executed in.
    pub epoch: Epoch,
    /// Processor that executed the store.
    pub proc: ProcId,
    /// Whether the store was a critical-section (uncached) write.
    pub critical: bool,
}

/// Ground truth for a whole trace: `(word, version) -> writer`.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    writers: HashMap<(WordAddr, u64), Writer>,
}

impl GroundTruth {
    /// Scans `trace` and records the writer of every word version.
    #[must_use]
    pub fn of_trace(trace: &Trace) -> Self {
        let mut writers = HashMap::new();
        for ee in &trace.epochs {
            for (p, events) in ee.per_proc.iter().enumerate() {
                let proc = ProcId(p as u32);
                for ev in events {
                    let (addr, version, critical) = match ev {
                        Event::Write { addr, version } => (*addr, *version, false),
                        Event::CriticalWrite { addr, version } => (*addr, *version, true),
                        _ => continue,
                    };
                    writers.insert(
                        (addr, version),
                        Writer {
                            epoch: ee.epoch,
                            proc,
                            critical,
                        },
                    );
                }
            }
        }
        GroundTruth { writers }
    }

    /// The writer of `(addr, version)`, if the trace contains that store.
    ///
    /// Version 0 (initial memory contents) has no writer.
    #[must_use]
    pub fn writer(&self, addr: WordAddr, version: u64) -> Option<Writer> {
        self.writers.get(&(addr, version)).copied()
    }

    /// Number of recorded stores.
    #[must_use]
    pub fn len(&self) -> usize {
        self.writers.len()
    }

    /// Whether the trace contained no shared stores.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.writers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EpochEvents, EpochExecKind};
    use tpi_mem::{ArrayDecl, LineGeometry, MemLayout, ReadKind, Sharing};

    #[test]
    fn recovers_writers_by_position() {
        let epochs = vec![
            EpochEvents {
                epoch: Epoch(0),
                kind: EpochExecKind::Doall { iterations: 2 },
                per_proc: vec![
                    vec![Event::Write {
                        addr: WordAddr(0),
                        version: 1,
                    }],
                    vec![Event::CriticalWrite {
                        addr: WordAddr(1),
                        version: 1,
                    }],
                ],
            },
            EpochEvents {
                epoch: Epoch(1),
                kind: EpochExecKind::Serial,
                per_proc: vec![
                    vec![
                        Event::Read {
                            addr: WordAddr(0),
                            kind: ReadKind::Plain,
                            version: 1,
                        },
                        Event::Write {
                            addr: WordAddr(0),
                            version: 2,
                        },
                    ],
                    vec![],
                ],
            },
        ];
        let stats = Trace::compute_stats(&epochs);
        let trace = Trace {
            epochs,
            layout: MemLayout::new(
                vec![ArrayDecl::new("A", vec![4], Sharing::Shared)],
                LineGeometry::new(4),
            ),
            num_procs: 2,
            stats,
            host: Default::default(),
        };
        let truth = GroundTruth::of_trace(&trace);
        assert_eq!(truth.len(), 3);
        assert!(!truth.is_empty());
        let w = truth.writer(WordAddr(0), 1).unwrap();
        assert_eq!(w.epoch, Epoch(0));
        assert_eq!(w.proc, ProcId(0));
        assert!(!w.critical);
        let c = truth.writer(WordAddr(1), 1).unwrap();
        assert_eq!(c.proc, ProcId(1));
        assert!(c.critical);
        let w2 = truth.writer(WordAddr(0), 2).unwrap();
        assert_eq!(w2.epoch, Epoch(1));
        assert!(truth.writer(WordAddr(0), 0).is_none(), "initial contents");
    }
}
