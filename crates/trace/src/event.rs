//! Memory-event streams produced by the execution-driven interpreter.
//!
//! The paper instruments compiler-marked benchmarks to emit the events the
//! timing simulator consumes: shared-memory reads (with their compiler
//! annotation), writes, local compute, and epoch boundaries. A [`Trace`] is
//! the reproduction's equivalent: per-epoch, per-processor event lists plus
//! the memory layout, with a global *version* attached to every access so
//! the coherence simulators can classify misses (necessary vs. caused by
//! compiler conservatism or false sharing) and verify value freshness.

use tpi_mem::{Epoch, MemLayout, ReadKind, WordAddr};

/// One instrumented event on one processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `cycles` of processor-local work (ALU, private data, control).
    Compute(u32),
    /// A shared-memory load.
    Read {
        /// Accessed word.
        addr: WordAddr,
        /// Compiler annotation (TPI view; SC derives `Bypass` from
        /// `is_marked`, directory schemes ignore it).
        kind: ReadKind,
        /// Global version of the word this read must observe (for
        /// freshness checking and miss classification).
        version: u64,
    },
    /// A shared-memory store.
    Write {
        /// Accessed word.
        addr: WordAddr,
        /// Global version of the word *after* this write.
        version: u64,
    },
    /// A store inside a lock-guarded critical section: must reach memory
    /// uncached under the HSCD schemes (Section 5).
    CriticalWrite {
        /// Accessed word.
        addr: WordAddr,
        /// Global version of the word *after* this write.
        version: u64,
    },
    /// Acquire a lock (blocking; serializes critical sections).
    AcquireLock(u32),
    /// Release a lock.
    ReleaseLock(u32),
    /// Signal element `index` of event `event` (doacross pipelining);
    /// fences this processor's earlier writes.
    PostEvent {
        /// Event variable.
        event: u32,
        /// Element index.
        index: i64,
    },
    /// Block until `PostEvent { event, index }` has executed.
    WaitEvent {
        /// Event variable.
        event: u32,
        /// Element index.
        index: i64,
    },
}

/// How an epoch executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochExecKind {
    /// Serial region: all events on one processor.
    Serial,
    /// Parallel loop with the given iteration count.
    Doall {
        /// Number of iterations executed.
        iterations: u64,
    },
}

/// All events of one epoch, split per processor.
#[derive(Debug, Clone)]
pub struct EpochEvents {
    /// Runtime epoch number.
    pub epoch: Epoch,
    /// Serial or parallel.
    pub kind: EpochExecKind,
    /// Event list per processor (index = `ProcId.0`).
    pub per_proc: Vec<Vec<Event>>,
}

impl EpochEvents {
    /// Total events in this epoch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.per_proc.iter().map(Vec::len).sum()
    }

    /// Whether no processor has any event.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.per_proc.iter().all(Vec::is_empty)
    }
}

/// Aggregate counts over a whole trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Shared reads.
    pub reads: u64,
    /// Shared reads carrying a stale-marking.
    pub marked_reads: u64,
    /// Shared writes.
    pub writes: u64,
    /// Total compute cycles.
    pub compute_cycles: u64,
    /// Number of epochs.
    pub epochs: u64,
    /// Number of DOALL epochs.
    pub parallel_epochs: u64,
    /// Total DOALL iterations executed.
    pub iterations: u64,
    /// Writes performed inside critical sections.
    pub critical_writes: u64,
    /// Lock acquisitions.
    pub lock_acquires: u64,
    /// Event posts (doacross synchronization).
    pub posts: u64,
}

/// Host-side (wall-clock) self-measurement of one interpreter run, fed
/// into the `tpi-prof` stage profiler by the experiment engine.
///
/// These describe the *interpreter program*, not the simulated machine,
/// and are excluded from every determinism comparison ([`TraceStats`]
/// stays `Eq`-comparable; this struct is not part of it).
#[derive(Debug, Clone, Copy, Default)]
pub struct InterpHostProfile {
    /// Host nanoseconds interpreting serial epochs.
    pub serial_nanos: u64,
    /// Host nanoseconds interpreting DOALL epochs (including scheduling).
    pub doall_nanos: u64,
}

/// A complete execution trace of one program run.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Per-epoch event lists.
    pub epochs: Vec<EpochEvents>,
    /// Array placement used to generate addresses.
    pub layout: MemLayout,
    /// Number of processors the trace was generated for.
    pub num_procs: u32,
    /// Aggregate counts.
    pub stats: TraceStats,
    /// Host-side wall-clock self-measurement of the interpreter (profiling
    /// only; never part of any determinism comparison).
    pub host: InterpHostProfile,
}

impl Trace {
    /// Recomputes aggregate statistics from the event lists.
    #[must_use]
    pub fn compute_stats(epochs: &[EpochEvents]) -> TraceStats {
        let mut s = TraceStats::default();
        for e in epochs {
            s.epochs += 1;
            if let EpochExecKind::Doall { iterations } = e.kind {
                s.parallel_epochs += 1;
                s.iterations += iterations;
            }
            for evs in &e.per_proc {
                for ev in evs {
                    match ev {
                        Event::Compute(c) => s.compute_cycles += u64::from(*c),
                        Event::Read { kind, .. } => {
                            s.reads += 1;
                            if kind.is_marked() {
                                s.marked_reads += 1;
                            }
                        }
                        Event::Write { .. } => s.writes += 1,
                        Event::CriticalWrite { .. } => {
                            s.writes += 1;
                            s.critical_writes += 1;
                        }
                        Event::AcquireLock(_) => s.lock_acquires += 1,
                        Event::ReleaseLock(_) => {}
                        Event::PostEvent { .. } => s.posts += 1,
                        Event::WaitEvent { .. } => {}
                    }
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_mem::{ArrayDecl, LineGeometry, Sharing};

    #[test]
    fn stats_roll_up() {
        let epochs = vec![
            EpochEvents {
                epoch: Epoch(0),
                kind: EpochExecKind::Serial,
                per_proc: vec![
                    vec![
                        Event::Compute(5),
                        Event::Write {
                            addr: WordAddr(0),
                            version: 1,
                        },
                    ],
                    vec![],
                ],
            },
            EpochEvents {
                epoch: Epoch(1),
                kind: EpochExecKind::Doall { iterations: 8 },
                per_proc: vec![
                    vec![Event::Read {
                        addr: WordAddr(0),
                        kind: ReadKind::TimeRead { distance: 1 },
                        version: 1,
                    }],
                    vec![Event::Read {
                        addr: WordAddr(1),
                        kind: ReadKind::Plain,
                        version: 0,
                    }],
                ],
            },
        ];
        let s = Trace::compute_stats(&epochs);
        assert_eq!(s.reads, 2);
        assert_eq!(s.marked_reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.compute_cycles, 5);
        assert_eq!(s.epochs, 2);
        assert_eq!(s.parallel_epochs, 1);
        assert_eq!(s.iterations, 8);
        assert_eq!(epochs[0].len(), 2);
        assert!(!epochs[0].is_empty());
        let _layout = MemLayout::new(
            vec![ArrayDecl::new("A", vec![4], Sharing::Shared)],
            LineGeometry::new(4),
        );
    }
}
