//! The cache array: set-associative storage with per-word valid bits,
//! per-word timetags, and per-line coherence state.
//!
//! One structure serves every scheme in the study:
//!
//! * the TPI scheme uses the per-word valid bits and timetags;
//! * the SC scheme uses the per-word valid bits only;
//! * the directory schemes use the per-line MSI state and dirty bits.
//!
//! The `versions` and `accessed` fields are *simulation shadow state*, not
//! modelled hardware: versions let the simulator decide whether a miss was
//! necessary (the word really changed) or an artifact of conservatism /
//! false sharing, and the accessed bits implement the Tullsen–Eggers
//! false-sharing classification the paper cites (\[34\]).

use crate::timetag::ResetEvent;
use tpi_mem::{LineAddr, LineGeometry, WordAddr};

/// Geometry and capacity of one processor's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total data capacity in bytes (the paper's default: 64 KB).
    pub size_bytes: usize,
    /// Associativity (1 = direct-mapped, the paper's default).
    pub assoc: u32,
    /// Line geometry (the paper's default: 4 words = 16 bytes).
    pub geometry: LineGeometry,
}

impl CacheConfig {
    /// The paper's default node cache: 64 KB direct-mapped, 4-word lines.
    #[must_use]
    pub fn paper_default() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            assoc: 1,
            geometry: LineGeometry::new(4),
        }
    }

    /// Total number of lines.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (capacity not a multiple
    /// of the line size, zero associativity, more than 64 words per line,
    /// or a non-power-of-two number of sets).
    #[must_use]
    pub fn num_lines(&self) -> usize {
        let lb = self.geometry.line_bytes();
        assert!(self.assoc >= 1, "associativity must be at least 1");
        assert!(
            self.geometry.words_per_line() <= 64,
            "at most 64 words per line (bitmask representation)"
        );
        assert_eq!(
            self.size_bytes % lb,
            0,
            "capacity must be a multiple of the line size"
        );
        let lines = self.size_bytes / lb;
        assert_eq!(
            lines % self.assoc as usize,
            0,
            "lines must divide evenly into sets"
        );
        lines
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        let sets = self.num_lines() / self.assoc as usize;
        assert!(
            sets.is_power_of_two(),
            "number of sets must be a power of two"
        );
        sets
    }
}

/// Per-line coherence state (used by the directory protocols; TPI and SC
/// keep every present line in `Shared`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Readable copy; memory is up to date (for write-back protocols).
    Shared,
    /// Sole writable copy; memory may be stale.
    Exclusive,
}

/// Per-word shadow metadata: the hardware timetag and the simulation-only
/// value version, kept side by side in one allocation because the TPI read
/// path always inspects both for the same word.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct WordMeta {
    tag: u16,
    version: u64,
    lease: u64,
}

/// One resident cache line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// Line address (full address stored in lieu of a tag).
    pub addr: LineAddr,
    /// Coherence state.
    pub state: LineState,
    valid: u64,
    dirty: u64,
    accessed: u64,
    meta: Vec<WordMeta>,
}

impl Line {
    /// A new line with no valid words.
    #[must_use]
    pub fn new(addr: LineAddr, words_per_line: u32) -> Self {
        Line {
            addr,
            state: LineState::Shared,
            valid: 0,
            dirty: 0,
            accessed: 0,
            meta: vec![WordMeta::default(); words_per_line as usize],
        }
    }

    fn bit(word: u32) -> u64 {
        1u64 << word
    }

    /// Whether `word` holds valid data.
    #[must_use]
    pub fn word_valid(&self, word: u32) -> bool {
        self.valid & Self::bit(word) != 0
    }

    /// Marks `word` valid or invalid.
    pub fn set_word_valid(&mut self, word: u32, valid: bool) {
        if valid {
            self.valid |= Self::bit(word);
        } else {
            self.valid &= !Self::bit(word);
        }
    }

    /// Whether any word is valid.
    #[must_use]
    pub fn any_valid(&self) -> bool {
        self.valid != 0
    }

    /// Whether every word of the line is valid.
    #[must_use]
    pub fn all_valid(&self, words_per_line: u32) -> bool {
        let full = if words_per_line == 64 {
            u64::MAX
        } else {
            Self::bit(words_per_line) - 1
        };
        self.valid & full == full
    }

    /// Whether `word` is dirty (write-back protocols).
    #[must_use]
    pub fn word_dirty(&self, word: u32) -> bool {
        self.dirty & Self::bit(word) != 0
    }

    /// Marks `word` dirty or clean.
    pub fn set_word_dirty(&mut self, word: u32, dirty: bool) {
        if dirty {
            self.dirty |= Self::bit(word);
        } else {
            self.dirty &= !Self::bit(word);
        }
    }

    /// Whether any word is dirty.
    #[must_use]
    pub fn any_dirty(&self) -> bool {
        self.dirty != 0
    }

    /// Clears all dirty bits.
    pub fn clean_all(&mut self) {
        self.dirty = 0;
    }

    /// Whether the local processor touched `word` since the line was filled
    /// (Tullsen–Eggers bookkeeping).
    #[must_use]
    pub fn word_accessed(&self, word: u32) -> bool {
        self.accessed & Self::bit(word) != 0
    }

    /// Records a local access to `word`.
    pub fn set_word_accessed(&mut self, word: u32) {
        self.accessed |= Self::bit(word);
    }

    /// Timetag of `word`.
    #[must_use]
    pub fn timetag(&self, word: u32) -> u16 {
        self.meta[word as usize].tag
    }

    /// Stamps `word` with `tag`.
    pub fn set_timetag(&mut self, word: u32, tag: u16) {
        self.meta[word as usize].tag = tag;
    }

    /// Shadow version of `word` (what value generation it holds).
    #[must_use]
    pub fn version(&self, word: u32) -> u64 {
        self.meta[word as usize].version
    }

    /// Sets the shadow version of `word`.
    pub fn set_version(&mut self, word: u32, version: u64) {
        self.meta[word as usize].version = version;
    }

    /// Read-lease expiry timestamp of `word` (Tardis-style timestamp
    /// coherence; unused by the other schemes).
    #[must_use]
    pub fn lease(&self, word: u32) -> u64 {
        self.meta[word as usize].lease
    }

    /// Sets the read-lease expiry timestamp of `word`.
    pub fn set_lease(&mut self, word: u32, lease: u64) {
        self.meta[word as usize].lease = lease;
    }

    /// Invalidates words whose timetag lies in `[lo, hi]`; returns how many
    /// valid words were dropped. Only valid words are visited (bit
    /// iteration over the valid mask), so lines that are mostly invalid
    /// cost next to nothing.
    pub fn invalidate_tag_range(&mut self, lo: u16, hi: u16) -> u32 {
        let mut dropped = 0;
        let mut remaining = self.valid;
        while remaining != 0 {
            let w = remaining.trailing_zeros();
            remaining &= remaining - 1;
            let t = self.meta[w as usize].tag;
            if t >= lo && t <= hi {
                self.valid &= !Self::bit(w);
                dropped += 1;
            }
        }
        dropped
    }

    /// Number of valid words.
    #[must_use]
    pub fn valid_count(&self) -> u32 {
        self.valid.count_ones()
    }
}

/// A set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `sets[s]` ordered most-recently-used first.
    sets: Vec<Vec<Line>>,
    /// `num_sets - 1`; set selection is a mask because the set count is a
    /// power of two (asserted at construction).
    set_mask: u64,
}

impl Cache {
    /// An empty cache of the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`CacheConfig::num_lines`]).
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = vec![Vec::new(); cfg.num_sets()];
        let set_mask = sets.len() as u64 - 1;
        Cache {
            cfg,
            sets,
            set_mask,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_of(&self, addr: LineAddr) -> usize {
        (addr.0 & self.set_mask) as usize
    }

    /// Word offset of `addr` within its line.
    #[must_use]
    pub fn word_of(&self, addr: WordAddr) -> u32 {
        self.cfg.geometry.word_in_line(addr)
    }

    /// Line address containing `addr`.
    #[must_use]
    pub fn line_of(&self, addr: WordAddr) -> LineAddr {
        self.cfg.geometry.line_of(addr)
    }

    /// The resident line at `addr`, if present (does not touch LRU).
    #[must_use]
    pub fn peek(&self, addr: LineAddr) -> Option<&Line> {
        let s = self.set_of(addr);
        self.sets[s].iter().find(|l| l.addr == addr)
    }

    /// Mutable access to the resident line at `addr`, moving it to MRU.
    ///
    /// The MRU rotation is skipped when the line is already at the front —
    /// for a direct-mapped cache (the paper's default) every hit takes that
    /// branch, making this a plain lookup on the simulator's hottest path.
    pub fn touch_mut(&mut self, addr: LineAddr) -> Option<&mut Line> {
        let s = self.set_of(addr);
        let set = &mut self.sets[s];
        let pos = set.iter().position(|l| l.addr == addr)?;
        if pos > 0 {
            set[..=pos].rotate_right(1);
        }
        Some(&mut set[0])
    }

    /// Inserts `line` (as MRU); returns the evicted victim if the set was
    /// full. A resident line with the same address is replaced (and
    /// returned).
    pub fn insert(&mut self, line: Line) -> Option<Line> {
        let s = self.set_of(line.addr);
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|l| l.addr == line.addr) {
            if pos > 0 {
                set[..=pos].rotate_right(1);
            }
            return Some(std::mem::replace(&mut set[0], line));
        }
        let victim = if set.len() >= self.cfg.assoc as usize {
            set.pop()
        } else {
            None
        };
        set.insert(0, line);
        victim
    }

    /// Removes and returns the line at `addr`.
    pub fn remove(&mut self, addr: LineAddr) -> Option<Line> {
        let s = self.set_of(addr);
        let pos = self.sets[s].iter().position(|l| l.addr == addr)?;
        Some(self.sets[s].remove(pos))
    }

    /// Applies a timetag reset event; returns the number of invalidated
    /// words. Lines left with no valid word are dropped.
    pub fn apply_reset(&mut self, ev: ResetEvent) -> u64 {
        let mut dropped = 0u64;
        for set in &mut self.sets {
            for line in set.iter_mut() {
                match ev {
                    ResetEvent::InvalidateTagRange { lo, hi } => {
                        dropped += u64::from(line.invalidate_tag_range(lo, hi));
                    }
                    ResetEvent::InvalidateAll => {
                        dropped += u64::from(line.valid_count());
                        line.valid = 0;
                    }
                }
            }
            set.retain(Line::any_valid);
        }
        dropped
    }

    /// Visits every resident line.
    pub fn for_each_line(&self, mut f: impl FnMut(&Line)) {
        for set in &self.sets {
            for line in set {
                f(line);
            }
        }
    }

    /// Visits every resident line mutably; lines for which `f` returns
    /// `false` are removed.
    pub fn retain_lines(&mut self, mut f: impl FnMut(&mut Line) -> bool) {
        for set in &mut self.sets {
            set.retain_mut(|l| f(l));
        }
    }

    /// Number of resident lines.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Drops every resident line.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(assoc: u32) -> CacheConfig {
        // 8 lines of 4 words.
        CacheConfig {
            size_bytes: 128,
            assoc,
            geometry: LineGeometry::new(4),
        }
    }

    #[test]
    fn config_arithmetic() {
        let c = CacheConfig::paper_default();
        assert_eq!(c.num_lines(), 4096);
        assert_eq!(c.num_sets(), 4096);
        assert_eq!(small_cfg(2).num_sets(), 4);
    }

    #[test]
    #[should_panic(expected = "multiple of the line size")]
    fn bad_capacity_rejected() {
        let c = CacheConfig {
            size_bytes: 100,
            assoc: 1,
            geometry: LineGeometry::new(4),
        };
        let _ = c.num_lines();
    }

    #[test]
    fn word_flags_roundtrip() {
        let mut l = Line::new(LineAddr(7), 4);
        assert!(!l.word_valid(2));
        l.set_word_valid(2, true);
        l.set_word_dirty(2, true);
        l.set_word_accessed(2);
        l.set_timetag(2, 9);
        l.set_version(2, 42);
        l.set_lease(2, 17);
        assert!(l.word_valid(2) && l.word_dirty(2) && l.word_accessed(2));
        assert_eq!(l.timetag(2), 9);
        assert_eq!(l.version(2), 42);
        assert_eq!(l.lease(2), 17);
        assert_eq!(l.lease(3), 0);
        assert!(l.any_valid() && l.any_dirty());
        assert!(!l.all_valid(4));
        for w in 0..4 {
            l.set_word_valid(w, true);
        }
        assert!(l.all_valid(4));
        l.set_word_dirty(2, false);
        assert!(!l.any_dirty());
        assert_eq!(l.valid_count(), 4);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = Cache::new(small_cfg(1)); // 8 sets
        let a = Line::new(LineAddr(3), 4);
        let b = Line::new(LineAddr(11), 4); // 11 % 8 == 3: conflicts with a
        assert!(c.insert(a).is_none());
        let victim = c.insert(b).expect("conflict must evict");
        assert_eq!(victim.addr, LineAddr(3));
        assert!(c.peek(LineAddr(3)).is_none());
        assert!(c.peek(LineAddr(11)).is_some());
    }

    #[test]
    fn lru_order_in_associative_set() {
        let mut c = Cache::new(small_cfg(2)); // 4 sets, 2-way
        c.insert(Line::new(LineAddr(0), 4));
        c.insert(Line::new(LineAddr(4), 4)); // same set 0
                                             // Touch 0 to make it MRU, then insert another conflicting line.
        assert!(c.touch_mut(LineAddr(0)).is_some());
        let victim = c.insert(Line::new(LineAddr(8), 4)).expect("evicts LRU");
        assert_eq!(victim.addr, LineAddr(4), "LRU is the untouched line");
    }

    #[test]
    fn reinsert_same_address_replaces() {
        let mut c = Cache::new(small_cfg(2));
        let mut l = Line::new(LineAddr(5), 4);
        l.set_word_valid(0, true);
        c.insert(l);
        let replaced = c
            .insert(Line::new(LineAddr(5), 4))
            .expect("old copy returned");
        assert!(replaced.word_valid(0));
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn reset_invalidates_only_tag_range() {
        let mut c = Cache::new(small_cfg(1));
        let mut l = Line::new(LineAddr(1), 4);
        for w in 0..4 {
            l.set_word_valid(w, true);
        }
        l.set_timetag(0, 1);
        l.set_timetag(1, 5);
        l.set_timetag(2, 6);
        l.set_timetag(3, 2);
        c.insert(l);
        let dropped = c.apply_reset(ResetEvent::InvalidateTagRange { lo: 4, hi: 7 });
        assert_eq!(dropped, 2);
        let line = c.peek(LineAddr(1)).unwrap();
        assert!(line.word_valid(0) && line.word_valid(3));
        assert!(!line.word_valid(1) && !line.word_valid(2));
        // Full flush drops the rest and removes the line entirely.
        let dropped = c.apply_reset(ResetEvent::InvalidateAll);
        assert_eq!(dropped, 2);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn remove_and_clear() {
        let mut c = Cache::new(small_cfg(1));
        c.insert(Line::new(LineAddr(2), 4));
        assert!(c.remove(LineAddr(2)).is_some());
        assert!(c.remove(LineAddr(2)).is_none());
        c.insert(Line::new(LineAddr(3), 4));
        c.clear();
        assert_eq!(c.resident_lines(), 0);
    }
}
