//! Write buffers for the write-through schemes.
//!
//! TPI and SC use write-through caches (a compiler-directed scheme must get
//! writes to memory by the next epoch boundary). The paper assumes an
//! infinite write buffer so writes never stall the processor, and notes
//! (\[9\], \[10\], the DEC Alpha 21164) that *organizing the write buffer as a
//! cache* removes redundant write-throughs to the same word — this is the
//! E12 ablation. At each epoch boundary the buffer must drain (weak
//! consistency synchronization point).

use std::collections::HashSet;
use tpi_mem::WordAddr;

/// Write policy of the HSCD caches.
///
/// The paper's default is write-through (memory must be current by each
/// epoch boundary). Chen \[10\] discusses the alternative the TPI scheme
/// could also use — *write-back at task boundaries* — noting it "increases
/// the latency of the invalidation, and results in more bursty traffic";
/// the E18 ablation measures exactly that trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WritePolicy {
    /// Every store is sent to memory through the write buffer.
    #[default]
    Through,
    /// Stores mark words dirty; all dirty words flush in a burst at each
    /// epoch boundary.
    BackAtBoundary,
}

impl std::fmt::Display for WritePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WritePolicy::Through => write!(f, "write-through"),
            WritePolicy::BackAtBoundary => write!(f, "write-back-at-boundary"),
        }
    }
}

/// Buffer organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteBufferKind {
    /// Plain FIFO: every write-through goes to memory.
    Fifo,
    /// Organized as a cache: repeated writes to the same word within one
    /// epoch coalesce into a single memory write (Alpha-21164-style).
    Coalescing,
}

impl std::fmt::Display for WriteBufferKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteBufferKind::Fifo => write!(f, "fifo"),
            WriteBufferKind::Coalescing => write!(f, "coalescing"),
        }
    }
}

/// Cumulative write-buffer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteBufferStats {
    /// Writes accepted from the processor.
    pub enqueued: u64,
    /// Word writes actually sent to memory.
    pub sent: u64,
    /// Writes absorbed by coalescing.
    pub coalesced: u64,
}

/// An infinite write buffer (per processor).
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    kind: WriteBufferKind,
    /// Outstanding distinct words (coalescing) or outstanding count (FIFO).
    pending_set: HashSet<u64>,
    pending_count: u64,
    stats: WriteBufferStats,
}

impl WriteBuffer {
    /// An empty buffer of the given kind.
    #[must_use]
    pub fn new(kind: WriteBufferKind) -> Self {
        WriteBuffer {
            kind,
            pending_set: HashSet::new(),
            pending_count: 0,
            stats: WriteBufferStats::default(),
        }
    }

    /// Buffer organization.
    #[must_use]
    pub fn kind(&self) -> WriteBufferKind {
        self.kind
    }

    /// Accepts a write-through; returns `true` if it will reach memory (not
    /// coalesced).
    pub fn push(&mut self, addr: WordAddr) -> bool {
        self.stats.enqueued += 1;
        match self.kind {
            WriteBufferKind::Fifo => {
                self.pending_count += 1;
                true
            }
            WriteBufferKind::Coalescing => {
                if self.pending_set.insert(addr.0) {
                    self.pending_count += 1;
                    true
                } else {
                    self.stats.coalesced += 1;
                    false
                }
            }
        }
    }

    /// Words currently waiting to reach memory.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.pending_count
    }

    /// Drains the buffer (epoch boundary); returns the number of word
    /// writes that go to memory.
    pub fn drain(&mut self) -> u64 {
        let n = self.pending_count;
        self.stats.sent += n;
        self.pending_count = 0;
        self.pending_set.clear();
        n
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> WriteBufferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_sends_everything() {
        let mut b = WriteBuffer::new(WriteBufferKind::Fifo);
        for _ in 0..3 {
            assert!(b.push(WordAddr(5)));
        }
        assert_eq!(b.pending(), 3);
        assert_eq!(b.drain(), 3);
        assert_eq!(
            b.stats(),
            WriteBufferStats {
                enqueued: 3,
                sent: 3,
                coalesced: 0
            }
        );
    }

    #[test]
    fn coalescing_absorbs_redundant_writes() {
        let mut b = WriteBuffer::new(WriteBufferKind::Coalescing);
        assert!(b.push(WordAddr(5)));
        assert!(!b.push(WordAddr(5)));
        assert!(b.push(WordAddr(6)));
        assert_eq!(b.pending(), 2);
        assert_eq!(b.drain(), 2);
        assert_eq!(
            b.stats(),
            WriteBufferStats {
                enqueued: 3,
                sent: 2,
                coalesced: 1
            }
        );
        // After a drain the same word writes through again.
        assert!(b.push(WordAddr(5)));
        assert_eq!(b.drain(), 1);
    }

    #[test]
    fn display_kinds() {
        assert_eq!(WriteBufferKind::Fifo.to_string(), "fifo");
        assert_eq!(WriteBufferKind::Coalescing.to_string(), "coalescing");
    }
}
