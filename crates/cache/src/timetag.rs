//! The hardware epoch counter and the two-phase invalidation clock.
//!
//! Each cache word carries a `b`-bit *timetag* — the (truncated) epoch
//! number at which the word was last written, fetched, or verified fresh.
//! Because the tag is finite the epoch counter wraps, and tag values must be
//! recycled without ambiguity. The paper proposes a **two-phase reset**: the
//! tag space is split into two halves ("phases"); whenever the counter
//! crosses into a new half, the hardware bulk-invalidates exactly the words
//! whose tags lie in the half being entered (those are one full cycle old).
//! This maintains the invariant that every surviving tag is less than `2^b`
//! epochs old, making the modular age computation exact:
//!
//! ```text
//! age(tag) = (counter - tag) mod 2^b      — true age, given the invariant
//! Time-Read(d) hits  ⇔  word valid ∧ age(tag) ≤ d
//! ```
//!
//! The simple alternative the paper rejects (flush the entire cache when
//! the counter wraps) is also provided for the reset-strategy ablation.

use tpi_mem::Epoch;

/// How tag values are recycled at counter wrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResetStrategy {
    /// The paper's scheme: invalidate only out-of-phase words at each
    /// half-space crossing.
    TwoPhase,
    /// Invalidate the whole cache when the counter wraps to zero.
    FullFlushOnWrap,
}

/// A reset event the cache must perform after an epoch advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResetEvent {
    /// Invalidate every valid word whose tag falls in `[lo, hi]`.
    InvalidateTagRange {
        /// First tag value of the entered phase.
        lo: u16,
        /// Last tag value of the entered phase.
        hi: u16,
    },
    /// Invalidate every valid word.
    InvalidateAll,
}

/// The per-processor hardware epoch counter with `bits`-wide timetags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagClock {
    bits: u32,
    strategy: ResetStrategy,
    epoch: u64,
}

impl TagClock {
    /// Creates a clock with `bits`-wide tags (the paper uses 4 or 8).
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 16`.
    #[must_use]
    pub fn new(bits: u32, strategy: ResetStrategy) -> Self {
        assert!(
            (2..=16).contains(&bits),
            "timetag width must be in 2..=16, got {bits}"
        );
        TagClock {
            bits,
            strategy,
            epoch: 0,
        }
    }

    /// Tag width in bits.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Number of distinct tag values.
    #[must_use]
    pub fn modulus(self) -> u64 {
        1 << self.bits
    }

    /// The reset strategy in use.
    #[must_use]
    pub fn strategy(self) -> ResetStrategy {
        self.strategy
    }

    /// Current (unbounded) epoch number.
    #[must_use]
    pub fn epoch(self) -> Epoch {
        Epoch(self.epoch)
    }

    /// Current truncated hardware tag.
    #[must_use]
    pub fn hw_tag(self) -> u16 {
        (self.epoch % self.modulus()) as u16
    }

    /// Advances to the next epoch; returns the reset the cache must apply,
    /// if the counter crossed a phase (or wrapped, for the flush strategy).
    pub fn advance(&mut self) -> Option<ResetEvent> {
        self.epoch += 1;
        let m = self.modulus();
        let half = (m / 2) as u16;
        let tag = self.hw_tag();
        match self.strategy {
            ResetStrategy::TwoPhase => {
                if tag == 0 {
                    Some(ResetEvent::InvalidateTagRange {
                        lo: 0,
                        hi: half - 1,
                    })
                } else if tag == half {
                    Some(ResetEvent::InvalidateTagRange {
                        lo: half,
                        hi: (m - 1) as u16,
                    })
                } else {
                    None
                }
            }
            ResetStrategy::FullFlushOnWrap => (tag == 0).then_some(ResetEvent::InvalidateAll),
        }
    }

    /// True age of a surviving tag, in epochs.
    ///
    /// Exact provided the reset discipline has been applied (see module
    /// docs); without resets the result is only the age modulo `2^bits`.
    #[must_use]
    pub fn age_of(self, tag: u16) -> u64 {
        let m = self.modulus();
        (self.epoch.wrapping_sub(u64::from(tag))) % m
    }

    /// Whether a word stamped `tag` satisfies a Time-Read with the given
    /// compiler distance.
    #[must_use]
    pub fn fresh_within(self, tag: u16, distance: u32) -> bool {
        self.age_of(tag) <= u64::from(distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_wrap_modulo() {
        let mut c = TagClock::new(4, ResetStrategy::TwoPhase);
        for _ in 0..20 {
            c.advance();
        }
        assert_eq!(c.epoch(), Epoch(20));
        assert_eq!(c.hw_tag(), 4);
        assert_eq!(c.modulus(), 16);
    }

    #[test]
    fn two_phase_resets_fire_at_half_crossings() {
        let mut c = TagClock::new(3, ResetStrategy::TwoPhase); // tags 0..8, half=4
        let mut events = Vec::new();
        for _ in 0..16 {
            if let Some(e) = c.advance() {
                events.push((c.epoch().0, e));
            }
        }
        assert_eq!(
            events,
            vec![
                (4, ResetEvent::InvalidateTagRange { lo: 4, hi: 7 }),
                (8, ResetEvent::InvalidateTagRange { lo: 0, hi: 3 }),
                (12, ResetEvent::InvalidateTagRange { lo: 4, hi: 7 }),
                (16, ResetEvent::InvalidateTagRange { lo: 0, hi: 3 }),
            ]
        );
    }

    #[test]
    fn full_flush_fires_at_wrap_only() {
        let mut c = TagClock::new(3, ResetStrategy::FullFlushOnWrap);
        let mut events = Vec::new();
        for _ in 0..17 {
            if let Some(e) = c.advance() {
                events.push((c.epoch().0, e));
            }
        }
        assert_eq!(
            events,
            vec![
                (8, ResetEvent::InvalidateAll),
                (16, ResetEvent::InvalidateAll)
            ]
        );
    }

    #[test]
    fn age_is_exact_within_invariant() {
        let mut c = TagClock::new(4, ResetStrategy::TwoPhase);
        for _ in 0..19 {
            c.advance();
        }
        // Current epoch 19, tag 3. A word stamped at epoch 17 has tag 1.
        assert_eq!(c.age_of(1), 2);
        assert!(c.fresh_within(1, 2));
        assert!(!c.fresh_within(1, 1));
        // A word stamped "now".
        assert_eq!(c.age_of(c.hw_tag()), 0);
        assert!(c.fresh_within(c.hw_tag(), 0));
    }

    #[test]
    fn reset_discipline_preserves_age_exactness() {
        // Simulate words stamped at every epoch; apply resets; verify that
        // every *surviving* word's modular age equals its true age.
        let bits = 4;
        let mut c = TagClock::new(bits, ResetStrategy::TwoPhase);
        let mut words: Vec<(u64, u16)> = Vec::new(); // (stamp_epoch, tag)
        for _ in 0..200 {
            words.push((c.epoch().0, c.hw_tag()));
            match c.advance() {
                Some(ResetEvent::InvalidateTagRange { lo, hi }) => {
                    words.retain(|&(_, t)| t < lo || t > hi);
                }
                Some(ResetEvent::InvalidateAll) => words.clear(),
                None => {}
            }
            for &(stamp, tag) in &words {
                let true_age = c.epoch().0 - stamp;
                assert_eq!(
                    c.age_of(tag),
                    true_age,
                    "tag age must be exact after resets"
                );
            }
        }
        assert!(!words.is_empty(), "some recent words must survive");
    }

    #[test]
    #[should_panic(expected = "timetag width")]
    fn rejects_one_bit_tags() {
        let _ = TagClock::new(1, ResetStrategy::TwoPhase);
    }
}
