//! Cache hardware models for the TPI coherence study.
//!
//! This crate models the node-cache hardware the paper's schemes require:
//!
//! * [`cache`] — a set-associative cache with per-word valid bits,
//!   per-word timetags, and per-line MSI state, serving TPI, SC, and the
//!   directory schemes alike;
//! * [`timetag`] — the hardware epoch counter with the paper's two-phase
//!   invalidation discipline for recycling finite timetags (and the
//!   flush-on-wrap alternative, for the reset ablation);
//! * [`wbuffer`] — infinite write buffers for the write-through schemes,
//!   plain or organized-as-a-cache (redundant-write elimination).
//!
//! # Example
//!
//! ```
//! use tpi_cache::{Cache, CacheConfig, Line, ResetStrategy, TagClock};
//! use tpi_mem::LineAddr;
//!
//! let mut clock = TagClock::new(8, ResetStrategy::TwoPhase);
//! let mut cache = Cache::new(CacheConfig::paper_default());
//! let mut line = Line::new(LineAddr(42), 4);
//! line.set_word_valid(0, true);
//! line.set_timetag(0, clock.hw_tag());
//! cache.insert(line);
//! clock.advance();
//! // Stamped one epoch ago: visible to a Time-Read of distance >= 1.
//! let l = cache.peek(LineAddr(42)).unwrap();
//! assert!(clock.fresh_within(l.timetag(0), 1));
//! assert!(!clock.fresh_within(l.timetag(0), 0));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod timetag;
pub mod wbuffer;

pub use cache::{Cache, CacheConfig, Line, LineState};
pub use timetag::{ResetEvent, ResetStrategy, TagClock};
pub use wbuffer::{WriteBuffer, WriteBufferKind, WriteBufferStats, WritePolicy};
