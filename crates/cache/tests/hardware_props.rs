//! Property tests for the cache hardware models.
//!
//! * The two-phase reset discipline must keep every surviving timetag's
//!   modular age *exact* for arbitrarily long epoch sequences — that is
//!   the invariant the whole TPI hit check rests on.
//! * The set-associative cache must agree with a naive reference model of
//!   true-LRU replacement.

use std::collections::HashMap;
use tpi_cache::{Cache, CacheConfig, Line, ResetEvent, ResetStrategy, TagClock};
use tpi_mem::{LineAddr, LineGeometry};
use tpi_testkit::prelude::*;

proptest! {
    #[test]
    fn reset_discipline_keeps_ages_exact(
        bits in 2u32..8,
        strategy_two_phase in any::<bool>(),
        epochs in 1usize..400,
        stamp_pattern in prop::collection::vec(any::<bool>(), 1..400),
    ) {
        let strategy = if strategy_two_phase {
            ResetStrategy::TwoPhase
        } else {
            ResetStrategy::FullFlushOnWrap
        };
        let mut clock = TagClock::new(bits, strategy);
        // (stamp_epoch, tag) of simulated surviving words.
        let mut words: Vec<(u64, u16)> = Vec::new();
        for e in 0..epochs {
            if stamp_pattern[e % stamp_pattern.len()] {
                words.push((clock.epoch().0, clock.hw_tag()));
            }
            match clock.advance() {
                Some(ResetEvent::InvalidateTagRange { lo, hi }) => {
                    words.retain(|&(_, t)| t < lo || t > hi);
                }
                Some(ResetEvent::InvalidateAll) => words.clear(),
                None => {}
            }
            for &(stamp, tag) in &words {
                let true_age = clock.epoch().0 - stamp;
                prop_assert_eq!(
                    clock.age_of(tag),
                    true_age,
                    "bits={} strategy={:?} epoch={}",
                    bits,
                    strategy,
                    clock.epoch().0
                );
                // fresh_within must agree with the true age.
                prop_assert_eq!(clock.fresh_within(tag, true_age as u32), true);
                if true_age > 0 {
                    prop_assert_eq!(clock.fresh_within(tag, (true_age - 1) as u32), false);
                }
            }
        }
    }

    #[test]
    fn cache_matches_reference_lru(
        assoc in 1u32..5,
        accesses in prop::collection::vec(0u64..64, 1..300),
    ) {
        // 16-line cache with `assoc`-way sets (assoc must divide 16).
        let assoc = [1u32, 2, 4][assoc as usize % 3];
        let cfg = CacheConfig {
            size_bytes: 16 * 16,
            assoc,
            geometry: LineGeometry::new(4),
        };
        let mut cache = Cache::new(cfg);
        let sets = cfg.num_sets() as u64;
        // Reference model: per set, a vector MRU-first.
        let mut reference: HashMap<u64, Vec<u64>> = HashMap::new();
        for &a in &accesses {
            let set = a % sets;
            let entry = reference.entry(set).or_default();
            // Reference LRU update.
            if let Some(pos) = entry.iter().position(|&x| x == a) {
                entry.remove(pos);
            } else if entry.len() >= assoc as usize {
                entry.pop();
            }
            entry.insert(0, a);
            // Model update: touch or insert.
            if cache.touch_mut(LineAddr(a)).is_none() {
                cache.insert(Line::new(LineAddr(a), 4));
            }
        }
        // Every line the reference holds must be resident, and vice versa.
        let mut expected = 0usize;
        for lines in reference.values() {
            for &l in lines {
                expected += 1;
                prop_assert!(cache.peek(LineAddr(l)).is_some(), "line {l} missing");
            }
        }
        prop_assert_eq!(cache.resident_lines(), expected);
    }

    #[test]
    fn reset_never_invalidates_current_epoch_words(
        bits in 2u32..6,
        epochs in 1u64..200,
    ) {
        // A word stamped in the epoch right before a crossing always
        // survives it (age 1 < half-range for every width >= 2).
        let mut clock = TagClock::new(bits, ResetStrategy::TwoPhase);
        for _ in 0..epochs {
            let tag = clock.hw_tag();
            if let Some(ResetEvent::InvalidateTagRange { lo, hi }) = clock.advance() {
                prop_assert!(
                    tag < lo || tag > hi,
                    "freshly stamped tag {tag} would be dropped by [{lo},{hi}]"
                );
            }
        }
    }
}
