//! The static lint pass suite over `tpi-ir` programs and the compiler's
//! epoch flow graph.
//!
//! Each pass owns one stable diagnostic [`Code`]:
//!
//! * `TPI001 unreachable-epoch` — constant-false branch arms and
//!   constant-empty loops whose bodies can never execute.
//! * `TPI002 doall-write-write-conflict` — a static race detector: two
//!   writes in one DOALL epoch whose regular sections may intersect
//!   without being provably same-iteration.
//! * `TPI003 degenerate-section` — references the section analysis had to
//!   over-approximate (opaque subscripts, whole-array sections).
//! * `TPI004 distance-saturation` — Time-Read distances at or beyond the
//!   timetag range, which the hardware can never verify as hits.
//! * `TPI005 dead-shared-array` — shared arrays never read (or never
//!   accessed at all).
//!
//! Passes are registered in a [`PassRegistry`]; [`lint_program`] is the
//! one-call convenience that builds the epoch flow graph and marking and
//! runs every registered pass.

use crate::diag::{Code, Diagnostic, Severity};
use std::collections::HashSet;
use tpi_compiler::epochflow::{same_iteration_only, DimShape, EpochFlowGraph, EpochKind};
use tpi_compiler::{mark_program, CompilerOptions, Marking, OptLevel};
use tpi_ir::{Cond, Program, Stmt, VarRanges};
use tpi_mem::{ArrayId, Sharing};

/// Everything a lint pass may look at.
pub struct LintContext<'a> {
    /// The program under analysis.
    pub program: &'a Program,
    /// The interprocedural epoch flow graph of `program`.
    pub graph: &'a EpochFlowGraph,
    /// The compiler's marking (for marking-dependent passes).
    pub marking: &'a Marking,
    /// Timetag width the hardware would run with (for `TPI004`).
    pub tag_bits: u32,
}

/// One static analysis pass.
pub trait LintPass {
    /// The stable code this pass emits.
    fn code(&self) -> Code;
    /// Runs the pass, appending findings to `out`.
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

/// An ordered collection of lint passes.
pub struct PassRegistry {
    passes: Vec<Box<dyn LintPass>>,
}

impl Default for PassRegistry {
    fn default() -> Self {
        PassRegistry::with_default_passes()
    }
}

impl PassRegistry {
    /// An empty registry.
    #[must_use]
    pub fn empty() -> Self {
        PassRegistry { passes: Vec::new() }
    }

    /// The registry holding every built-in pass, `TPI001`–`TPI005`.
    #[must_use]
    pub fn with_default_passes() -> Self {
        let mut r = PassRegistry::empty();
        r.register(Box::new(UnreachableEpoch));
        r.register(Box::new(DoallWriteWriteConflict));
        r.register(Box::new(DegenerateSection));
        r.register(Box::new(DistanceSaturation));
        r.register(Box::new(DeadSharedArray));
        r
    }

    /// Adds a pass (runs after the already-registered ones).
    pub fn register(&mut self, pass: Box<dyn LintPass>) {
        self.passes.push(pass);
    }

    /// The codes of the registered passes, in run order.
    #[must_use]
    pub fn codes(&self) -> Vec<Code> {
        self.passes.iter().map(|p| p.code()).collect()
    }

    /// Runs every pass over `cx`, in registration order.
    #[must_use]
    pub fn run(&self, cx: &LintContext<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for pass in &self.passes {
            pass.run(cx, &mut out);
        }
        out
    }
}

/// Knobs for the one-call [`lint_program`] entry point.
#[derive(Debug, Clone, Copy)]
pub struct LintOptions {
    /// Compiler optimization level the marking is computed at.
    pub level: OptLevel,
    /// Timetag width for the `TPI004` saturation check.
    pub tag_bits: u32,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            level: OptLevel::Full,
            tag_bits: 8,
        }
    }
}

/// Builds the epoch flow graph and marking for `program` and runs every
/// default pass.
#[must_use]
pub fn lint_program(program: &Program, options: &LintOptions) -> Vec<Diagnostic> {
    let graph = EpochFlowGraph::of_program(program);
    let marking = mark_program(
        program,
        &CompilerOptions {
            level: options.level,
        },
    );
    let cx = LintContext {
        program,
        graph: &graph,
        marking: &marking,
        tag_bits: options.tag_bits,
    };
    PassRegistry::with_default_passes().run(&cx)
}

/// `TPI001`: epochs under constant-false conditions or inside
/// constant-empty loops can never execute.
pub struct UnreachableEpoch;

impl LintPass for UnreachableEpoch {
    fn code(&self) -> Code {
        Code::Tpi001
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for proc in &cx.program.procs {
            walk_unreachable(&proc.body, &proc.name, out);
        }
    }
}

fn walk_unreachable(stmts: &[Stmt], proc: &str, out: &mut Vec<Diagnostic>) {
    for s in stmts {
        match s {
            Stmt::If(i) => {
                match i.cond {
                    Cond::Never => report_unreachable(&i.then_body, proc, "then", out),
                    Cond::Always => report_unreachable(&i.else_body, proc, "else", out),
                    _ => {}
                }
                walk_unreachable(&i.then_body, proc, out);
                walk_unreachable(&i.else_body, proc, out);
            }
            Stmt::Loop(l) | Stmt::Doall(l) => {
                if constant_empty(l) && !l.body.is_empty() {
                    let arm = if matches!(s, Stmt::Doall(_)) {
                        "doall"
                    } else {
                        "loop"
                    };
                    report_unreachable(&l.body, proc, arm, out);
                }
                walk_unreachable(&l.body, proc, out);
            }
            Stmt::Critical(c) => walk_unreachable(&c.body, proc, out),
            _ => {}
        }
    }
}

fn constant_empty(l: &tpi_ir::Loop) -> bool {
    let ranges = VarRanges::new();
    match (ranges.range_of(&l.lo), ranges.range_of(&l.hi)) {
        (Some(lo), Some(hi)) => {
            // Constant bounds only (point ranges under no bindings).
            lo.lo == lo.hi
                && hi.lo == hi.hi
                && (if l.step > 0 {
                    lo.lo > hi.lo
                } else {
                    lo.lo < hi.lo
                })
        }
        _ => false,
    }
}

fn report_unreachable(body: &[Stmt], proc: &str, arm: &str, out: &mut Vec<Diagnostic>) {
    if body.is_empty() {
        return;
    }
    let parallel = body.iter().any(Stmt::syntactically_contains_doall);
    let mut d = Diagnostic::new(
        Code::Tpi001,
        Severity::Warning,
        format!("code in this {arm} can never execute"),
    )
    .with("proc", proc)
    .with("contains_doall", parallel);
    if let Some(id) = first_assign_id(body) {
        d = d.with("first_stmt", id.0);
    }
    out.push(d);
}

fn first_assign_id(stmts: &[Stmt]) -> Option<tpi_ir::StmtId> {
    for s in stmts {
        match s {
            Stmt::Assign(a) => return Some(a.id),
            Stmt::Loop(l) | Stmt::Doall(l) => {
                if let Some(id) = first_assign_id(&l.body) {
                    return Some(id);
                }
            }
            Stmt::If(i) => {
                if let Some(id) =
                    first_assign_id(&i.then_body).or_else(|| first_assign_id(&i.else_body))
                {
                    return Some(id);
                }
            }
            Stmt::Critical(c) => {
                if let Some(id) = first_assign_id(&c.body) {
                    return Some(id);
                }
            }
            _ => {}
        }
    }
    None
}

/// `TPI002`: static write-write race detection inside DOALL epochs.
///
/// Two writes to the same array in one DOALL epoch conflict when their
/// sections may intersect and the intersection is not provably confined
/// to a single iteration. Lock-guarded (critical) writes are serialized
/// by the lock and skipped; epochs containing post/wait synchronization
/// are skipped too (event ordering, which this pass cannot see, may
/// serialize them).
pub struct DoallWriteWriteConflict;

impl LintPass for DoallWriteWriteConflict {
    fn code(&self) -> Code {
        Code::Tpi002
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let mut seen: HashSet<(usize, usize, usize)> = HashSet::new();
        for (ni, node) in cx.graph.nodes().iter().enumerate() {
            if !matches!(node.kind, EpochKind::Doall(_)) || node.has_sync {
                continue;
            }
            for (i, w1) in node.writes.iter().enumerate() {
                if w1.critical {
                    continue;
                }
                for (j, w2) in node.writes.iter().enumerate().skip(i) {
                    if w2.critical || w1.array != w2.array {
                        continue;
                    }
                    if !w1.section.may_intersect(&w2.section) {
                        continue;
                    }
                    if same_iteration_only(&w1.shape, &w2.shape) {
                        continue;
                    }
                    if !seen.insert((ni, i, j)) {
                        continue;
                    }
                    let name = cx.program.array(w1.array).name();
                    out.push(
                        Diagnostic::new(
                            Code::Tpi002,
                            Severity::Error,
                            if i == j {
                                format!("different iterations of a DOALL may write the same element of {name}")
                            } else {
                                format!("two writes to {name} in one DOALL epoch may collide across iterations")
                            },
                        )
                        .with("array", name)
                        .with("epoch_node", ni),
                    );
                }
            }
        }
    }
}

/// `TPI003`: references whose section summary lost precision — an opaque
/// (non-affine) subscript, or an affine one with an unbounded variable —
/// so the analysis falls back to whole-dimension sections. Sound but
/// imprecise: such reads can never be proven covered or conflict-free.
///
/// A precise section that merely *spans* the array (a DOALL sweeping its
/// full range) is not flagged; only genuine over-approximation is.
pub struct DegenerateSection;

impl LintPass for DegenerateSection {
    fn code(&self) -> Code {
        Code::Tpi003
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        for node in cx.graph.nodes() {
            for read in &node.reads {
                if !seen.insert((read.site.stmt.0, read.site.idx)) {
                    continue;
                }
                let decl = cx.program.array(read.array);
                let opaque = read.shape.iter().any(|s| matches!(s, DimShape::Opaque));
                let unbounded = read.shape.iter().any(|s| {
                    matches!(
                        s,
                        DimShape::Affine {
                            rest_range: None,
                            ..
                        }
                    )
                });
                if !(opaque || unbounded) {
                    continue;
                }
                let why = if opaque {
                    "opaque subscript"
                } else {
                    "unbounded subscript variable"
                };
                out.push(
                    Diagnostic::new(
                        Code::Tpi003,
                        Severity::Warning,
                        format!("read of {} over-approximated: {why}", decl.name()),
                    )
                    .with("array", decl.name())
                    .with("stmt", read.site.stmt.0)
                    .with("read_idx", read.site.idx),
                );
            }
        }
    }
}

/// `TPI004`: Time-Read distances the timetag hardware cannot represent.
///
/// With `b` tag bits the hardware distinguishes ages `0..2^b - 1`; a
/// marked distance `d >= 2^b` can never admit a verified hit (the
/// two-phase reset invalidates words before they reach that age), so the
/// Time-Read degenerates to an always-miss — sound, but the marking
/// precision is wasted.
pub struct DistanceSaturation;

impl LintPass for DistanceSaturation {
    fn code(&self) -> Code {
        Code::Tpi004
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let limit = 1u64 << cx.tag_bits;
        let mut sites: Vec<_> = cx
            .marking
            .sites()
            .filter(|(_, d)| d.stale && u64::from(d.distance) >= limit)
            .collect();
        sites.sort_by_key(|(s, _)| (s.stmt.0, s.idx));
        for (site, d) in sites {
            out.push(
                Diagnostic::new(
                    Code::Tpi004,
                    Severity::Warning,
                    format!(
                        "Time-Read distance {} saturates the {}-bit timetag range",
                        d.distance, cx.tag_bits
                    ),
                )
                .with("stmt", site.stmt.0)
                .with("read_idx", site.idx)
                .with("distance", d.distance)
                .with("tag_bits", cx.tag_bits),
            );
        }
    }
}

/// `TPI005`: shared arrays that are never read — either dead stores
/// (written, never consumed) or entirely unused declarations.
pub struct DeadSharedArray;

impl LintPass for DeadSharedArray {
    fn code(&self) -> Code {
        Code::Tpi005
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let mut read: HashSet<ArrayId> = HashSet::new();
        let mut written: HashSet<ArrayId> = HashSet::new();
        cx.program.for_each_assign(|_, a| {
            for r in &a.reads {
                read.insert(r.array);
            }
            if let Some(w) = &a.write {
                written.insert(w.array);
            }
        });
        for (i, decl) in cx.program.arrays.iter().enumerate() {
            let id = ArrayId(i as u32);
            if decl.sharing() != Sharing::Shared || read.contains(&id) {
                continue;
            }
            let message = if written.contains(&id) {
                format!("shared array {} is written but never read", decl.name())
            } else {
                format!("shared array {} is never accessed", decl.name())
            };
            out.push(
                Diagnostic::new(Code::Tpi005, Severity::Warning, message)
                    .with("array", decl.name())
                    .with("written", written.contains(&id)),
            );
        }
    }
}
