//! Differential oracle runs: replay kernels across compiler optimization
//! levels and assert the aggressive levels introduce no violations.
//!
//! All pipeline work goes through [`Runner::prepare`], so programs,
//! markings, and traces are memoized and shared with any simulation grid
//! using the same runner — an oracle sweep over a kernel never
//! re-interprets a trace a simulation already produced.

use crate::oracle::{check_trace, OracleMode, OracleReport};
use tpi::proto::{build_engine, SchemeId};
use tpi::runner::{PreparedCell, ProgramSource, RunSpec};
use tpi::sim::run_trace;
use tpi::{catch_cell_panic, ExperimentConfig, Runner};
use tpi_compiler::OptLevel;
use tpi_trace::TraceError;
use tpi_workloads::{Kernel, Scale};

/// Every optimization level, weakest first.
pub const ALL_LEVELS: [OptLevel; 3] = [OptLevel::Naive, OptLevel::Intra, OptLevel::Full];

/// Oracle verdicts for one program × optimization level.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Program label (kernel or custom name).
    pub label: String,
    /// Compiler optimization level replayed.
    pub level: OptLevel,
    /// Reports in the order of the requested modes.
    pub reports: Vec<OracleReport>,
}

impl CellReport {
    /// Total violations across all replayed modes.
    #[must_use]
    pub fn violations(&self) -> usize {
        self.reports.iter().map(|r| r.violations.len()).sum()
    }
}

/// What a differential sweep should replay.
#[derive(Debug, Clone)]
pub struct DifferentialOptions {
    /// Base configuration (processor count, schedule, seed, …).
    pub base: ExperimentConfig,
    /// Optimization levels to replay (default: all three).
    pub levels: Vec<OptLevel>,
    /// Oracle modes to replay per level (default: TPI and SC).
    pub modes: Vec<OracleMode>,
}

impl Default for DifferentialOptions {
    fn default() -> Self {
        DifferentialOptions {
            base: ExperimentConfig::paper(),
            levels: ALL_LEVELS.to_vec(),
            modes: vec![OracleMode::Tpi, OracleMode::Sc],
        }
    }
}

/// Replays `sources` under every requested level and mode, going through
/// `runner` so all artifacts are memoized and built in parallel.
///
/// Results are ordered source-major, then by level in request order.
///
/// # Errors
///
/// Returns [`TraceError`] if any program races under its schedule.
pub fn check_sources(
    runner: &Runner,
    sources: &[ProgramSource],
    options: &DifferentialOptions,
) -> Result<Vec<CellReport>, TraceError> {
    let mut cells = Vec::new();
    for source in sources {
        for &level in &options.levels {
            let mut config = options.base;
            config.opt_level = level;
            cells.push(RunSpec {
                source: source.clone(),
                config,
            });
        }
    }
    let prepared = runner.prepare(&cells)?;
    Ok(prepared
        .iter()
        .map(|cell| oracle_cell(cell, &options.modes))
        .collect())
}

/// Replays every Perfect Club kernel at `scale`; the convenience form of
/// [`check_sources`] behind `tpi-lint --all-kernels`.
///
/// # Errors
///
/// Returns [`TraceError`] if any kernel races under the configured
/// schedule (they never do at the shipped scales).
pub fn check_all_kernels(
    runner: &Runner,
    scale: Scale,
    options: &DifferentialOptions,
) -> Result<Vec<CellReport>, TraceError> {
    let sources: Vec<ProgramSource> = Kernel::ALL
        .into_iter()
        .map(|k| ProgramSource::Kernel(k, scale))
        .collect();
    check_sources(runner, &sources, options)
}

/// Runs the oracle over one prepared cell in every requested mode.
#[must_use]
pub fn oracle_cell(cell: &PreparedCell, modes: &[OracleMode]) -> CellReport {
    CellReport {
        label: cell.spec.source.label().to_string(),
        level: cell.spec.config.opt_level,
        reports: modes
            .iter()
            .map(|&mode| check_trace(cell.trace.as_ref(), mode))
            .collect(),
    }
}

/// Total violations across a whole sweep.
#[must_use]
pub fn total_violations(reports: &[CellReport]) -> usize {
    reports.iter().map(CellReport::violations).sum()
}

/// One freshness-sweep verdict: a program × optimization level × scheme
/// simulated end to end with `verify_freshness` forced on.
#[derive(Debug, Clone)]
pub struct FreshnessReport {
    /// Program label (kernel or custom name).
    pub label: String,
    /// Compiler optimization level simulated.
    pub level: OptLevel,
    /// Coherence scheme simulated.
    pub scheme: SchemeId,
    /// The engine's staleness panic, if any hit observed stale data.
    pub violation: Option<String>,
}

impl FreshnessReport {
    /// True if the run completed without observing stale data.
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.violation.is_none()
    }
}

/// Executable staleness check for schemes the marking-replay oracle cannot
/// model — protocols that ignore compiler marks and enforce coherence on
/// their own (Tardis leases, the hybrid update/invalidate protocol).
///
/// Every `source × level × scheme` cell is simulated with
/// `verify_freshness` forced on, so a cache hit returning a stale word
/// panics inside the engine; the panic is fenced into a reported
/// violation instead of killing the sweep. Preparation goes through
/// `runner`, so traces are shared with any marking-replay sweep over the
/// same cells.
///
/// Results are ordered source-major, then by level, then by scheme in
/// request order.
///
/// # Errors
///
/// Returns [`TraceError`] if any program races under its schedule.
pub fn check_freshness(
    runner: &Runner,
    sources: &[ProgramSource],
    schemes: &[SchemeId],
    options: &DifferentialOptions,
) -> Result<Vec<FreshnessReport>, TraceError> {
    let mut cells = Vec::new();
    for source in sources {
        for &level in &options.levels {
            let mut config = options.base;
            config.opt_level = level;
            config.verify_freshness = true;
            cells.push(RunSpec {
                source: source.clone(),
                config,
            });
        }
    }
    let prepared = runner.prepare(&cells)?;
    let mut out = Vec::new();
    for cell in &prepared {
        for &scheme in schemes {
            let cfg = cell.spec.config;
            let trace = cell.trace.as_ref();
            let violation = catch_cell_panic(|| {
                let mut engine =
                    build_engine(scheme, cfg.engine_config(trace.layout.total_words()));
                run_trace(trace, engine.as_mut(), &cfg.sim_options()).total_cycles
            })
            .err();
            out.push(FreshnessReport {
                label: cell.spec.source.label().to_string(),
                level: cfg.opt_level,
                scheme,
                violation,
            });
        }
    }
    Ok(out)
}

/// Total violations across a freshness sweep.
#[must_use]
pub fn total_freshness_violations(reports: &[FreshnessReport]) -> usize {
    reports.iter().filter(|r| r.violation.is_some()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_kernel_all_levels_is_sound_and_memoized() {
        let runner = Runner::new();
        let sources = [ProgramSource::Kernel(Kernel::Flo52, Scale::Test)];
        let reports = check_sources(&runner, &sources, &DifferentialOptions::default()).unwrap();
        assert_eq!(reports.len(), ALL_LEVELS.len());
        assert_eq!(total_violations(&reports), 0);
        // Naive marks everything, full marks least: precision improves.
        let naive = &reports[0].reports[0];
        let full = &reports[2].reports[0];
        assert!(naive.stats.marked_reads >= full.stats.marked_reads);
        // One program build, three markings, three traces — all cached.
        let stats = runner.stats();
        assert_eq!(stats.programs_built, 1);
        assert_eq!(stats.markings_built, 3);
        assert_eq!(stats.traces_built, 3);

        // A second sweep over the same cells is answered from the cache.
        let again = check_sources(&runner, &sources, &DifferentialOptions::default()).unwrap();
        assert_eq!(total_violations(&again), 0);
        let stats = runner.stats();
        assert_eq!(stats.traces_built, 3, "oracle replays reuse traces");
        assert!(stats.trace_hits >= 3);
    }

    #[test]
    fn mark_ignoring_schemes_stay_fresh_across_levels() {
        let runner = Runner::new();
        let sources: Vec<ProgramSource> = Kernel::ALL
            .into_iter()
            .map(|k| ProgramSource::Kernel(k, Scale::Test))
            .collect();
        let schemes = [SchemeId::TARDIS, SchemeId::HYBRID];
        let reports =
            check_freshness(&runner, &sources, &schemes, &DifferentialOptions::default()).unwrap();
        assert_eq!(
            reports.len(),
            sources.len() * ALL_LEVELS.len() * schemes.len()
        );
        assert_eq!(total_freshness_violations(&reports), 0);
        for r in &reports {
            assert!(r.is_sound(), "{} {} {}", r.label, r.level, r.scheme);
        }
    }
}
