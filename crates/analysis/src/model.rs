//! `tpi-model`: exhaustive interleaving-level model checking of the
//! coherence engines.
//!
//! The rest of this crate checks the *compiler's* side of the soundness
//! contract (the marking admits no stale read). This module checks the
//! *hardware's* side: for tiny bounded configurations (2–3 processors,
//! 1–4 shared words, 2–4 epochs) it drives the real [`tpi::proto`]
//! engines — every scheme in the registry — through **every**
//! interleaving of per-processor access sequences, and after every
//! single step verifies
//!
//! * **freshness** — the engines' own `verify_freshness` assertion
//!   (a read served a version other than the one the ground-truth log
//!   requires panics; the panic is caught and reported),
//! * **accounting** — every read is a hit or a classified miss
//!   ([`tpi::EngineStepper::check_accounting`]), and
//! * **scheme invariants** — whatever structural properties the scheme
//!   registered via [`Scheme::model_invariants`] (directory entries
//!   cover cached lines, timetag ages respect the phase discipline,
//!   Tardis leases are justified, …).
//!
//! # Exploration
//!
//! Engines are deliberately not `Clone`, so the search is *stateless*
//! (in the VeriSoft sense): every prefix is re-executed from a fresh
//! [`EngineStepper`]. Two reductions keep the bounded state space small:
//!
//! * **visited-state hashing** — a node is identified by the engine
//!   fingerprint plus the program position and the sleep set; revisits
//!   are pruned (hash compaction: only a 64-bit collision is unsound);
//! * **sleep sets** — after exploring transition `t` at a node, `t` is
//!   kept asleep in the subtrees of its *independent* siblings, killing
//!   the commuted half of each diamond. Two accesses are independent
//!   when they come from different processors **and** map to different
//!   cache sets: same-set accesses interact through eviction and
//!   line-grained directory state even when the words differ, and
//!   same-processor accesses share a cache and a clock. Epoch
//!   boundaries are global (barrier) and dependent with everything.
//!
//! The sleep set is folded into the visited key, which keeps the
//! classic unsound interaction between sleep sets and state caching
//! (a state first reached with a larger sleep set must be re-explored
//! when reached with a smaller one) from arising at all: equal key ⇒
//! identical residual search problem.
//!
//! Counterexamples are shrunk to a 1-minimal interleaving by greedy
//! delta debugging (drop any single step while the same invariant still
//! fires, to fixpoint) and reported as [`Code::Tpi901`] diagnostics.

use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};

use tpi::cache::CacheConfig;
use tpi::proto::registry::{self, Scheme};
use tpi::proto::{CoherenceEngine, EngineConfig, ModelInvariant, SchemeId};
use tpi::{catch_cell_panic, EngineStepper};
use tpi_mem::{LineGeometry, ProcId, WordAddr};
use tpi_testkit::exhaustive;

use crate::diag::{Code, Diagnostic, Severity};

/// What one model-program access does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Epoch-ordered read; the stepper derives the sound marking
    /// (plain or Time-Read) from its ground-truth write log.
    Read,
    /// Epoch-ordered write (bumps the ground-truth version).
    Write,
    /// Lock-ordered read (exempt from the epoch freshness machinery).
    ReadCritical,
    /// Lock-ordered write.
    WriteCritical,
}

/// One access of a model program: an [`OpKind`] applied to a logical
/// word index (the program's [`Layout`] maps indices to addresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Access {
    /// Logical word index, `0..Program::words`.
    pub word: u32,
    /// What to do to it.
    pub op: OpKind,
}

/// How logical word indices map to machine addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layout {
    /// All words in one cache line (stresses false sharing and
    /// line-grained directory state).
    Packed,
    /// One word per cache line, each line in its own set (stresses
    /// cross-line independence and the sleep-set reduction).
    Spread,
}

/// A bounded multi-epoch access program: `epochs[e][p]` is the ordered
/// access sequence processor `p` issues in epoch `e`. Every epoch ends
/// in a barrier (the explorer inserts it once all processors have
/// drained the epoch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Short name used in reports and counterexamples.
    pub name: String,
    /// Number of processors.
    pub procs: u32,
    /// Number of logical shared words.
    pub words: u32,
    /// Word-index-to-address mapping.
    pub layout: Layout,
    /// `epochs[e][p]` = accesses of processor `p` in epoch `e`.
    pub epochs: Vec<Vec<Vec<Access>>>,
}

impl Program {
    /// The machine address of logical word `word` under this program's
    /// layout (words per line taken from [`model_config`]'s geometry).
    #[must_use]
    pub fn addr(&self, word: u32) -> WordAddr {
        match self.layout {
            Layout::Packed => WordAddr(u64::from(word)),
            Layout::Spread => WordAddr(u64::from(word) * u64::from(MODEL_LINE_WORDS)),
        }
    }

    /// Whether the program is data-race-free at epoch granularity: in
    /// every epoch, a word written (non-critically) by one processor is
    /// touched (non-critically) by no other. The checker requires this —
    /// the freshness contract only covers DRF-per-epoch programs, and a
    /// racy program would report engine "violations" that are really
    /// program bugs. Critical accesses are exempt (lock-ordered).
    #[must_use]
    pub fn is_drf(&self) -> bool {
        for epoch in &self.epochs {
            for w in 0..self.words {
                let mut writer: Option<usize> = None;
                let mut racy = false;
                for (p, seq) in epoch.iter().enumerate() {
                    if seq.iter().any(|a| a.word == w && a.op == OpKind::Write) {
                        if writer.is_some_and(|q| q != p) {
                            racy = true;
                        }
                        writer = Some(p);
                    }
                }
                if racy {
                    return false;
                }
                if let Some(wp) = writer {
                    for (p, seq) in epoch.iter().enumerate() {
                        let touches = seq
                            .iter()
                            .any(|a| a.word == w && matches!(a.op, OpKind::Read | OpKind::Write));
                        if p != wp && touches {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Total number of accesses across all epochs and processors.
    #[must_use]
    pub fn total_ops(&self) -> usize {
        self.epochs
            .iter()
            .flat_map(|e| e.iter())
            .map(Vec::len)
            .sum()
    }
}

/// One transition of the explored schedule. `Op` carries the access it
/// performed so a shrunk trace replays identically even after other
/// steps were deleted around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Step {
    /// Processor `proc` performs `access`.
    Op {
        /// Issuing processor.
        proc: u32,
        /// The access performed.
        access: Access,
    },
    /// All processors cross the epoch barrier.
    Boundary,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Boundary => f.write_str("barrier"),
            Step::Op { proc, access } => {
                let verb = match access.op {
                    OpKind::Read => "reads",
                    OpKind::Write => "writes",
                    OpKind::ReadCritical => "reads[crit]",
                    OpKind::WriteCritical => "writes[crit]",
                };
                write!(f, "p{proc} {verb} w{}", access.word)
            }
        }
    }
}

/// Renders a schedule as a single deterministic line.
#[must_use]
pub fn trace_string(trace: &[Step]) -> String {
    let parts: Vec<String> = trace.iter().map(Step::to_string).collect();
    parts.join("; ")
}

/// Bounds and hooks for one model-checking run.
#[derive(Clone, Copy)]
pub struct ModelOptions {
    /// Processors per configuration (2–4).
    pub procs: u32,
    /// Logical shared words (1–4; 4 is one full line packed).
    pub words: u32,
    /// Maximum accesses per processor per enumerated epoch.
    pub depth: usize,
    /// Epochs per enumerated program (the last is always the observer
    /// epoch in which every processor reads every word).
    pub epochs: usize,
    /// Distinct-state budget per (scheme, program); exploration reports
    /// `truncated` when it is hit.
    pub max_states: u64,
    /// Test hook: mutation applied to the engine after every step
    /// (idempotent sabotage such as `TpiEngine::debug_skip_resets`), so
    /// the seeded-violation tests can prove the checker catches each
    /// invariant. `None` in normal runs.
    pub sabotage: Option<fn(&mut dyn CoherenceEngine)>,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            procs: 2,
            words: 2,
            depth: 1,
            epochs: 2,
            max_states: 1_000_000,
            sabotage: None,
        }
    }
}

impl fmt::Debug for ModelOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelOptions")
            .field("procs", &self.procs)
            .field("words", &self.words)
            .field("depth", &self.depth)
            .field("epochs", &self.epochs)
            .field("max_states", &self.max_states)
            .field("sabotage", &self.sabotage.is_some())
            .finish()
    }
}

/// Words per line of the model cache (also the spread-layout stride).
pub const MODEL_LINE_WORDS: u32 = 4;

/// The tiny machine every model program runs on: 128-byte direct-mapped
/// caches (8 lines of 4 words — small enough that evictions happen
/// within a 4-word program), 2-bit timetags (phase resets fire within
/// 4 epochs), lease 2, hybrid threshold 2, and `verify_freshness` on so
/// the engines' own assertions become checkable events.
#[must_use]
pub fn model_config(procs: u32) -> EngineConfig {
    let mut cfg = EngineConfig::paper_default(1024);
    cfg.procs = procs;
    cfg.net = tpi::net::NetworkConfig::paper_default(procs);
    cfg.cache = CacheConfig {
        size_bytes: 128,
        assoc: 1,
        geometry: LineGeometry::new(MODEL_LINE_WORDS),
    };
    cfg.tag_bits = 2;
    cfg.reset_cycles = 8;
    cfg.tardis_lease = 2;
    cfg.hybrid_threshold = 2;
    cfg.verify_freshness = true;
    cfg
}

/// One interleaving that breaks an invariant, shrunk to 1-minimality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelViolation {
    /// The scheme whose engine broke.
    pub scheme: SchemeId,
    /// The program under which it broke.
    pub program: String,
    /// Stable name of the violated invariant (`freshness`,
    /// `accounting`, or a scheme-prefixed name like
    /// `tpi-phase-discipline`).
    pub invariant: String,
    /// The checker's explanation of the broken state.
    pub message: String,
    /// The minimal schedule: removing any single step makes the
    /// violation disappear.
    pub trace: Vec<Step>,
}

impl ModelViolation {
    /// The violation as a structured [`Code::Tpi901`] diagnostic.
    #[must_use]
    pub fn diagnostic(&self) -> Diagnostic {
        Diagnostic::new(
            Code::Tpi901,
            Severity::Error,
            format!(
                "scheme {} breaks invariant {} after {} step(s)",
                self.scheme.as_str(),
                self.invariant,
                self.trace.len()
            ),
        )
        .with("scheme", self.scheme.as_str())
        .with("program", &self.program)
        .with("invariant", &self.invariant)
        .with("trace", trace_string(&self.trace))
        .with("detail", &self.message)
    }
}

/// Exploration results for one scheme across every program.
#[derive(Debug, Clone)]
pub struct SchemeReport {
    /// The scheme checked.
    pub scheme: SchemeId,
    /// Programs explored (the sweep stops early at the first violation,
    /// so this may be less than the program count).
    pub programs: usize,
    /// Distinct states visited, summed over programs.
    pub states: u64,
    /// Complete interleavings reached (after reduction), summed.
    pub schedules: u64,
    /// Whether any program hit the `max_states` budget.
    pub truncated: bool,
    /// Violations found (at most one: the sweep stops at the first).
    pub violations: Vec<ModelViolation>,
}

/// Results of one [`check_schemes`] run.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Per-scheme results, in argument order.
    pub schemes: Vec<SchemeReport>,
    /// Programs in the checked suite (scenarios + enumerated).
    pub programs: usize,
    /// Enumerated programs dropped as processor-permutation symmetric
    /// duplicates.
    pub dropped: usize,
    /// The options the run used.
    pub options: ModelOptions,
}

impl ModelReport {
    /// All violations across schemes.
    #[must_use]
    pub fn violations(&self) -> Vec<&ModelViolation> {
        self.schemes
            .iter()
            .flat_map(|s| s.violations.iter())
            .collect()
    }

    /// Total distinct states across schemes.
    #[must_use]
    pub fn total_states(&self) -> u64 {
        self.schemes.iter().map(|s| s.states).sum()
    }

    /// Whether every scheme passed every program untruncated.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.schemes
            .iter()
            .all(|s| s.violations.is_empty() && !s.truncated)
    }
}

/// Hand-written scenario programs covering the hazards the enumerated
/// suite cannot reach at small depth: critical sections, false sharing,
/// and timetag wrap-around (which needs `2^tag_bits + 2` epochs).
#[must_use]
pub fn scenario_programs(procs: u32, words: u32) -> Vec<Program> {
    let p = procs as usize;
    let w = words.max(1);
    let read = |word| Access {
        word,
        op: OpKind::Read,
    };
    let write = |word| Access {
        word,
        op: OpKind::Write,
    };
    let mut out = Vec::new();

    // Producer/consumer: p0 writes every word, everyone else reads them
    // next epoch — the paper's core staleness hazard.
    let produce: Vec<Vec<Access>> = (0..p)
        .map(|q| {
            if q == 0 {
                (0..w).map(write).collect()
            } else {
                Vec::new()
            }
        })
        .collect();
    let consume: Vec<Vec<Access>> = (0..p)
        .map(|q| {
            if q == 0 {
                Vec::new()
            } else {
                (0..w).map(read).collect()
            }
        })
        .collect();
    out.push(Program {
        name: "producer-consumer".into(),
        procs,
        words: w,
        layout: Layout::Spread,
        epochs: vec![produce, consume],
    });

    // Ping-pong: ownership of w0 migrates every epoch (each owner reads
    // the previous owner's value, then overwrites it).
    let ping: Vec<Vec<Vec<Access>>> = (0..4)
        .map(|e| {
            (0..p)
                .map(|q| {
                    if q == e % p {
                        vec![read(0), write(0)]
                    } else {
                        Vec::new()
                    }
                })
                .collect()
        })
        .collect();
    out.push(Program {
        name: "ping-pong".into(),
        procs,
        words: w,
        layout: Layout::Spread,
        epochs: ping,
    });

    // Multi-reader: one write, then two epochs of everyone re-reading
    // (the second read of each epoch exercises the verified-hit path).
    let fan: Vec<Vec<Access>> = (0..p).map(|_| vec![read(0), read(0)]).collect();
    out.push(Program {
        name: "multi-reader".into(),
        procs,
        words: w,
        layout: Layout::Spread,
        epochs: vec![produce_one(p), fan.clone(), fan],
    });

    if w >= 2 {
        // False sharing: two processors write different words of one
        // line in the same epoch (word-DRF, line-racy), then read each
        // other's word.
        let collide: Vec<Vec<Access>> = (0..p)
            .map(|q| match q {
                0 => vec![write(0)],
                1 => vec![write(1)],
                _ => Vec::new(),
            })
            .collect();
        let cross: Vec<Vec<Access>> = (0..p)
            .map(|q| match q {
                0 => vec![read(1)],
                1 => vec![read(0)],
                _ => Vec::new(),
            })
            .collect();
        out.push(Program {
            name: "false-sharing".into(),
            procs,
            words: w,
            layout: Layout::Packed,
            epochs: vec![collide, cross],
        });
    }

    // Critical section: every processor updates w0 under the lock in
    // one epoch (any interleaving must stay coherent), everyone reads
    // the result next epoch.
    let crit: Vec<Vec<Access>> = (0..p)
        .map(|_| {
            vec![
                Access {
                    word: 0,
                    op: OpKind::ReadCritical,
                },
                Access {
                    word: 0,
                    op: OpKind::WriteCritical,
                },
            ]
        })
        .collect();
    let observe: Vec<Vec<Access>> = (0..p).map(|_| vec![read(0)]).collect();
    out.push(Program {
        name: "critical-update".into(),
        procs,
        words: w,
        layout: Layout::Spread,
        epochs: vec![crit, observe],
    });

    // Reset stress: w0 is written in epoch 1 (timetag 1, cleared by the
    // TwoPhase reset at the wrap crossing) and then left untouched past
    // a full timetag wrap; the engine must invalidate it at the phase
    // reset and miss on the late read rather than trust a recycled tag.
    let modulus = 1u64 << model_config(procs).tag_bits;
    let filler: Vec<Vec<Access>> = (0..p)
        .map(|q| {
            if q == 0 && w >= 2 {
                vec![write(w - 1)]
            } else {
                Vec::new()
            }
        })
        .collect();
    let mut reset: Vec<Vec<Vec<Access>>> = vec![filler.clone(), produce_one(p)];
    for _ in 0..modulus {
        reset.push(filler.clone());
    }
    let late_read: Vec<Vec<Access>> = (0..p)
        .map(|q| {
            if q == 1 % p {
                vec![read(0)]
            } else {
                Vec::new()
            }
        })
        .collect();
    reset.push(late_read);
    out.push(Program {
        name: "reset-stress".into(),
        procs,
        words: w,
        layout: Layout::Spread,
        epochs: reset,
    });

    debug_assert!(out.iter().all(Program::is_drf), "scenario program is racy");
    out
}

/// Epoch in which only p0 writes w0.
fn produce_one(procs: usize) -> Vec<Vec<Access>> {
    (0..procs)
        .map(|q| {
            if q == 0 {
                vec![Access {
                    word: 0,
                    op: OpKind::Write,
                }]
            } else {
                Vec::new()
            }
        })
        .collect()
}

/// Every DRF-per-epoch program of `opts.depth` reads/writes per
/// processor per epoch over `opts.words` words, quotiented by processor
/// permutation, in both layouts. Each program repeats its enumerated
/// epoch `opts.epochs - 1` times (stressing timetag aging) and ends in
/// an observer epoch where every processor reads every word — the step
/// that catches any staleness the enumerated epochs planted. Returns
/// the programs and the number dropped by symmetry.
#[must_use]
pub fn exhaustive_programs(opts: &ModelOptions) -> (Vec<Program>, usize) {
    let p = opts.procs as usize;
    let mut alphabet = Vec::new();
    for w in 0..opts.words {
        alphabet.push(Access {
            word: w,
            op: OpKind::Read,
        });
        alphabet.push(Access {
            word: w,
            op: OpKind::Write,
        });
    }
    let seqs = exhaustive::sequences(&alphabet, opts.depth);
    let bodies = exhaustive::assignments(p, &seqs);
    // Quotient by processor permutation: engines treat processors
    // symmetrically, so a body is represented by its sorted sequences.
    let (bodies, dropped) = exhaustive::canonical_subset(bodies, |body| {
        let mut key = body.clone();
        key.sort();
        key
    });

    let observer: Vec<Vec<Access>> = (0..p)
        .map(|_| {
            (0..opts.words)
                .map(|w| Access {
                    word: w,
                    op: OpKind::Read,
                })
                .collect()
        })
        .collect();

    let mut out = Vec::new();
    for body in bodies {
        let mut epochs = vec![body.clone(); opts.epochs.saturating_sub(1).max(1)];
        epochs.push(observer.clone());
        for layout in [Layout::Spread, Layout::Packed] {
            // One word never needs both layouts: packed and spread
            // coincide when there is nothing to share a line with.
            if layout == Layout::Packed && opts.words < 2 {
                continue;
            }
            let program = Program {
                name: format!("x{layout:?}[{}]", body_name(&body)),
                procs: opts.procs,
                words: opts.words,
                layout,
                epochs: epochs.clone(),
            };
            if program.is_drf() {
                out.push(program);
            }
        }
    }
    (out, dropped)
}

/// Compact body rendering for enumerated program names: `r0 w1|_|w0`.
fn body_name(body: &[Vec<Access>]) -> String {
    let per_proc: Vec<String> = body
        .iter()
        .map(|seq| {
            if seq.is_empty() {
                "_".to_string()
            } else {
                let ops: Vec<String> = seq
                    .iter()
                    .map(|a| {
                        let k = match a.op {
                            OpKind::Read => "r",
                            OpKind::Write => "w",
                            OpKind::ReadCritical => "R",
                            OpKind::WriteCritical => "W",
                        };
                        format!("{k}{}", a.word)
                    })
                    .collect();
                ops.join(" ")
            }
        })
        .collect();
    per_proc.join("|")
}

/// The full program suite for `opts`: scenarios plus the enumerated
/// set. Returns the programs and the symmetry-dropped count.
#[must_use]
pub fn programs(opts: &ModelOptions) -> (Vec<Program>, usize) {
    let mut progs = scenario_programs(opts.procs, opts.words);
    let (enumerated, dropped) = exhaustive_programs(opts);
    progs.extend(enumerated);
    (progs, dropped)
}

/// Model-checks each scheme against the full program suite.
///
/// # Panics
///
/// Panics if an id in `ids` is not in the global registry (resolve
/// names through [`registry::SchemeRegistry::lookup`] first).
#[must_use]
pub fn check_schemes(ids: &[SchemeId], opts: &ModelOptions) -> ModelReport {
    let (progs, dropped) = programs(opts);
    let schemes = ids
        .iter()
        .map(|&id| {
            let scheme = registry::global()
                .get(id)
                .expect("model-checked scheme must be registered");
            check_scheme(scheme, &progs, opts)
        })
        .collect();
    ModelReport {
        schemes,
        programs: progs.len(),
        dropped,
        options: *opts,
    }
}

/// Model-checks one scheme against `progs`, stopping at the first
/// violation (shrunk to a 1-minimal trace).
#[must_use]
pub fn check_scheme(
    scheme: &'static dyn Scheme,
    progs: &[Program],
    opts: &ModelOptions,
) -> SchemeReport {
    let mut report = SchemeReport {
        scheme: scheme.id(),
        programs: 0,
        states: 0,
        schedules: 0,
        truncated: false,
        violations: Vec::new(),
    };
    for program in progs {
        let mut explorer = Explorer::new(scheme, program, opts);
        explorer.explore();
        report.programs += 1;
        report.states += explorer.states;
        report.schedules += explorer.schedules;
        report.truncated |= explorer.truncated;
        if let Some((trace, invariant, message)) = explorer.violation {
            let (trace, message) =
                explorer_shrink(scheme, program, opts, trace, &invariant, message);
            report.violations.push(ModelViolation {
                scheme: scheme.id(),
                program: program.name.clone(),
                invariant,
                message,
                trace,
            });
            break;
        }
    }
    report
}

/// Greedy delta debugging: drop any single step while the same
/// invariant still fires, iterated to fixpoint (1-minimality).
fn explorer_shrink(
    scheme: &'static dyn Scheme,
    program: &Program,
    opts: &ModelOptions,
    mut trace: Vec<Step>,
    invariant: &str,
    mut message: String,
) -> (Vec<Step>, String) {
    let explorer = Explorer::new(scheme, program, opts);
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < trace.len() {
            let mut candidate = trace.clone();
            candidate.remove(i);
            match explorer.run(&candidate) {
                Err((name, msg)) if name == invariant => {
                    trace = candidate;
                    message = msg;
                    improved = true;
                }
                _ => i += 1,
            }
        }
        if !improved {
            return (trace, message);
        }
    }
}

/// Stateless DFS over the interleavings of one (scheme, program) pair.
struct Explorer<'a> {
    scheme: &'static dyn Scheme,
    program: &'a Program,
    opts: &'a ModelOptions,
    cfg: EngineConfig,
    invariants: Vec<ModelInvariant>,
    num_sets: usize,
    visited: HashSet<u64>,
    states: u64,
    schedules: u64,
    truncated: bool,
    /// First violation: (full path ending at the violating step,
    /// invariant name, message).
    violation: Option<(Vec<Step>, String, String)>,
}

impl<'a> Explorer<'a> {
    fn new(scheme: &'static dyn Scheme, program: &'a Program, opts: &'a ModelOptions) -> Self {
        let cfg = model_config(program.procs);
        Explorer {
            scheme,
            program,
            opts,
            num_sets: cfg.cache.num_sets(),
            cfg,
            invariants: scheme.model_invariants(),
            visited: HashSet::new(),
            states: 0,
            schedules: 0,
            truncated: false,
            violation: None,
        }
    }

    fn explore(&mut self) {
        let mut path = Vec::new();
        let mut pos = vec![0usize; self.program.procs as usize];
        self.dfs(&mut path, 0, &mut pos, &[]);
    }

    fn stop(&self) -> bool {
        self.violation.is_some() || self.truncated
    }

    fn dfs(&mut self, path: &mut Vec<Step>, epoch: usize, pos: &mut Vec<usize>, sleep: &[Step]) {
        if self.stop() {
            return;
        }
        if epoch == self.program.epochs.len() {
            self.schedules += 1;
            return;
        }
        let body = &self.program.epochs[epoch];
        let mut enabled: Vec<Step> = (0..pos.len())
            .filter_map(|p| {
                body[p].get(pos[p]).map(|&access| Step::Op {
                    proc: p as u32,
                    access,
                })
            })
            .collect();
        if enabled.is_empty() {
            enabled.push(Step::Boundary);
        }
        let mut sleeping = sleep.to_vec();
        for t in enabled {
            if sleeping.contains(&t) {
                continue;
            }
            path.push(t);
            match self.run(path) {
                Err((invariant, message)) => {
                    self.violation = Some((path.clone(), invariant, message));
                    path.pop();
                    return;
                }
                Ok(stepper) => {
                    let (child_epoch, advanced) = match t {
                        Step::Boundary => (epoch + 1, None),
                        Step::Op { proc, .. } => (epoch, Some(proc as usize)),
                    };
                    if let Some(p) = advanced {
                        pos[p] += 1;
                    }
                    // A transition sleeps in the child only while it
                    // stays independent of what just executed; the
                    // barrier is dependent with everything.
                    let child_sleep: Vec<Step> = sleeping
                        .iter()
                        .filter(|&&u| self.independent(u, t))
                        .copied()
                        .collect();
                    if self.visit(&stepper, child_epoch, pos, &child_sleep) {
                        self.dfs(path, child_epoch, pos, &child_sleep);
                    }
                    if let Some(p) = advanced {
                        pos[p] -= 1;
                    }
                }
            }
            path.pop();
            if self.stop() {
                return;
            }
            sleeping.push(t);
        }
    }

    /// Records a node; returns whether it is new (explore it) and
    /// enforces the state budget.
    fn visit(
        &mut self,
        stepper: &EngineStepper,
        epoch: usize,
        pos: &[usize],
        sleep: &[Step],
    ) -> bool {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        stepper.fingerprint().hash(&mut h);
        epoch.hash(&mut h);
        pos.hash(&mut h);
        let mut key_sleep = sleep.to_vec();
        key_sleep.sort();
        key_sleep.hash(&mut h);
        if !self.visited.insert(h.finish()) {
            return false;
        }
        self.states += 1;
        if self.states >= self.opts.max_states {
            self.truncated = true;
            return false;
        }
        true
    }

    /// Two steps commute iff they come from different processors and
    /// land in different cache sets (same-set accesses interact through
    /// eviction and line-grained directory/update state even across
    /// words); the barrier commutes with nothing.
    fn independent(&self, a: Step, b: Step) -> bool {
        match (a, b) {
            (
                Step::Op {
                    proc: pa,
                    access: aa,
                },
                Step::Op {
                    proc: pb,
                    access: ab,
                },
            ) => pa != pb && self.set_of(aa.word) != self.set_of(ab.word),
            _ => false,
        }
    }

    fn set_of(&self, word: u32) -> usize {
        let line = self.cfg.cache.geometry.line_of(self.program.addr(word));
        (line.0 % self.num_sets as u64) as usize
    }

    /// Replays `steps` from a fresh engine, applying the sabotage hook
    /// and running every check after each step. Returns the live
    /// stepper, or the first `(invariant, message)` violation — the
    /// engines' freshness assertions surface as caught panics.
    fn run(&self, steps: &[Step]) -> Result<EngineStepper, (String, String)> {
        let mut stepper = EngineStepper::new(self.scheme.id(), self.cfg.clone());
        for &step in steps {
            self.apply_checked(&mut stepper, step)?;
        }
        Ok(stepper)
    }

    fn apply_checked(
        &self,
        stepper: &mut EngineStepper,
        step: Step,
    ) -> Result<(), (String, String)> {
        let program = self.program;
        catch_cell_panic(|| match step {
            Step::Boundary => stepper.boundary(),
            Step::Op { proc, access } => {
                let p = ProcId(proc);
                let addr = program.addr(access.word);
                match access.op {
                    OpKind::Read => {
                        stepper.read(p, addr);
                    }
                    OpKind::Write => stepper.write(p, addr),
                    OpKind::ReadCritical => {
                        stepper.read_critical(p, addr);
                    }
                    OpKind::WriteCritical => stepper.write_critical(p, addr),
                }
            }
        })
        .map_err(|panic| ("freshness".to_string(), panic))?;
        if let Some(sabotage) = self.opts.sabotage {
            sabotage(stepper.engine_mut());
        }
        stepper
            .check_accounting()
            .map_err(|msg| ("accounting".to_string(), msg))?;
        for inv in &self.invariants {
            (inv.check)(stepper.engine()).map_err(|msg| (inv.name.to_string(), msg))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_programs_are_drf_and_cover_layouts() {
        let progs = scenario_programs(3, 2);
        assert!(progs.iter().all(Program::is_drf));
        assert!(progs.iter().any(|p| p.layout == Layout::Packed));
        assert!(progs.iter().any(|p| p.name == "reset-stress"));
        // Reset stress outlives the timetag modulus.
        let modulus = 1usize << model_config(3).tag_bits;
        let reset = progs.iter().find(|p| p.name == "reset-stress").unwrap();
        assert!(reset.epochs.len() > modulus + 1);
    }

    #[test]
    fn drf_filter_rejects_races() {
        let racy = Program {
            name: "racy".into(),
            procs: 2,
            words: 1,
            layout: Layout::Spread,
            epochs: vec![vec![
                vec![Access {
                    word: 0,
                    op: OpKind::Write,
                }],
                vec![Access {
                    word: 0,
                    op: OpKind::Read,
                }],
            ]],
        };
        assert!(!racy.is_drf());
        // The same pair under the lock is fine.
        let locked = Program {
            epochs: vec![vec![
                vec![Access {
                    word: 0,
                    op: OpKind::WriteCritical,
                }],
                vec![Access {
                    word: 0,
                    op: OpKind::ReadCritical,
                }],
            ]],
            ..racy
        };
        assert!(locked.is_drf());
    }

    #[test]
    fn exhaustive_enumeration_is_drf_and_symmetry_reduced() {
        let opts = ModelOptions::default();
        let (progs, dropped) = exhaustive_programs(&opts);
        assert!(dropped > 0, "processor symmetry should drop duplicates");
        assert!(progs.iter().all(Program::is_drf));
        // Every program ends in the observer epoch: all-proc reads.
        for p in &progs {
            let last = p.epochs.last().unwrap();
            assert!(last
                .iter()
                .all(|seq| seq.iter().all(|a| a.op == OpKind::Read)));
        }
    }

    #[test]
    fn addresses_follow_the_layout() {
        let spread = scenario_programs(2, 2).remove(0);
        assert_eq!(spread.addr(1), WordAddr(u64::from(MODEL_LINE_WORDS)));
        let packed = Program {
            layout: Layout::Packed,
            ..spread
        };
        assert_eq!(packed.addr(1), WordAddr(1));
    }
}
