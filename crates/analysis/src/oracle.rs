//! The dynamic staleness oracle: replay a trace against a worst-case
//! cache model and flag every read the marking would allow to observe
//! stale data.
//!
//! # Model
//!
//! The oracle tracks, per `(processor, word)`, the *most dangerous* copy a
//! real cache could still hold: caches are assumed infinite (nothing is
//! ever evicted) and verified hits are assumed to re-stamp their timetag
//! (the engine default). After every non-violating access the copy is
//! exactly `(version the access observed, current epoch)`; a real finite
//! cache can only hold a subset of these copies, and any refetch only
//! makes a copy fresher — so a marking with zero violations here has zero
//! stale observations under *every* cache geometry.
//!
//! A **soundness violation** is:
//!
//! * a `Plain` read whose resident copy is older than the version the
//!   execution requires (the hardware would hit the stale copy), or
//! * a Time-Read of distance `d` whose resident copy is stale *and*
//!   stamped within the last `d` epochs (the timetag check would pass).
//!
//! The oracle also measures **precision**: marked reads whose copy was
//! absent or already fresh never needed the marking.
//!
//! Critical-section accesses are uncached under the HSCD schemes: a
//! critical read checks nothing, and a critical write invalidates the
//! writer's own copy.

use crate::diag::{Code, Diagnostic, Severity};
use std::collections::HashMap;
use tpi_mem::{Epoch, ProcId, ReadKind, WordAddr};
use tpi_trace::{Event, GroundTruth, Trace, Writer};

/// Which scheme's read semantics the oracle replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleMode {
    /// Time-Reads hit iff the word's timetag age is within the distance.
    Tpi,
    /// Marked reads always bypass the cache (software cache-bypass).
    Sc,
}

impl OracleMode {
    /// Lower-case label (`"tpi"` / `"sc"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OracleMode::Tpi => "tpi",
            OracleMode::Sc => "sc",
        }
    }

    /// Parses a label produced by [`label`](Self::label).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tpi" => Some(OracleMode::Tpi),
            "sc" => Some(OracleMode::Sc),
            _ => None,
        }
    }
}

/// One soundness violation: a read the marking lets observe stale data.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Scheme semantics under which the read is unsound.
    pub mode: OracleMode,
    /// Reading processor.
    pub proc: ProcId,
    /// Accessed word.
    pub addr: WordAddr,
    /// Epoch the read executes in.
    pub epoch: Epoch,
    /// The read's marking.
    pub kind: ReadKind,
    /// Version the execution requires the read to observe.
    pub required_version: u64,
    /// Stale version the resident copy holds.
    pub copy_version: u64,
    /// Epoch the stale copy was last stamped in.
    pub copy_epoch: Epoch,
    /// Ground-truth writer of the required version, when the trace
    /// contains that store (version 0 is initial memory).
    pub writer: Option<Writer>,
}

impl Violation {
    /// Renders the violation as a `TPI900` diagnostic.
    #[must_use]
    pub fn diagnostic(&self) -> Diagnostic {
        let kind = match self.kind {
            ReadKind::Plain => "plain".to_string(),
            ReadKind::TimeRead { distance } => format!("time-read(d={distance})"),
            ReadKind::Bypass => "bypass".to_string(),
            ReadKind::Critical => "critical".to_string(),
        };
        let mut d = Diagnostic::new(
            Code::Tpi900,
            Severity::Error,
            format!(
                "{} read may observe version {} instead of {}",
                kind, self.copy_version, self.required_version
            ),
        )
        .with("mode", self.mode.label())
        .with("proc", self.proc.0)
        .with("addr", self.addr.0)
        .with("epoch", self.epoch.0)
        .with("copy_epoch", self.copy_epoch.0);
        if let Some(w) = self.writer {
            d = d
                .with("writer_proc", w.proc.0)
                .with("writer_epoch", w.epoch.0);
        }
        d
    }
}

/// Dynamic counts gathered during a replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Total read events.
    pub reads: u64,
    /// Plain reads.
    pub plain_reads: u64,
    /// Marked (Time-Read / bypass) reads.
    pub marked_reads: u64,
    /// Critical-section reads (uncached; never checked).
    pub critical_reads: u64,
    /// Marked reads whose resident copy really was stale: the marking
    /// was necessary.
    pub needed_marked: u64,
    /// Marked reads whose copy was absent or fresh: marking precision
    /// lost (the paper's "unnecessary cache misses").
    pub unneeded_marked: u64,
    /// Write events (critical ones counted separately too).
    pub writes: u64,
    /// Critical-section writes.
    pub critical_writes: u64,
}

/// The oracle's verdict for one trace replay.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Replayed semantics.
    pub mode: OracleMode,
    /// Dynamic counts.
    pub stats: OracleStats,
    /// Every soundness violation, in trace order.
    pub violations: Vec<Violation>,
}

impl OracleReport {
    /// Whether the replay observed no violation.
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fraction of marked reads that never needed marking (0 when there
    /// are no marked reads).
    #[must_use]
    pub fn unneeded_fraction(&self) -> f64 {
        if self.stats.marked_reads == 0 {
            0.0
        } else {
            self.stats.unneeded_marked as f64 / self.stats.marked_reads as f64
        }
    }
}

/// The worst-case resident copy of one word on one processor.
#[derive(Debug, Clone, Copy)]
struct CopyState {
    version: u64,
    stamp: Epoch,
}

/// Replays `trace` under `mode` and reports every soundness violation
/// plus precision statistics. See the [module docs](self) for the model.
#[must_use]
pub fn check_trace(trace: &Trace, mode: OracleMode) -> OracleReport {
    let truth = GroundTruth::of_trace(trace);
    let mut copies: HashMap<(u32, u64), CopyState> = HashMap::new();
    let mut stats = OracleStats::default();
    let mut violations = Vec::new();

    for ee in &trace.epochs {
        let epoch = ee.epoch;
        for (p, events) in ee.per_proc.iter().enumerate() {
            let proc = ProcId(p as u32);
            for ev in events {
                match ev {
                    Event::Read {
                        addr,
                        kind,
                        version,
                    } => {
                        stats.reads += 1;
                        let key = (proc.0, addr.0);
                        let copy = copies.get(&key).copied();
                        let stale = copy.is_some_and(|c| c.version < *version);
                        match kind {
                            ReadKind::Critical => {
                                // Uncached fetch: no cache state touched.
                                stats.critical_reads += 1;
                                continue;
                            }
                            ReadKind::Plain => {
                                stats.plain_reads += 1;
                                if let Some(c) = copy {
                                    if stale {
                                        violations.push(Violation {
                                            mode,
                                            proc,
                                            addr: *addr,
                                            epoch,
                                            kind: *kind,
                                            required_version: *version,
                                            copy_version: c.version,
                                            copy_epoch: c.stamp,
                                            writer: truth.writer(*addr, *version),
                                        });
                                    }
                                }
                            }
                            ReadKind::TimeRead { .. } | ReadKind::Bypass => {
                                stats.marked_reads += 1;
                                if stale {
                                    stats.needed_marked += 1;
                                } else {
                                    stats.unneeded_marked += 1;
                                }
                                // Under SC semantics a marked read always
                                // refetches from memory: never unsound.
                                // Under TPI semantics the timetag check
                                // may wrongly admit the stale copy.
                                if mode == OracleMode::Tpi && stale {
                                    let c = copy.expect("stale implies resident");
                                    let distance = match kind {
                                        ReadKind::TimeRead { distance } => u64::from(*distance),
                                        _ => 0, // Bypass behaves as distance 0
                                    };
                                    let age = epoch
                                        .distance_from(c.stamp)
                                        .expect("copies are stamped in the past");
                                    if age <= distance {
                                        violations.push(Violation {
                                            mode,
                                            proc,
                                            addr: *addr,
                                            epoch,
                                            kind: *kind,
                                            required_version: *version,
                                            copy_version: c.version,
                                            copy_epoch: c.stamp,
                                            writer: truth.writer(*addr, *version),
                                        });
                                    }
                                }
                            }
                        }
                        // The access leaves a copy of exactly the version
                        // it observed, stamped in this epoch.
                        copies.insert(
                            key,
                            CopyState {
                                version: *version,
                                stamp: epoch,
                            },
                        );
                    }
                    Event::Write { addr, version } => {
                        stats.writes += 1;
                        // Write-through with write-allocate: the writer's
                        // copy becomes the new version, stamped now.
                        copies.insert(
                            (proc.0, addr.0),
                            CopyState {
                                version: *version,
                                stamp: epoch,
                            },
                        );
                    }
                    Event::CriticalWrite { addr, .. } => {
                        stats.writes += 1;
                        stats.critical_writes += 1;
                        // Uncached store: the engine invalidates the
                        // writer's own copy.
                        copies.remove(&(proc.0, addr.0));
                    }
                    _ => {}
                }
            }
        }
    }

    OracleReport {
        mode,
        stats,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_compiler::{mark_program, CompilerOptions, MarkDecision, MarkReason};
    use tpi_ir::{subs, ProgramBuilder};
    use tpi_trace::{generate_trace, TraceOptions};

    /// epoch 0: every task caches its neighbour's word (version 0);
    /// epoch 1: the neighbour's owner overwrites it (version 1);
    /// epoch 2: the original task re-reads it. Block-boundary tasks then
    /// hold a genuinely stale copy, so the compiler must mark the epoch-2
    /// read (distance 1) for the replay to be sound.
    fn neighbour_reuse() -> tpi_ir::Program {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [65]);
        let main = p.proc("main", |f| {
            f.doall(0, 63, |i, f| f.load(vec![a.at(subs![i + 1])], 1));
            f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1));
            f.doall(0, 63, |i, f| f.load(vec![a.at(subs![i + 1])], 1));
        });
        p.finish(main).expect("valid")
    }

    #[test]
    fn sound_marking_has_no_violations() {
        let prog = neighbour_reuse();
        let marking = mark_program(&prog, &CompilerOptions::default());
        let trace = generate_trace(&prog, &marking, &TraceOptions::default()).unwrap();
        for mode in [OracleMode::Tpi, OracleMode::Sc] {
            let report = check_trace(&trace, mode);
            assert!(report.is_sound(), "{mode:?}: {:?}", report.violations);
            assert!(report.stats.marked_reads > 0);
        }
    }

    #[test]
    fn unmarking_a_stale_read_is_caught() {
        let prog = neighbour_reuse();
        let mut marking = mark_program(&prog, &CompilerOptions::default());
        // Weaken the marked epoch-2 read to Plain.
        let (site, _) = marking
            .sites()
            .find(|(_, d)| d.stale)
            .map(|(s, d)| (s, *d))
            .expect("epoch-2 read is marked");
        marking.set_decision(site, MarkDecision::plain(MarkReason::NoWriter));
        let trace = generate_trace(&prog, &marking, &TraceOptions::default()).unwrap();
        let report = check_trace(&trace, OracleMode::Tpi);
        assert!(!report.is_sound(), "weakened marking must be caught");
        let v = &report.violations[0];
        assert_eq!(v.kind, ReadKind::Plain);
        let w = v.writer.expect("writer recorded");
        assert_ne!(w.proc, v.proc, "stale data came from another processor");
        // The diagnostic form carries the forensic context.
        let d = v.diagnostic();
        assert_eq!(d.code, Code::Tpi900);
        assert!(d.human().contains("writer_proc"));
    }

    #[test]
    fn growing_a_distance_is_caught_and_shrinking_is_not() {
        let prog = neighbour_reuse();
        let sound = mark_program(&prog, &CompilerOptions::default());
        let (site, d) = sound
            .sites()
            .find(|(_, d)| d.stale)
            .map(|(s, d)| (s, *d))
            .expect("epoch-2 read is marked");
        assert_eq!(d.distance, 1);

        // Too-large distance admits the stale epoch-0 copy.
        let mut grown = sound.clone();
        grown.set_decision(site, MarkDecision::stale(d.distance + 1, d.reason));
        let trace = generate_trace(&prog, &grown, &TraceOptions::default()).unwrap();
        let report = check_trace(&trace, OracleMode::Tpi);
        assert!(!report.is_sound(), "distance 2 reaches the stale copy");
        assert!(matches!(
            report.violations[0].kind,
            ReadKind::TimeRead { distance: 2 }
        ));
        // But SC semantics (bypass) are immune to the bad distance.
        assert!(check_trace(&trace, OracleMode::Sc).is_sound());

        // Distance 0 (stricter than computed) stays sound.
        let mut shrunk = sound.clone();
        shrunk.set_decision(site, MarkDecision::stale(0, d.reason));
        let trace = generate_trace(&prog, &shrunk, &TraceOptions::default()).unwrap();
        assert!(check_trace(&trace, OracleMode::Tpi).is_sound());
    }

    #[test]
    fn sc_mode_measures_necessity() {
        let prog = neighbour_reuse();
        let marking = mark_program(&prog, &CompilerOptions::default());
        let trace = generate_trace(&prog, &marking, &TraceOptions::default()).unwrap();
        let report = check_trace(&trace, OracleMode::Sc);
        assert!(report.is_sound());
        assert!(
            report.stats.needed_marked > 0,
            "block-boundary tasks hold stale copies"
        );
        assert!(
            report.stats.unneeded_marked > 0,
            "interior tasks refetch their own fresh data"
        );
        assert!(report.unneeded_fraction() > 0.0 && report.unneeded_fraction() < 1.0);
    }
}
