//! Structured diagnostics with stable codes, in human and JSON form.
//!
//! Every lint pass and the staleness oracle report through [`Diagnostic`]:
//! a stable [`Code`] (`TPI001`…), a [`Severity`], a one-line message, and
//! ordered key/value context (array, epoch, site, distance, …). The codes
//! are a public, append-only contract — snapshot tests pin both renderings.

use std::fmt;

/// Stable diagnostic codes emitted by the analysis suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// `TPI001 unreachable-epoch`: an epoch that can never execute
    /// (constant-false branch arm, constant-empty loop).
    Tpi001,
    /// `TPI002 doall-write-write-conflict`: two writes in the same DOALL
    /// epoch may touch a common element from different iterations.
    Tpi002,
    /// `TPI003 degenerate-section`: a reference whose section summary lost
    /// precision (opaque subscript or unbounded variable), forcing
    /// whole-dimension over-approximation.
    Tpi003,
    /// `TPI004 distance-saturation`: a Time-Read distance at or beyond the
    /// timetag range, so the hardware can never verify a hit.
    Tpi004,
    /// `TPI005 dead-shared-array`: a shared array that is never read (or
    /// never accessed at all).
    Tpi005,
    /// `TPI900 soundness-violation`: the dynamic oracle observed a read
    /// that could be served stale data.
    Tpi900,
    /// `TPI901 model-violation`: the `tpi-model` checker found an
    /// interleaving under which a coherence engine breaks a safety
    /// invariant (freshness, accounting, or a scheme-specific property).
    Tpi901,
    /// `TPI902 fuzz-violation`: the `tpi-fuzz` differential harness found
    /// a generated kernel on which a scheme violates freshness, the
    /// miss-accounting identity, a structural invariant, cross-scheme
    /// agreement, the staleness oracle, or a static-lint guarantee.
    Tpi902,
    /// `TPI999 custom-pass`: reserved for passes registered by library
    /// users outside this crate.
    Tpi999,
}

impl Code {
    /// The stable textual code, e.g. `"TPI002"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Tpi001 => "TPI001",
            Code::Tpi002 => "TPI002",
            Code::Tpi003 => "TPI003",
            Code::Tpi004 => "TPI004",
            Code::Tpi005 => "TPI005",
            Code::Tpi900 => "TPI900",
            Code::Tpi901 => "TPI901",
            Code::Tpi902 => "TPI902",
            Code::Tpi999 => "TPI999",
        }
    }

    /// The short kebab-case name of the lint.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Code::Tpi001 => "unreachable-epoch",
            Code::Tpi002 => "doall-write-write-conflict",
            Code::Tpi003 => "degenerate-section",
            Code::Tpi004 => "distance-saturation",
            Code::Tpi005 => "dead-shared-array",
            Code::Tpi900 => "soundness-violation",
            Code::Tpi901 => "model-violation",
            Code::Tpi902 => "fuzz-violation",
            Code::Tpi999 => "custom-pass",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational (precision statistics, suppressed checks).
    Info,
    /// Likely precision loss, never unsoundness.
    Warning,
    /// A correctness problem (static race, oracle violation).
    Error,
}

impl Severity {
    /// Lower-case label used in both output formats.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding: code, severity, message, and ordered context pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity.
    pub severity: Severity,
    /// One-line human message.
    pub message: String,
    /// Ordered `(key, value)` context: array, epoch, site, distance, …
    pub context: Vec<(String, String)>,
}

impl Diagnostic {
    /// A new diagnostic with no context.
    #[must_use]
    pub fn new(code: Code, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// Appends one context pair (builder style).
    #[must_use]
    pub fn with(mut self, key: &str, value: impl fmt::Display) -> Self {
        self.context.push((key.to_string(), value.to_string()));
        self
    }

    /// Renders the human form:
    /// `warning[TPI003] degenerate-section: message (k=v, k=v)`.
    #[must_use]
    pub fn human(&self) -> String {
        let mut s = format!(
            "{}[{}] {}: {}",
            self.severity.label(),
            self.code,
            self.code.name(),
            self.message
        );
        if !self.context.is_empty() {
            let ctx: Vec<String> = self
                .context
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            s.push_str(&format!(" ({})", ctx.join(", ")));
        }
        s
    }

    /// Renders the JSON form (a single object).
    #[must_use]
    pub fn json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"code\":{}", json_string(self.code.as_str())));
        s.push_str(&format!(",\"name\":{}", json_string(self.code.name())));
        s.push_str(&format!(
            ",\"severity\":{}",
            json_string(self.severity.label())
        ));
        s.push_str(&format!(",\"message\":{}", json_string(&self.message)));
        s.push_str(",\"context\":{");
        for (i, (k, v)) in self.context.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}:{}", json_string(k), json_string(v)));
        }
        s.push_str("}}");
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.human())
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a whole diagnostic list as a JSON array.
#[must_use]
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::json).collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_and_json_forms() {
        let d = Diagnostic::new(Code::Tpi002, Severity::Error, "writes may collide")
            .with("array", "A")
            .with("epoch", 3);
        assert_eq!(
            d.human(),
            "error[TPI002] doall-write-write-conflict: writes may collide (array=A, epoch=3)"
        );
        assert_eq!(
            d.json(),
            "{\"code\":\"TPI002\",\"name\":\"doall-write-write-conflict\",\
             \"severity\":\"error\",\"message\":\"writes may collide\",\
             \"context\":{\"array\":\"A\",\"epoch\":\"3\"}}"
        );
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn codes_are_stable() {
        for (code, s, name) in [
            (Code::Tpi001, "TPI001", "unreachable-epoch"),
            (Code::Tpi002, "TPI002", "doall-write-write-conflict"),
            (Code::Tpi003, "TPI003", "degenerate-section"),
            (Code::Tpi004, "TPI004", "distance-saturation"),
            (Code::Tpi005, "TPI005", "dead-shared-array"),
            (Code::Tpi900, "TPI900", "soundness-violation"),
            (Code::Tpi901, "TPI901", "model-violation"),
            (Code::Tpi902, "TPI902", "fuzz-violation"),
            (Code::Tpi999, "TPI999", "custom-pass"),
        ] {
            assert_eq!(code.as_str(), s);
            assert_eq!(code.name(), name);
        }
    }
}
