//! Coherence soundness checking for the TPI reproduction: static lints
//! plus a dynamic staleness oracle.
//!
//! The paper's correctness argument rests on the compiler never leaving a
//! potentially-stale read unmarked (Section 3's reference-marking
//! algorithm). This crate is the harness that *checks* that claim, in two
//! cooperating halves:
//!
//! * **Static lint passes** ([`passes`]) over `tpi-ir` programs and the
//!   compiler's epoch flow graph, each owning a stable diagnostic code
//!   (`TPI001` unreachable-epoch, `TPI002` doall-write-write-conflict,
//!   `TPI003` degenerate-section, `TPI004` distance-saturation, `TPI005`
//!   dead-shared-array), reporting through the structured [`diag`]
//!   machinery in human or JSON form.
//! * **Dynamic staleness oracle** ([`oracle`]): replays a trace against a
//!   worst-case never-evict cache model and flags every read the marking
//!   would allow to observe stale data, plus precision statistics
//!   (Time-Reads that never needed marking). The [`differential`] mode
//!   sweeps kernels across compiler optimization levels through the
//!   memoizing [`tpi::Runner`], asserting the aggressive levels introduce
//!   zero violations.
//! * **Interleaving-level model checker** ([`model`]): drives the real
//!   coherence engines through every interleaving of tiny bounded access
//!   programs, checking freshness, miss accounting, and the per-scheme
//!   structural invariants after every single step (`TPI901`
//!   model-violation), with counterexamples shrunk to minimal traces.
//!   The `tpi-model` binary drives it from the command line.
//!
//! The `tpi-lint` binary drives the first two halves from the command
//! line:
//!
//! ```text
//! tpi-lint --all-kernels --schemes tpi,sc,tardis,hybrid --deny violations
//! tpi-lint --format json examples/programs/stencil.tpi
//! ```
//!
//! # Example
//!
//! ```
//! use tpi_analysis::{check_trace, lint_program, LintOptions, OracleMode};
//! use tpi_compiler::{mark_program, CompilerOptions};
//! use tpi_ir::{subs, ProgramBuilder};
//! use tpi_trace::{generate_trace, TraceOptions};
//!
//! let mut p = ProgramBuilder::new();
//! let a = p.shared("A", [64]);
//! let main = p.proc("main", |f| {
//!     f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1));
//!     f.doall(0, 63, |i, f| f.load(vec![a.at(subs![i])], 1));
//! });
//! let prog = p.finish(main).expect("valid");
//!
//! // Static half: no lint fires on this clean program.
//! assert!(lint_program(&prog, &LintOptions::default()).is_empty());
//!
//! // Dynamic half: the marking admits no stale observation.
//! let marking = mark_program(&prog, &CompilerOptions::default());
//! let trace = generate_trace(&prog, &marking, &TraceOptions::default())?;
//! assert!(check_trace(&trace, OracleMode::Tpi).is_sound());
//! # Ok::<(), tpi_trace::TraceError>(())
//! ```

#![warn(missing_docs)]

pub mod diag;
pub mod differential;
pub mod model;
pub mod oracle;
pub mod passes;

// The shared CLI module moved to the facade crate (`tpi::cli`) so the
// serve-side binaries can use it too; this alias keeps old paths alive.
pub use diag::{diagnostics_json, Code, Diagnostic, Severity};
pub use differential::{
    check_all_kernels, check_freshness, check_sources, total_freshness_violations,
    total_violations, CellReport, DifferentialOptions, FreshnessReport, ALL_LEVELS,
};
pub use model::{
    check_schemes, model_config, ModelOptions, ModelReport, ModelViolation, SchemeReport,
};
pub use oracle::{check_trace, OracleMode, OracleReport, OracleStats, Violation};
pub use passes::{lint_program, LintContext, LintOptions, LintPass, PassRegistry};
pub use tpi::cli;
pub use tpi::cli::CliError;
