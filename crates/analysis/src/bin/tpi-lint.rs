//! Command-line front end for the analysis suite: static lints plus the
//! dynamic staleness oracle over kernels or `.tpi` source files.
//!
//! ```text
//! tpi-lint --all-kernels --schemes tpi,sc --deny violations
//! tpi-lint --kernel flo52 --opt full --format json
//! tpi-lint examples/programs/stencil.tpi --no-oracle
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use tpi::cli::{kernel_by_name, scheme_by_name, CliError};
use tpi::proto::SchemeId;
use tpi::runner::ProgramSource;
use tpi::{ExperimentConfig, Runner};
use tpi_analysis::diag::json_string;
use tpi_analysis::differential::{
    check_freshness, check_sources, DifferentialOptions, FreshnessReport, ALL_LEVELS,
};
use tpi_analysis::oracle::OracleMode;
use tpi_analysis::passes::{lint_program, LintOptions};
use tpi_analysis::{diagnostics_json, CellReport, Diagnostic};
use tpi_compiler::OptLevel;
use tpi_workloads::{Kernel, Scale};

const USAGE: &str = "\
tpi-lint: coherence soundness checker (static lints + staleness oracle)

USAGE:
    tpi-lint [OPTIONS] [FILES...]

TARGETS:
    FILES...              lint .tpi source files
    --kernel <name>       lint one Perfect Club kernel (repeatable)
    --all-kernels         lint every kernel (spec77 ocean flo52 qcd2 trfd arc2d)

OPTIONS:
    --scale <test|paper>  kernel problem scale              [default: test]
    --schemes <list>      comma-separated oracle modes (tpi, sc) and/or
                          registry schemes replayed with the executable
                          freshness check (e.g. tardis, hybrid) [default: tpi,sc]
    --opt <level>         naive|intra|full|all              [default: all]
    --format <fmt>        human|json                        [default: human]
    --tag-bits <n>        timetag width for TPI004          [default: 8]
    --no-oracle           static passes only (no replay)
    --deny violations     exit nonzero if the oracle finds any violation
    --max-print <n>       violations printed per cell (human) [default: 5]
    -h, --help            show this help
";

struct Options {
    files: Vec<String>,
    kernels: Vec<Kernel>,
    scale: Scale,
    modes: Vec<OracleMode>,
    freshness_schemes: Vec<SchemeId>,
    levels: Vec<OptLevel>,
    json: bool,
    tag_bits: u32,
    oracle: bool,
    deny_violations: bool,
    max_print: usize,
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn parse_args() -> Result<Option<Options>, CliError> {
    let mut opts = Options {
        files: Vec::new(),
        kernels: Vec::new(),
        scale: Scale::Test,
        modes: vec![OracleMode::Tpi, OracleMode::Sc],
        freshness_schemes: Vec::new(),
        levels: ALL_LEVELS.to_vec(),
        json: false,
        tag_bits: 8,
        oracle: true,
        deny_violations: false,
        max_print: 5,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or(CliError::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--all-kernels" => opts.kernels = Kernel::ALL.to_vec(),
            "--kernel" => {
                opts.kernels.push(kernel_by_name(&value("--kernel")?)?);
            }
            "--scale" => {
                opts.scale = match value("--scale")?.as_str() {
                    "test" => Scale::Test,
                    "paper" => Scale::Paper,
                    s => return Err(CliError::Usage(format!("unknown scale {s:?}"))),
                }
            }
            "--schemes" => {
                let list = value("--schemes")?;
                opts.modes.clear();
                opts.freshness_schemes.clear();
                for name in list.split(',').map(str::trim) {
                    // Marking-replay oracle modes first; anything else must
                    // be a registered scheme, replayed with the executable
                    // freshness check instead.
                    if let Some(mode) = OracleMode::parse(name) {
                        opts.modes.push(mode);
                    } else {
                        opts.freshness_schemes.push(scheme_by_name(name)?);
                    }
                }
            }
            "--opt" => {
                opts.levels = match value("--opt")?.as_str() {
                    "naive" => vec![OptLevel::Naive],
                    "intra" => vec![OptLevel::Intra],
                    "full" => vec![OptLevel::Full],
                    "all" => ALL_LEVELS.to_vec(),
                    s => return Err(CliError::Usage(format!("unknown opt level {s:?}"))),
                }
            }
            "--format" => {
                opts.json = match value("--format")?.as_str() {
                    "human" => false,
                    "json" => true,
                    s => return Err(CliError::Usage(format!("unknown format {s:?}"))),
                }
            }
            "--tag-bits" => {
                opts.tag_bits = value("--tag-bits")?
                    .parse()
                    .map_err(|_| "--tag-bits needs an integer".to_string())?;
            }
            "--no-oracle" => opts.oracle = false,
            "--deny" => {
                let what = value("--deny")?;
                if what != "violations" {
                    return Err(CliError::Usage(format!("unknown deny class {what:?}")));
                }
                opts.deny_violations = true;
            }
            "--max-print" => {
                opts.max_print = value("--max-print")?
                    .parse()
                    .map_err(|_| "--max-print needs an integer".to_string())?;
            }
            f if f.starts_with('-') => return Err(CliError::Usage(format!("unknown flag {f:?}"))),
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.kernels.is_empty() && opts.files.is_empty() {
        return Err(CliError::Usage(
            "no targets: pass FILES, --kernel, or --all-kernels".to_string(),
        ));
    }
    Ok(Some(opts))
}

/// One lint target with its findings.
struct TargetReport {
    name: String,
    diagnostics: Vec<Diagnostic>,
    oracle: Vec<CellReport>,
    freshness: Vec<FreshnessReport>,
}

fn oracle_json(cell: &CellReport) -> String {
    let mut parts = Vec::new();
    for r in &cell.reports {
        let s = r.stats;
        let diags: Vec<Diagnostic> = r.violations.iter().map(|v| v.diagnostic()).collect();
        parts.push(format!(
            "{{\"opt\":{},\"mode\":{},\"violations\":{},\"reads\":{},\"marked_reads\":{},\
             \"needed_marked\":{},\"unneeded_marked\":{},\"diagnostics\":{}}}",
            json_string(&cell.level.to_string()),
            json_string(r.mode.label()),
            r.violations.len(),
            s.reads,
            s.marked_reads,
            s.needed_marked,
            s.unneeded_marked,
            diagnostics_json(&diags),
        ));
    }
    parts.join(",")
}

fn freshness_json(r: &FreshnessReport) -> String {
    let violation = match &r.violation {
        Some(msg) => json_string(msg),
        None => "null".to_owned(),
    };
    format!(
        "{{\"opt\":{},\"scheme\":{},\"violation\":{violation}}}",
        json_string(&r.level.to_string()),
        json_string(r.scheme.as_str()),
    )
}

fn print_json(targets: &[TargetReport], violations: usize) {
    let mut out = String::from("{\"schema\":\"tpi-lint/1\",\"targets\":[");
    for (i, t) in targets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},\"diagnostics\":{},\"oracle\":[{}],\"freshness\":[{}]}}",
            json_string(&t.name),
            diagnostics_json(&t.diagnostics),
            t.oracle
                .iter()
                .map(oracle_json)
                .collect::<Vec<_>>()
                .join(","),
            t.freshness
                .iter()
                .map(freshness_json)
                .collect::<Vec<_>>()
                .join(","),
        ));
    }
    out.push_str(&format!("],\"violations\":{violations}}}"));
    println!("{out}");
}

fn print_human(targets: &[TargetReport], violations: usize, max_print: usize) {
    for t in targets {
        println!("{}", t.name);
        if t.diagnostics.is_empty() {
            println!("  static: clean");
        }
        for d in &t.diagnostics {
            println!("  {}", d.human());
        }
        for cell in &t.oracle {
            for r in &cell.reports {
                let s = r.stats;
                let verdict = if r.is_sound() {
                    "sound".to_string()
                } else {
                    format!("{} VIOLATIONS", r.violations.len())
                };
                println!(
                    "  oracle {}/{}: {verdict}; reads={} marked={} needed={} unneeded={}",
                    r.mode.label(),
                    cell.level,
                    s.reads,
                    s.marked_reads,
                    s.needed_marked,
                    s.unneeded_marked,
                );
                for v in r.violations.iter().take(max_print) {
                    println!("    {}", v.diagnostic().human());
                }
                if r.violations.len() > max_print {
                    println!("    ... {} more", r.violations.len() - max_print);
                }
            }
        }
        for r in &t.freshness {
            match &r.violation {
                None => println!("  freshness {}/{}: sound", r.scheme.as_str(), r.level),
                Some(msg) => println!(
                    "  freshness {}/{}: VIOLATION: {msg}",
                    r.scheme.as_str(),
                    r.level
                ),
            }
        }
    }
    println!(
        "{} target(s), {} soundness violation(s)",
        targets.len(),
        violations
    );
}

fn run(opts: &Options) -> Result<usize, String> {
    // Assemble targets: kernels first, then files, in argument order.
    let mut sources: Vec<ProgramSource> = opts
        .kernels
        .iter()
        .map(|&k| ProgramSource::Kernel(k, opts.scale))
        .collect();
    for file in &opts.files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        let program =
            tpi_ir::parse_program(&text).map_err(|e| format!("parse error in {file}: {e}"))?;
        sources.push(ProgramSource::Custom {
            name: Arc::from(file.as_str()),
            program: Arc::new(program),
        });
    }

    // Static lints run at the strongest requested level; the oracle
    // replays every requested level.
    let static_level = *opts.levels.last().unwrap_or(&OptLevel::Full);
    let lint_options = LintOptions {
        level: static_level,
        tag_bits: opts.tag_bits,
    };

    let runner = Runner::new();
    let mut diff = DifferentialOptions {
        base: ExperimentConfig::paper(),
        levels: opts.levels.clone(),
        modes: opts.modes.clone(),
    };
    diff.base.tag_bits = opts.tag_bits;

    let mut targets = Vec::new();
    let oracle_reports = if opts.oracle && !opts.modes.is_empty() {
        check_sources(&runner, &sources, &diff).map_err(|e| format!("oracle replay: {e}"))?
    } else {
        Vec::new()
    };
    // Schemes the marking-replay oracle cannot model get the executable
    // freshness check instead; both sweeps share the runner's traces.
    let freshness_reports = if opts.oracle && !opts.freshness_schemes.is_empty() {
        check_freshness(&runner, &sources, &opts.freshness_schemes, &diff)
            .map_err(|e| format!("freshness replay: {e}"))?
    } else {
        Vec::new()
    };
    let freshness_per_source = opts.levels.len() * opts.freshness_schemes.len();
    for (si, source) in sources.iter().enumerate() {
        let program = match source {
            ProgramSource::Kernel(k, s) => Arc::new(k.build(*s)),
            ProgramSource::Custom { program, .. } => Arc::clone(program),
        };
        let diagnostics = lint_program(program.as_ref(), &lint_options);
        let oracle = if oracle_reports.is_empty() {
            Vec::new()
        } else {
            oracle_reports[si * opts.levels.len()..(si + 1) * opts.levels.len()].to_vec()
        };
        let freshness = if freshness_reports.is_empty() {
            Vec::new()
        } else {
            freshness_reports[si * freshness_per_source..(si + 1) * freshness_per_source].to_vec()
        };
        targets.push(TargetReport {
            name: source.label().to_string(),
            diagnostics,
            oracle,
            freshness,
        });
    }

    let violations: usize = targets
        .iter()
        .flat_map(|t| t.oracle.iter())
        .map(CellReport::violations)
        .sum::<usize>()
        + targets
            .iter()
            .flat_map(|t| t.freshness.iter())
            .filter(|r| r.violation.is_some())
            .count();
    if opts.json {
        print_json(&targets, violations);
    } else {
        print_human(&targets, violations, opts.max_print);
    }
    Ok(violations)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => return e.exit(USAGE),
    };
    match run(&opts) {
        Ok(violations) if opts.deny_violations && violations > 0 => {
            eprintln!("tpi-lint: denied: {violations} soundness violation(s)");
            ExitCode::FAILURE
        }
        Ok(_) => ExitCode::SUCCESS,
        Err(msg) => usage_error(&msg),
    }
}
