//! Command-line front end for the interleaving-level model checker:
//! exhaustively verifies every registered coherence engine against every
//! interleaving of tiny bounded access programs.
//!
//! ```text
//! tpi-model --schemes all --procs 3 --words 2 --depth 1 --deny violations
//! tpi-model --schemes tpi,tardis --format json
//! ```

use std::process::ExitCode;
use tpi::cli::{parse_bounded, parse_scheme_list, CliError};
use tpi::proto::{registry, SchemeId};
use tpi_analysis::diag::json_string;
use tpi_analysis::diagnostics_json;
use tpi_analysis::model::{check_schemes, ModelOptions, ModelReport};

const USAGE: &str = "\
tpi-model: exhaustive interleaving-level coherence model checker

USAGE:
    tpi-model [OPTIONS]

OPTIONS:
    --schemes <list>      all, or comma-separated registry schemes
                          (base, sc, tpi, fullmap, limitless, ideal,
                          tardis, hybrid)                  [default: all]
    --procs <n>           processors, 2-4                  [default: 2]
    --words <n>           shared words, 1-4                [default: 2]
    --depth <n>           accesses/proc/epoch enumerated, 1-3 [default: 1]
    --epochs <n>          epochs per enumerated program, 2-4  [default: 2]
    --max-states <n>      state budget per scheme x program
                                                     [default: 1000000]
    --format <fmt>        human|json                       [default: human]
    --deny violations     exit nonzero on any violation
    -h, --help            show this help
";

struct Options {
    schemes: Vec<SchemeId>,
    model: ModelOptions,
    json: bool,
    deny_violations: bool,
}

fn parse_args() -> Result<Option<Options>, CliError> {
    let mut opts = Options {
        schemes: registry::global().all().iter().map(|s| s.id()).collect(),
        model: ModelOptions::default(),
        json: false,
        deny_violations: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--schemes" => {
                opts.schemes = parse_scheme_list(&value("--schemes")?)?;
            }
            "--procs" => {
                opts.model.procs = parse_bounded("--procs", &value("--procs")?, 2, 4)? as u32;
            }
            "--words" => {
                opts.model.words = parse_bounded("--words", &value("--words")?, 1, 4)? as u32;
            }
            "--depth" => {
                opts.model.depth = parse_bounded("--depth", &value("--depth")?, 1, 3)? as usize;
            }
            "--epochs" => {
                opts.model.epochs = parse_bounded("--epochs", &value("--epochs")?, 2, 4)? as usize;
            }
            "--max-states" => {
                opts.model.max_states =
                    parse_bounded("--max-states", &value("--max-states")?, 1, u64::MAX)?;
            }
            "--format" => {
                opts.json = match value("--format")?.as_str() {
                    "human" => false,
                    "json" => true,
                    s => return Err(CliError::Usage(format!("unknown format {s:?}"))),
                }
            }
            "--deny" => {
                let what = value("--deny")?;
                if what != "violations" {
                    return Err(CliError::Usage(format!("unknown deny class {what:?}")));
                }
                opts.deny_violations = true;
            }
            f => return Err(CliError::Usage(format!("unknown flag {f:?}"))),
        }
    }
    Ok(Some(opts))
}

fn print_human(report: &ModelReport) {
    let o = &report.options;
    println!(
        "tpi-model: {} scheme(s), {} program(s) ({} dropped by symmetry), \
         procs={} words={} depth={} epochs={}",
        report.schemes.len(),
        report.programs,
        report.dropped,
        o.procs,
        o.words,
        o.depth,
        o.epochs,
    );
    for s in &report.schemes {
        let verdict = if !s.violations.is_empty() {
            format!("{} VIOLATION(S)", s.violations.len())
        } else if s.truncated {
            "TRUNCATED (state budget hit)".to_string()
        } else {
            "verified".to_string()
        };
        println!(
            "  {:<10} programs={:<4} states={:<8} schedules={:<8} {verdict}",
            s.scheme.as_str(),
            s.programs,
            s.states,
            s.schedules,
        );
        for v in &s.violations {
            println!("    {}", v.diagnostic().human());
            for (i, step) in v.trace.iter().enumerate() {
                println!("      step {}: {step}", i + 1);
            }
        }
    }
    println!(
        "tpi-model: explored {} state(s); {} violation(s)",
        report.total_states(),
        report.violations().len()
    );
}

fn print_json(report: &ModelReport) {
    let o = &report.options;
    let mut out = format!(
        "{{\"schema\":\"tpi-model/1\",\"options\":{{\"procs\":{},\"words\":{},\
         \"depth\":{},\"epochs\":{},\"max_states\":{}}},\"schemes\":[",
        o.procs, o.words, o.depth, o.epochs, o.max_states
    );
    for (i, s) in report.schemes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let diags: Vec<_> = s.violations.iter().map(|v| v.diagnostic()).collect();
        out.push_str(&format!(
            "{{\"scheme\":{},\"programs\":{},\"states\":{},\"schedules\":{},\
             \"truncated\":{},\"violations\":{}}}",
            json_string(s.scheme.as_str()),
            s.programs,
            s.states,
            s.schedules,
            s.truncated,
            diagnostics_json(&diags),
        ));
    }
    out.push_str(&format!(
        "],\"programs\":{},\"dropped\":{},\"states\":{},\"violations\":{}}}",
        report.programs,
        report.dropped,
        report.total_states(),
        report.violations().len()
    ));
    println!("{out}");
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => return e.exit(USAGE),
    };
    let report = check_schemes(&opts.schemes, &opts.model);
    if opts.json {
        print_json(&report);
    } else {
        print_human(&report);
    }
    let violations = report.violations().len();
    if opts.deny_violations && (violations > 0 || !report.is_clean()) {
        eprintln!("tpi-model: denied: {violations} violation(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
