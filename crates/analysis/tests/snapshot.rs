//! Snapshot tests: every static pass fires on a crafted program, and both
//! output formats (human and JSON) are pinned byte-for-byte so the stable
//! `TPI00x` codes and rendering never drift unnoticed.

use tpi_analysis::{diagnostics_json, lint_program, Code, LintOptions};
use tpi_compiler::OptLevel;
use tpi_ir::{subs, Cond, Program, ProgramBuilder};

/// One program tripping all five static lints:
///
/// * `TPI001` — a DOALL under an `if never` branch,
/// * `TPI002` — a DOALL whose iterations write overlapping elements,
/// * `TPI003` — an opaquely-subscripted read,
/// * `TPI004` — a Time-Read distance beyond a 1-bit timetag,
/// * `TPI005` — a shared array that is written but never read.
fn pathological() -> Program {
    let mut p = ProgramBuilder::new();
    let a = p.shared("A", [64]);
    let dead = p.shared("DEAD", [8]);
    let g = p.shared("G", [64]);
    let main = p.proc("main", |f| {
        let op = f.opaque();
        f.if_else(
            Cond::Never,
            |f| f.doall(0, 63, move |i, f| f.store(a.at(subs![i]), vec![], 1)),
            |_| {},
        );
        // Writes A[i] and A[i+1]: iterations i and i+1 collide.
        f.doall(0, 62, move |i, f| {
            f.store(a.at(subs![i]), vec![], 1);
            f.store(a.at(subs![i + 1]), vec![], 1);
        });
        f.doall(0, 7, move |i, f| f.store(dead.at(subs![i]), vec![], 1));
        f.doall(0, 63, move |i, f| {
            f.store(g.at(subs![i]), vec![g.at(subs![op])], 1)
        });
        // Two epoch boundaries from the writes of A: distance 2 saturates
        // a 1-bit timetag (which only represents age 0..1).
        f.doall(0, 62, move |i, f| f.load(vec![a.at(subs![i + 1])], 1));
    });
    p.finish(main).expect("well-formed")
}

fn lint_pathological() -> Vec<tpi_analysis::Diagnostic> {
    lint_program(
        &pathological(),
        &LintOptions {
            level: OptLevel::Full,
            tag_bits: 1,
        },
    )
}

#[test]
fn every_static_pass_fires_once() {
    let diags = lint_pathological();
    let codes: Vec<Code> = diags.iter().map(|d| d.code).collect();
    assert_eq!(
        codes,
        [
            Code::Tpi001,
            Code::Tpi002,
            Code::Tpi003,
            Code::Tpi004,
            Code::Tpi005
        ],
        "got: {:#?}",
        diags
    );
}

#[test]
fn human_rendering_is_stable() {
    let rendered: Vec<String> = lint_pathological().iter().map(|d| d.human()).collect();
    assert_eq!(
        rendered,
        [
            "warning[TPI001] unreachable-epoch: code in this then can never execute (proc=main, contains_doall=true, first_stmt=0)",
            "error[TPI002] doall-write-write-conflict: two writes to A in one DOALL epoch may collide across iterations (array=A, epoch_node=1)",
            "warning[TPI003] degenerate-section: read of G over-approximated: opaque subscript (array=G, stmt=4, read_idx=0)",
            "warning[TPI004] distance-saturation: Time-Read distance 3 saturates the 1-bit timetag range (stmt=5, read_idx=0, distance=3, tag_bits=1)",
            "warning[TPI005] dead-shared-array: shared array DEAD is written but never read (array=DEAD, written=true)",
        ],
    );
}

#[test]
fn json_rendering_is_stable() {
    assert_eq!(
        diagnostics_json(&lint_pathological()),
        "[{\"code\":\"TPI001\",\"name\":\"unreachable-epoch\",\"severity\":\"warning\",\
         \"message\":\"code in this then can never execute\",\
         \"context\":{\"proc\":\"main\",\"contains_doall\":\"true\",\"first_stmt\":\"0\"}},\
         {\"code\":\"TPI002\",\"name\":\"doall-write-write-conflict\",\"severity\":\"error\",\
         \"message\":\"two writes to A in one DOALL epoch may collide across iterations\",\
         \"context\":{\"array\":\"A\",\"epoch_node\":\"1\"}},\
         {\"code\":\"TPI003\",\"name\":\"degenerate-section\",\"severity\":\"warning\",\
         \"message\":\"read of G over-approximated: opaque subscript\",\
         \"context\":{\"array\":\"G\",\"stmt\":\"4\",\"read_idx\":\"0\"}},\
         {\"code\":\"TPI004\",\"name\":\"distance-saturation\",\"severity\":\"warning\",\
         \"message\":\"Time-Read distance 3 saturates the 1-bit timetag range\",\
         \"context\":{\"stmt\":\"5\",\"read_idx\":\"0\",\"distance\":\"3\",\"tag_bits\":\"1\"}},\
         {\"code\":\"TPI005\",\"name\":\"dead-shared-array\",\"severity\":\"warning\",\
         \"message\":\"shared array DEAD is written but never read\",\
         \"context\":{\"array\":\"DEAD\",\"written\":\"true\"}}]"
    );
}
