//! Black-box tests of the `tpi-lint` and `tpi-model` command lines:
//! exit codes, the structured unknown-scheme error both binaries share
//! with the serve wire layer, and the shape of `tpi-model` output.

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("cannot run {bin}: {e}"))
}

const UNKNOWN_SCHEME: &str = "error[bad_field]: unknown scheme \"frobnicate\" \
     (registered: base, sc, tpi, hw, ll, ideal, tardis, hybrid)";

#[test]
fn lint_rejects_unknown_scheme_with_structured_error() {
    let out = run(
        env!("CARGO_BIN_EXE_tpi-lint"),
        &["--schemes", "frobnicate", "--all-kernels"],
    );
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(stderr.trim(), UNKNOWN_SCHEME);
    // A field error is not a usage error: no usage dump.
    assert!(
        !stderr.contains("USAGE"),
        "field errors must not dump usage"
    );
}

#[test]
fn lint_still_dumps_usage_on_usage_errors() {
    let out = run(env!("CARGO_BIN_EXE_tpi-lint"), &["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn model_rejects_unknown_scheme_with_structured_error() {
    let out = run(
        env!("CARGO_BIN_EXE_tpi-model"),
        &["--schemes", "frobnicate"],
    );
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(stderr.trim(), UNKNOWN_SCHEME);
    assert!(
        !stderr.contains("USAGE"),
        "field errors must not dump usage"
    );
}

#[test]
fn model_rejects_out_of_range_bounds_as_field_errors() {
    let out = run(env!("CARGO_BIN_EXE_tpi-model"), &["--procs", "9"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        stderr.trim(),
        "error[bad_field]: --procs must be in 2..=4, got 9"
    );
}

#[test]
fn model_verifies_two_schemes_and_reports_states() {
    let out = run(
        env!("CARGO_BIN_EXE_tpi-model"),
        &[
            "--schemes",
            "tpi,tardis",
            "--procs",
            "2",
            "--words",
            "1",
            "--deny",
            "violations",
        ],
    );
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 scheme(s)"));
    assert!(stdout.contains("verified"));
    assert!(stdout.contains("explored"));
    assert!(stdout.contains("0 violation(s)"));
}

#[test]
fn model_json_output_is_structured() {
    let out = run(
        env!("CARGO_BIN_EXE_tpi-model"),
        &["--schemes", "base", "--words", "1", "--format", "json"],
    );
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("{\"schema\":\"tpi-model/1\""));
    assert!(stdout.contains("\"scheme\":\"base\""));
    assert!(stdout.contains("\"violations\":[]"));
    assert!(stdout.trim_end().ends_with("}"));
}
