//! End-to-end tests of the `tpi-model` interleaving checker: a clean
//! verification sweep over every registered scheme, one seeded-violation
//! test per scheme-specific invariant (hand-break the engine through the
//! sabotage hook and assert the checker catches it with a minimal
//! trace), and snapshots pinning the counterexample renderings.

use tpi::proto::{
    registry, BaseEngine, CoherenceEngine, DirectoryEngine, HybridEngine, SchemeId, TardisEngine,
    TpiEngine,
};
use tpi_analysis::model::{check_schemes, ModelOptions, ModelViolation, Step};
use tpi_mem::WordAddr;

fn tiny() -> ModelOptions {
    ModelOptions {
        procs: 2,
        words: 2,
        depth: 1,
        epochs: 2,
        ..ModelOptions::default()
    }
}

/// Runs one sabotaged sweep over `scheme` and returns the violation the
/// checker must find.
fn seeded(scheme: SchemeId, sabotage: fn(&mut dyn CoherenceEngine)) -> ModelViolation {
    let opts = ModelOptions {
        sabotage: Some(sabotage),
        ..tiny()
    };
    let report = check_schemes(&[scheme], &opts);
    let violations = report.violations();
    assert_eq!(
        violations.len(),
        1,
        "{scheme}: sabotage must produce exactly one (shrunk) violation"
    );
    violations[0].clone()
}

/// A 1-minimal trace reproduces the violation, and dropping its last
/// step does not (the earlier steps were already necessary by
/// construction of the shrinker).
fn assert_minimal(v: &ModelViolation) {
    assert!(!v.trace.is_empty(), "a violation needs at least one step");
    // The shrinker is greedy to fixpoint, so 1-minimality is structural;
    // spot-check that the trace is tiny rather than a full schedule.
    assert!(
        v.trace.len() <= 4,
        "expected a minimal counterexample, got {} steps: {:?}",
        v.trace.len(),
        v.trace
    );
}

#[test]
fn all_schemes_verify_clean() {
    let ids: Vec<SchemeId> = registry::global().all().iter().map(|s| s.id()).collect();
    assert_eq!(ids.len(), 8, "the registry should hold all eight schemes");
    let report = check_schemes(&ids, &tiny());
    assert!(
        report.is_clean(),
        "expected zero violations, got: {:?}",
        report.violations()
    );
    assert_eq!(report.schemes.len(), 8);
    assert!(report.total_states() > 0);
    assert!(
        report.dropped > 0,
        "symmetry reduction should drop programs"
    );
}

#[test]
fn seeded_tpi_skipped_reset_breaks_phase_discipline() {
    let v = seeded(SchemeId::TPI, |e| {
        e.as_any_mut()
            .downcast_mut::<TpiEngine>()
            .expect("tpi engine")
            .debug_skip_resets();
    });
    assert_eq!(v.invariant, "tpi-phase-discipline");
    assert_minimal(&v);
    // The minimal trace must actually cross a phase-reset boundary:
    // skipped resets are invisible until the clock reaches a crossing.
    assert!(v.trace.contains(&Step::Boundary));
}

#[test]
fn seeded_directory_dropped_sharer_breaks_consistency() {
    for scheme in [SchemeId::FULL_MAP, SchemeId::LIMITLESS] {
        let v = seeded(scheme, |e| {
            e.as_any_mut()
                .downcast_mut::<DirectoryEngine>()
                .expect("directory engine")
                .debug_drop_sharer_bit(0, WordAddr(0));
        });
        assert_eq!(v.invariant, "dir-consistency", "{scheme}");
        assert_minimal(&v);
    }
}

#[test]
fn seeded_hybrid_dropped_sharer_breaks_mask() {
    let v = seeded(SchemeId::HYBRID, |e| {
        e.as_any_mut()
            .downcast_mut::<HybridEngine>()
            .expect("hybrid engine")
            .debug_drop_sharer_bit(0, WordAddr(0));
    });
    assert_eq!(v.invariant, "hybrid-sharer-mask");
    assert_minimal(&v);
}

#[test]
fn seeded_tardis_rewound_wts_breaks_lease_invariants() {
    let v = seeded(SchemeId::TARDIS, |e| {
        e.as_any_mut()
            .downcast_mut::<TardisEngine>()
            .expect("tardis engine")
            .debug_rewind_wts(WordAddr(0));
    });
    assert!(
        v.invariant.starts_with("tardis-"),
        "expected a tardis invariant, got {}",
        v.invariant
    );
    assert_minimal(&v);
}

#[test]
fn seeded_base_cached_shared_word_is_caught() {
    let v = seeded(SchemeId::BASE, |e| {
        e.as_any_mut()
            .downcast_mut::<BaseEngine>()
            .expect("base engine")
            .debug_cache_shared_word(WordAddr(0));
    });
    assert_eq!(v.invariant, "base-no-shared-lines");
    assert_minimal(&v);
}

/// The counterexample renderings are a stable contract: CI logs and
/// tooling parse them, so pin both forms byte for byte.
#[test]
fn counterexample_rendering_snapshot() {
    let v = seeded(SchemeId::BASE, |e| {
        e.as_any_mut()
            .downcast_mut::<BaseEngine>()
            .expect("base engine")
            .debug_cache_shared_word(WordAddr(0));
    });
    let d = v.diagnostic();
    assert_eq!(
        d.human(),
        "error[TPI901] model-violation: scheme base breaks invariant \
         base-no-shared-lines after 1 step(s) (scheme=base, \
         program=producer-consumer, invariant=base-no-shared-lines, \
         trace=p0 writes w0, detail=proc 0 caches shared word 0 (BASE \
         never caches shared data))"
    );
    assert_eq!(
        d.json(),
        "{\"code\":\"TPI901\",\"name\":\"model-violation\",\
         \"severity\":\"error\",\"message\":\"scheme base breaks invariant \
         base-no-shared-lines after 1 step(s)\",\"context\":{\
         \"scheme\":\"base\",\"program\":\"producer-consumer\",\
         \"invariant\":\"base-no-shared-lines\",\
         \"trace\":\"p0 writes w0\",\
         \"detail\":\"proc 0 caches shared word 0 (BASE never caches \
         shared data)\"}}"
    );
}
