//! Timing-model behaviour: barrier accounting, per-epoch setup cost, and
//! network-load feedback.

use tpi_compiler::{mark_program, CompilerOptions};
use tpi_ir::{subs, ProgramBuilder};
use tpi_proto::{build_engine, EngineConfig, SchemeId};
use tpi_sim::{run_trace, SimOptions, SimResult};
use tpi_trace::{generate_trace, Trace, TraceOptions};

fn simulate(build: impl FnOnce(&mut ProgramBuilder) -> tpi_ir::ProcIdx, setup: u64) -> SimResult {
    let mut p = ProgramBuilder::new();
    let main = build(&mut p);
    let prog = p.finish(main).unwrap();
    let marking = mark_program(&prog, &CompilerOptions::default());
    let trace = generate_trace(&prog, &marking, &TraceOptions::default()).unwrap();
    let mut engine = build_engine(
        SchemeId::TPI,
        EngineConfig::paper_default(trace.layout.total_words()),
    );
    run_trace(
        &trace,
        engine.as_mut(),
        &SimOptions {
            epoch_setup_cycles: setup,
        },
    )
}

fn trace_of(build: impl FnOnce(&mut ProgramBuilder) -> tpi_ir::ProcIdx) -> Trace {
    let mut p = ProgramBuilder::new();
    let main = build(&mut p);
    let prog = p.finish(main).unwrap();
    let marking = mark_program(&prog, &CompilerOptions::default());
    generate_trace(&prog, &marking, &TraceOptions::default()).unwrap()
}

#[test]
fn epoch_setup_is_charged_once_per_epoch() {
    let build = |p: &mut ProgramBuilder| {
        let a = p.shared("A", [64]);
        p.proc("main", |f| {
            for _ in 0..3 {
                f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1));
            }
        })
    };
    let r0 = simulate(build, 0);
    let build2 = |p: &mut ProgramBuilder| {
        let a = p.shared("A", [64]);
        p.proc("main", |f| {
            for _ in 0..3 {
                f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1));
            }
        })
    };
    let r1000 = simulate(build2, 1000);
    assert_eq!(r0.epochs, 3);
    assert_eq!(
        r1000.total_cycles - r0.total_cycles,
        3 * 1000,
        "setup cost must be linear in epochs"
    );
}

#[test]
fn total_time_bounds_busy_time() {
    let r = simulate(
        |p| {
            let a = p.shared("A", [256]);
            p.proc("main", |f| {
                f.doall(0, 255, |i, f| f.store(a.at(subs![i]), vec![], 3));
                f.doall(0, 255, |i, f| f.load(vec![a.at(subs![i])], 3));
            })
        },
        100,
    );
    for &b in &r.busy_cycles {
        assert!(b <= r.total_cycles);
    }
    // The barrier means total >= the busiest processor + per-epoch setup.
    let max_busy = r.busy_cycles.iter().copied().max().unwrap();
    assert!(r.total_cycles >= max_busy + r.epochs * 100);
}

#[test]
fn serial_epochs_gate_everyone() {
    // One long serial epoch: every processor's end time is the barrier
    // after proc 0 finishes, so total far exceeds the idle procs' busy time.
    let r = simulate(
        |p| {
            let a = p.shared("A", [2048]);
            p.proc("main", |f| {
                f.serial(0, 2047, |i, f| f.store(a.at(subs![i]), vec![], 8));
                f.doall(0, 63, |i, f| f.load(vec![a.at(subs![i])], 1));
            })
        },
        100,
    );
    assert!(r.busy_cycles[0] > 0);
    // Processors 1.. did nothing in epoch 0 and little in epoch 1.
    assert!(
        r.busy_cycles[0] > 4 * r.busy_cycles[8],
        "P0 {} vs P8 {}",
        r.busy_cycles[0],
        r.busy_cycles[8]
    );
}

#[test]
fn write_heavy_epochs_slow_later_reads() {
    // Same read epoch, preceded by either a tiny or a huge write epoch:
    // the Kruskal–Snir load estimate from the writes must raise the read
    // epoch's miss latencies.
    let light = trace_of(|p| {
        let a = p.shared("A", [4096]);
        let b = p.shared("B", [64]);
        p.proc("main", |f| {
            f.doall(0, 63, |i, f| f.store(b.at(subs![i]), vec![], 1));
            f.doall(0, 4095, |i, f| f.load(vec![a.at(subs![i])], 1));
        })
    });
    let heavy = trace_of(|p| {
        let a = p.shared("A", [4096]);
        let b = p.shared("B", [4096]);
        p.proc("main", |f| {
            f.doall(0, 4095, |i, f| {
                // Many redundant writes: pure network load.
                f.serial(0, 15, |_k, f| f.store(b.at(subs![i]), vec![], 1));
            });
            f.doall(0, 4095, |i, f| f.load(vec![a.at(subs![i])], 1));
        })
    });
    let run = |t: &Trace| {
        let mut e = build_engine(
            SchemeId::TPI,
            EngineConfig::paper_default(t.layout.total_words()),
        );
        run_trace(t, e.as_mut(), &SimOptions::default())
    };
    let rl = run(&light);
    let rh = run(&heavy);
    assert!(
        rh.avg_miss_latency() > rl.avg_miss_latency() + 1.0,
        "load feedback missing: {} vs {}",
        rh.avg_miss_latency(),
        rl.avg_miss_latency()
    );
}

#[test]
fn results_expose_speedup_helper() {
    let fast = simulate(
        |p| {
            let a = p.shared("A", [64]);
            p.proc("main", |f| {
                f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1));
            })
        },
        100,
    );
    let slow = simulate(
        |p| {
            let a = p.shared("A", [64]);
            p.proc("main", |f| {
                for _ in 0..4 {
                    f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1));
                }
            })
        },
        100,
    );
    assert!(fast.speedup_over(&slow) > 1.0);
    assert!(slow.speedup_over(&fast) < 1.0);
}
