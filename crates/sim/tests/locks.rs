//! Lock and event timing edge cases, driven by hand-assembled traces
//! (bypassing the interpreter to construct situations valid programs can
//! never produce).

use tpi_mem::{ArrayDecl, Epoch, LineGeometry, MemLayout, ProcId, ReadKind, Sharing, WordAddr};
use tpi_proto::{build_engine, EngineConfig, SchemeId};
use tpi_sim::{run_trace, SimOptions};
use tpi_trace::{EpochEvents, EpochExecKind, Event, Trace};

fn trace_of(per_proc: Vec<Vec<Event>>) -> Trace {
    let num_procs = per_proc.len() as u32;
    let epochs = vec![EpochEvents {
        epoch: Epoch(0),
        kind: EpochExecKind::Doall {
            iterations: num_procs as u64,
        },
        per_proc,
    }];
    let stats = Trace::compute_stats(&epochs);
    Trace {
        epochs,
        layout: MemLayout::new(
            vec![ArrayDecl::new("A", vec![64], Sharing::Shared)],
            LineGeometry::new(4),
        ),
        num_procs,
        stats,
        host: Default::default(),
    }
}

#[test]
#[should_panic(expected = "lock deadlock")]
fn waiting_on_a_never_posted_event_is_detected() {
    let trace = trace_of(vec![
        vec![Event::WaitEvent { event: 0, index: 7 }],
        vec![Event::Compute(3)],
    ]);
    let mut engine = build_engine(SchemeId::TPI, {
        let mut c = EngineConfig::paper_default(64);
        c.procs = 2;
        c.net = tpi_net::NetworkConfig::paper_default(2);
        c
    });
    let _ = run_trace(&trace, engine.as_mut(), &SimOptions::default());
}

#[test]
fn lock_holders_serialize_in_clock_order() {
    // Both processors take the same lock; the second acquire must start
    // after the first release.
    let crit = |p: u64| {
        vec![
            Event::Compute((p * 10) as u32), // stagger the processors
            Event::AcquireLock(0),
            Event::Compute(100),
            Event::ReleaseLock(0),
        ]
    };
    let trace = trace_of(vec![crit(0), crit(1)]);
    let mut engine = build_engine(SchemeId::TPI, {
        let mut c = EngineConfig::paper_default(64);
        c.procs = 2;
        c.net = tpi_net::NetworkConfig::paper_default(2);
        c
    });
    let r = run_trace(&trace, engine.as_mut(), &SimOptions::default());
    // Two critical sections of 100 cycles each cannot overlap: the busy
    // span of the run exceeds 200 cycles even though each processor's own
    // work is ~110.
    assert!(
        r.total_cycles >= 200,
        "criticals overlapped: {} cycles",
        r.total_cycles
    );
    assert_eq!(r.lock_acquires, 2);
    assert!(r.lock_wait_cycles > 0);
}

#[test]
fn posted_wait_costs_only_the_sync() {
    // P1 waits on an event P0 posts immediately: the wait must not block
    // beyond the post time.
    let trace = trace_of(vec![
        vec![Event::PostEvent { event: 0, index: 1 }],
        vec![
            Event::Compute(50),
            Event::WaitEvent { event: 0, index: 1 },
            Event::Compute(1),
        ],
    ]);
    let mut engine = build_engine(SchemeId::TPI, {
        let mut c = EngineConfig::paper_default(64);
        c.procs = 2;
        c.net = tpi_net::NetworkConfig::paper_default(2);
        c
    });
    let r = run_trace(&trace, engine.as_mut(), &SimOptions::default());
    // P1: 50 compute + 1 wait + 1 compute, plus barrier/setup.
    assert!(
        r.busy_cycles[1] <= 55,
        "wait overcharged: {}",
        r.busy_cycles[1]
    );
}

#[test]
fn uncontended_lock_is_cheap() {
    let trace = trace_of(vec![
        vec![
            Event::AcquireLock(3),
            Event::Read {
                addr: WordAddr(0),
                kind: ReadKind::Critical,
                version: 0,
            },
            Event::ReleaseLock(3),
        ],
        vec![],
    ]);
    let mut engine = build_engine(SchemeId::TPI, {
        let mut c = EngineConfig::paper_default(64);
        c.procs = 2;
        c.net = tpi_net::NetworkConfig::paper_default(2);
        c
    });
    let r = run_trace(&trace, engine.as_mut(), &SimOptions::default());
    assert_eq!(r.lock_wait_cycles, 0);
    assert_eq!(r.lock_acquires, 1);
    let _ = ProcId(0);
}
