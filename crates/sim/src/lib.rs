//! Multiprocessor timing simulation for the TPI coherence study.
//!
//! This crate is the back half of the paper's execution-driven methodology:
//! it replays the memory-event traces produced by `tpi-trace` against a
//! coherence engine from `tpi-proto`, advancing per-processor clocks,
//! synchronizing at epoch barriers, and collecting the measurements the
//! paper reports — execution time, miss rates, classified misses, average
//! miss latency, and network traffic.
//!
//! # Example
//!
//! ```
//! use tpi_compiler::{mark_program, CompilerOptions};
//! use tpi_ir::{ProgramBuilder, subs};
//! use tpi_proto::{build_engine, EngineConfig, SchemeId};
//! use tpi_sim::{run_trace, SimOptions};
//! use tpi_trace::{generate_trace, TraceOptions};
//!
//! let mut p = ProgramBuilder::new();
//! let a = p.shared("A", [64]);
//! let main = p.proc("main", |f| {
//!     f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1));
//!     f.doall(0, 63, |i, f| f.load(vec![a.at(subs![i])], 1));
//! });
//! let prog = p.finish(main).expect("valid");
//! let marking = mark_program(&prog, &CompilerOptions::default());
//! let trace = generate_trace(&prog, &marking, &TraceOptions::default())?;
//! let mut engine = build_engine(
//!     SchemeId::TPI,
//!     EngineConfig::paper_default(trace.layout.total_words()),
//! );
//! let result = run_trace(&trace, engine.as_mut(), &SimOptions::default());
//! assert!(result.total_cycles > 0);
//! # Ok::<(), tpi_trace::TraceError>(())
//! ```

#![warn(missing_docs)]

pub mod run;
pub mod shard;

pub use run::{run_trace, verify_accounting, EpochProfile, SimHostProfile, SimOptions, SimResult};
pub use shard::{run_trace_sharded, ShardExec, ShardOptions};
