//! Shard-parallel trace replay with a deterministic merge.
//!
//! The serial replay loop ([`crate::run_trace`]) interleaves all processors
//! through one engine. This module partitions the processors across `S`
//! engine *shards* (`owner(p) = p % S`) and replays each shard's processors
//! independently within an epoch, synchronizing only at epoch boundaries —
//! exactly the barrier discipline the simulated machine itself uses.
//!
//! # Why this is exact, not approximate
//!
//! A scheme may opt in by returning `true` from
//! [`CoherenceEngine::shard_safe`]. The contract is that every per-event
//! outcome (stall, miss class, traffic) is a pure function of
//!
//! 1. per-processor state (caches, write buffers, timetags),
//! 2. global state **committed at the previous epoch boundary** (memory
//!    versions under the write-buffer-drain visibility rule, network load
//!    factor `rho`), and
//! 3. commutative accumulators (traffic word counts, op counters),
//!
//! and never of the mid-epoch interleaving of *other* processors. Under
//! that contract, replaying each processor's stream flat (no min-clock
//! scan) produces bit-identical per-processor counters and clocks, and
//! summing the commutative accumulators reproduces the serial totals
//! exactly. The equivalence pin in `tests/runner_equivalence.rs` holds
//! every scheme to this across kernels with false sharing and doacross
//! synchronization.
//!
//! Epochs that contain lock or post/wait events are *sync-ful*: their
//! cross-processor order is semantically meaningful, so they are replayed
//! by a single dispatcher that mirrors the serial min-clock loop while
//! still routing each engine call to the owning shard. Schemes whose
//! protocol state is order-sensitive even for plain reads and writes
//! (directory sharer sets, Tardis leases) report `shard_safe() == false`
//! and fall back to the serial path entirely.
//!
//! Each shard holds a full-width engine replica: processor `p`'s cache
//! only ever has content on `owner(p)`'s replica, so per-processor results
//! are read from the owner (*owner-select*) while traffic and operation
//! counters are summed across replicas.
//!
//! # Epoch phase protocol
//!
//! Per epoch, shards run four phases separated by barriers:
//!
//! * **P1 replay** — each shard replays its owned processors (flat), or
//!   the dispatcher replays a sync-ful epoch on all shards.
//! * **C1 clock merge** — the coordinator assembles the full end-of-epoch
//!   clock vector by owner-select.
//! * **P2 boundary** — each shard runs
//!   [`CoherenceEngine::epoch_boundary`] with the *full* clock vector,
//!   drains its committed version updates, and reports its epoch traffic.
//! * **C2 + P3 finish** — the coordinator computes the epoch end time and
//!   total traffic; every shard then applies all shards' version updates
//!   (a commutative, idempotent max-merge) and refreshes its network load
//!   estimate from the merged totals, so every replica enters the next
//!   epoch with an identical view of global state.
//!
//! Execution is either inline (one thread walks the shards — the fast
//! path on a single-core host, where the win is the flat replay loop
//! dropping the `O(P)` min-clock scan per event) or threaded (one OS
//! thread per shard with [`std::sync::Barrier`] separating the phases).

use std::sync::{Barrier, Mutex};
use std::time::Instant;

use tpi_mem::{Cycle, ProcId};
use tpi_net::TrafficClass;
use tpi_proto::{build_engine, CoherenceEngine, EngineConfig, SchemeId};
use tpi_trace::{Event, Trace};

use crate::run::{elapsed_nanos_since, miss_by_array_table, run_trace, EpochProfile};
use crate::{SimHostProfile, SimOptions, SimResult};

/// How the shards of a sharded run execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardExec {
    /// Threads when the host has more than one available core, inline
    /// otherwise. The results are bit-identical either way.
    #[default]
    Auto,
    /// One thread walks all shards phase by phase (no OS threads).
    Inline,
    /// One OS thread per shard, barrier-synchronized per phase.
    Threads,
}

/// Knobs for [`run_trace_sharded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOptions {
    /// Requested shard count; clamped to `1..=procs`. `1` (the default)
    /// replays serially.
    pub shards: usize,
    /// Execution strategy (results are identical for all choices).
    pub exec: ShardExec,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            shards: 1,
            exec: ShardExec::Auto,
        }
    }
}

/// Replays `trace` on `shards.shards` engine shards, merging
/// deterministically into the same [`SimResult`] the serial
/// [`run_trace`] produces (host wall-clock fields excepted).
///
/// Falls back to the serial path when one shard is requested or when the
/// scheme is not [`CoherenceEngine::shard_safe`].
///
/// # Panics
///
/// Panics if the trace was generated for a different processor count than
/// `cfg.procs`, or on a malformed trace (lock deadlock), mirroring the
/// serial path.
#[must_use]
pub fn run_trace_sharded(
    trace: &Trace,
    scheme: SchemeId,
    cfg: &EngineConfig,
    opts: &SimOptions,
    shards: &ShardOptions,
) -> SimResult {
    let procs = trace.num_procs as usize;
    assert_eq!(
        procs, cfg.procs as usize,
        "trace and engine config disagree on processor count"
    );
    let s = shards.shards.clamp(1, procs.max(1));
    let mut probe = build_engine(scheme, cfg.clone());
    if s <= 1 || !probe.shard_safe() {
        return run_trace(trace, probe.as_mut(), opts);
    }
    drop(probe);

    let plan = Plan::build(trace, s);
    let mut states: Vec<ShardState> = (0..s)
        .map(|_| {
            let mut engine = build_engine(scheme, cfg.clone());
            engine.enable_shard_tracking();
            ShardState::new(engine, procs, trace.layout.decls().len())
        })
        .collect();
    let mut coord = Coord::new(procs, trace.epochs.len());

    let threaded = match shards.exec {
        ShardExec::Inline => false,
        ShardExec::Threads => true,
        ShardExec::Auto => std::thread::available_parallelism().is_ok_and(|n| n.get() > 1),
    };
    if threaded {
        run_threaded(trace, opts, &plan, &mut states, &mut coord);
    } else {
        run_inline(trace, opts, &plan, &mut states, &mut coord);
    }
    merge_result(trace, &plan, states, coord)
}

// ---------------------------------------------------------------------------
// Precomputed replay plan
// ---------------------------------------------------------------------------

/// Everything derivable from the trace alone, computed once.
struct Plan {
    /// Shard count after clamping.
    shards: usize,
    /// `owner[p]` = shard whose engine replica holds processor `p`.
    owner: Vec<usize>,
    /// Epochs containing no lock or post/wait events replay flat per
    /// processor; the rest go through the serial-order dispatcher.
    sync_free: Vec<bool>,
    /// Highest lock id in the trace (locks never span epochs).
    max_lock: Option<u32>,
    /// Dense ids for every distinct post/wait `(event, index)` pair.
    sync_pairs: Vec<(u32, i64)>,
}

impl Plan {
    fn build(trace: &Trace, shards: usize) -> Plan {
        let procs = trace.num_procs as usize;
        let owner = (0..procs).map(|p| p % shards).collect();
        let mut sync_free = Vec::with_capacity(trace.epochs.len());
        let mut max_lock: Option<u32> = None;
        let mut sync_pairs: Vec<(u32, i64)> = Vec::new();
        for epoch in &trace.epochs {
            let mut free = true;
            for stream in &epoch.per_proc {
                for ev in stream {
                    match ev {
                        Event::AcquireLock(l) | Event::ReleaseLock(l) => {
                            free = false;
                            max_lock = Some(max_lock.map_or(*l, |m| m.max(*l)));
                        }
                        Event::PostEvent { event, index } | Event::WaitEvent { event, index } => {
                            free = false;
                            sync_pairs.push((*event, *index));
                        }
                        _ => {}
                    }
                }
            }
            sync_free.push(free);
        }
        sync_pairs.sort_unstable();
        sync_pairs.dedup();
        Plan {
            shards,
            owner,
            sync_free,
            max_lock,
            sync_pairs,
        }
    }

    fn sync_id(&self, event: u32, index: i64) -> usize {
        self.sync_pairs
            .binary_search(&(event, index))
            .expect("every post/wait pair was pre-scanned")
    }
}

// ---------------------------------------------------------------------------
// Per-shard and coordinator state
// ---------------------------------------------------------------------------

/// One shard: an engine replica plus its per-epoch scratch and run-long
/// accumulators.
struct ShardState {
    engine: Box<dyn CoherenceEngine>,
    /// Full-width clock vector; only owned entries are meaningful after a
    /// flat replay (the dispatcher bypasses this and writes the
    /// coordinator's vector directly).
    clocks: Vec<Cycle>,
    /// Boundary stalls from the last `epoch_boundary` call.
    stalls: Vec<Cycle>,
    /// Version updates committed by this shard at the last boundary.
    updates: Vec<(u64, u64)>,
    /// Network words this shard recorded during the last epoch.
    words: u64,
    /// Cumulative read misses over owned processors (for epoch deltas).
    miss_prev: u64,
    /// Read misses owned processors took during the last epoch.
    miss_delta: u64,
    /// Trace events this shard replayed (dispatcher events are attributed
    /// to the owner of the issuing processor).
    events: u64,
    /// Per-array read-miss tally, dense by `ArrayId`.
    array_misses: Vec<u64>,
    replay_nanos: u64,
    boundary_nanos: u64,
}

impl ShardState {
    fn new(engine: Box<dyn CoherenceEngine>, procs: usize, arrays: usize) -> ShardState {
        ShardState {
            engine,
            clocks: vec![0; procs],
            stalls: Vec::new(),
            updates: Vec::new(),
            words: 0,
            miss_prev: 0,
            miss_delta: 0,
            events: 0,
            array_misses: vec![0; arrays],
            replay_nanos: 0,
            boundary_nanos: 0,
        }
    }

    /// Sum of read misses over this shard's owned processors.
    fn owned_read_misses(&self, plan: &Plan, me: usize) -> u64 {
        self.engine
            .stats()
            .per_proc()
            .iter()
            .enumerate()
            .filter(|&(p, _)| plan.owner[p] == me)
            .map(|(_, s)| s.read_misses())
            .sum()
    }
}

/// State only the coordinator (shard 0's thread, or the inline driver)
/// touches: merged clocks and the run-long global accounting.
struct Coord {
    /// Merged end-of-epoch clock vector (full width).
    clocks: Vec<Cycle>,
    /// Global simulated time at the last completed epoch boundary.
    global: Cycle,
    busy: Vec<Cycle>,
    profile: Vec<EpochProfile>,
    lock_acquires: u64,
    lock_wait_cycles: Cycle,
    /// All shards' version updates for the current boundary, concatenated
    /// in shard order (the merge is commutative; the order is fixed anyway
    /// for determinism's sake).
    updates: Vec<(u64, u64)>,
    /// Total network words across shards for the current epoch.
    total_words: u64,
    /// Wall cycles of the current epoch including boundary and setup.
    elapsed: Cycle,
}

impl Coord {
    fn new(procs: usize, epochs: usize) -> Coord {
        Coord {
            clocks: vec![0; procs],
            global: 0,
            busy: vec![0; procs],
            profile: Vec::with_capacity(epochs),
            lock_acquires: 0,
            lock_wait_cycles: 0,
            updates: Vec::new(),
            total_words: 0,
            elapsed: 0,
        }
    }
}

/// Cross-epoch dispatcher tables for sync-ful epochs (mirrors the serial
/// loop's hoisted state).
struct Dispatch {
    idx: Vec<usize>,
    blocked_on: Vec<Option<Block>>,
    active: Vec<usize>,
    lock_holder: Vec<Option<usize>>,
    posted_at: Vec<Cycle>,
    posted_stamp: Vec<u64>,
    epoch_stamp: u64,
}

#[derive(Clone, Copy, PartialEq)]
enum Block {
    Lock(u32),
    Event(usize),
}

impl Dispatch {
    fn new(plan: &Plan, procs: usize) -> Dispatch {
        Dispatch {
            idx: vec![0; procs],
            blocked_on: vec![None; procs],
            active: Vec::with_capacity(procs),
            lock_holder: vec![None; plan.max_lock.map_or(0, |m| m as usize + 1)],
            posted_at: vec![0; plan.sync_pairs.len()],
            posted_stamp: vec![0; plan.sync_pairs.len()],
            epoch_stamp: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Phase functions (shared by the inline and threaded drivers)
// ---------------------------------------------------------------------------

/// P1 for a sync-free epoch: replay shard `me`'s owned processors flat.
///
/// No min-clock scan: within an epoch a shard-safe engine's outcomes do
/// not depend on other processors' progress, so each stream replays
/// sequentially. This is the algorithmic win over the serial loop's
/// `O(P)` scan per event.
fn replay_flat(
    trace: &Trace,
    epoch_idx: usize,
    t0: Cycle,
    plan: &Plan,
    me: usize,
    st: &mut ShardState,
) {
    let start = Instant::now();
    let epoch = &trace.epochs[epoch_idx];
    let span = trace.layout.total_words().max(1);
    for (p, stream) in epoch.per_proc.iter().enumerate() {
        if plan.owner[p] != me {
            continue;
        }
        let mut now = t0;
        for ev in stream {
            let spent = match ev {
                Event::Compute(c) => Cycle::from(*c),
                Event::Read {
                    addr,
                    kind,
                    version,
                } => {
                    let outcome = st
                        .engine
                        .read(ProcId(p as u32), *addr, *kind, *version, now);
                    if outcome.miss.is_some() {
                        let folded = tpi_mem::WordAddr(addr.0 % span);
                        if let Some(id) = trace.layout.array_of(folded) {
                            st.array_misses[id.0 as usize] += 1;
                        }
                    }
                    outcome.stall
                }
                Event::Write { addr, version } => {
                    st.engine.write(ProcId(p as u32), *addr, *version, now)
                }
                Event::CriticalWrite { addr, version } => {
                    st.engine
                        .write_critical(ProcId(p as u32), *addr, *version, now)
                }
                // Plan::build classified this epoch as sync-free.
                Event::AcquireLock(_)
                | Event::ReleaseLock(_)
                | Event::PostEvent { .. }
                | Event::WaitEvent { .. } => unreachable!("sync event in sync-free epoch"),
            };
            now += spent;
            st.events += 1;
        }
        st.clocks[p] = now;
    }
    st.replay_nanos = st.replay_nanos.saturating_add(elapsed_nanos_since(start));
}

/// P1 for a sync-ful epoch: one dispatcher replays *all* processors in
/// the serial min-clock order, routing each engine call to the owner's
/// replica. Lock and post/wait traffic lands on the owning processor's
/// shard, so per-class sums match the serial engine's.
///
/// Writes the merged clock vector directly into `coord.clocks`.
#[allow(clippy::too_many_lines)]
fn dispatch_syncful(
    trace: &Trace,
    epoch_idx: usize,
    t0: Cycle,
    plan: &Plan,
    disp: &mut Dispatch,
    shards: &mut [&mut ShardState],
    coord: &mut Coord,
) {
    let start = Instant::now();
    let epoch = &trace.epochs[epoch_idx];
    let procs = epoch.per_proc.len();
    let span = trace.layout.total_words().max(1);
    disp.epoch_stamp += 1;
    let stamp = disp.epoch_stamp;
    coord.clocks.fill(t0);
    disp.idx.fill(0);
    disp.blocked_on.fill(None);
    disp.lock_holder.fill(None);
    disp.active.clear();
    disp.active
        .extend((0..procs).filter(|&p| !epoch.per_proc[p].is_empty()));
    loop {
        let mut next: Option<usize> = None;
        for &p in &disp.active {
            let eligible = match disp.blocked_on[p] {
                Some(Block::Lock(l)) => disp.lock_holder[l as usize].is_none(),
                Some(Block::Event(id)) => disp.posted_stamp[id] == stamp,
                None => true,
            };
            if eligible && next.is_none_or(|q: usize| (coord.clocks[p], p) < (coord.clocks[q], q)) {
                next = Some(p);
            }
        }
        let Some(p) = next else {
            assert!(
                disp.active.is_empty(),
                "lock deadlock: events remain but every processor is blocked"
            );
            break;
        };
        let sh = plan.owner[p];
        let ev = &epoch.per_proc[p][disp.idx[p]];
        let now = coord.clocks[p];
        let spent = match ev {
            Event::Compute(c) => Cycle::from(*c),
            Event::Read {
                addr,
                kind,
                version,
            } => {
                let outcome = shards[sh]
                    .engine
                    .read(ProcId(p as u32), *addr, *kind, *version, now);
                if outcome.miss.is_some() {
                    let folded = tpi_mem::WordAddr(addr.0 % span);
                    if let Some(id) = trace.layout.array_of(folded) {
                        shards[sh].array_misses[id.0 as usize] += 1;
                    }
                }
                outcome.stall
            }
            Event::Write { addr, version } => {
                shards[sh]
                    .engine
                    .write(ProcId(p as u32), *addr, *version, now)
            }
            Event::CriticalWrite { addr, version } => {
                shards[sh]
                    .engine
                    .write_critical(ProcId(p as u32), *addr, *version, now)
            }
            Event::AcquireLock(l) => {
                if disp.lock_holder[*l as usize].is_some() {
                    disp.blocked_on[p] = Some(Block::Lock(*l));
                    continue;
                }
                disp.blocked_on[p] = None;
                disp.lock_holder[*l as usize] = Some(p);
                coord.lock_acquires += 1;
                shards[sh]
                    .engine
                    .network_mut()
                    .record(TrafficClass::Coherence, 1);
                shards[sh].engine.network().word_fetch()
            }
            Event::ReleaseLock(l) => {
                let holder = disp.lock_holder[*l as usize].take();
                debug_assert_eq!(holder, Some(p), "release by non-holder");
                for q in 0..procs {
                    if disp.blocked_on[q] == Some(Block::Lock(*l)) && coord.clocks[q] < now {
                        coord.lock_wait_cycles += now - coord.clocks[q];
                        coord.clocks[q] = now;
                    }
                }
                shards[sh]
                    .engine
                    .network_mut()
                    .record(TrafficClass::Coherence, 1);
                1
            }
            Event::PostEvent { event, index } => {
                let id = plan.sync_id(*event, *index);
                disp.posted_at[id] = now;
                disp.posted_stamp[id] = stamp;
                for q in 0..procs {
                    if disp.blocked_on[q] == Some(Block::Event(id)) && coord.clocks[q] < now {
                        coord.lock_wait_cycles += now - coord.clocks[q];
                        coord.clocks[q] = now;
                    }
                }
                shards[sh]
                    .engine
                    .network_mut()
                    .record(TrafficClass::Coherence, 1);
                1
            }
            Event::WaitEvent { event, index } => {
                let id = plan.sync_id(*event, *index);
                if disp.posted_stamp[id] == stamp {
                    let t = disp.posted_at[id];
                    disp.blocked_on[p] = None;
                    shards[sh]
                        .engine
                        .network_mut()
                        .record(TrafficClass::Coherence, 0);
                    let stall = now.max(t).saturating_sub(now) + 1;
                    coord.lock_wait_cycles += stall - 1;
                    stall
                } else {
                    disp.blocked_on[p] = Some(Block::Event(id));
                    continue;
                }
            }
        };
        disp.idx[p] += 1;
        coord.clocks[p] += spent;
        shards[sh].events += 1;
        if disp.idx[p] == epoch.per_proc[p].len() {
            disp.active.retain(|&q| q != p);
        }
    }
    shards[0].replay_nanos = shards[0]
        .replay_nanos
        .saturating_add(elapsed_nanos_since(start));
}

/// C1: assemble the full end-of-epoch clock vector by owner-select (the
/// dispatcher already wrote it for sync-ful epochs).
fn merge_clocks(plan: &Plan, states: &[&mut ShardState], coord: &mut Coord) {
    for (p, c) in coord.clocks.iter_mut().enumerate() {
        *c = states[plan.owner[p]].clocks[p];
    }
}

/// P2: run the boundary on shard `me` with the merged clock vector, then
/// snapshot what the coordinator needs (traffic words, version updates,
/// owned-processor miss delta).
fn boundary_phase(plan: &Plan, me: usize, clocks: &[Cycle], st: &mut ShardState) {
    let start = Instant::now();
    st.stalls = st.engine.epoch_boundary(clocks);
    st.updates = st.engine.drain_version_updates();
    st.words = st.engine.network().epoch_words();
    let cur = st.owned_read_misses(plan, me);
    st.miss_delta = cur - st.miss_prev;
    st.miss_prev = cur;
    st.boundary_nanos = st.boundary_nanos.saturating_add(elapsed_nanos_since(start));
}

/// C2: fold the shards' boundary outputs into the epoch's global
/// accounting, exactly as the serial loop does.
fn coordinate_epoch(
    trace: &Trace,
    epoch_idx: usize,
    t0: Cycle,
    opts: &SimOptions,
    plan: &Plan,
    states: &[&mut ShardState],
    coord: &mut Coord,
) {
    let t_end = coord
        .clocks
        .iter()
        .enumerate()
        .map(|(p, &c)| c + states[plan.owner[p]].stalls[p])
        .max()
        .unwrap_or(t0)
        + opts.epoch_setup_cycles;
    coord.elapsed = t_end - t0;
    for (p, &c) in coord.clocks.iter().enumerate() {
        coord.busy[p] += c - t0;
    }
    coord.total_words = states.iter().map(|st| st.words).sum();
    coord.updates.clear();
    for st in states.iter() {
        coord.updates.extend_from_slice(&st.updates);
    }
    coord.profile.push(EpochProfile {
        epoch: trace.epochs[epoch_idx].epoch.0,
        cycles: coord.elapsed,
        misses: states.iter().map(|st| st.miss_delta).sum(),
    });
    coord.global = t_end;
}

/// P3: bring shard `me` up to date with the merged boundary — apply every
/// shard's version commits (max-merge; reapplying its own is a no-op) and
/// refresh the network load factor from the *total* traffic, so all
/// replicas compute the identical `rho` the serial engine would.
fn finish_phase(st: &mut ShardState, updates: &[(u64, u64)], total_words: u64, elapsed: Cycle) {
    st.engine.apply_version_updates(updates);
    st.engine.network_mut().end_epoch_as(total_words, elapsed);
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Sequential driver: one thread walks every phase of every shard. On a
/// single-core host this is the fastest execution and shares all phase
/// code with the threaded driver.
fn run_inline(
    trace: &Trace,
    opts: &SimOptions,
    plan: &Plan,
    states: &mut [ShardState],
    coord: &mut Coord,
) {
    let procs = trace.num_procs as usize;
    let mut disp = Dispatch::new(plan, procs);
    for e in 0..trace.epochs.len() {
        let t0 = coord.global;
        let mut refs: Vec<&mut ShardState> = states.iter_mut().collect();
        if plan.sync_free[e] {
            for (me, st) in refs.iter_mut().enumerate() {
                replay_flat(trace, e, t0, plan, me, st);
            }
            merge_clocks(plan, &refs, coord);
        } else {
            dispatch_syncful(trace, e, t0, plan, &mut disp, &mut refs, coord);
        }
        for (me, st) in refs.iter_mut().enumerate() {
            boundary_phase(plan, me, &coord.clocks, st);
        }
        coordinate_epoch(trace, e, t0, opts, plan, &refs, coord);
        for st in refs.iter_mut() {
            finish_phase(st, &coord.updates, coord.total_words, coord.elapsed);
        }
    }
}

/// Threaded driver: one OS thread per shard, phases separated by
/// barriers. Thread 0 doubles as the coordinator (and as the dispatcher
/// for sync-ful epochs), locking every shard's state while the other
/// threads park at the next barrier.
fn run_threaded(
    trace: &Trace,
    opts: &SimOptions,
    plan: &Plan,
    states: &mut [ShardState],
    coord: &mut Coord,
) {
    let s = plan.shards;
    let procs = trace.num_procs as usize;
    let shared: Vec<Mutex<&mut ShardState>> = states.iter_mut().map(Mutex::new).collect();
    let coord_cell = Mutex::new(coord);
    let barrier = Barrier::new(s);
    std::thread::scope(|scope| {
        for t in 0..s {
            let shared = &shared;
            let coord_cell = &coord_cell;
            let barrier = &barrier;
            scope.spawn(move || {
                // Dispatcher tables live on (and are only touched by)
                // thread 0.
                let mut disp = (t == 0).then(|| Dispatch::new(plan, procs));
                for e in 0..trace.epochs.len() {
                    // P1: flat replay of owned processors (sync-free
                    // epochs only; the dispatcher handles the rest below).
                    if plan.sync_free[e] {
                        let t0 = coord_cell.lock().unwrap().global;
                        let mut st = shared[t].lock().unwrap();
                        replay_flat(trace, e, t0, plan, t, &mut st);
                    }
                    barrier.wait();
                    // C1 (+ sync-ful P1): thread 0 takes every shard.
                    if t == 0 {
                        let mut coord = coord_cell.lock().unwrap();
                        let mut guards: Vec<_> = shared.iter().map(|m| m.lock().unwrap()).collect();
                        let mut refs: Vec<&mut ShardState> =
                            guards.iter_mut().map(|g| &mut ***g).collect();
                        if plan.sync_free[e] {
                            merge_clocks(plan, &refs, &mut coord);
                        } else {
                            let t0 = coord.global;
                            dispatch_syncful(
                                trace,
                                e,
                                t0,
                                plan,
                                disp.as_mut().expect("thread 0 owns the dispatcher"),
                                &mut refs,
                                &mut coord,
                            );
                        }
                    }
                    barrier.wait();
                    // P2: every shard runs its boundary with the merged
                    // clocks.
                    {
                        let clocks = coord_cell.lock().unwrap().clocks.clone();
                        let mut st = shared[t].lock().unwrap();
                        boundary_phase(plan, t, &clocks, &mut st);
                    }
                    barrier.wait();
                    // C2: thread 0 folds the boundary outputs.
                    if t == 0 {
                        let mut coord = coord_cell.lock().unwrap();
                        let mut guards: Vec<_> = shared.iter().map(|m| m.lock().unwrap()).collect();
                        let refs: Vec<&mut ShardState> =
                            guards.iter_mut().map(|g| &mut ***g).collect();
                        // `global` is not bumped to t_end until
                        // coordinate_epoch runs, so it still reads t0 here.
                        let t0 = coord.global;
                        coordinate_epoch(trace, e, t0, opts, plan, &refs, &mut coord);
                    }
                    barrier.wait();
                    // P3: every shard applies the merged boundary.
                    {
                        let (updates, words, elapsed) = {
                            let coord = coord_cell.lock().unwrap();
                            (coord.updates.clone(), coord.total_words, coord.elapsed)
                        };
                        let mut st = shared[t].lock().unwrap();
                        finish_phase(&mut st, &updates, words, elapsed);
                    }
                    barrier.wait();
                }
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Deterministic merge
// ---------------------------------------------------------------------------

/// Folds the shards into one [`SimResult`]: per-processor counters by
/// owner-select, commutative accumulators by summation, global timing
/// from the coordinator.
fn merge_result(trace: &Trace, plan: &Plan, states: Vec<ShardState>, coord: Coord) -> SimResult {
    let procs = trace.num_procs as usize;
    let per_proc: Vec<tpi_proto::ProcStats> = (0..procs)
        .map(|p| states[plan.owner[p]].engine.stats().per_proc()[p])
        .collect();
    let mut agg = tpi_proto::ProcStats::default();
    for s in &per_proc {
        agg.merge(s);
    }
    let mut traffic = tpi_net::TrafficStats::default();
    for st in &states {
        traffic.merge(st.engine.network().stats());
    }
    let wbuffer = states
        .iter()
        .map(|st| st.engine.write_buffer_stats())
        .try_fold(None::<tpi_cache::WriteBufferStats>, |acc, w| {
            let w = w?; // None for non-write-through schemes: propagate
            Some(Some(match acc {
                None => w,
                Some(mut a) => {
                    a.enqueued += w.enqueued;
                    a.sent += w.sent;
                    a.coalesced += w.coalesced;
                    a
                }
            }))
        })
        .flatten();
    let mut array_misses = vec![0u64; trace.layout.decls().len()];
    for st in &states {
        for (dst, src) in array_misses.iter_mut().zip(&st.array_misses) {
            *dst += src;
        }
    }
    let mut ops = states[0].engine.op_counts();
    for st in &states[1..] {
        for (dst, src) in ops.iter_mut().zip(st.engine.op_counts()) {
            debug_assert_eq!(dst.0, src.0, "op counter order differs across replicas");
            dst.1 += src.1;
        }
    }
    SimResult {
        scheme: states[0].engine.name().to_owned(),
        total_cycles: coord.global,
        busy_cycles: coord.busy,
        agg,
        per_proc,
        traffic,
        wbuffer,
        epochs: trace.epochs.len() as u64,
        lock_acquires: coord.lock_acquires,
        lock_wait_cycles: coord.lock_wait_cycles,
        profile: coord.profile,
        miss_by_array: miss_by_array_table(&trace.layout, &array_misses),
        host: SimHostProfile {
            replay_nanos: states.iter().map(|st| st.replay_nanos).sum(),
            boundary_nanos: states.iter().map(|st| st.boundary_nanos).sum(),
            events: states.iter().map(|st| st.events).sum(),
            ops,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_compiler::{mark_program, CompilerOptions};
    use tpi_ir::{subs, Cond, ProgramBuilder};
    use tpi_trace::{generate_trace, TraceOptions};

    fn producer_consumer_trace() -> Trace {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [256]);
        let b = p.shared("B", [256]);
        let main = p.proc("main", |f| {
            f.doall(0, 255, |i, f| f.store(a.at(subs![i]), vec![], 2));
            f.doall(0, 255, |i, f| {
                f.store(b.at(subs![i]), vec![a.at(subs![i])], 2)
            });
        });
        let prog = p.finish(main).unwrap();
        let marking = mark_program(&prog, &CompilerOptions::default());
        generate_trace(&prog, &marking, &TraceOptions::default()).unwrap()
    }

    /// Locks (critical accumulation) plus a doacross pipeline: every
    /// dispatcher arm — acquire/release, post/wait, critical writes —
    /// appears in some epoch.
    fn syncful_trace() -> Trace {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let acc = p.shared("ACC", [4]);
        let lock = p.lock();
        let ev = p.event();
        let main = p.proc("main", |f| {
            f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 2));
            f.doall(0, 63, |i, f| {
                f.critical(lock, |f| {
                    f.store(acc.at(subs![0]), vec![acc.at(subs![0]), a.at(subs![i])], 3);
                });
            });
            f.doall(0, 15, |i, f| {
                f.if_else(
                    // True only at i == 0: the pipeline head has no
                    // predecessor to wait on.
                    Cond::EveryN {
                        var: i,
                        modulus: i64::MAX,
                        phase: 0,
                    },
                    |f| {
                        f.store(a.at(subs![i]), vec![a.at(subs![i])], 2);
                    },
                    |f| {
                        f.wait(ev, i - 1);
                        f.store(a.at(subs![i]), vec![a.at(subs![i - 1]), a.at(subs![i])], 2);
                    },
                );
                f.post(ev, i);
            });
        });
        let prog = p.finish(main).unwrap();
        let marking = mark_program(&prog, &CompilerOptions::default());
        generate_trace(&prog, &marking, &TraceOptions::default()).unwrap()
    }

    fn strip_host(mut r: SimResult) -> SimResult {
        r.host = SimHostProfile::default();
        r
    }

    fn serial(scheme: SchemeId, trace: &Trace) -> SimResult {
        let cfg = EngineConfig::paper_default(trace.layout.total_words());
        let mut engine = build_engine(scheme, cfg);
        strip_host(run_trace(trace, engine.as_mut(), &SimOptions::default()))
    }

    fn sharded(scheme: SchemeId, trace: &Trace, shards: usize, exec: ShardExec) -> SimResult {
        let cfg = EngineConfig::paper_default(trace.layout.total_words());
        let so = ShardOptions { shards, exec };
        strip_host(run_trace_sharded(
            trace,
            scheme,
            &cfg,
            &SimOptions::default(),
            &so,
        ))
    }

    fn assert_equivalent(a: &SimResult, b: &SimResult) {
        assert_eq!(a.scheme, b.scheme);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.busy_cycles, b.busy_cycles);
        assert_eq!(a.agg, b.agg);
        assert_eq!(a.per_proc, b.per_proc);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.wbuffer, b.wbuffer);
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.lock_acquires, b.lock_acquires);
        assert_eq!(a.lock_wait_cycles, b.lock_wait_cycles);
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.miss_by_array, b.miss_by_array);
        assert_eq!(a.host.events, b.host.events);
        assert_eq!(a.host.ops, b.host.ops);
    }

    #[test]
    fn sharded_tpi_matches_serial_inline() {
        let trace = producer_consumer_trace();
        let want = serial(SchemeId::TPI, &trace);
        for shards in [2, 3, 16] {
            let got = sharded(SchemeId::TPI, &trace, shards, ShardExec::Inline);
            assert_equivalent(&got, &want);
        }
    }

    #[test]
    fn sharded_tpi_matches_serial_threaded() {
        let trace = producer_consumer_trace();
        let want = serial(SchemeId::TPI, &trace);
        let got = sharded(SchemeId::TPI, &trace, 4, ShardExec::Threads);
        assert_equivalent(&got, &want);
    }

    #[test]
    fn sharded_sc_and_base_match_serial() {
        let trace = producer_consumer_trace();
        for scheme in [SchemeId::SC, SchemeId::BASE, SchemeId::IDEAL] {
            let want = serial(scheme, &trace);
            let got = sharded(scheme, &trace, 4, ShardExec::Inline);
            assert_equivalent(&got, &want);
        }
    }

    #[test]
    fn order_sensitive_schemes_fall_back_to_serial() {
        let trace = producer_consumer_trace();
        for scheme in [SchemeId::FULL_MAP, SchemeId::TARDIS] {
            let want = serial(scheme, &trace);
            let got = sharded(scheme, &trace, 8, ShardExec::Auto);
            assert_equivalent(&got, &want);
        }
    }

    #[test]
    fn syncful_epochs_match_serial_on_both_drivers() {
        let trace = syncful_trace();
        for scheme in [SchemeId::TPI, SchemeId::SC] {
            let want = serial(scheme, &trace);
            for exec in [ShardExec::Inline, ShardExec::Threads] {
                let got = sharded(scheme, &trace, 4, exec);
                assert_equivalent(&got, &want);
            }
        }
    }

    #[test]
    fn one_shard_is_the_serial_path() {
        let trace = producer_consumer_trace();
        let want = serial(SchemeId::TPI, &trace);
        let got = sharded(SchemeId::TPI, &trace, 1, ShardExec::Auto);
        assert_equivalent(&got, &want);
    }

    #[test]
    fn shard_count_exceeding_procs_is_clamped() {
        let trace = producer_consumer_trace();
        let want = serial(SchemeId::TPI, &trace);
        let got = sharded(SchemeId::TPI, &trace, 1000, ShardExec::Inline);
        assert_equivalent(&got, &want);
    }
}
