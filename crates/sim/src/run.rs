//! Replaying a trace against a coherence engine with cycle accounting.
//!
//! The simulator advances one global clock per epoch: within an epoch the
//! per-processor event streams are interleaved in local-time order (the
//! processor with the smallest clock executes its next event), which keeps
//! cross-processor protocol interactions — directory invalidations,
//! ownership transfers, network load — causally ordered. At the epoch
//! boundary all processors synchronize at a barrier: the engine adds its
//! boundary costs (write-buffer drain, two-phase resets), a fixed loop
//! setup/scheduling overhead is charged, and the network's load estimate is
//! refreshed from the epoch's traffic.

use std::time::Instant;
use tpi_mem::{Cycle, ProcId};
use tpi_net::TrafficClass;
use tpi_proto::CoherenceEngine;
use tpi_trace::{Event, Trace};

/// Simulator knobs that are not part of the coherence engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Barrier + parallel-loop setup/scheduling cost per epoch.
    pub epoch_setup_cycles: Cycle,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            epoch_setup_cycles: 100,
        }
    }
}

/// Per-epoch timing/miss profile (for timeline figures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochProfile {
    /// Epoch index.
    pub epoch: u64,
    /// Wall-clock cycles the epoch took (including barrier and setup).
    pub cycles: Cycle,
    /// Read misses taken during the epoch (all processors).
    pub misses: u64,
}

/// Host-side (wall-clock) self-measurement of one [`run_trace`] call, fed
/// into the `tpi-prof` stage profiler by the experiment engine.
///
/// These are measurements of the *simulator program*, not of the simulated
/// machine: nanoseconds of host time and counts of host work. They are
/// excluded from every determinism comparison (the equivalence tests
/// compare cycles, protocol counters, and traffic — never host time).
#[derive(Debug, Clone, Default)]
pub struct SimHostProfile {
    /// Host nanoseconds spent replaying events (the min-clock interleaving
    /// loop, including engine read/write calls).
    pub replay_nanos: u64,
    /// Host nanoseconds spent in [`CoherenceEngine::epoch_boundary`]
    /// (write-buffer drains, two-phase resets).
    pub boundary_nanos: u64,
    /// Trace events replayed.
    pub events: u64,
    /// Engine-reported operation counters (see
    /// [`CoherenceEngine::op_counts`]).
    pub ops: Vec<(&'static str, u64)>,
}

/// Everything measured in one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Scheme label.
    pub scheme: String,
    /// Total execution time.
    pub total_cycles: Cycle,
    /// Per-processor busy time (excludes barrier waiting).
    pub busy_cycles: Vec<Cycle>,
    /// Aggregate protocol counters.
    pub agg: tpi_proto::ProcStats,
    /// Per-processor protocol counters.
    pub per_proc: Vec<tpi_proto::ProcStats>,
    /// Network traffic by class.
    pub traffic: tpi_net::TrafficStats,
    /// Write-buffer behaviour (write-through schemes only).
    pub wbuffer: Option<tpi_cache::WriteBufferStats>,
    /// Number of epochs executed.
    pub epochs: u64,
    /// Lock acquisitions performed.
    pub lock_acquires: u64,
    /// Cycles processors spent waiting for contended locks.
    pub lock_wait_cycles: Cycle,
    /// Per-epoch timeline.
    pub profile: Vec<EpochProfile>,
    /// Read misses attributed to the program array that was accessed,
    /// sorted descending ("which array causes the misses"). Private-array
    /// replicas resolve to their declared array.
    pub miss_by_array: Vec<(String, u64)>,
    /// Host-side wall-clock self-measurement (profiling only; never part
    /// of any determinism comparison).
    pub host: SimHostProfile,
}

impl SimResult {
    /// Aggregate read miss rate.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        self.agg.miss_rate()
    }

    /// Aggregate average read-miss latency.
    #[must_use]
    pub fn avg_miss_latency(&self) -> f64 {
        self.agg.avg_miss_latency()
    }

    /// Speedup of this run relative to `other` (other / self).
    #[must_use]
    pub fn speedup_over(&self, other: &SimResult) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            other.total_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Network words per (shared) memory reference — a traffic density
    /// measure comparable across schemes.
    #[must_use]
    pub fn words_per_reference(&self) -> f64 {
        let refs = self.agg.reads + self.agg.writes;
        if refs == 0 {
            0.0
        } else {
            self.traffic.total_words() as f64 / refs as f64
        }
    }
}

/// Replays `trace` against `engine`.
///
/// # Panics
///
/// Panics if the trace was generated for a different processor count than
/// the engine was built with.
pub fn run_trace(trace: &Trace, engine: &mut dyn CoherenceEngine, opts: &SimOptions) -> SimResult {
    let procs = trace.num_procs as usize;
    assert_eq!(
        procs,
        engine.stats().per_proc().len(),
        "trace and engine disagree on processor count"
    );
    let mut global: Cycle = 0;
    let mut busy = vec![0u64; procs];
    let mut lock_acquires = 0u64;
    let mut lock_wait_cycles: Cycle = 0;
    let mut profile = Vec::with_capacity(trace.epochs.len());
    // Per-array read-miss tally, indexed directly by `ArrayId` (dense).
    let mut array_misses: Vec<u64> = vec![0; trace.layout.decls().len()];
    let mut replay_nanos = 0u64;
    let mut boundary_nanos = 0u64;
    let mut events_replayed = 0u64;

    // One pre-scan over the trace turns the synchronization keyspace dense:
    // lock ids index a flat holder table, and every distinct (event, index)
    // post/wait pair gets a dense id via binary search. The replay loop —
    // the simulator's hottest path — then runs without a single hash lookup.
    let mut max_lock: Option<u32> = None;
    let mut sync_pairs: Vec<(u32, i64)> = Vec::new();
    for epoch in &trace.epochs {
        for stream in &epoch.per_proc {
            for ev in stream {
                match ev {
                    Event::AcquireLock(l) | Event::ReleaseLock(l) => {
                        max_lock = Some(max_lock.map_or(*l, |m| m.max(*l)));
                    }
                    Event::PostEvent { event, index } | Event::WaitEvent { event, index } => {
                        sync_pairs.push((*event, *index));
                    }
                    _ => {}
                }
            }
        }
    }
    sync_pairs.sort_unstable();
    sync_pairs.dedup();
    let sync_id = |event: u32, index: i64| {
        sync_pairs
            .binary_search(&(event, index))
            .expect("every post/wait pair was pre-scanned")
    };

    #[derive(Clone, Copy, PartialEq)]
    enum Block {
        /// Waiting for this lock id to free.
        Lock(u32),
        /// Waiting for this dense sync-pair id to be posted.
        Event(usize),
    }
    // Per-epoch state, allocated once and reset per epoch (the hoisting
    // matters: a 100k-epoch trace would otherwise allocate five tables per
    // epoch).
    let mut clocks = vec![0 as Cycle; procs];
    let mut idx = vec![0usize; procs];
    let mut blocked_on: Vec<Option<Block>> = vec![None; procs];
    // Processors with events still to replay this epoch. Scanning only
    // these (instead of all `procs`) makes serial epochs — one non-empty
    // stream — cost O(events) instead of O(events * procs).
    let mut active: Vec<usize> = Vec::with_capacity(procs);
    // Lock state: holder per lock id; locks never span epochs.
    let mut lock_holder: Vec<Option<usize>> = vec![None; max_lock.map_or(0, |m| m as usize + 1)];
    // Doacross posts: post time per dense sync id, valid only when the
    // stamp matches the current epoch (stamping replaces per-epoch clears).
    let mut posted_at: Vec<Cycle> = vec![0; sync_pairs.len()];
    let mut posted_stamp: Vec<u64> = vec![0; sync_pairs.len()];
    let mut epoch_stamp: u64 = 0;

    for epoch in &trace.epochs {
        let host_epoch_start = Instant::now();
        let t0 = global;
        let misses_before = engine.stats().aggregate().read_misses();
        epoch_stamp += 1;
        clocks.fill(t0);
        idx.fill(0);
        blocked_on.fill(None);
        lock_holder.fill(None);
        active.clear();
        active.extend((0..procs).filter(|&p| !epoch.per_proc[p].is_empty()));
        // Min-clock interleaving across processors; blocked processors are
        // ineligible until their lock frees. Ties break to the lowest
        // processor index, so the winner is independent of scan order.
        loop {
            let mut next: Option<usize> = None;
            for &p in &active {
                let eligible = match blocked_on[p] {
                    Some(Block::Lock(l)) => lock_holder[l as usize].is_none(),
                    Some(Block::Event(id)) => posted_stamp[id] == epoch_stamp,
                    None => true,
                };
                if eligible && next.is_none_or(|q: usize| (clocks[p], p) < (clocks[q], q)) {
                    next = Some(p);
                }
            }
            let Some(p) = next else {
                assert!(
                    active.is_empty(),
                    "lock deadlock: events remain but every processor is blocked"
                );
                break;
            };
            let ev = &epoch.per_proc[p][idx[p]];
            let now = clocks[p];
            let spent = match ev {
                Event::Compute(c) => Cycle::from(*c),
                Event::Read {
                    addr,
                    kind,
                    version,
                } => {
                    let outcome = engine.read(ProcId(p as u32), *addr, *kind, *version, now);
                    if outcome.miss.is_some() {
                        // Private replicas live at base + k*span: fold back.
                        let span = trace.layout.total_words().max(1);
                        let folded = tpi_mem::WordAddr(addr.0 % span);
                        if let Some(id) = trace.layout.array_of(folded) {
                            array_misses[id.0 as usize] += 1;
                        }
                    }
                    outcome.stall
                }
                Event::Write { addr, version } => {
                    engine.write(ProcId(p as u32), *addr, *version, now)
                }
                Event::CriticalWrite { addr, version } => {
                    engine.write_critical(ProcId(p as u32), *addr, *version, now)
                }
                Event::AcquireLock(l) => {
                    if lock_holder[*l as usize].is_some() {
                        // Stay blocked; retry once the holder releases.
                        blocked_on[p] = Some(Block::Lock(*l));
                        continue;
                    }
                    blocked_on[p] = None;
                    lock_holder[*l as usize] = Some(p);
                    lock_acquires += 1;
                    // The acquire itself is an atomic read-modify-write at
                    // the lock's home memory module.
                    engine.network_mut().record(TrafficClass::Coherence, 1);
                    engine.network().word_fetch()
                }
                Event::ReleaseLock(l) => {
                    let holder = lock_holder[*l as usize].take();
                    debug_assert_eq!(holder, Some(p), "release by non-holder");
                    // Waiters resume no earlier than the release instant.
                    for q in 0..procs {
                        if blocked_on[q] == Some(Block::Lock(*l)) && clocks[q] < now {
                            lock_wait_cycles += now - clocks[q];
                            clocks[q] = now;
                        }
                    }
                    engine.network_mut().record(TrafficClass::Coherence, 1);
                    1
                }
                Event::PostEvent { event, index } => {
                    // The post is a release fence + a flag write at the
                    // event's home node.
                    let id = sync_id(*event, *index);
                    posted_at[id] = now;
                    posted_stamp[id] = epoch_stamp;
                    for q in 0..procs {
                        if blocked_on[q] == Some(Block::Event(id)) && clocks[q] < now {
                            lock_wait_cycles += now - clocks[q];
                            clocks[q] = now;
                        }
                    }
                    engine.network_mut().record(TrafficClass::Coherence, 1);
                    1
                }
                Event::WaitEvent { event, index } => {
                    let id = sync_id(*event, *index);
                    if posted_stamp[id] == epoch_stamp {
                        let t = posted_at[id];
                        blocked_on[p] = None;
                        // Poll of the flag at the event's home node.
                        engine.network_mut().record(TrafficClass::Coherence, 0);
                        let stall = now.max(t).saturating_sub(now) + 1;
                        lock_wait_cycles += stall - 1;
                        stall
                    } else {
                        blocked_on[p] = Some(Block::Event(id));
                        continue;
                    }
                }
            };
            idx[p] += 1;
            clocks[p] += spent;
            events_replayed += 1;
            if idx[p] == epoch.per_proc[p].len() {
                active.retain(|&q| q != p);
            }
        }
        for p in 0..procs {
            busy[p] += clocks[p] - t0;
        }
        replay_nanos = replay_nanos.saturating_add(elapsed_nanos_since(host_epoch_start));
        let host_boundary_start = Instant::now();
        let stalls = engine.epoch_boundary(&clocks);
        boundary_nanos = boundary_nanos.saturating_add(elapsed_nanos_since(host_boundary_start));
        let t_end = clocks
            .iter()
            .zip(&stalls)
            .map(|(c, s)| c + s)
            .max()
            .unwrap_or(t0)
            + opts.epoch_setup_cycles;
        engine.network_mut().end_epoch(t_end - t0);
        profile.push(EpochProfile {
            epoch: epoch.epoch.0,
            cycles: t_end - t0,
            misses: engine.stats().aggregate().read_misses() - misses_before,
        });
        // Serial epochs still synchronize (the paper's master-worker model).
        let _ = &epoch.kind;
        global = t_end;
    }

    let per_proc: Vec<tpi_proto::ProcStats> = engine.stats().per_proc().to_vec();
    SimResult {
        scheme: engine.name().to_owned(),
        total_cycles: global,
        busy_cycles: busy,
        agg: engine.stats().aggregate(),
        per_proc,
        traffic: *engine.network().stats(),
        wbuffer: engine.write_buffer_stats(),
        epochs: trace.epochs.len() as u64,
        lock_acquires,
        lock_wait_cycles,
        profile,
        miss_by_array: miss_by_array_table(&trace.layout, &array_misses),
        host: SimHostProfile {
            replay_nanos,
            boundary_nanos,
            events: events_replayed,
            ops: engine.op_counts(),
        },
    }
}

/// Saturating nanoseconds since `start` (a duration that overflows `u64`
/// nanoseconds pins at `u64::MAX` instead of panicking).
pub(crate) fn elapsed_nanos_since(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Renders a dense per-array miss tally as the report's sorted
/// `(array name, misses)` table (shared by the serial and sharded paths).
pub(crate) fn miss_by_array_table(
    layout: &tpi_mem::MemLayout,
    array_misses: &[u64],
) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = array_misses
        .iter()
        .enumerate()
        .filter(|&(_, &n)| n > 0)
        .map(|(i, &n)| {
            let id = tpi_mem::ArrayId(i as u32);
            (layout.decl(id).name().to_owned(), n)
        })
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

/// Checks the bookkeeping identity `hits + misses == reads` per processor
/// and in aggregate.
///
/// # Errors
///
/// Returns a description of the first processor whose counters do not add
/// up.
pub fn verify_accounting(result: &SimResult) -> Result<(), String> {
    for (p, s) in result.per_proc.iter().enumerate() {
        if s.read_hits + s.read_misses() != s.reads {
            return Err(format!(
                "P{p}: hits {} + misses {} != reads {}",
                s.read_hits,
                s.read_misses(),
                s.reads
            ));
        }
    }
    let a = &result.agg;
    if a.read_hits + a.read_misses() != a.reads {
        return Err("aggregate accounting mismatch".to_owned());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_compiler::{mark_program, CompilerOptions};
    use tpi_ir::{subs, ProgramBuilder};
    use tpi_proto::{build_engine, registry, EngineConfig, SchemeId};
    use tpi_trace::{generate_trace, TraceOptions};

    fn producer_consumer_trace() -> Trace {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [256]);
        let b = p.shared("B", [256]);
        let main = p.proc("main", |f| {
            f.doall(0, 255, |i, f| f.store(a.at(subs![i]), vec![], 2));
            f.doall(0, 255, |i, f| {
                f.store(b.at(subs![i]), vec![a.at(subs![i])], 2)
            });
        });
        let prog = p.finish(main).unwrap();
        let marking = mark_program(&prog, &CompilerOptions::default());
        generate_trace(&prog, &marking, &TraceOptions::default()).unwrap()
    }

    fn run(scheme: SchemeId, trace: &Trace) -> SimResult {
        let cfg = EngineConfig::paper_default(trace.layout.total_words());
        let mut engine = build_engine(scheme, cfg);
        run_trace(trace, engine.as_mut(), &SimOptions::default())
    }

    #[test]
    fn accounting_identity_holds_for_all_schemes() {
        let trace = producer_consumer_trace();
        for scheme in registry::global().all().iter().map(|s| s.id()) {
            let r = run(scheme, &trace);
            verify_accounting(&r).unwrap_or_else(|e| panic!("{scheme}: {e}"));
            assert!(r.total_cycles > 0);
            assert_eq!(r.epochs, 2);
        }
    }

    #[test]
    fn scheme_ordering_on_producer_consumer() {
        let trace = producer_consumer_trace();
        let base = run(SchemeId::BASE, &trace);
        let tpi = run(SchemeId::TPI, &trace);
        let hw = run(SchemeId::FULL_MAP, &trace);
        // Caching schemes beat no-caching on this kernel.
        assert!(tpi.total_cycles < base.total_cycles);
        assert!(hw.total_cycles < base.total_cycles);
        // TPI and HW are in the same ballpark (the paper's headline).
        let ratio = tpi.total_cycles as f64 / hw.total_cycles as f64;
        assert!(
            (0.4..2.5).contains(&ratio),
            "TPI/HW ratio out of band: {ratio} ({} vs {})",
            tpi.total_cycles,
            hw.total_cycles
        );
    }

    #[test]
    fn deterministic_replay() {
        let trace = producer_consumer_trace();
        let r1 = run(SchemeId::TPI, &trace);
        let r2 = run(SchemeId::TPI, &trace);
        assert_eq!(r1.total_cycles, r2.total_cycles);
        assert_eq!(r1.traffic, r2.traffic);
    }

    #[test]
    fn busy_cycles_do_not_exceed_total() {
        let trace = producer_consumer_trace();
        let r = run(SchemeId::TPI, &trace);
        for &b in &r.busy_cycles {
            assert!(b <= r.total_cycles);
        }
    }

    #[test]
    fn host_profile_counts_every_event_once() {
        let trace = producer_consumer_trace();
        let r = run(SchemeId::TPI, &trace);
        let total_events: usize = trace.epochs.iter().map(EpochEvents::len).sum();
        assert_eq!(r.host.events, total_events as u64);
        assert!(r.host.replay_nanos > 0, "replay loop must record wall time");
        assert!(
            r.host
                .ops
                .iter()
                .any(|(name, n)| *name == "tpi_fills" && *n > 0),
            "TPI engine must report op counters: {:?}",
            r.host.ops
        );
    }

    use tpi_trace::EpochEvents;

    #[test]
    fn write_through_schemes_report_buffer_stats() {
        let trace = producer_consumer_trace();
        assert!(run(SchemeId::TPI, &trace).wbuffer.is_some());
        assert!(run(SchemeId::SC, &trace).wbuffer.is_some());
        assert!(run(SchemeId::FULL_MAP, &trace).wbuffer.is_none());
    }
}
