//! Scheme-specific safety invariants for the `tpi-model` model checker.
//!
//! Every registered [`crate::Scheme`] may supply a catalog of
//! [`ModelInvariant`]s through [`crate::Scheme::model_invariants`]. The
//! checker calls each invariant's `check` function against the live
//! engine after every exploration step and every epoch boundary; a check
//! downcasts the `dyn CoherenceEngine` back to its concrete type (via
//! [`CoherenceEngine::as_any`]) and inspects the protocol bookkeeping the
//! trait interface deliberately hides — directories, timetags, leases,
//! sharer masks.
//!
//! The catalogs here cover the built-in schemes; see `DESIGN.md`
//! ("Model checking the protocols") for what a new scheme must supply.

use crate::base::BaseEngine;
use crate::fullmap::DirectoryEngine;
use crate::hybrid::HybridEngine;
use crate::tardis::TardisEngine;
use crate::tpi::TpiEngine;
use crate::CoherenceEngine;

/// One scheme-specific safety invariant checked after every model step.
#[derive(Debug, Clone, Copy)]
pub struct ModelInvariant {
    /// Stable kebab-case name, quoted in counterexample traces.
    pub name: &'static str,
    /// One-line statement of the property.
    pub description: &'static str,
    /// Checks the invariant against a live engine. `Err` carries a
    /// human-readable description of the violation.
    pub check: fn(&dyn CoherenceEngine) -> Result<(), String>,
}

/// Downcasts `engine` to `T`, or explains which type the invariant
/// expected — an invariant paired with the wrong scheme is itself a bug
/// worth surfacing, not a silent pass.
fn downcast<T: 'static>(engine: &dyn CoherenceEngine) -> Result<&T, String> {
    engine.as_any().downcast_ref::<T>().ok_or_else(|| {
        format!(
            "invariant expected a {} engine but got {}",
            std::any::type_name::<T>(),
            engine.name()
        )
    })
}

/// Invariants of the BASE (uncached-shared) engine.
#[must_use]
pub fn base_invariants() -> Vec<ModelInvariant> {
    vec![ModelInvariant {
        name: "base-no-shared-lines",
        description: "no cache ever holds a valid word of the shared segment",
        check: |e| downcast::<BaseEngine>(e)?.check_no_shared_lines(),
    }]
}

/// Invariants of the TPI (two-phase invalidation) engine.
#[must_use]
pub fn tpi_invariants() -> Vec<ModelInvariant> {
    vec![ModelInvariant {
        name: "tpi-phase-discipline",
        description: "phase resets never preserve an out-of-phase timetag",
        check: |e| downcast::<TpiEngine>(e)?.check_phase_discipline(),
    }]
}

/// Invariants of the directory engines (full-map HW and LimitLess).
#[must_use]
pub fn directory_invariants() -> Vec<ModelInvariant> {
    vec![ModelInvariant {
        name: "dir-consistency",
        description: "directory entries and cached copies match exactly \
                      (owner exclusive, presence bits shared, no orphans)",
        check: |e| downcast::<DirectoryEngine>(e)?.verify_invariants(),
    }]
}

/// Invariants of the Tardis timestamp-lease engine.
#[must_use]
pub fn tardis_invariants() -> Vec<ModelInvariant> {
    vec![
        ModelInvariant {
            name: "tardis-stale-copy-lease",
            description: "a stale cached copy is leased strictly below the \
                          home write timestamp",
            check: |e| downcast::<TardisEngine>(e)?.check_stale_copy_leases(),
        },
        ModelInvariant {
            name: "tardis-lease-grant",
            description: "every cached lease is bounded by the home's \
                          max(rts, wts)",
            check: |e| downcast::<TardisEngine>(e)?.check_lease_grants(),
        },
    ]
}

/// Invariants of the hybrid update/invalidate engine.
#[must_use]
pub fn hybrid_invariants() -> Vec<ModelInvariant> {
    vec![
        ModelInvariant {
            name: "hybrid-sharer-mask",
            description: "every cache holding a valid copy has its \
                          directory presence bit set",
            check: |e| downcast::<HybridEngine>(e)?.check_sharer_mask(),
        },
        ModelInvariant {
            name: "hybrid-word-version",
            description: "no cached word runs ahead of write-through memory",
            check: |e| downcast::<HybridEngine>(e)?.check_word_versions(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::global;
    use crate::{build_engine, EngineConfig, SchemeId};

    #[test]
    fn builtin_invariants_pass_on_fresh_engines() {
        for scheme in global().all() {
            let engine = build_engine(scheme.id(), EngineConfig::paper_default(1024));
            for inv in scheme.model_invariants() {
                (inv.check)(engine.as_ref())
                    .unwrap_or_else(|e| panic!("{} {}: {e}", scheme.id(), inv.name));
            }
        }
    }

    #[test]
    fn invariant_names_are_stable_and_scheme_prefixed() {
        let expect = [
            (SchemeId::BASE, vec!["base-no-shared-lines"]),
            (SchemeId::SC, vec![]),
            (SchemeId::TPI, vec!["tpi-phase-discipline"]),
            (SchemeId::FULL_MAP, vec!["dir-consistency"]),
            (SchemeId::LIMITLESS, vec!["dir-consistency"]),
            (SchemeId::IDEAL, vec![]),
            (
                SchemeId::TARDIS,
                vec!["tardis-stale-copy-lease", "tardis-lease-grant"],
            ),
            (
                SchemeId::HYBRID,
                vec!["hybrid-sharer-mask", "hybrid-word-version"],
            ),
        ];
        for (id, names) in expect {
            let got: Vec<&str> = global()
                .get(id)
                .unwrap()
                .model_invariants()
                .iter()
                .map(|i| i.name)
                .collect();
            assert_eq!(got, names, "{id}");
        }
    }

    #[test]
    fn mismatched_downcast_reports_instead_of_passing() {
        let engine = build_engine(SchemeId::SC, EngineConfig::paper_default(1024));
        let inv = &tpi_invariants()[0];
        let err = (inv.check)(engine.as_ref()).unwrap_err();
        assert!(err.contains("expected"), "{err}");
    }
}
