//! Storage-overhead model: the paper's Figure 5.
//!
//! Figure 5 compares the bookkeeping storage of three schemes in terms of
//! the number of processors `P`, cache lines per node `C`, words per line
//! `L`, memory blocks per node `M`, LimitLess pointer count `i`, and the
//! TPI timetag width `b`:
//!
//! | Scheme            | cache overhead (SRAM) | memory overhead (DRAM) |
//! |-------------------|-----------------------|------------------------|
//! | full-map \[8\]      | `2*C*P` bits          | `(P+2)*M*P` bits       |
//! | LimitLess \[2\]     | `2*C*P` bits          | `(i+2)*M*P` bits       |
//! | TPI (this paper)  | `b*L*C*P` bits        | none                   |
//!
//! The paper's headline instance (P = 1024, i = 10) reports
//! "4 MB SRAM / 64.5 GB DRAM" for the full map versus "64 MB SRAM only"
//! for TPI with 8-bit tags. The LimitLess row is also provided in a
//! variant that charges the pointers their actual `log2 P` width, since
//! the table's literal `(i+2)` undercounts pointer bits.

/// Machine parameters for the storage formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageParams {
    /// Number of processors `P`.
    pub processors: u64,
    /// Cache lines per node `C`.
    pub cache_lines_per_node: u64,
    /// Words per cache line `L`.
    pub line_words: u64,
    /// Memory blocks (lines) per node `M`.
    pub mem_blocks_per_node: u64,
    /// LimitLess hardware pointers `i`.
    pub limitless_pointers: u64,
    /// TPI timetag width in bits `b`.
    pub tag_bits: u64,
}

impl StorageParams {
    /// The paper's Figure 5 instance: 1024 processors, 64 KB node caches
    /// with 16-byte lines (16 K lines), 8 MB of memory per node
    /// (512 K blocks), 10 LimitLess pointers, 8-bit timetags.
    #[must_use]
    pub fn paper_figure5() -> Self {
        StorageParams {
            processors: 1024,
            cache_lines_per_node: 16 * 1024,
            line_words: 4,
            mem_blocks_per_node: 512 * 1024,
            limitless_pointers: 10,
            tag_bits: 8,
        }
    }
}

/// Bits of bookkeeping storage, split by technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageOverhead {
    /// Fast (cache-side) storage in bits.
    pub sram_bits: u128,
    /// Memory-side storage in bits.
    pub dram_bits: u128,
}

impl StorageOverhead {
    /// SRAM megabytes (2^20 bytes).
    #[must_use]
    pub fn sram_mib(&self) -> f64 {
        self.sram_bits as f64 / 8.0 / 1024.0 / 1024.0
    }

    /// DRAM gigabytes (2^30 bytes).
    #[must_use]
    pub fn dram_gib(&self) -> f64 {
        self.dram_bits as f64 / 8.0 / 1024.0 / 1024.0 / 1024.0
    }
}

/// Full-map directory: 2 state bits per cache line, `P+2` bits per memory
/// block.
///
/// # Examples
///
/// ```
/// use tpi_proto::storage::{full_map, tpi, StorageParams};
///
/// let p = StorageParams::paper_figure5();
/// // The paper's headline: ~64 GB of directory DRAM at 1024 processors...
/// assert!(full_map(p).dram_gib() > 60.0);
/// // ...versus zero for TPI.
/// assert_eq!(tpi(p).dram_bits, 0);
/// ```
#[must_use]
pub fn full_map(p: StorageParams) -> StorageOverhead {
    StorageOverhead {
        sram_bits: 2 * (p.cache_lines_per_node * p.processors) as u128,
        dram_bits: ((p.processors + 2) * p.mem_blocks_per_node * p.processors) as u128,
    }
}

/// LimitLess directory, charged as the paper's table writes it:
/// `(i+2)` bits per memory block.
#[must_use]
pub fn limitless_as_tabulated(p: StorageParams) -> StorageOverhead {
    StorageOverhead {
        sram_bits: 2 * (p.cache_lines_per_node * p.processors) as u128,
        dram_bits: ((p.limitless_pointers + 2) * p.mem_blocks_per_node * p.processors) as u128,
    }
}

/// LimitLess directory with pointers charged their real `log2 P` width:
/// `(i*ceil(log2 P) + 2)` bits per memory block.
#[must_use]
pub fn limitless_pointer_width(p: StorageParams) -> StorageOverhead {
    let ptr_bits = 64 - u64::leading_zeros(p.processors.saturating_sub(1).max(1)) as u64;
    StorageOverhead {
        sram_bits: 2 * (p.cache_lines_per_node * p.processors) as u128,
        dram_bits: ((p.limitless_pointers * ptr_bits + 2) * p.mem_blocks_per_node * p.processors)
            as u128,
    }
}

/// TPI: `b` tag bits per cache *word*, nothing in memory.
#[must_use]
pub fn tpi(p: StorageParams) -> StorageOverhead {
    StorageOverhead {
        sram_bits: (p.tag_bits * p.line_words * p.cache_lines_per_node * p.processors) as u128,
        dram_bits: 0,
    }
}

/// Timestamp width charged to the Tardis lease/write timestamps.
pub const TARDIS_TS_BITS: u64 = 32;

/// Width of the per-line competitive update counter of the hybrid
/// update/invalidate scheme (counts up to the invalidation threshold).
pub const HYBRID_COUNTER_BITS: u64 = 3;

/// Tardis timestamp coherence: a write timestamp and a read-lease
/// timestamp per cache *word*, and the same pair per memory word (the
/// home must remember the lease it granted). No sharer lists anywhere.
#[must_use]
pub fn tardis(p: StorageParams) -> StorageOverhead {
    let per_word = 2 * TARDIS_TS_BITS;
    StorageOverhead {
        sram_bits: (per_word * p.line_words * p.cache_lines_per_node * p.processors) as u128,
        dram_bits: (per_word * p.line_words * p.mem_blocks_per_node * p.processors) as u128,
    }
}

/// Hybrid update/invalidate: full-map presence bits per memory block
/// (updates are pushed to exact sharers), plus 2 state bits and a
/// [`HYBRID_COUNTER_BITS`]-bit competitive counter per cache line.
#[must_use]
pub fn hybrid(p: StorageParams) -> StorageOverhead {
    StorageOverhead {
        sram_bits: ((2 + HYBRID_COUNTER_BITS) * p.cache_lines_per_node * p.processors) as u128,
        dram_bits: ((p.processors + 2) * p.mem_blocks_per_node * p.processors) as u128,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure5_magnitudes() {
        let p = StorageParams::paper_figure5();
        let fm = full_map(p);
        // "4MB SRAM": 2 * 16K * 1024 bits = 4 MiB.
        assert!(
            (fm.sram_mib() - 4.0).abs() < 0.01,
            "sram = {} MiB",
            fm.sram_mib()
        );
        // "64.5GB DRAM": (1026) * 512K * 1024 bits ≈ 64.1 GiB.
        assert!(
            (fm.dram_gib() - 64.5).abs() < 1.0,
            "dram = {} GiB",
            fm.dram_gib()
        );
        // "64MB SRAM only" for TPI.
        let t = tpi(p);
        assert!(
            (t.sram_mib() - 64.0).abs() < 0.01,
            "tpi sram = {} MiB",
            t.sram_mib()
        );
        assert_eq!(t.dram_bits, 0);
        // LimitLess sits far below the full map.
        let ll = limitless_as_tabulated(p);
        assert!(ll.dram_bits < fm.dram_bits / 50);
        let llw = limitless_pointer_width(p);
        assert!(llw.dram_bits > ll.dram_bits);
        assert!(llw.dram_bits < fm.dram_bits / 5);
    }

    #[test]
    fn tpi_scales_with_tag_width_and_line_words() {
        let mut p = StorageParams::paper_figure5();
        let base = tpi(p).sram_bits;
        p.tag_bits = 4;
        assert_eq!(tpi(p).sram_bits, base / 2);
        p.line_words = 8;
        assert_eq!(tpi(p).sram_bits, base);
    }

    #[test]
    fn tardis_and_hybrid_magnitudes() {
        let p = StorageParams::paper_figure5();
        // Tardis pays for two 32-bit timestamps per cached word...
        let t = tardis(p);
        assert_eq!(
            t.sram_bits,
            tpi(p).sram_bits * (2 * TARDIS_TS_BITS / p.tag_bits) as u128
        );
        // ...and per memory word, but far less than a full-map directory.
        assert!(t.dram_bits > 0);
        assert!(t.dram_bits < full_map(p).dram_bits);
        // Hybrid keeps full-map presence bits plus a small per-line counter.
        let h = hybrid(p);
        assert_eq!(h.dram_bits, full_map(p).dram_bits);
        assert!(h.sram_bits > full_map(p).sram_bits);
        assert!(h.sram_bits < tpi(p).sram_bits);
    }

    #[test]
    fn full_map_dram_grows_quadratically_in_p() {
        let mut p = StorageParams::paper_figure5();
        let d1 = full_map(p).dram_bits;
        p.processors *= 2;
        let d2 = full_map(p).dram_bits;
        assert!(d2 > 3 * d1, "directory DRAM is O(P^2)");
    }
}
