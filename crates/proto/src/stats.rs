//! Per-processor and aggregate protocol statistics.
//!
//! The paper's evaluation reports miss rates (Figure 11), a breakdown of
//! misses into necessary and unnecessary ones (true sharing vs. false
//! sharing for the directory scheme, compiler conservatism for the HSCD
//! schemes), average miss latencies, and network traffic. These counters
//! are the raw material for all of those tables.

use tpi_mem::Cycle;

/// Why a read had to go to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissClass {
    /// First access to the line by this processor.
    Cold,
    /// Line was previously cached but evicted for capacity/conflict.
    Replacement,
    /// Word was dropped by a timetag phase reset (TPI only).
    Reset,
    /// Necessary coherence miss: the word's value really changed.
    CoherenceTrue,
    /// Unnecessary invalidation miss caused by false sharing (directory
    /// schemes, classified per Tullsen–Eggers \[34\]).
    FalseSharing,
    /// Unnecessary miss caused by compiler conservatism: the check failed
    /// or the reference bypassed the cache although the cached copy was
    /// still current (HSCD schemes).
    Conservative,
    /// Remote access to data the scheme never caches (BASE).
    Uncached,
    /// The cached copy's read lease expired and the refetch found the word
    /// unchanged (Tardis-style timestamp coherence): an unnecessary miss
    /// that renews the lease.
    LeaseRenewal,
}

impl MissClass {
    /// All classes, for iteration and table rendering.
    pub const ALL: [MissClass; 8] = [
        MissClass::Cold,
        MissClass::Replacement,
        MissClass::Reset,
        MissClass::CoherenceTrue,
        MissClass::FalseSharing,
        MissClass::Conservative,
        MissClass::Uncached,
        MissClass::LeaseRenewal,
    ];

    /// Dense index for counters.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            MissClass::Cold => 0,
            MissClass::Replacement => 1,
            MissClass::Reset => 2,
            MissClass::CoherenceTrue => 3,
            MissClass::FalseSharing => 4,
            MissClass::Conservative => 5,
            MissClass::Uncached => 6,
            MissClass::LeaseRenewal => 7,
        }
    }

    /// Whether the miss was unnecessary (avoidable with perfect
    /// information): the paper's central comparison.
    #[must_use]
    pub fn is_unnecessary(self) -> bool {
        matches!(
            self,
            MissClass::FalseSharing | MissClass::Conservative | MissClass::LeaseRenewal
        )
    }
}

impl std::fmt::Display for MissClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MissClass::Cold => write!(f, "cold"),
            MissClass::Replacement => write!(f, "replacement"),
            MissClass::Reset => write!(f, "tag-reset"),
            MissClass::CoherenceTrue => write!(f, "true-sharing"),
            MissClass::FalseSharing => write!(f, "false-sharing"),
            MissClass::Conservative => write!(f, "conservative"),
            MissClass::Uncached => write!(f, "uncached"),
            MissClass::LeaseRenewal => write!(f, "lease-renewal"),
        }
    }
}

/// Counters for one processor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Read accesses issued.
    pub reads: u64,
    /// Reads satisfied by the cache.
    pub read_hits: u64,
    /// Read misses per class.
    pub miss_by_class: [u64; 8],
    /// Sum of read-miss latencies (for average miss latency).
    pub miss_latency_sum: Cycle,
    /// Write accesses issued.
    pub writes: u64,
    /// Writes that missed (write-allocate / write-back protocols).
    pub write_misses: u64,
    /// Upgrade (shared -> exclusive) transactions issued.
    pub upgrades: u64,
    /// Invalidations received from the directory.
    pub invals_received: u64,
    /// Lines written back to memory.
    pub write_backs: u64,
    /// Words invalidated by timetag resets.
    pub reset_words: u64,
    /// LimitLess software traps taken at the home of lines this processor
    /// accessed.
    pub traps: u64,
}

impl ProcStats {
    /// Total read misses.
    #[must_use]
    pub fn read_misses(&self) -> u64 {
        self.miss_by_class.iter().sum()
    }

    /// Read miss count in `class`.
    #[must_use]
    pub fn misses(&self, class: MissClass) -> u64 {
        self.miss_by_class[class.index()]
    }

    /// Read miss rate.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_misses() as f64 / self.reads as f64
        }
    }

    /// Average read-miss latency in cycles.
    #[must_use]
    pub fn avg_miss_latency(&self) -> f64 {
        let m = self.read_misses();
        if m == 0 {
            0.0
        } else {
            self.miss_latency_sum as f64 / m as f64
        }
    }

    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &ProcStats) {
        self.reads += other.reads;
        self.read_hits += other.read_hits;
        for i in 0..self.miss_by_class.len() {
            self.miss_by_class[i] += other.miss_by_class[i];
        }
        self.miss_latency_sum += other.miss_latency_sum;
        self.writes += other.writes;
        self.write_misses += other.write_misses;
        self.upgrades += other.upgrades;
        self.invals_received += other.invals_received;
        self.write_backs += other.write_backs;
        self.reset_words += other.reset_words;
        self.traps += other.traps;
    }

    pub(crate) fn record_miss(&mut self, class: MissClass, latency: Cycle) {
        self.miss_by_class[class.index()] += 1;
        self.miss_latency_sum += latency;
    }
}

/// Statistics for a whole engine: one [`ProcStats`] per processor.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    per_proc: Vec<ProcStats>,
}

impl EngineStats {
    /// Zeroed stats for `procs` processors.
    #[must_use]
    pub fn new(procs: u32) -> Self {
        EngineStats {
            per_proc: vec![ProcStats::default(); procs as usize],
        }
    }

    /// Stats of one processor.
    #[must_use]
    pub fn proc(&self, p: usize) -> &ProcStats {
        &self.per_proc[p]
    }

    pub(crate) fn proc_mut(&mut self, p: usize) -> &mut ProcStats {
        &mut self.per_proc[p]
    }

    /// All per-processor stats.
    #[must_use]
    pub fn per_proc(&self) -> &[ProcStats] {
        &self.per_proc
    }

    /// Sum over all processors.
    #[must_use]
    pub fn aggregate(&self) -> ProcStats {
        let mut total = ProcStats::default();
        for s in &self.per_proc {
            total.merge(s);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense_and_distinct() {
        let mut seen = [false; 8];
        for c in MissClass::ALL {
            assert!(!seen[c.index()], "duplicate index for {c}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn unnecessary_classification() {
        assert!(MissClass::FalseSharing.is_unnecessary());
        assert!(MissClass::Conservative.is_unnecessary());
        assert!(MissClass::LeaseRenewal.is_unnecessary());
        assert!(!MissClass::CoherenceTrue.is_unnecessary());
        assert!(!MissClass::Cold.is_unnecessary());
    }

    #[test]
    fn rates_and_averages() {
        let mut s = ProcStats {
            reads: 10,
            read_hits: 8,
            ..ProcStats::default()
        };
        s.record_miss(MissClass::Cold, 100);
        s.record_miss(MissClass::CoherenceTrue, 200);
        assert_eq!(s.read_misses(), 2);
        assert!((s.miss_rate() - 0.2).abs() < 1e-12);
        assert!((s.avg_miss_latency() - 150.0).abs() < 1e-12);
        assert_eq!(s.misses(MissClass::Cold), 1);
    }

    #[test]
    fn merge_and_aggregate() {
        let mut es = EngineStats::new(2);
        es.proc_mut(0).reads = 5;
        es.proc_mut(0).record_miss(MissClass::Cold, 50);
        es.proc_mut(1).reads = 7;
        es.proc_mut(1).record_miss(MissClass::Conservative, 70);
        let agg = es.aggregate();
        assert_eq!(agg.reads, 12);
        assert_eq!(agg.read_misses(), 2);
        assert_eq!(agg.miss_latency_sum, 120);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = ProcStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.avg_miss_latency(), 0.0);
    }
}
