//! The epoch-committed memory version table shared by the HSCD engines.
//!
//! The simulator attaches a global *version* to every word so engines can
//! classify misses and verify freshness. TPI and SC model memory's view of
//! those versions with this table, under the same visibility discipline as
//! the data itself: a store retires into the writer's (infinite) write
//! buffer and is guaranteed globally visible only once the buffer drains
//! at the epoch barrier. Accordingly, a version written in epoch `E`
//! becomes visible to *other* processors' line fills at the `E`/`E+1`
//! boundary, while the writing processor always sees its own pending
//! stores (store-to-load forwarding from its buffer).
//!
//! Because the table advances only at barriers, every mid-epoch lookup is
//! a pure function of per-processor state plus epoch-start global state —
//! the invariant that lets the shard-parallel simulator replay disjoint
//! processor sets on engine replicas and merge bit-identically (see
//! `tpi-sim`'s `shard` module and DESIGN.md "Parallel simulation").
//! Versions only grow, so the boundary commit is a max-merge: commutative
//! and idempotent, independent of shard count and iteration order.

use tpi_mem::{FastMap, WordAddr};

/// Per-word memory versions with epoch-boundary commit.
#[derive(Debug, Clone, Default)]
pub(crate) struct EpochVersions {
    /// Versions visible to every processor (committed at barriers).
    committed: FastMap<u64, u64>,
    /// Versions written this epoch, visible only to the writing
    /// processor until the boundary (its write buffer's contents).
    pending: Vec<FastMap<u64, u64>>,
    /// When set, boundary commits are also logged for the shard runner.
    track: bool,
    /// Commits since the last [`EpochVersions::drain_updates`] call.
    drained: Vec<(u64, u64)>,
}

impl EpochVersions {
    /// An empty table for `procs` processors.
    pub(crate) fn new(procs: u32) -> Self {
        EpochVersions {
            committed: FastMap::default(),
            pending: vec![FastMap::default(); procs as usize],
            track: false,
            drained: Vec::new(),
        }
    }

    /// The version of `addr` as processor `p` observes it: memory's
    /// committed copy, or `p`'s own pending store if newer.
    pub(crate) fn read(&self, p: usize, addr: WordAddr) -> u64 {
        let committed = self.committed.get(&addr.0).copied().unwrap_or(0);
        if self.pending[p].is_empty() {
            return committed;
        }
        let own = self.pending[p].get(&addr.0).copied().unwrap_or(0);
        committed.max(own)
    }

    /// Records a store of `version` to `addr` by processor `p`. Versions
    /// grow monotonically per word; critical writes may be replayed out
    /// of their true order, so the buffer keeps the max.
    pub(crate) fn bump(&mut self, p: usize, addr: WordAddr, version: u64) {
        let e = self.pending[p].entry(addr.0).or_insert(0);
        *e = (*e).max(version);
    }

    /// Epoch barrier: drains every processor's pending versions into the
    /// committed table. Max-merge, so the fold order cannot matter.
    pub(crate) fn commit_boundary(&mut self) {
        for pend in &mut self.pending {
            if pend.is_empty() {
                continue;
            }
            for (&addr, &version) in pend.iter() {
                let e = self.committed.entry(addr).or_insert(0);
                *e = (*e).max(version);
                if self.track {
                    self.drained.push((addr, version));
                }
            }
            pend.clear();
        }
    }

    /// Switches on commit logging (shard-parallel runs only).
    pub(crate) fn enable_tracking(&mut self) {
        self.track = true;
    }

    /// Takes the commits logged since the last drain.
    pub(crate) fn drain_updates(&mut self) -> Vec<(u64, u64)> {
        std::mem::take(&mut self.drained)
    }

    /// Max-merges another shard's drained commits into the committed
    /// table. Does not log (the updates are already in flight) and does
    /// not touch pending state.
    pub(crate) fn apply_updates(&mut self, updates: &[(u64, u64)]) {
        for &(addr, version) in updates {
            let e = self.committed.entry(addr).or_insert(0);
            *e = (*e).max(version);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_sees_own_pending_others_wait_for_boundary() {
        let mut v = EpochVersions::new(2);
        v.bump(0, WordAddr(8), 3);
        assert_eq!(v.read(0, WordAddr(8)), 3, "own store forwards");
        assert_eq!(v.read(1, WordAddr(8)), 0, "visible only after drain");
        v.commit_boundary();
        assert_eq!(v.read(1, WordAddr(8)), 3);
        assert_eq!(v.read(0, WordAddr(8)), 3);
    }

    #[test]
    fn versions_never_move_backwards() {
        let mut v = EpochVersions::new(1);
        v.bump(0, WordAddr(8), 5);
        v.bump(0, WordAddr(8), 2);
        assert_eq!(v.read(0, WordAddr(8)), 5);
        v.commit_boundary();
        v.bump(0, WordAddr(8), 1);
        assert_eq!(v.read(0, WordAddr(8)), 5);
    }

    #[test]
    fn tracking_drains_commits_and_apply_is_idempotent() {
        let mut a = EpochVersions::new(2);
        let mut b = EpochVersions::new(2);
        a.enable_tracking();
        b.enable_tracking();
        a.bump(0, WordAddr(8), 4);
        assert!(a.drain_updates().is_empty(), "nothing committed yet");
        a.commit_boundary();
        let ups = a.drain_updates();
        assert_eq!(ups, vec![(8, 4)]);
        b.apply_updates(&ups);
        b.apply_updates(&ups);
        assert_eq!(b.read(1, WordAddr(8)), 4);
        assert!(b.drain_updates().is_empty(), "applies are not re-logged");
    }
}
