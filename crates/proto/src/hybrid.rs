//! The competitive hybrid update/invalidate engine.
//!
//! Pure write-update protocols keep sharer copies fresh but flood the
//! network when a producer writes data nobody reads anymore; pure
//! invalidation protocols pay a full coherence miss for every
//! producer/consumer hand-off. The hybrid scheme (Dahlgren & Stenström)
//! splits the difference *competitively*: a write pushes single-word
//! updates to the other sharers, but each sharer keeps a per-line counter
//! of updates received since its last local access — once the counter
//! reaches a threshold the copy is clearly dead weight and gets
//! invalidated instead, cutting that sharer out of future update traffic.
//!
//! Memory is kept current by write-through, so the directory only tracks
//! sharers (presence bits), never an owner. Invalidation misses are
//! classified per Tullsen–Eggers like the full-map scheme; compiler marks
//! are ignored — the pushed updates are what keep copies fresh, which is
//! exactly what the staleness oracle verifies.

use crate::sharers::SharerSet;
use crate::stats::{EngineStats, MissClass};
use crate::write_path::WritePath;
use crate::{AccessOutcome, CoherenceEngine, EngineConfig};
use tpi_cache::{Cache, Line};
use tpi_mem::{Cycle, FastMap, FastSet, LineAddr, ProcId, ReadKind, WordAddr};
use tpi_net::{Network, TrafficClass};

/// The hybrid update/invalidate coherence engine.
#[derive(Debug)]
pub struct HybridEngine {
    cfg: EngineConfig,
    caches: Vec<Cache>,
    wpath: WritePath,
    net: Network,
    stats: EngineStats,
    mem_versions: FastMap<u64, u64>,
    ever_cached: Vec<FastSet<u64>>,
    /// Directory: per-line sharer presence set (memory is always current,
    /// so presence is all it tracks). Grows with the machine, so the
    /// engine runs unchanged at the E24 large-scale processor counts.
    sharers: FastMap<u64, SharerSet>,
    /// Per-processor, per-line count of updates received since the last
    /// local access (the competitive counter).
    counters: Vec<FastMap<u64, u32>>,
    /// Classification waiting for the next miss after an invalidation
    /// (Tullsen–Eggers), per processor and line.
    pending_class: Vec<FastMap<u64, MissClass>>,
    updates_sent: u64,
    invals_sent: u64,
}

impl HybridEngine {
    /// Builds a hybrid engine from `cfg`. The sharer presence set grows
    /// with the machine ([`SharerSet`]), so any processor count the
    /// experiment axis allows works here.
    #[must_use]
    pub fn new(cfg: EngineConfig) -> Self {
        let caches = (0..cfg.procs).map(|_| Cache::new(cfg.cache)).collect();
        let wpath = WritePath::new(cfg.procs, cfg.wbuffer, cfg.net.word_cycles);
        let net = Network::new(cfg.net);
        let stats = EngineStats::new(cfg.procs);
        let n = cfg.procs as usize;
        HybridEngine {
            cfg,
            caches,
            wpath,
            net,
            stats,
            mem_versions: FastMap::default(),
            ever_cached: vec![FastSet::default(); n],
            sharers: FastMap::default(),
            counters: vec![FastMap::default(); n],
            pending_class: vec![FastMap::default(); n],
            updates_sent: 0,
            invals_sent: 0,
        }
    }

    fn mem_version(&self, addr: WordAddr) -> u64 {
        self.mem_versions.get(&addr.0).copied().unwrap_or(0)
    }

    fn bump_mem_version(&mut self, addr: WordAddr, version: u64) {
        let e = self.mem_versions.entry(addr.0).or_insert(0);
        *e = (*e).max(version);
    }

    fn drop_sharer(&mut self, la: LineAddr, p: usize) {
        if let Some(mask) = self.sharers.get_mut(&la.0) {
            mask.remove(p as u32);
        }
        self.counters[p].remove(&la.0);
    }

    /// Refills `line_addr` from (always-current) memory and registers the
    /// processor as a sharer. Word versions never move backwards. A silent
    /// victim eviction deregisters that line's sharer bit.
    fn fill(&mut self, p: usize, line_addr: LineAddr, req_word: u32, req_version: u64) {
        let geom = self.cfg.cache.geometry;
        let wpl = geom.words_per_line();
        let base = geom.first_word(line_addr).0;
        let word_versions: Vec<u64> = (0..wpl)
            .map(|w| self.mem_version(WordAddr(base + u64::from(w))))
            .collect();
        let victim = if self.caches[p].peek(line_addr).is_none() {
            self.caches[p].insert(Line::new(line_addr, wpl)) // write-through: no writeback
        } else {
            None
        };
        if let Some(v) = victim {
            self.drop_sharer(v.addr, p);
        }
        let line = self.caches[p]
            .touch_mut(line_addr)
            .expect("line just ensured resident");
        for w in 0..wpl {
            let v = if w == req_word {
                req_version
            } else {
                word_versions[w as usize]
            };
            if !line.word_valid(w) || line.version(w) <= v {
                line.set_word_valid(w, true);
                line.set_version(w, v);
            }
        }
        line.set_word_accessed(req_word);
        self.ever_cached[p].insert(line_addr.0);
        self.sharers
            .entry(line_addr.0)
            .or_default()
            .insert(p as u32);
        self.counters[p].insert(line_addr.0, 0);
    }

    /// Pushes a write of `addr` (now at `version`) to every *other*
    /// sharer: an in-place word update while the sharer's competitive
    /// counter is below the threshold, an invalidation once it trips.
    fn push_to_sharers(&mut self, p: usize, la: LineAddr, w: u32, version: u64) {
        let Some(mask) = self.sharers.get(&la.0) else {
            return;
        };
        let others: Vec<usize> = mask
            .iter()
            .map(|q| q as usize)
            .filter(|&q| q != p)
            .collect();
        for q in others {
            if self.caches[q].peek(la).is_none() {
                // Silently evicted: the pushed message finds no copy;
                // lazily retire the stale presence bit.
                self.drop_sharer(la, q);
                continue;
            }
            let count = self.counters[q].entry(la.0).or_insert(0);
            *count += 1;
            if *count >= self.cfg.hybrid_threshold {
                // Competition lost: invalidate (request + ack headers).
                let line = self.caches[q].remove(la).expect("peeked resident");
                let class = if line.word_accessed(w) {
                    MissClass::CoherenceTrue
                } else {
                    MissClass::FalseSharing
                };
                self.pending_class[q].insert(la.0, class);
                self.drop_sharer(la, q);
                self.stats.proc_mut(q).invals_received += 1;
                self.net.record(TrafficClass::Coherence, 0);
                self.net.record(TrafficClass::Coherence, 0);
                self.invals_sent += 1;
            } else {
                // Push the word: the sharer's copy stays current.
                let line = self.caches[q].touch_mut(la).expect("peeked resident");
                if !line.word_valid(w) || line.version(w) <= version {
                    line.set_word_valid(w, true);
                    line.set_version(w, version);
                }
                self.net.record(TrafficClass::Coherence, 1);
                self.updates_sent += 1;
            }
        }
    }

    /// Checks directory coverage (`tpi-model` invariant
    /// `hybrid-sharer-mask`): every cache holding a line with at least
    /// one valid word must have its presence bit set, or writes to the
    /// line would never be pushed to that copy. The converse is *not*
    /// an invariant — silently evicted sharers are retired lazily, so
    /// stale presence bits are expected.
    pub(crate) fn check_sharer_mask(&self) -> Result<(), String> {
        for (p, cache) in self.caches.iter().enumerate() {
            let mut bad = None;
            cache.for_each_line(|line| {
                if line.any_valid() && bad.is_none() {
                    let present = self
                        .sharers
                        .get(&line.addr.0)
                        .is_some_and(|m| m.contains(p as u32));
                    if !present {
                        bad = Some(line.addr);
                    }
                }
            });
            if let Some(la) = bad {
                return Err(format!(
                    "proc {p} caches line {} but its directory presence bit \
                     is clear: future writes would never update or \
                     invalidate this copy",
                    la.0
                ));
            }
        }
        Ok(())
    }

    /// Checks that no cached copy runs ahead of always-current memory
    /// (`tpi-model` invariant `hybrid-word-version`): under write-through,
    /// memory is bumped before any copy, so a cached valid word's version
    /// never exceeds the home's.
    pub(crate) fn check_word_versions(&self) -> Result<(), String> {
        let geom = self.cfg.cache.geometry;
        let wpl = geom.words_per_line();
        for (p, cache) in self.caches.iter().enumerate() {
            let mut bad = None;
            cache.for_each_line(|line| {
                for w in 0..wpl {
                    if line.word_valid(w) && bad.is_none() {
                        let a = WordAddr(geom.first_word(line.addr).0 + u64::from(w));
                        let mem = self.mem_versions.get(&a.0).copied().unwrap_or(0);
                        if line.version(w) > mem {
                            bad = Some((a, line.version(w), mem));
                        }
                    }
                }
            });
            if let Some((a, cached, mem)) = bad {
                return Err(format!(
                    "proc {p} caches word {} at version {cached} ahead of \
                     write-through memory at {mem}",
                    a.0
                ));
            }
        }
        Ok(())
    }

    /// Test-only sabotage for the `tpi-model` seeded-violation tests:
    /// clear processor `p`'s presence bit for the line of `addr` while it
    /// still holds the copy — the lost-sharer directory bug that would
    /// leave the copy permanently stale.
    #[doc(hidden)]
    pub fn debug_drop_sharer_bit(&mut self, p: usize, addr: WordAddr) {
        let la = self.cfg.cache.geometry.line_of(addr);
        if let Some(mask) = self.sharers.get_mut(&la.0) {
            mask.remove(p as u32);
        }
    }
}

impl CoherenceEngine for HybridEngine {
    fn name(&self) -> &'static str {
        "HYB"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn read(
        &mut self,
        proc: ProcId,
        addr: WordAddr,
        kind: ReadKind,
        version: u64,
        _now: Cycle,
    ) -> AccessOutcome {
        let p = proc.0 as usize;
        self.stats.proc_mut(p).reads += 1;
        let geom = self.cfg.cache.geometry;
        let la = geom.line_of(addr);
        let w = geom.word_in_line(addr);
        if kind == ReadKind::Critical {
            // Critical data stays uncached, as in the HSCD schemes.
            let stall = 1 + self.net.word_fetch();
            self.net.record(TrafficClass::Read, 0);
            self.net.record(TrafficClass::Read, 1);
            self.stats
                .proc_mut(p)
                .record_miss(MissClass::Uncached, stall);
            return AccessOutcome::miss(stall, MissClass::Uncached);
        }
        // Compiler marks are ignored: pushed updates keep copies fresh.
        if let Some(line) = self.caches[p].touch_mut(la) {
            if line.word_valid(w) {
                line.set_word_accessed(w);
                assert!(
                    !self.cfg.verify_freshness || line.version(w) == version,
                    "HYB hit observed a stale version at {addr}: cached {} vs required {version}",
                    line.version(w)
                );
                self.stats.proc_mut(p).read_hits += 1;
                // A local access wins the competition round.
                self.counters[p].insert(la.0, 0);
                return AccessOutcome::hit();
            }
        }
        let class = self.pending_class[p].remove(&la.0).unwrap_or_else(|| {
            if self.ever_cached[p].contains(&la.0) {
                MissClass::Replacement
            } else {
                MissClass::Cold
            }
        });
        let line_words = geom.words_per_line();
        // Memory is always current (write-through): a two-hop clean fetch.
        let stall = 1 + self.net.line_fetch(line_words);
        self.net.record(TrafficClass::Read, 0);
        self.net.record(TrafficClass::Read, line_words);
        self.fill(p, la, w, version);
        self.stats.proc_mut(p).record_miss(class, stall);
        AccessOutcome::miss(stall, class)
    }

    fn write(&mut self, proc: ProcId, addr: WordAddr, version: u64, now: Cycle) -> Cycle {
        let p = proc.0 as usize;
        self.stats.proc_mut(p).writes += 1;
        self.bump_mem_version(addr, version);
        let geom = self.cfg.cache.geometry;
        let la = geom.line_of(addr);
        let w = geom.word_in_line(addr);
        self.push_to_sharers(p, la, w, version);
        if self.caches[p].peek(la).is_some() {
            let line = self.caches[p].touch_mut(la).expect("resident");
            line.set_word_valid(w, true);
            line.set_version(w, version);
            line.set_word_accessed(w);
            self.counters[p].insert(la.0, 0);
        } else {
            self.stats.proc_mut(p).write_misses += 1;
            let line_words = geom.words_per_line();
            self.net.record(TrafficClass::Read, 0);
            self.net.record(TrafficClass::Read, line_words);
            self.fill(p, la, w, version);
        }
        self.wpath.write(p, addr, now, &mut self.net);
        1
    }

    fn write_critical(&mut self, proc: ProcId, addr: WordAddr, version: u64, now: Cycle) -> Cycle {
        let p = proc.0 as usize;
        self.stats.proc_mut(p).writes += 1;
        self.bump_mem_version(addr, version);
        let geom = self.cfg.cache.geometry;
        let la = geom.line_of(addr);
        let w = geom.word_in_line(addr);
        // Unlike the HSCD schemes, the sharers must still be told: hybrid
        // ignores compiler marks, so their plain copies would otherwise go
        // stale.
        self.push_to_sharers(p, la, w, version);
        // The writer's own copy of critical data stays uncached.
        if let Some(line) = self.caches[p].touch_mut(la) {
            line.set_word_valid(w, false);
        }
        self.wpath.write(p, addr, now, &mut self.net);
        1
    }

    fn epoch_boundary(&mut self, per_proc_now: &[Cycle]) -> Vec<Cycle> {
        self.wpath.boundary(per_proc_now)
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    fn stats(&self) -> &EngineStats {
        &self.stats
    }

    fn write_buffer_stats(&self) -> Option<tpi_cache::WriteBufferStats> {
        Some(self.wpath.buffer_stats())
    }

    fn op_counts(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("hybrid_updates_sent", self.updates_sent),
            ("hybrid_invals_sent", self.invals_sent),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcId = ProcId(0);
    const P1: ProcId = ProcId(1);

    fn engine() -> HybridEngine {
        let mut cfg = EngineConfig::paper_default(1 << 20);
        cfg.verify_freshness = true;
        HybridEngine::new(cfg)
    }

    #[test]
    fn updates_keep_consumer_copies_fresh() {
        let mut e = engine();
        let a = WordAddr(0);
        let _ = e.read(P1, a, ReadKind::Plain, 0, 0);
        e.write(P0, a, 1, 1);
        // The pushed update means no coherence miss for the consumer —
        // the hand-off a pure invalidation protocol always charges.
        assert_eq!(e.read(P1, a, ReadKind::Plain, 1, 2).miss, None);
        assert!(e.op_counts().contains(&("hybrid_updates_sent", 1)));
    }

    #[test]
    fn marked_reads_hit_too() {
        let mut e = engine();
        let a = WordAddr(16);
        let _ = e.read(P1, a, ReadKind::Plain, 0, 0);
        e.write(P0, a, 1, 1);
        assert_eq!(e.read(P1, a, ReadKind::Bypass, 1, 2).miss, None);
    }

    #[test]
    fn repeated_updates_trip_the_invalidation_threshold() {
        let mut e = engine();
        let a = WordAddr(32);
        let _ = e.read(P1, a, ReadKind::Plain, 0, 0);
        // Default threshold 4: three updates land, the fourth invalidates.
        for v in 1..=4 {
            e.write(P0, a, v, v);
        }
        assert!(e.op_counts().contains(&("hybrid_updates_sent", 3)));
        assert!(e.op_counts().contains(&("hybrid_invals_sent", 1)));
        let m = e.read(P1, a, ReadKind::Plain, 4, 10);
        assert_eq!(m.miss, Some(MissClass::CoherenceTrue));
    }

    #[test]
    fn local_access_resets_the_competition() {
        let mut e = engine();
        let a = WordAddr(48);
        let _ = e.read(P1, a, ReadKind::Plain, 0, 0);
        for v in 1..=10 {
            e.write(P0, a, v, v);
            // The consumer keeps reading, so its copy keeps winning.
            assert_eq!(e.read(P1, a, ReadKind::Plain, v, v).miss, None);
        }
        assert!(e.op_counts().contains(&("hybrid_invals_sent", 0)));
    }

    #[test]
    fn untouched_word_invalidation_is_false_sharing() {
        let mut e = engine();
        let a = WordAddr(64); // line 16, word 0
        let sibling = WordAddr(65); // same line, word 1
        let _ = e.read(P1, a, ReadKind::Plain, 0, 0);
        for v in 1..=4 {
            e.write(P0, sibling, v, v);
        }
        // P1 never touched the written word: a false-sharing casualty.
        let m = e.read(P1, a, ReadKind::Plain, 0, 10);
        assert_eq!(m.miss, Some(MissClass::FalseSharing));
    }

    #[test]
    fn critical_writes_still_update_sharers() {
        let mut e = engine();
        let a = WordAddr(128);
        let _ = e.read(P1, a, ReadKind::Plain, 0, 0);
        e.write_critical(P0, a, 1, 1);
        // The sharer's plain copy was pushed the new value...
        assert_eq!(e.read(P1, a, ReadKind::Plain, 1, 2).miss, None);
        // ...while the writer's own critical word stays uncached.
        let m = e.read(P0, a, ReadKind::Critical, 1, 3);
        assert_eq!(m.miss, Some(MissClass::Uncached));
    }

    #[test]
    fn boundary_only_drains_buffers() {
        let mut e = engine();
        e.write(P0, WordAddr(0), 1, 0);
        let stalls = e.epoch_boundary(&[1000; 16]);
        assert_eq!(stalls[0], 0, "port long since free");
    }
}
