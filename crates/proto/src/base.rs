//! The BASE engine: no caching of shared data.
//!
//! This is how the paper's motivating machines (Cray T3D, Intel Paragon)
//! were actually used without coherence support: shared data lives in
//! remote memory and every access crosses the network, while private data
//! is cached normally. BASE is the floor every coherence scheme is measured
//! against.

use crate::stats::{EngineStats, MissClass};
use crate::write_path::WritePath;
use crate::{AccessOutcome, CoherenceEngine, EngineConfig};
use tpi_cache::{Cache, Line};
use tpi_mem::{Cycle, FastSet, ProcId, ReadKind, WordAddr};
use tpi_net::{Network, TrafficClass};

/// The BASE (uncached-shared) engine.
#[derive(Debug)]
pub struct BaseEngine {
    cfg: EngineConfig,
    /// Private-data caches only.
    caches: Vec<Cache>,
    wpath: WritePath,
    net: Network,
    stats: EngineStats,
    ever_cached: Vec<FastSet<u64>>,
}

impl BaseEngine {
    /// Builds a BASE engine from `cfg`.
    #[must_use]
    pub fn new(cfg: EngineConfig) -> Self {
        let caches = (0..cfg.procs).map(|_| Cache::new(cfg.cache)).collect();
        let wpath = WritePath::new(cfg.procs, cfg.wbuffer, cfg.net.word_cycles);
        let net = Network::new(cfg.net);
        let stats = EngineStats::new(cfg.procs);
        let ever_cached = vec![FastSet::default(); cfg.procs as usize];
        BaseEngine {
            cfg,
            caches,
            wpath,
            net,
            stats,
            ever_cached,
        }
    }

    /// Checks the defining BASE property: no cache ever holds a valid
    /// word of the shared segment (`tpi-model` invariant
    /// `base-no-shared-lines`).
    pub(crate) fn check_no_shared_lines(&self) -> Result<(), String> {
        let geom = self.cfg.cache.geometry;
        let wpl = geom.words_per_line();
        for (p, cache) in self.caches.iter().enumerate() {
            let mut bad = None;
            cache.for_each_line(|line| {
                for w in 0..wpl {
                    let addr = WordAddr(geom.first_word(line.addr).0 + w as u64);
                    if line.word_valid(w) && self.cfg.is_shared(addr) && bad.is_none() {
                        bad = Some(addr);
                    }
                }
            });
            if let Some(addr) = bad {
                return Err(format!(
                    "proc {p} caches shared word {} (BASE never caches shared data)",
                    addr.0
                ));
            }
        }
        Ok(())
    }

    /// Test-only sabotage: force a valid copy of shared word `addr` into
    /// proc 0's cache, violating `base-no-shared-lines`.
    #[doc(hidden)]
    pub fn debug_cache_shared_word(&mut self, addr: WordAddr) {
        let geom = self.cfg.cache.geometry;
        let la = geom.line_of(addr);
        let w = geom.word_in_line(addr);
        if self.caches[0].peek(la).is_none() {
            let _ = self.caches[0].insert(Line::new(la, geom.words_per_line()));
        }
        let line = self.caches[0].touch_mut(la).expect("resident");
        line.set_word_valid(w, true);
    }
}

impl CoherenceEngine for BaseEngine {
    fn name(&self) -> &'static str {
        "BASE"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn read(
        &mut self,
        proc: ProcId,
        addr: WordAddr,
        _kind: ReadKind,
        version: u64,
        _now: Cycle,
    ) -> AccessOutcome {
        let p = proc.0 as usize;
        self.stats.proc_mut(p).reads += 1;
        if self.cfg.is_shared(addr) {
            // Remote single-word access, every time.
            let stall = 1 + self.net.word_fetch();
            self.net.record(TrafficClass::Read, 0);
            self.net.record(TrafficClass::Read, 1);
            self.stats
                .proc_mut(p)
                .record_miss(MissClass::Uncached, stall);
            return AccessOutcome::miss(stall, MissClass::Uncached);
        }
        // Private data: normal write-through cache.
        let geom = self.cfg.cache.geometry;
        let la = geom.line_of(addr);
        let w = geom.word_in_line(addr);
        if let Some(line) = self.caches[p].touch_mut(la) {
            if line.word_valid(w) {
                self.stats.proc_mut(p).read_hits += 1;
                return AccessOutcome::hit();
            }
        }
        let class = if self.ever_cached[p].contains(&la.0) {
            MissClass::Replacement
        } else {
            MissClass::Cold
        };
        let line_words = geom.words_per_line();
        let stall = 1 + self.net.line_fetch(line_words);
        self.net.record(TrafficClass::Read, 0);
        self.net.record(TrafficClass::Read, line_words);
        let wpl = geom.words_per_line();
        if self.caches[p].peek(la).is_none() {
            let _ = self.caches[p].insert(Line::new(la, wpl));
        }
        let line = self.caches[p].touch_mut(la).expect("resident");
        for word in 0..wpl {
            line.set_word_valid(word, true);
        }
        line.set_version(w, version);
        self.ever_cached[p].insert(la.0);
        self.stats.proc_mut(p).record_miss(class, stall);
        AccessOutcome::miss(stall, class)
    }

    fn write(&mut self, proc: ProcId, addr: WordAddr, version: u64, now: Cycle) -> Cycle {
        let p = proc.0 as usize;
        self.stats.proc_mut(p).writes += 1;
        if !self.cfg.is_shared(addr) {
            let geom = self.cfg.cache.geometry;
            let la = geom.line_of(addr);
            let w = geom.word_in_line(addr);
            if let Some(line) = self.caches[p].touch_mut(la) {
                line.set_word_valid(w, true);
                line.set_version(w, version);
            }
        }
        // Shared or private, the store goes to memory through the buffer.
        self.wpath.write(p, addr, now, &mut self.net);
        1
    }

    fn epoch_boundary(&mut self, per_proc_now: &[Cycle]) -> Vec<Cycle> {
        self.wpath.boundary(per_proc_now)
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    fn stats(&self) -> &EngineStats {
        &self.stats
    }

    fn write_buffer_stats(&self) -> Option<tpi_cache::WriteBufferStats> {
        Some(self.wpath.buffer_stats())
    }

    fn shard_safe(&self) -> bool {
        // Shared data is never cached, so the engine has no cross-
        // processor state at all beyond commutative traffic counters.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcId = ProcId(0);

    #[test]
    fn shared_reads_never_hit() {
        let mut e = BaseEngine::new(EngineConfig::paper_default(1000));
        for i in 0..3 {
            let m = e.read(P0, WordAddr(7), ReadKind::Plain, 0, i);
            assert_eq!(m.miss, Some(MissClass::Uncached));
        }
        assert_eq!(e.stats().proc(0).read_hits, 0);
        assert_eq!(e.stats().proc(0).misses(MissClass::Uncached), 3);
    }

    #[test]
    fn shared_word_access_is_cheaper_than_line_fetch() {
        let mut e = BaseEngine::new(EngineConfig::paper_default(1000));
        let m = e.read(P0, WordAddr(7), ReadKind::Plain, 0, 0);
        assert!(m.stall < 101, "single-word remote access, got {}", m.stall);
    }

    #[test]
    fn private_data_is_cached() {
        let mut e = BaseEngine::new(EngineConfig::paper_default(1000));
        let private = WordAddr(5000);
        let m = e.read(P0, private, ReadKind::Plain, 0, 0);
        assert_eq!(m.miss, Some(MissClass::Cold));
        let h = e.read(P0, private, ReadKind::Plain, 0, 1);
        assert_eq!(h.miss, None);
    }

    #[test]
    fn writes_do_not_stall() {
        let mut e = BaseEngine::new(EngineConfig::paper_default(1000));
        assert_eq!(e.write(P0, WordAddr(3), 1, 0), 1);
        assert_eq!(e.network().stats().words(TrafficClass::Write), 2);
    }
}
