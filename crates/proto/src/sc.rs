//! The software cache-bypass (SC) engine.
//!
//! SC enforces coherence with compiler marking alone: every
//! potentially-stale reference is forced to fetch from memory (on a stock
//! microprocessor: a cache-block invalidate followed by a regular load, as
//! the paper notes for the MIPS R10000 and PowerPC). There are no timetags,
//! so a marked reference *always* pays a memory access even when the cached
//! copy was still current — that difference against TPI is exactly the
//! "no intertask locality" limitation the paper tabulates, and such misses
//! are classified [`MissClass::Conservative`] here.
//!
//! Caches are write-through / write-allocate with an infinite write buffer,
//! like TPI.

use crate::stats::{EngineStats, MissClass};
use crate::versions::EpochVersions;
use crate::write_path::WritePath;
use crate::{AccessOutcome, CoherenceEngine, EngineConfig};
use tpi_cache::{Cache, Line};
use tpi_mem::{Cycle, FastSet, LineAddr, ProcId, ReadKind, WordAddr};
use tpi_net::{Network, TrafficClass};

/// The SC coherence engine.
#[derive(Debug)]
pub struct ScEngine {
    cfg: EngineConfig,
    caches: Vec<Cache>,
    wpath: WritePath,
    net: Network,
    stats: EngineStats,
    /// Per-word memory versions, committed at epoch boundaries (the write
    /// buffer's drain instant); the writer sees its own stores at once.
    versions: EpochVersions,
    ever_cached: Vec<FastSet<u64>>,
}

impl ScEngine {
    /// Builds an SC engine from `cfg`.
    #[must_use]
    pub fn new(cfg: EngineConfig) -> Self {
        let procs = cfg.procs;
        let caches = (0..cfg.procs).map(|_| Cache::new(cfg.cache)).collect();
        let wpath = WritePath::new(cfg.procs, cfg.wbuffer, cfg.net.word_cycles);
        let net = Network::new(cfg.net);
        let stats = EngineStats::new(cfg.procs);
        let ever_cached = vec![FastSet::default(); cfg.procs as usize];
        ScEngine {
            cfg,
            caches,
            wpath,
            net,
            stats,
            versions: EpochVersions::new(procs),
            ever_cached,
        }
    }

    fn mem_version(&self, p: usize, addr: WordAddr) -> u64 {
        self.versions.read(p, addr)
    }

    fn bump_mem_version(&mut self, p: usize, addr: WordAddr, version: u64) {
        self.versions.bump(p, addr, version);
    }

    /// Refills `line_addr` from memory. Word versions never move backwards:
    /// a word the processor wrote this epoch (still in the write buffer) is
    /// kept rather than clobbered with the older memory copy.
    fn fill(&mut self, p: usize, line_addr: LineAddr, req_word: u32, req_version: u64) {
        let geom = self.cfg.cache.geometry;
        let wpl = geom.words_per_line();
        let base = geom.first_word(line_addr).0;
        let word_versions: Vec<u64> = (0..wpl)
            .map(|w| self.mem_version(p, WordAddr(base + u64::from(w))))
            .collect();
        let cache = &mut self.caches[p];
        if cache.peek(line_addr).is_none() {
            let _ = cache.insert(Line::new(line_addr, wpl)); // write-through: no victim writeback
        }
        let line = cache
            .touch_mut(line_addr)
            .expect("line just ensured resident");
        for w in 0..wpl {
            let v = if w == req_word {
                req_version
            } else {
                word_versions[w as usize]
            };
            if !line.word_valid(w) || line.version(w) <= v {
                line.set_word_valid(w, true);
                line.set_version(w, v);
            }
        }
        line.set_word_accessed(req_word);
        self.ever_cached[p].insert(line_addr.0);
    }
}

impl CoherenceEngine for ScEngine {
    fn name(&self) -> &'static str {
        "SC"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn read(
        &mut self,
        proc: ProcId,
        addr: WordAddr,
        kind: ReadKind,
        version: u64,
        _now: Cycle,
    ) -> AccessOutcome {
        let p = proc.0 as usize;
        self.stats.proc_mut(p).reads += 1;
        let geom = self.cfg.cache.geometry;
        let la = geom.line_of(addr);
        let w = geom.word_in_line(addr);
        if kind == ReadKind::Critical {
            let stall = 1 + self.net.word_fetch();
            self.net.record(TrafficClass::Read, 0);
            self.net.record(TrafficClass::Read, 1);
            self.stats
                .proc_mut(p)
                .record_miss(MissClass::Uncached, stall);
            return AccessOutcome::miss(stall, MissClass::Uncached);
        }
        let marked = kind.is_marked();
        let mut class: Option<MissClass> = None;
        if let Some(line) = self.caches[p].touch_mut(la) {
            if line.word_valid(w) {
                if !marked {
                    line.set_word_accessed(w);
                    assert!(
                        !self.cfg.verify_freshness || line.version(w) == version,
                        "SC plain hit observed a stale version at {addr}: cached {} vs required {version}",
                        line.version(w)
                    );
                    self.stats.proc_mut(p).read_hits += 1;
                    return AccessOutcome::hit();
                }
                // Forced bypass: unnecessary if the copy was still current.
                class = Some(if line.version(w) == version {
                    MissClass::Conservative
                } else {
                    MissClass::CoherenceTrue
                });
            }
        }
        let class = class.unwrap_or_else(|| {
            if self.ever_cached[p].contains(&la.0) {
                MissClass::Replacement
            } else {
                MissClass::Cold
            }
        });
        let line_words = geom.words_per_line();
        let stall = 1 + self.net.line_fetch(line_words);
        self.net.record(TrafficClass::Read, 0);
        self.net.record(TrafficClass::Read, line_words);
        self.fill(p, la, w, version);
        self.stats.proc_mut(p).record_miss(class, stall);
        AccessOutcome::miss(stall, class)
    }

    fn write(&mut self, proc: ProcId, addr: WordAddr, version: u64, now: Cycle) -> Cycle {
        let p = proc.0 as usize;
        self.stats.proc_mut(p).writes += 1;
        self.bump_mem_version(p, addr, version);
        let geom = self.cfg.cache.geometry;
        let la = geom.line_of(addr);
        let w = geom.word_in_line(addr);
        if self.caches[p].peek(la).is_some() {
            let line = self.caches[p].touch_mut(la).expect("resident");
            line.set_word_valid(w, true);
            line.set_version(w, version);
            line.set_word_accessed(w);
        } else {
            self.stats.proc_mut(p).write_misses += 1;
            let line_words = geom.words_per_line();
            self.net.record(TrafficClass::Read, 0);
            self.net.record(TrafficClass::Read, line_words);
            self.fill(p, la, w, version);
        }
        self.wpath.write(p, addr, now, &mut self.net);
        1
    }

    fn write_critical(&mut self, proc: ProcId, addr: WordAddr, version: u64, now: Cycle) -> Cycle {
        let p = proc.0 as usize;
        self.stats.proc_mut(p).writes += 1;
        self.bump_mem_version(p, addr, version);
        let geom = self.cfg.cache.geometry;
        let la = geom.line_of(addr);
        let w = geom.word_in_line(addr);
        // Critical data stays uncached: other lock holders may write the
        // word later in this very epoch, so even our own copy must not be
        // reusable. Drop the word if resident.
        if let Some(line) = self.caches[p].touch_mut(la) {
            line.set_word_valid(w, false);
        }
        self.wpath.write(p, addr, now, &mut self.net);
        1
    }

    fn epoch_boundary(&mut self, per_proc_now: &[Cycle]) -> Vec<Cycle> {
        // The barrier drains every write buffer, so the versions written
        // this epoch become globally visible here.
        self.versions.commit_boundary();
        self.wpath.boundary(per_proc_now)
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    fn stats(&self) -> &EngineStats {
        &self.stats
    }

    fn write_buffer_stats(&self) -> Option<tpi_cache::WriteBufferStats> {
        Some(self.wpath.buffer_stats())
    }

    fn shard_safe(&self) -> bool {
        true
    }

    fn enable_shard_tracking(&mut self) {
        self.versions.enable_tracking();
    }

    fn drain_version_updates(&mut self) -> Vec<(u64, u64)> {
        self.versions.drain_updates()
    }

    fn apply_version_updates(&mut self, updates: &[(u64, u64)]) {
        self.versions.apply_updates(updates);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcId = ProcId(0);

    fn engine() -> ScEngine {
        ScEngine::new(EngineConfig::paper_default(1 << 20))
    }

    #[test]
    fn marked_reads_always_miss() {
        let mut e = engine();
        let a = WordAddr(0);
        e.write(P0, a, 1, 0);
        // The copy is resident and current, but the bypass mark forces a
        // memory access: the defining SC limitation.
        let m = e.read(P0, a, ReadKind::Bypass, 1, 1);
        assert_eq!(m.miss, Some(MissClass::Conservative));
        // And again — no intertask locality ever develops.
        let m2 = e.read(P0, a, ReadKind::Bypass, 1, 2);
        assert_eq!(m2.miss, Some(MissClass::Conservative));
    }

    #[test]
    fn plain_reads_reuse_within_task() {
        let mut e = engine();
        let a = WordAddr(16);
        let m = e.read(P0, a, ReadKind::Bypass, 0, 0);
        assert_eq!(m.miss, Some(MissClass::Cold));
        // "Partial reuse within a task": the refill serves later plain reads.
        let h = e.read(P0, a, ReadKind::Plain, 0, 1);
        assert_eq!(h.miss, None);
    }

    #[test]
    fn stale_bypass_is_a_true_miss() {
        let mut e = engine();
        let a = WordAddr(32);
        let _ = e.read(ProcId(1), a, ReadKind::Plain, 0, 0);
        e.write(P0, a, 1, 1);
        let m = e.read(ProcId(1), a, ReadKind::Bypass, 1, 2);
        assert_eq!(m.miss, Some(MissClass::CoherenceTrue));
    }

    #[test]
    fn time_read_marks_also_bypass_on_sc() {
        let mut e = engine();
        let a = WordAddr(48);
        e.write(P0, a, 1, 0);
        let m = e.read(P0, a, ReadKind::TimeRead { distance: 5 }, 1, 1);
        assert!(m.miss.is_some(), "SC has no tags; any marked read bypasses");
    }

    #[test]
    fn refill_does_not_clobber_newer_local_word() {
        let mut e = engine();
        let a = WordAddr(64); // line 16: words 64..68
        let sibling = WordAddr(65);
        e.write(P0, sibling, 3, 0); // local write, version 3 (buffered)
                                    // Simulate that memory still holds version 3 of sibling via
                                    // mem_versions (write updated it), so refill keeps >= versions.
        let _ = e.read(P0, a, ReadKind::Bypass, 0, 1);
        let h = e.read(P0, sibling, ReadKind::Plain, 3, 2);
        assert_eq!(h.miss, None);
    }

    #[test]
    fn boundary_only_drains_buffers() {
        let mut e = engine();
        e.write(P0, WordAddr(0), 1, 0);
        let stalls = e.epoch_boundary(&[1000; 16]);
        assert_eq!(stalls[0], 0, "port long since free");
        assert_eq!(stalls[5], 0);
    }
}
