//! Growable per-line presence bitmap shared by the directory engines.
//!
//! Full-map directories ([`crate::fullmap`]) and the hybrid
//! update/invalidate directory ([`crate::hybrid`]) both track which
//! processors hold a copy of each line. A single machine word caps that
//! set at 64 processors; the large-scale study (EXPERIMENTS.md E24) runs
//! the same engines at 256 and 1024, so the presence set here grows on
//! demand in 64-bit words. This also keeps the storage model honest: the
//! full-map cost the paper charges in its directory-storage comparison is
//! O(P) bits per line, which is exactly what this representation pays.

/// A set of processor ids backed by a lazily-grown `Vec` of 64-bit words.
///
/// The empty set allocates nothing, so a `FastMap<u64, SharerSet>`
/// directory is no heavier than the old `u64`-mask one until a line
/// actually gains a sharer above processor 63.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SharerSet {
    words: Vec<u64>,
}

impl SharerSet {
    /// Adds processor `p` to the set.
    pub fn insert(&mut self, p: u32) {
        let (w, b) = (p as usize / 64, p % 64);
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << b;
    }

    /// Removes processor `p` from the set (no-op if absent).
    pub fn remove(&mut self, p: u32) {
        let (w, b) = (p as usize / 64, p % 64);
        if let Some(word) = self.words.get_mut(w) {
            *word &= !(1u64 << b);
        }
    }

    /// Whether processor `p` is in the set.
    #[must_use]
    pub fn contains(&self, p: u32) -> bool {
        let (w, b) = (p as usize / 64, p % 64);
        self.words
            .get(w)
            .is_some_and(|word| word & (1u64 << b) != 0)
    }

    /// Empties the set.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Drops every member except `p` (which keeps its current value).
    pub fn retain_only(&mut self, p: u32) {
        let had = self.contains(p);
        self.words.clear();
        if had {
            self.insert(p);
        }
    }

    /// Whether the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of members.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Iterates the members (processor ids) in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros();
                rest &= rest - 1;
                Some(wi as u32 * 64 + b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharer_set_ops() {
        let mut s = SharerSet::default();
        assert!(s.is_empty());
        for p in [0, 63, 64, 1023] {
            s.insert(p);
        }
        assert_eq!(s.count(), 4);
        assert!(s.contains(64) && !s.contains(65));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 1023]);
        s.remove(63);
        assert!(!s.contains(63));
        s.retain_only(64);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![64]);
        s.retain_only(7); // 7 was not present: set goes empty
        assert!(s.is_empty());
        s.insert(200);
        s.clear();
        assert!(s.is_empty());
        // An empty set never allocated and equals the default.
        assert_eq!(SharerSet::default(), {
            let mut t = SharerSet::default();
            t.insert(5);
            t.remove(5);
            t.retain_only(5);
            t
        });
    }
}
