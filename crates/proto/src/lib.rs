//! Coherence schemes for the TPI study: BASE, SC, TPI, and directory
//! protocols (full-map and LimitLess), behind one [`CoherenceEngine`]
//! interface. Schemes are resolved by [`SchemeId`] through the pluggable
//! [`registry`].
//!
//! The four main schemes reproduce Section 4.2 of the paper:
//!
//! * [`SchemeId::BASE`] — shared data is never cached; every shared
//!   access is a remote memory access (the Cray T3D / Paragon usage model).
//! * [`SchemeId::SC`] — software cache-bypass: compiler-marked
//!   potentially-stale loads always go to memory (a cache-block invalidate
//!   followed by a load on a stock microprocessor), so only task-local reuse
//!   survives. Write-through, write-allocate.
//! * [`SchemeId::TPI`] — the paper's two-phase invalidation scheme:
//!   per-word timetags checked against the compiler's Time-Read distance,
//!   line fills stamping non-requested words `epoch - 1`, two-phase tag
//!   resets. Write-through, write-allocate.
//! * [`SchemeId::FULL_MAP`] — a three-state (Invalid / Read-Shared /
//!   Write-Exclusive) invalidation protocol with a full-map directory and
//!   write-back caches (label "HW").
//! * [`SchemeId::LIMITLESS`] — the directory protocol with `i` hardware
//!   pointers and a software trap on overflow (used in the paper's storage
//!   comparison; implemented here as a protocol variant too).
//!
//! The registry also carries the IDEAL oracle and the post-paper TARDIS
//! and HYB protocols; see [`registry::global()`].
//!
//! All engines run under weak consistency: reads stall the processor,
//! writes retire through (infinite) write buffers and must be globally
//! performed by the next epoch boundary.

#![warn(missing_docs)]

pub mod base;
pub mod fullmap;
pub mod hybrid;
pub mod ideal;
pub mod invariant;
pub mod registry;
pub mod sc;
pub mod sharers;
pub mod stats;
pub mod storage;
pub mod tardis;
pub mod tpi;
mod versions;
mod write_path;

pub use base::BaseEngine;
pub use fullmap::DirectoryEngine;
pub use hybrid::HybridEngine;
pub use ideal::IdealEngine;
pub use invariant::ModelInvariant;
pub use registry::{RegistryError, Scheme, SchemeCaps, SchemeId, SchemeRegistry};
pub use sc::ScEngine;
pub use stats::{EngineStats, MissClass, ProcStats};
pub use tardis::TardisEngine;
pub use tpi::TpiEngine;

use tpi_cache::{CacheConfig, ResetStrategy, WriteBufferKind, WritePolicy};
use tpi_mem::{Cycle, ProcId, ReadKind, WordAddr};
use tpi_net::{Network, NetworkConfig};

/// Which built-in coherence scheme to build.
///
/// **Deprecated alias**: new code should use [`SchemeId`] and the
/// [`registry`] — this closed enum only names the original six built-ins
/// and exists so that pre-registry configs and call sites keep working.
/// Every `SchemeKind` converts losslessly into a [`SchemeId`]
/// (`SchemeKind::Tpi.into()`), and the two compare equal across types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[deprecated(note = "use SchemeId and the scheme registry instead")]
pub enum SchemeKind {
    /// No caching of shared data.
    Base,
    /// Software cache-bypass.
    Sc,
    /// Two-phase invalidation (the paper's scheme).
    Tpi,
    /// Full-map directory, write-back MSI.
    FullMap,
    /// LimitLess directory with the configured number of pointers.
    LimitLess,
    /// Perfect-coherence oracle (lower bound; not a scheme from the
    /// paper).
    Ideal,
}

#[allow(deprecated)]
impl SchemeKind {
    /// The four schemes of the paper's main evaluation.
    pub const MAIN: [SchemeKind; 4] = [
        SchemeKind::Base,
        SchemeKind::Sc,
        SchemeKind::Tpi,
        SchemeKind::FullMap,
    ];

    /// Short table label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Base => "BASE",
            SchemeKind::Sc => "SC",
            SchemeKind::Tpi => "TPI",
            SchemeKind::FullMap => "HW",
            SchemeKind::LimitLess => "LL",
            SchemeKind::Ideal => "IDEAL",
        }
    }
}

#[allow(deprecated)]
impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything needed to instantiate an engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Number of processors.
    pub procs: u32,
    /// Per-node cache.
    pub cache: CacheConfig,
    /// Network and memory timing.
    pub net: NetworkConfig,
    /// Timetag width in bits (TPI).
    pub tag_bits: u32,
    /// Timetag recycling strategy (TPI).
    pub reset_strategy: ResetStrategy,
    /// Cycles a phase reset stalls each processor (the paper: 128).
    pub reset_cycles: Cycle,
    /// Write buffer organization for the write-through schemes.
    pub wbuffer: WriteBufferKind,
    /// Write policy of the HSCD caches (TPI; SC is always write-through).
    pub write_policy: WritePolicy,
    /// Word addresses below this bound are shared; above are private
    /// replicas.
    pub shared_limit: u64,
    /// Hardware pointers per directory entry (LimitLess).
    pub limitless_pointers: u32,
    /// Software-trap penalty on pointer overflow (LimitLess).
    pub limitless_trap_cycles: Cycle,
    /// Whether a verified Time-Read hit re-stamps the word with the
    /// current epoch (sound: the datum is provably fresh *now*), extending
    /// its reuse window across later epochs. Disable for the ablation.
    pub restamp_verified_hits: bool,
    /// Check on every cache hit that the observed shadow version equals
    /// the version the execution requires, even in release builds
    /// (debug builds always check). Panics on violation — turning the
    /// paper's soundness argument into an executable assertion.
    pub verify_freshness: bool,
    /// Optional on-chip first-level cache in front of the tagged TPI
    /// cache, modelling the paper's off-the-shelf-microprocessor
    /// implementation (Section 3): the stock core's L1 serves plain loads;
    /// marked references execute as a cache-op + load (L1 word invalidate,
    /// then the tagged off-chip check).
    pub l1: Option<L1Config>,
    /// What a failed tag check refetches (TPI; line-absent misses always
    /// fetch whole lines).
    pub coherence_fetch: FetchGranularity,
    /// Logical-timestamp lease length granted to Tardis reads: how far
    /// past the reader's clock a fetched word stays self-usable before the
    /// next use must revalidate at the home.
    pub tardis_lease: u64,
    /// Competitive update/invalidate threshold of the hybrid scheme: a
    /// sharer that receives this many consecutive updates to a line
    /// without a local access is invalidated instead.
    pub hybrid_threshold: u32,
}

/// What a TPI coherence miss (failed tag check on a resident line)
/// fetches from memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FetchGranularity {
    /// Refetch the whole line (the paper's write-allocate organization:
    /// spatial locality at the cost of line-sized traffic).
    #[default]
    Line,
    /// Fetch only the requested word (less traffic, no spatial refresh).
    Word,
}

impl std::fmt::Display for FetchGranularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchGranularity::Line => write!(f, "line"),
            FetchGranularity::Word => write!(f, "word"),
        }
    }
}

/// Parameters of the optional on-chip L1 (two-level TPI, Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// L1 capacity in bytes (small on-chip cache, e.g. 8 KB).
    pub size_bytes: usize,
    /// L1 associativity.
    pub assoc: u32,
    /// Access time of the off-chip tagged cache on an L1 miss that hits
    /// there (added to the 1-cycle L1 path).
    pub l2_hit_cycles: Cycle,
}

impl L1Config {
    /// An 8 KB direct-mapped on-chip cache over a 5-cycle off-chip SRAM.
    #[must_use]
    pub fn paper_default() -> Self {
        L1Config {
            size_bytes: 8 * 1024,
            assoc: 1,
            l2_hit_cycles: 5,
        }
    }
}

impl EngineConfig {
    /// The paper's Figure 8 configuration (16 processors, 64 KB
    /// direct-mapped caches, 4-word lines, 8-bit tags, 128-cycle reset).
    #[must_use]
    pub fn paper_default(shared_limit: u64) -> Self {
        EngineConfig {
            procs: 16,
            cache: CacheConfig::paper_default(),
            net: NetworkConfig::paper_default(16),
            tag_bits: 8,
            reset_strategy: ResetStrategy::TwoPhase,
            reset_cycles: 128,
            wbuffer: WriteBufferKind::Fifo,
            write_policy: WritePolicy::Through,
            shared_limit,
            limitless_pointers: 10,
            limitless_trap_cycles: 50,
            restamp_verified_hits: true,
            verify_freshness: cfg!(debug_assertions),
            l1: None,
            coherence_fetch: FetchGranularity::Line,
            tardis_lease: 8,
            hybrid_threshold: 4,
        }
    }

    /// Whether `addr` is in the shared segment.
    #[must_use]
    pub fn is_shared(&self, addr: WordAddr) -> bool {
        addr.0 < self.shared_limit
    }
}

/// Result of a read access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycles the issuing processor stalls.
    pub stall: Cycle,
    /// Set when the access missed, with its classification.
    pub miss: Option<MissClass>,
}

impl AccessOutcome {
    /// A one-cycle cache hit.
    #[must_use]
    pub fn hit() -> Self {
        AccessOutcome {
            stall: 1,
            miss: None,
        }
    }

    /// A classified miss with total stall `stall`.
    #[must_use]
    pub fn miss(stall: Cycle, class: MissClass) -> Self {
        AccessOutcome {
            stall,
            miss: Some(class),
        }
    }
}

/// A coherence scheme: per-processor caches, a shared interconnect, and the
/// protocol logic between them.
///
/// The timing simulator drives an engine with per-processor `now` clocks;
/// engines return stall cycles and account traffic into their [`Network`].
///
/// `Debug` is a supertrait so model-checking tooling can fingerprint the
/// complete protocol state; all engines derive it. `Send` is a supertrait
/// so the shard-parallel simulator can move engines onto worker threads;
/// engines are plain data and satisfy it structurally.
pub trait CoherenceEngine: std::fmt::Debug + Send {
    /// Scheme label for reports.
    fn name(&self) -> &'static str;

    /// The concrete engine as [`std::any::Any`], so scheme-specific
    /// tooling (the [`invariant`] checks of `tpi-model`) can downcast a
    /// boxed engine back to its real type. Implementations return `self`.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable [`std::any::Any`] access, for the `tpi-model` sabotage
    /// hooks that hand-break a live engine to prove the checker catches
    /// each invariant. Implementations return `self`.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Processes a load by `proc` at local time `now`. `version` is the
    /// value generation the load must observe (simulation shadow state).
    fn read(
        &mut self,
        proc: ProcId,
        addr: WordAddr,
        kind: ReadKind,
        version: u64,
        now: Cycle,
    ) -> AccessOutcome;

    /// Processes a store; returns the processor stall (typically 1 cycle —
    /// writes retire in the background under weak consistency).
    fn write(&mut self, proc: ProcId, addr: WordAddr, version: u64, now: Cycle) -> Cycle;

    /// Processes a store issued inside a lock-guarded critical section.
    ///
    /// HSCD schemes must push it to memory without allocating a line (it
    /// must be globally visible by lock release, and the epoch machinery
    /// says nothing about it); directory schemes handle it like any
    /// coherent write. The default forwards to [`CoherenceEngine::write`].
    fn write_critical(&mut self, proc: ProcId, addr: WordAddr, version: u64, now: Cycle) -> Cycle {
        self.write(proc, addr, version, now)
    }

    /// Crosses an epoch boundary: drains write buffers, advances the epoch
    /// counter, applies timetag resets. `per_proc_now` is each processor's
    /// local completion time; the return value is each processor's extra
    /// stall at the barrier.
    fn epoch_boundary(&mut self, per_proc_now: &[Cycle]) -> Vec<Cycle>;

    /// The interconnect (for traffic stats and load updates).
    fn network(&self) -> &Network;

    /// Mutable interconnect access (the simulator calls
    /// [`Network::end_epoch`]).
    fn network_mut(&mut self) -> &mut Network;

    /// Per-processor statistics.
    fn stats(&self) -> &EngineStats;

    /// Write-buffer statistics, for the write-through schemes.
    fn write_buffer_stats(&self) -> Option<tpi_cache::WriteBufferStats> {
        None
    }

    /// Monotonic operation counters for the profiling layer, as stable
    /// `(name, count)` pairs (e.g. `("tpi_tag_checks", n)`).
    ///
    /// Purely observational: the counters never influence timing or
    /// protocol behaviour, and engines that do not instrument themselves
    /// report none.
    fn op_counts(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Whether this engine's per-event outcomes are a pure function of
    /// per-processor state, epoch-start global state, and commutative
    /// global accumulators — the invariant that lets the shard-parallel
    /// simulator replay disjoint processor sets on engine replicas and
    /// merge at epoch boundaries with bit-identical results.
    ///
    /// True for the epoch-disciplined schemes (BASE, SC, TPI, IDEAL):
    /// their only cross-processor state is the memory version table,
    /// which commits at epoch boundaries (matching the write-buffer
    /// drain). False for the order-sensitive schemes: the directory
    /// engines observe mid-epoch sharer/owner state (three-hop dirty
    /// fetches, false-sharing invalidations) and Tardis stamps leases
    /// from a live global read-timestamp table; those replay through the
    /// serial core.
    fn shard_safe(&self) -> bool {
        false
    }

    /// Switches on recording of memory-version commits so the shard
    /// runner can exchange them between replicas (see
    /// [`CoherenceEngine::drain_version_updates`]). Off by default:
    /// serial runs must not pay for an ever-growing update log.
    fn enable_shard_tracking(&mut self) {}

    /// Takes the `(word address, version)` pairs committed to the memory
    /// version table since the last drain. Empty unless
    /// [`CoherenceEngine::enable_shard_tracking`] was called.
    fn drain_version_updates(&mut self) -> Vec<(u64, u64)> {
        Vec::new()
    }

    /// Max-merges another shard's drained version commits into this
    /// engine's memory version table. Versions grow monotonically, so the
    /// merge is commutative and idempotent — shard order cannot matter.
    /// Must not disturb any observational counter (the serial path never
    /// calls this, and the shard merge must stay bit-identical to it).
    fn apply_version_updates(&mut self, _updates: &[(u64, u64)]) {}
}

/// Builds the engine for `scheme` through the global [`registry`].
///
/// Accepts anything convertible to a [`SchemeId`] — the id itself or a
/// legacy [`SchemeKind`].
///
/// # Panics
///
/// Panics if `scheme` is not registered; resolve user input through
/// [`registry::global()`]`.lookup(..)` first to report the error
/// structurally.
///
/// # Examples
///
/// ```
/// use tpi_mem::{ProcId, ReadKind, WordAddr};
/// use tpi_proto::{build_engine, EngineConfig, SchemeId};
///
/// let mut engine = build_engine(SchemeId::TPI, EngineConfig::paper_default(1 << 20));
/// let miss = engine.read(ProcId(0), WordAddr(64), ReadKind::Plain, 0, 0);
/// assert!(miss.miss.is_some());
/// let hit = engine.read(ProcId(0), WordAddr(64), ReadKind::Plain, 0, 200);
/// assert!(hit.miss.is_none());
/// ```
#[must_use]
pub fn build_engine(scheme: impl Into<SchemeId>, cfg: EngineConfig) -> Box<dyn CoherenceEngine> {
    let id = scheme.into();
    match registry::global().get(id) {
        Ok(s) => s.build(cfg),
        Err(e) => panic!("build_engine: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(deprecated)]
    fn labels() {
        assert_eq!(SchemeKind::Tpi.to_string(), "TPI");
        assert_eq!(SchemeKind::FullMap.label(), "HW");
        assert_eq!(SchemeKind::MAIN.len(), 4);
    }

    #[test]
    fn config_shared_test() {
        let cfg = EngineConfig::paper_default(100);
        assert!(cfg.is_shared(WordAddr(99)));
        assert!(!cfg.is_shared(WordAddr(100)));
        assert_eq!(cfg.procs, 16);
        assert_eq!(cfg.reset_cycles, 128);
    }

    #[test]
    fn build_all_engines() {
        for scheme in registry::global().all() {
            let e = build_engine(scheme.id(), EngineConfig::paper_default(1024));
            assert!(!e.name().is_empty());
            assert_eq!(e.stats().per_proc().len(), 16);
        }
    }

    #[test]
    #[allow(deprecated)]
    fn build_engine_accepts_legacy_kind() {
        let e = build_engine(SchemeKind::FullMap, EngineConfig::paper_default(1024));
        assert_eq!(e.name(), "HW");
    }

    #[test]
    fn outcome_constructors() {
        assert_eq!(AccessOutcome::hit().stall, 1);
        let m = AccessOutcome::miss(100, MissClass::Cold);
        assert_eq!(m.miss, Some(MissClass::Cold));
    }
}
