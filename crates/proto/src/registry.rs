//! Pluggable scheme registry: the open-ended successor to the closed
//! [`crate::SchemeKind`] enum.
//!
//! A coherence protocol plugs into the study by implementing the
//! [`Scheme`] trait — a stable [`SchemeId`], a table label, a storage-cost
//! model (Figure 5), capability flags, and an engine factory — and
//! registering itself in a [`SchemeRegistry`]. Every consumer (the
//! simulator, the experiment runner, the service wire format, the CLI
//! drivers, the differential sweep) resolves schemes by name through the
//! registry instead of matching on an enum, so landing a new protocol
//! means adding one module here and nothing elsewhere.
//!
//! [`global()`] holds the built-in registry: the paper's four main
//! schemes (BASE, SC, TPI, HW), the LimitLess and IDEAL variants, and the
//! two post-paper protocols this repo adds for comparison — TARDIS
//! (timestamp-lease coherence, Yu & Devadas) and HYB (competitive
//! update/invalidate, Dahlgren & Stenström).

use std::sync::OnceLock;

use crate::hybrid::HybridEngine;
use crate::invariant::{self, ModelInvariant};
use crate::storage::{self, StorageOverhead, StorageParams};
use crate::tardis::TardisEngine;
use crate::{
    BaseEngine, CoherenceEngine, DirectoryEngine, EngineConfig, IdealEngine, ScEngine, TpiEngine,
};

/// Stable identifier of a registered scheme (lower-case, e.g. `"tpi"`).
///
/// `SchemeId` is a `Copy` newtype over the scheme's interned id string, so
/// it can sit in `Copy + Hash` config and cache-key structs exactly like
/// the old [`crate::SchemeKind`] enum did. Equality and hashing are by id
/// content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SchemeId(&'static str);

impl SchemeId {
    /// No caching of shared data.
    pub const BASE: SchemeId = SchemeId("base");
    /// Software cache-bypass.
    pub const SC: SchemeId = SchemeId("sc");
    /// Two-phase invalidation (the paper's scheme).
    pub const TPI: SchemeId = SchemeId("tpi");
    /// Full-map directory, write-back MSI (label "HW").
    pub const FULL_MAP: SchemeId = SchemeId("hw");
    /// LimitLess directory.
    pub const LIMITLESS: SchemeId = SchemeId("ll");
    /// Perfect-coherence oracle.
    pub const IDEAL: SchemeId = SchemeId("ideal");
    /// Tardis timestamp-lease coherence.
    pub const TARDIS: SchemeId = SchemeId("tardis");
    /// Competitive hybrid update/invalidate.
    pub const HYBRID: SchemeId = SchemeId("hybrid");

    /// An id for a new (out-of-tree) scheme; use the associated constants
    /// for the built-ins. Ids should be short and lower-case.
    #[must_use]
    pub const fn new(id: &'static str) -> Self {
        SchemeId(id)
    }

    /// The id string (lower-case, stable across releases).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        self.0
    }

    /// Short table label ("TPI", "HW", ...), resolved through the global
    /// registry; falls back to the raw id for unregistered schemes.
    #[must_use]
    pub fn label(self) -> &'static str {
        match global().get(self) {
            Ok(s) => s.label(),
            Err(_) => self.0,
        }
    }
}

impl std::fmt::Display for SchemeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Conversions bridging the deprecated [`crate::SchemeKind`] enum into
/// registry ids. Confined to this module so the `#[allow(deprecated)]`
/// fence covers only the bridge (and the alias definition itself).
mod kind_bridge {
    #![allow(deprecated)]

    use super::SchemeId;
    use crate::SchemeKind;

    impl From<SchemeKind> for SchemeId {
        fn from(kind: SchemeKind) -> SchemeId {
            match kind {
                SchemeKind::Base => SchemeId::BASE,
                SchemeKind::Sc => SchemeId::SC,
                SchemeKind::Tpi => SchemeId::TPI,
                SchemeKind::FullMap => SchemeId::FULL_MAP,
                SchemeKind::LimitLess => SchemeId::LIMITLESS,
                SchemeKind::Ideal => SchemeId::IDEAL,
            }
        }
    }

    impl PartialEq<SchemeKind> for SchemeId {
        fn eq(&self, other: &SchemeKind) -> bool {
            *self == SchemeId::from(*other)
        }
    }

    impl PartialEq<SchemeId> for SchemeKind {
        fn eq(&self, other: &SchemeId) -> bool {
            SchemeId::from(*self) == *other
        }
    }
}

/// Capability flags a scheme declares to its consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchemeCaps {
    /// The engine does real work at epoch boundaries (write-buffer
    /// drains, timetag resets, timestamp joins) rather than treating them
    /// as no-ops.
    pub needs_epoch_boundary: bool,
    /// The engine consumes the compiler's reference markings (Time-Read /
    /// cache-bypass); mark-ignoring schemes can run unmarked traces.
    pub uses_compiler_marks: bool,
    /// Width of the per-word timestamps or timetags the scheme keeps, if
    /// any.
    pub timestamp_bits: Option<u32>,
}

/// A coherence scheme as the registry sees it: identity, metadata,
/// storage model, and an engine factory.
///
/// Implementations are `'static` unit structs registered once; see
/// `DESIGN.md` ("Adding a coherence scheme") for the full contract,
/// including the staleness-oracle obligations a new scheme must meet.
pub trait Scheme: Sync {
    /// Stable lower-case identifier (wire format, CLI `--scheme`).
    fn id(&self) -> SchemeId;

    /// Short table label (upper-case, e.g. "TPI").
    fn label(&self) -> &'static str;

    /// One-line human description for `/v1/schemes` and docs.
    fn description(&self) -> &'static str;

    /// Whether the scheme belongs to the paper's main four-way
    /// comparison tables (Figures 8-13).
    fn paper_main(&self) -> bool {
        false
    }

    /// Capability flags.
    fn caps(&self) -> SchemeCaps;

    /// Bookkeeping storage cost under the Figure 5 model.
    fn storage(&self, p: StorageParams) -> StorageOverhead;

    /// Cache-side bookkeeping bits per cached data word at the paper's
    /// Figure 5 machine parameters (a single comparable scalar for
    /// `/v1/schemes` metadata).
    fn storage_bits_per_word(&self) -> f64 {
        let p = StorageParams::paper_figure5();
        let words = (p.line_words * p.cache_lines_per_node * p.processors) as f64;
        self.storage(p).sram_bits as f64 / words
    }

    /// Builds a fresh engine for one simulation run.
    fn build(&self, cfg: EngineConfig) -> Box<dyn CoherenceEngine>;

    /// Scheme-specific safety invariants for `tpi-model`, checked against
    /// the live engine after every exploration step.
    ///
    /// The default is empty, but schemes with internal bookkeeping
    /// (directories, timetags, leases) should supply the invariants that
    /// make that bookkeeping checkable; see `DESIGN.md` ("Model checking
    /// the protocols").
    fn model_invariants(&self) -> Vec<ModelInvariant> {
        Vec::new()
    }
}

/// Errors from registry registration and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RegistryError {
    /// A scheme with the same id (or label) is already registered.
    Duplicate {
        /// The contested id.
        id: SchemeId,
    },
    /// No registered scheme matches the requested name.
    Unknown {
        /// The name that failed to resolve.
        name: String,
        /// Ids of every registered scheme, in registration order.
        known: Vec<&'static str>,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Duplicate { id } => {
                write!(f, "scheme \"{}\" is already registered", id.as_str())
            }
            RegistryError::Unknown { name, known } => {
                write!(
                    f,
                    "unknown scheme \"{name}\" (registered: {})",
                    known.join(", ")
                )
            }
        }
    }
}

impl RegistryError {
    /// Stable machine-readable error code, shared with the serve wire
    /// layer's structured `BadRequest` errors so CLI drivers and `/v1`
    /// endpoints reject bad scheme names identically.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            RegistryError::Duplicate { .. } => "duplicate_scheme",
            RegistryError::Unknown { .. } => "bad_field",
        }
    }
}

impl std::error::Error for RegistryError {}

/// An ordered collection of [`Scheme`]s, looked up by id or label
/// (case-insensitive).
#[derive(Default)]
pub struct SchemeRegistry {
    schemes: Vec<&'static dyn Scheme>,
}

impl SchemeRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        SchemeRegistry::default()
    }

    /// Registers `scheme`, rejecting id or label collisions with anything
    /// already registered.
    pub fn register(&mut self, scheme: &'static dyn Scheme) -> Result<(), RegistryError> {
        let id = scheme.id();
        let clashes = self.schemes.iter().any(|s| {
            s.id().as_str().eq_ignore_ascii_case(id.as_str())
                || s.label().eq_ignore_ascii_case(scheme.label())
        });
        if clashes {
            return Err(RegistryError::Duplicate { id });
        }
        self.schemes.push(scheme);
        Ok(())
    }

    /// Resolves `name` against scheme ids and labels, case-insensitively.
    pub fn lookup(&self, name: &str) -> Result<&'static dyn Scheme, RegistryError> {
        self.schemes
            .iter()
            .copied()
            .find(|s| {
                name.eq_ignore_ascii_case(s.id().as_str()) || name.eq_ignore_ascii_case(s.label())
            })
            .ok_or_else(|| RegistryError::Unknown {
                name: name.to_string(),
                known: self.schemes.iter().map(|s| s.id().as_str()).collect(),
            })
    }

    /// Resolves a [`SchemeId`] (exact, but ids are lower-case so this is
    /// the same match as [`SchemeRegistry::lookup`]).
    pub fn get(&self, id: SchemeId) -> Result<&'static dyn Scheme, RegistryError> {
        self.lookup(id.as_str())
    }

    /// All registered schemes, in registration order.
    #[must_use]
    pub fn all(&self) -> &[&'static dyn Scheme] {
        &self.schemes
    }

    /// Ids of the schemes in the paper's main comparison
    /// ([`Scheme::paper_main`]), in registration order.
    #[must_use]
    pub fn main_schemes(&self) -> Vec<SchemeId> {
        self.schemes
            .iter()
            .filter(|s| s.paper_main())
            .map(|s| s.id())
            .collect()
    }
}

macro_rules! builtin_scheme {
    (
        $ty:ident, $id:expr, $label:expr, $desc:expr,
        main: $main:expr, caps: $caps:expr,
        storage: $storage:expr, build: $build:expr,
        invariants: $invariants:expr
    ) => {
        #[doc = concat!("Built-in registry entry for the ", $label, " scheme.")]
        pub struct $ty;

        impl Scheme for $ty {
            fn id(&self) -> SchemeId {
                $id
            }
            fn label(&self) -> &'static str {
                $label
            }
            fn description(&self) -> &'static str {
                $desc
            }
            fn paper_main(&self) -> bool {
                $main
            }
            fn caps(&self) -> SchemeCaps {
                $caps
            }
            fn storage(&self, p: StorageParams) -> StorageOverhead {
                #[allow(clippy::redundant_closure_call)]
                ($storage)(p)
            }
            fn build(&self, cfg: EngineConfig) -> Box<dyn CoherenceEngine> {
                #[allow(clippy::redundant_closure_call)]
                ($build)(cfg)
            }
            fn model_invariants(&self) -> Vec<ModelInvariant> {
                #[allow(clippy::redundant_closure_call)]
                ($invariants)()
            }
        }
    };
}

builtin_scheme!(
    BaseScheme, SchemeId::BASE, "BASE",
    "Shared data is never cached; every shared access is a remote memory access.",
    main: true,
    caps: SchemeCaps { needs_epoch_boundary: false, uses_compiler_marks: false, timestamp_bits: None },
    storage: |_p: StorageParams| StorageOverhead::default(),
    build: |cfg| Box::new(BaseEngine::new(cfg)) as Box<dyn CoherenceEngine>,
    invariants: invariant::base_invariants
);

builtin_scheme!(
    ScScheme, SchemeId::SC, "SC",
    "Software cache-bypass: compiler-marked potentially-stale loads always go to memory.",
    main: true,
    caps: SchemeCaps { needs_epoch_boundary: true, uses_compiler_marks: true, timestamp_bits: None },
    storage: |_p: StorageParams| StorageOverhead::default(),
    build: |cfg| Box::new(ScEngine::new(cfg)) as Box<dyn CoherenceEngine>,
    invariants: Vec::new
);

builtin_scheme!(
    TpiScheme, SchemeId::TPI, "TPI",
    "Two-phase invalidation: per-word timetags checked against compiler epoch distances.",
    main: true,
    caps: SchemeCaps { needs_epoch_boundary: true, uses_compiler_marks: true, timestamp_bits: Some(8) },
    storage: storage::tpi,
    build: |cfg| Box::new(TpiEngine::new(cfg)) as Box<dyn CoherenceEngine>,
    invariants: invariant::tpi_invariants
);

builtin_scheme!(
    FullMapScheme, SchemeId::FULL_MAP, "HW",
    "Full-map directory: three-state write-back invalidation protocol.",
    main: true,
    caps: SchemeCaps { needs_epoch_boundary: false, uses_compiler_marks: false, timestamp_bits: None },
    storage: storage::full_map,
    build: |cfg| Box::new(DirectoryEngine::full_map(cfg)) as Box<dyn CoherenceEngine>,
    invariants: invariant::directory_invariants
);

builtin_scheme!(
    LimitLessScheme, SchemeId::LIMITLESS, "LL",
    "LimitLess directory: limited hardware pointers with a software trap on overflow.",
    main: false,
    caps: SchemeCaps { needs_epoch_boundary: false, uses_compiler_marks: false, timestamp_bits: None },
    storage: storage::limitless_as_tabulated,
    build: |cfg| Box::new(DirectoryEngine::limitless(cfg)) as Box<dyn CoherenceEngine>,
    invariants: invariant::directory_invariants
);

builtin_scheme!(
    IdealScheme, SchemeId::IDEAL, "IDEAL",
    "Perfect-coherence oracle: only necessary misses (lower bound, not a real protocol).",
    main: false,
    caps: SchemeCaps { needs_epoch_boundary: false, uses_compiler_marks: false, timestamp_bits: None },
    storage: |_p: StorageParams| StorageOverhead::default(),
    build: |cfg| Box::new(IdealEngine::new(cfg)) as Box<dyn CoherenceEngine>,
    invariants: Vec::new
);

builtin_scheme!(
    TardisScheme, SchemeId::TARDIS, "TARDIS",
    "Tardis timestamp coherence: per-word read leases and write timestamps, no invalidations.",
    main: false,
    caps: SchemeCaps {
        needs_epoch_boundary: true,
        uses_compiler_marks: false,
        timestamp_bits: Some(storage::TARDIS_TS_BITS as u32),
    },
    storage: storage::tardis,
    build: |cfg| Box::new(TardisEngine::new(cfg)) as Box<dyn CoherenceEngine>,
    invariants: invariant::tardis_invariants
);

builtin_scheme!(
    HybridScheme, SchemeId::HYBRID, "HYB",
    "Competitive hybrid update/invalidate: word updates until a per-line counter trips.",
    main: false,
    caps: SchemeCaps { needs_epoch_boundary: true, uses_compiler_marks: false, timestamp_bits: None },
    storage: storage::hybrid,
    build: |cfg| Box::new(HybridEngine::new(cfg)) as Box<dyn CoherenceEngine>,
    invariants: invariant::hybrid_invariants
);

/// The built-in schemes, in registration (and therefore table) order.
static BUILT_INS: [&dyn Scheme; 8] = [
    &BaseScheme,
    &ScScheme,
    &TpiScheme,
    &FullMapScheme,
    &LimitLessScheme,
    &IdealScheme,
    &TardisScheme,
    &HybridScheme,
];

static GLOBAL: OnceLock<SchemeRegistry> = OnceLock::new();

/// The process-wide registry holding all built-in schemes.
pub fn global() -> &'static SchemeRegistry {
    GLOBAL.get_or_init(|| {
        let mut r = SchemeRegistry::new();
        for s in BUILT_INS {
            r.register(s).expect("built-in scheme ids are unique");
        }
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_has_all_builtins_and_main_four() {
        let r = global();
        assert_eq!(r.all().len(), 8);
        assert_eq!(
            r.main_schemes(),
            vec![
                SchemeId::BASE,
                SchemeId::SC,
                SchemeId::TPI,
                SchemeId::FULL_MAP
            ]
        );
    }

    #[test]
    fn lookup_is_case_insensitive_over_id_and_label() {
        let r = global();
        assert_eq!(r.lookup("tpi").unwrap().label(), "TPI");
        assert_eq!(r.lookup("TPI").unwrap().id(), SchemeId::TPI);
        assert_eq!(r.lookup("hw").unwrap().id(), SchemeId::FULL_MAP);
        assert_eq!(r.lookup("Hw").unwrap().id(), SchemeId::FULL_MAP);
        assert_eq!(r.lookup("HYB").unwrap().id(), SchemeId::HYBRID);
        assert_eq!(r.lookup("Tardis").unwrap().label(), "TARDIS");
    }

    #[test]
    fn unknown_name_errors_with_known_list() {
        let Err(err) = global().lookup("mesi") else {
            panic!("lookup of unregistered name must fail");
        };
        match err {
            RegistryError::Unknown { name, known } => {
                assert_eq!(name, "mesi");
                assert!(known.contains(&"tpi"));
                assert!(known.contains(&"tardis"));
                assert_eq!(known.len(), 8);
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_registration_errors() {
        let mut r = SchemeRegistry::new();
        r.register(&TpiScheme).unwrap();
        let err = r.register(&TpiScheme).unwrap_err();
        assert_eq!(err, RegistryError::Duplicate { id: SchemeId::TPI });
        // A different type with a clashing label is also rejected.
        struct FakeTpi;
        impl Scheme for FakeTpi {
            fn id(&self) -> SchemeId {
                SchemeId("tpi2")
            }
            fn label(&self) -> &'static str {
                "TPI"
            }
            fn description(&self) -> &'static str {
                ""
            }
            fn caps(&self) -> SchemeCaps {
                SchemeCaps::default()
            }
            fn storage(&self, _p: StorageParams) -> StorageOverhead {
                StorageOverhead::default()
            }
            fn build(&self, cfg: EngineConfig) -> Box<dyn CoherenceEngine> {
                Box::new(BaseEngine::new(cfg))
            }
        }
        static FAKE: FakeTpi = FakeTpi;
        assert!(matches!(
            r.register(&FAKE),
            Err(RegistryError::Duplicate { .. })
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn scheme_id_interops_with_scheme_kind() {
        use crate::SchemeKind;
        assert_eq!(SchemeId::from(SchemeKind::FullMap), SchemeId::FULL_MAP);
        assert!(SchemeId::TPI == SchemeKind::Tpi);
        assert!(SchemeKind::LimitLess == SchemeId::LIMITLESS);
        assert_ne!(SchemeId::TARDIS, SchemeId::HYBRID);
        assert_eq!(SchemeId::TARDIS.as_str(), "tardis");
        assert_eq!(SchemeId::TARDIS.label(), "TARDIS");
        assert_eq!(SchemeId::FULL_MAP.to_string(), "HW");
    }

    #[test]
    fn storage_bits_per_word_metadata() {
        let r = global();
        let bits = |name: &str| r.lookup(name).unwrap().storage_bits_per_word();
        assert_eq!(bits("base"), 0.0);
        assert_eq!(bits("tpi"), 8.0);
        assert_eq!(bits("tardis"), 64.0);
        assert!((bits("hw") - 0.5).abs() < 1e-12);
        assert!((bits("hybrid") - 1.25).abs() < 1e-12);
    }
}
