//! Full-map directory engine (and its LimitLess variant).
//!
//! A three-state (Invalid / Read-Shared / Write-Exclusive) invalidation
//! protocol with a full-map directory (Censier & Feautrier \[8\]) over
//! write-back caches — the paper's hardware comparison point. The directory
//! is precise: evictions notify the home node, so every presence bit
//! corresponds to a cached copy (checked by
//! [`DirectoryEngine::verify_invariants`]).
//!
//! Timing follows the paper's weak-consistency model: reads stall for the
//! full directory transaction (two network hops for clean lines, three when
//! a dirty copy must be recalled from its owner); writes retire in the
//! background (1 processor cycle) while their invalidation traffic is
//! accounted and remote copies drop immediately.
//!
//! Invalidation-induced misses are classified true- or false-sharing with
//! the Tullsen–Eggers test \[34\]: an invalidation whose written word the
//! local processor never touched since fill is a false-sharing
//! invalidation, and the next miss on that line a false-sharing miss.
//!
//! The **LimitLess** variant (Agarwal et al. \[2\]) keeps only `i` hardware
//! pointers per entry; when a line acquires more sharers, directory
//! transactions on it take a software trap at the home node, adding a fixed
//! penalty (and the entry falls back to a software full map, so precision
//! is unaffected).

use crate::sharers::SharerSet;
use crate::stats::{EngineStats, MissClass};
use crate::{AccessOutcome, CoherenceEngine, EngineConfig};
use tpi_cache::{Cache, Line, LineState};
use tpi_mem::{Cycle, FastMap, FastSet, LineAddr, ProcId, ReadKind, WordAddr};
use tpi_net::{Network, TrafficClass};

#[derive(Debug, Clone, Default)]
struct DirEntry {
    /// Write-exclusive holder, if any.
    owner: Option<u32>,
    /// Presence bits of read-shared holders. The bitmap grows with the
    /// machine ([`SharerSet`]), so the full-map *storage* cost the paper
    /// charges against this scheme — O(P) bits per line — is modelled
    /// faithfully rather than capped at a single machine word.
    sharers: SharerSet,
}

impl DirEntry {
    fn is_empty(&self) -> bool {
        self.owner.is_none() && self.sharers.is_empty()
    }

    fn holder_count(&self) -> u32 {
        self.sharers.count() + u32::from(self.owner.is_some())
    }
}

/// Full-map (or LimitLess) directory engine.
#[derive(Debug)]
pub struct DirectoryEngine {
    cfg: EngineConfig,
    caches: Vec<Cache>,
    net: Network,
    stats: EngineStats,
    directory: FastMap<u64, DirEntry>,
    mem_versions: FastMap<u64, u64>,
    ever_cached: Vec<FastSet<u64>>,
    /// Pending classification for the next miss after an invalidation.
    pending_class: Vec<FastMap<u64, MissClass>>,
    /// `Some((pointers, trap_cycles))` for LimitLess.
    limitless: Option<(u32, Cycle)>,
    name: &'static str,
}

impl DirectoryEngine {
    /// Builds the full-map variant.
    ///
    /// Presence bits grow with the machine ([`SharerSet`]), so the same
    /// engine serves the paper's 16-processor simulations and the
    /// large-scale 64–1024-processor study (EXPERIMENTS.md E24).
    #[must_use]
    pub fn full_map(cfg: EngineConfig) -> Self {
        Self::build(cfg, None, "HW")
    }

    /// Builds the LimitLess variant with `cfg.limitless_pointers` hardware
    /// pointers.
    #[must_use]
    pub fn limitless(cfg: EngineConfig) -> Self {
        let ll = Some((cfg.limitless_pointers, cfg.limitless_trap_cycles));
        Self::build(cfg, ll, "LL")
    }

    fn build(cfg: EngineConfig, limitless: Option<(u32, Cycle)>, name: &'static str) -> Self {
        let caches = (0..cfg.procs).map(|_| Cache::new(cfg.cache)).collect();
        let net = Network::new(cfg.net);
        let stats = EngineStats::new(cfg.procs);
        DirectoryEngine {
            caches,
            net,
            stats,
            directory: FastMap::default(),
            mem_versions: FastMap::default(),
            ever_cached: vec![FastSet::default(); cfg.procs as usize],
            pending_class: vec![FastMap::default(); cfg.procs as usize],
            limitless,
            name,
            cfg,
        }
    }

    fn mem_version(&self, addr: WordAddr) -> u64 {
        self.mem_versions.get(&addr.0).copied().unwrap_or(0)
    }

    /// LimitLess trap check: charges a trap if the entry has overflowed the
    /// hardware pointers. Returns the extra read-stall cycles.
    fn trap_penalty(&mut self, p: usize, la: LineAddr) -> Cycle {
        let Some((pointers, trap_cycles)) = self.limitless else {
            return 0;
        };
        let overflowed = self
            .directory
            .get(&la.0)
            .is_some_and(|e| e.holder_count() > pointers);
        if overflowed {
            self.stats.proc_mut(p).traps += 1;
            self.net.record(TrafficClass::Coherence, 1);
            trap_cycles
        } else {
            0
        }
    }

    /// Removes processor `q`'s copy because of a write to `word`; leaves
    /// the classification for `q`'s next miss on the line.
    fn invalidate_copy(&mut self, q: u32, la: LineAddr, word: u32) {
        self.net.record(TrafficClass::Coherence, 0); // invalidation
        self.net.record(TrafficClass::Coherence, 0); // acknowledgement
        if let Some(victim) = self.caches[q as usize].remove(la) {
            let fs = !victim.word_accessed(word);
            let class = if fs {
                MissClass::FalseSharing
            } else {
                MissClass::CoherenceTrue
            };
            self.pending_class[q as usize].insert(la.0, class);
            self.stats.proc_mut(q as usize).invals_received += 1;
            debug_assert!(!victim.any_dirty(), "shared copies are clean");
        } else {
            debug_assert!(false, "directory presence bit without a cached copy");
        }
    }

    /// Invalidates every holder except `except`; returns how many copies
    /// dropped.
    fn invalidate_sharers(&mut self, la: LineAddr, word: u32, except: u32) -> u32 {
        let holders: Vec<u32> = self
            .directory
            .get(&la.0)
            .map(|e| e.sharers.iter().filter(|&q| q != except).collect())
            .unwrap_or_default();
        let mut dropped = 0;
        for q in holders {
            self.invalidate_copy(q, la, word);
            dropped += 1;
        }
        if let Some(e) = self.directory.get_mut(&la.0) {
            e.sharers.retain_only(except);
        }
        dropped
    }

    /// Installs a full line in `p`'s cache; handles the victim.
    fn fill(&mut self, p: usize, la: LineAddr, req_word: u32, req_version: u64, state: LineState) {
        let geom = self.cfg.cache.geometry;
        let wpl = geom.words_per_line();
        let base = geom.first_word(la).0;
        let mut line = Line::new(la, wpl);
        line.state = state;
        for w in 0..wpl {
            line.set_word_valid(w, true);
            let mem = self.mem_version(WordAddr(base + u64::from(w)));
            let v = if w == req_word {
                req_version.max(mem)
            } else {
                mem
            };
            line.set_version(w, v);
        }
        line.set_word_accessed(req_word);
        let victim = self.caches[p].insert(line);
        if let Some(v) = victim {
            self.handle_eviction(p, &v);
        }
        self.ever_cached[p].insert(la.0);
    }

    /// Write-back + directory notification for an evicted line.
    fn handle_eviction(&mut self, p: usize, victim: &Line) {
        let la = victim.addr;
        if victim.state == LineState::Exclusive && victim.any_dirty() {
            self.net.record(
                TrafficClass::Write,
                self.cfg.cache.geometry.words_per_line(),
            );
            self.stats.proc_mut(p).write_backs += 1;
        } else {
            // Replacement hint keeps the directory precise.
            self.net.record(TrafficClass::Coherence, 0);
        }
        if let Some(e) = self.directory.get_mut(&la.0) {
            if e.owner == Some(p as u32) {
                e.owner = None;
            }
            e.sharers.remove(p as u32);
            if e.is_empty() {
                self.directory.remove(&la.0);
            }
        }
    }

    /// Checks the directory/cache cross-invariants; returns a description
    /// of the first violation.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn verify_invariants(&self) -> Result<(), String> {
        for (addr, e) in &self.directory {
            let la = LineAddr(*addr);
            if let Some(o) = e.owner {
                if e.sharers.iter().any(|q| q != o) {
                    return Err(format!("{la}: owner {o} coexists with sharers"));
                }
                match self.caches[o as usize].peek(la) {
                    Some(l) if l.state == LineState::Exclusive => {}
                    _ => return Err(format!("{la}: owner {o} has no exclusive copy")),
                }
            }
            for q in e.sharers.iter() {
                match self.caches[q as usize].peek(la) {
                    Some(l) if l.state == LineState::Shared => {}
                    _ => return Err(format!("{la}: presence bit {q} without shared copy")),
                }
            }
        }
        // Converse: every cached line has a directory record.
        for (p, cache) in self.caches.iter().enumerate() {
            let mut bad: Option<String> = None;
            cache.for_each_line(|l| {
                let e = self.directory.get(&l.addr.0);
                let present = match l.state {
                    LineState::Exclusive => e.is_some_and(|e| e.owner == Some(p as u32)),
                    LineState::Shared => e.is_some_and(|e| e.sharers.contains(p as u32)),
                };
                if !present && bad.is_none() {
                    bad = Some(format!("{}: cached at P{p} but not in directory", l.addr));
                }
            });
            if let Some(msg) = bad {
                return Err(msg);
            }
        }
        Ok(())
    }

    /// Test-only sabotage for the `tpi-model` seeded-violation tests:
    /// clear processor `p`'s presence bit (and ownership) for the line of
    /// `addr` while its copy stays resident — the lost-sharer directory
    /// bug [`DirectoryEngine::verify_invariants`] exists to catch.
    #[doc(hidden)]
    pub fn debug_drop_sharer_bit(&mut self, p: usize, addr: WordAddr) {
        let la = self.cfg.cache.geometry.line_of(addr);
        if let Some(e) = self.directory.get_mut(&la.0) {
            if e.owner == Some(p as u32) {
                e.owner = None;
            }
            e.sharers.remove(p as u32);
        }
    }
}

impl CoherenceEngine for DirectoryEngine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn read(
        &mut self,
        proc: ProcId,
        addr: WordAddr,
        kind: ReadKind,
        version: u64,
        _now: Cycle,
    ) -> AccessOutcome {
        let p = proc.0 as usize;
        self.stats.proc_mut(p).reads += 1;
        let geom = self.cfg.cache.geometry;
        let la = geom.line_of(addr);
        let w = geom.word_in_line(addr);
        if let Some(line) = self.caches[p].touch_mut(la) {
            line.set_word_accessed(w);
            // Critical-section accesses are serialized by their lock; the
            // replay may legally order them differently than the trace
            // recorder did, so the shadow-version identity only applies to
            // epoch-ordered (non-critical) reads.
            assert!(
                !self.cfg.verify_freshness
                    || kind == ReadKind::Critical
                    || line.version(w) == version,
                "directory hit observed stale data at {addr}: cached {} vs required {version}",
                line.version(w)
            );
            self.stats.proc_mut(p).read_hits += 1;
            return AccessOutcome::hit();
        }
        let class = self.pending_class[p].remove(&la.0).unwrap_or_else(|| {
            if self.ever_cached[p].contains(&la.0) {
                MissClass::Replacement
            } else {
                MissClass::Cold
            }
        });
        let line_words = geom.words_per_line();
        let owner = self.directory.get(&la.0).and_then(|e| e.owner);
        let mut stall;
        if let Some(o) = owner {
            debug_assert_ne!(o as usize, p, "owner cannot miss on its own line");
            // Three-hop: home forwards to the owner, which supplies the
            // line, downgrades to Shared, and flushes memory clean.
            stall = 1 + self.net.three_hop_fetch(line_words);
            self.net.record(TrafficClass::Read, 0);
            self.net.record(TrafficClass::Coherence, 0);
            self.net.record(TrafficClass::Read, line_words);
            self.net.record(TrafficClass::Write, line_words);
            if let Some(ol) = self.caches[o as usize].touch_mut(la) {
                ol.state = LineState::Shared;
                ol.clean_all();
            }
            self.stats.proc_mut(o as usize).write_backs += 1;
            let e = self.directory.entry(la.0).or_default();
            e.owner = None;
            e.sharers.insert(o);
        } else {
            stall = 1 + self.net.line_fetch(line_words);
            self.net.record(TrafficClass::Read, 0);
            self.net.record(TrafficClass::Read, line_words);
        }
        self.directory
            .entry(la.0)
            .or_default()
            .sharers
            .insert(p as u32);
        stall += self.trap_penalty(p, la);
        self.fill(p, la, w, version, LineState::Shared);
        self.stats.proc_mut(p).record_miss(class, stall);
        AccessOutcome::miss(stall, class)
    }

    fn write(&mut self, proc: ProcId, addr: WordAddr, version: u64, _now: Cycle) -> Cycle {
        let p = proc.0 as usize;
        self.stats.proc_mut(p).writes += 1;
        let slot = self.mem_versions.entry(addr.0).or_insert(0);
        *slot = (*slot).max(version);
        let geom = self.cfg.cache.geometry;
        let la = geom.line_of(addr);
        let w = geom.word_in_line(addr);
        let state = self.caches[p].peek(la).map(|l| l.state);
        match state {
            Some(LineState::Exclusive) => {
                let line = self.caches[p].touch_mut(la).expect("resident");
                line.set_word_dirty(w, true);
                line.set_word_accessed(w);
                let nv = line.version(w).max(version);
                line.set_version(w, nv);
            }
            Some(LineState::Shared) => {
                // Upgrade: invalidate the other sharers.
                self.stats.proc_mut(p).upgrades += 1;
                self.net.record(TrafficClass::Coherence, 0); // upgrade request
                self.invalidate_sharers(la, w, p as u32);
                let _ = self.trap_penalty(p, la);
                {
                    let e = self.directory.entry(la.0).or_default();
                    e.owner = Some(p as u32);
                    e.sharers.clear();
                }
                let line = self.caches[p].touch_mut(la).expect("resident");
                line.state = LineState::Exclusive;
                line.set_word_dirty(w, true);
                line.set_word_accessed(w);
                let nv = line.version(w).max(version);
                line.set_version(w, nv);
            }
            None => {
                // Write miss: read-exclusive fetch, non-blocking.
                self.stats.proc_mut(p).write_misses += 1;
                let line_words = geom.words_per_line();
                let owner = self.directory.get(&la.0).and_then(|e| e.owner);
                if let Some(o) = owner {
                    // Ownership transfer with invalidation of the old owner.
                    self.net.record(TrafficClass::Read, 0);
                    self.net.record(TrafficClass::Coherence, 0);
                    self.net.record(TrafficClass::Read, line_words);
                    if let Some(victim) = self.caches[o as usize].remove(la) {
                        let fs = !victim.word_accessed(w);
                        let class = if fs {
                            MissClass::FalseSharing
                        } else {
                            MissClass::CoherenceTrue
                        };
                        self.pending_class[o as usize].insert(la.0, class);
                        self.stats.proc_mut(o as usize).invals_received += 1;
                    }
                } else {
                    self.net.record(TrafficClass::Read, 0);
                    self.net.record(TrafficClass::Read, line_words);
                    self.invalidate_sharers(la, w, p as u32);
                }
                let _ = self.trap_penalty(p, la);
                {
                    let e = self.directory.entry(la.0).or_default();
                    e.owner = Some(p as u32);
                    e.sharers.clear();
                }
                self.fill(p, la, w, version, LineState::Exclusive);
                let line = self.caches[p].touch_mut(la).expect("just filled");
                line.set_word_dirty(w, true);
            }
        }
        1
    }

    fn epoch_boundary(&mut self, per_proc_now: &[Cycle]) -> Vec<Cycle> {
        // Write-back + eager invalidation: nothing to drain at barriers.
        vec![0; per_proc_now.len()]
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    fn stats(&self) -> &EngineStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcId = ProcId(0);
    const P1: ProcId = ProcId(1);
    const P2: ProcId = ProcId(2);

    fn engine() -> DirectoryEngine {
        DirectoryEngine::full_map(EngineConfig::paper_default(1 << 20))
    }

    #[test]
    fn read_sharing_then_upgrade_invalidates() {
        let mut e = engine();
        let a = WordAddr(0);
        let _ = e.read(P0, a, ReadKind::Plain, 0, 0);
        let _ = e.read(P1, a, ReadKind::Plain, 0, 0);
        e.verify_invariants().unwrap();
        // P0 writes: P1's copy must drop.
        e.write(P0, a, 1, 10);
        e.verify_invariants().unwrap();
        assert_eq!(e.stats().proc(0).upgrades, 1);
        assert_eq!(e.stats().proc(1).invals_received, 1);
        // P1's next read misses with a true-sharing classification (it had
        // read the very word that was written).
        let m = e.read(P1, a, ReadKind::Plain, 1, 20);
        assert_eq!(m.miss, Some(MissClass::CoherenceTrue));
        e.verify_invariants().unwrap();
    }

    #[test]
    fn false_sharing_classified() {
        let mut e = engine();
        let a = WordAddr(0);
        let sibling = WordAddr(1); // same 4-word line
        let _ = e.read(P1, a, ReadKind::Plain, 0, 0); // P1 touches word 0 only
        e.write(P0, sibling, 1, 10); // write to the untouched word
        let m = e.read(P1, a, ReadKind::Plain, 0, 20);
        assert_eq!(m.miss, Some(MissClass::FalseSharing));
    }

    #[test]
    fn dirty_remote_read_is_three_hop() {
        let mut e = engine();
        let a = WordAddr(8);
        e.write(P0, a, 1, 0); // P0 exclusive dirty
        e.verify_invariants().unwrap();
        let clean_miss = e.read(P2, WordAddr(64), ReadKind::Plain, 0, 0).stall;
        let dirty_miss = e.read(P1, a, ReadKind::Plain, 1, 0).stall;
        assert!(
            dirty_miss > clean_miss,
            "3-hop ({dirty_miss}) must exceed 2-hop ({clean_miss})"
        );
        // Owner was downgraded, memory flushed.
        assert_eq!(e.stats().proc(0).write_backs, 1);
        e.verify_invariants().unwrap();
        // Both now share.
        let h = e.read(P0, a, ReadKind::Plain, 1, 1);
        assert_eq!(h.miss, None);
    }

    #[test]
    fn write_miss_takes_ownership_from_owner() {
        let mut e = engine();
        let a = WordAddr(16);
        e.write(P0, a, 1, 0);
        e.write(P1, a, 2, 10); // ownership transfer
        e.verify_invariants().unwrap();
        assert_eq!(e.stats().proc(0).invals_received, 1);
        let m = e.read(P0, a, ReadKind::Plain, 2, 20);
        assert_eq!(m.miss, Some(MissClass::CoherenceTrue));
    }

    #[test]
    fn eviction_notifies_directory_and_writes_back() {
        let mut cfg = EngineConfig::paper_default(1 << 30);
        cfg.cache.size_bytes = 128; // 8 lines direct-mapped
        let mut e = DirectoryEngine::full_map(cfg);
        let a = WordAddr(0);
        e.write(P0, a, 1, 0); // dirty exclusive
        let conflicting = WordAddr(32); // line 8 -> set 0
        let _ = e.read(P0, conflicting, ReadKind::Plain, 0, 1);
        e.verify_invariants().unwrap();
        assert_eq!(e.stats().proc(0).write_backs, 1);
        // Re-read of `a` is a replacement miss, not coherence.
        let m = e.read(P0, a, ReadKind::Plain, 1, 2);
        assert_eq!(m.miss, Some(MissClass::Replacement));
    }

    #[test]
    fn read_hits_after_sharing() {
        let mut e = engine();
        let a = WordAddr(24);
        let _ = e.read(P0, a, ReadKind::Plain, 0, 0);
        let _ = e.read(P1, a, ReadKind::Plain, 0, 0);
        assert_eq!(e.read(P0, a, ReadKind::Plain, 0, 1).miss, None);
        assert_eq!(e.read(P1, a, ReadKind::Plain, 0, 1).miss, None);
    }

    #[test]
    fn limitless_traps_on_pointer_overflow() {
        let mut cfg = EngineConfig::paper_default(1 << 20);
        cfg.limitless_pointers = 2;
        cfg.limitless_trap_cycles = 50;
        let mut e = DirectoryEngine::limitless(cfg);
        let a = WordAddr(0);
        let s1 = e.read(P0, a, ReadKind::Plain, 0, 0).stall;
        let _ = e.read(P1, a, ReadKind::Plain, 0, 0);
        let _ = e.read(P2, a, ReadKind::Plain, 0, 0); // 3rd sharer: overflow
        let s4 = e.read(ProcId(3), a, ReadKind::Plain, 0, 0).stall;
        assert!(s4 >= s1 + 50, "overflowed entry must trap: {s4} vs {s1}");
        assert_eq!(e.stats().proc(2).traps + e.stats().proc(3).traps, 2);
        e.verify_invariants().unwrap();
    }

    #[test]
    fn ignores_read_kind_marks() {
        let mut e = engine();
        let a = WordAddr(40);
        let _ = e.read(P0, a, ReadKind::TimeRead { distance: 0 }, 0, 0);
        let h = e.read(P0, a, ReadKind::TimeRead { distance: 0 }, 0, 1);
        assert_eq!(h.miss, None, "directory schemes ignore compiler marks");
    }

    #[test]
    fn sole_sharer_upgrade_sends_no_invalidations() {
        let mut e = engine();
        let a = WordAddr(48);
        let _ = e.read(P0, a, ReadKind::Plain, 0, 0);
        let coh_before = e.network().stats().words(TrafficClass::Coherence);
        e.write(P0, a, 1, 10);
        let coh_after = e.network().stats().words(TrafficClass::Coherence);
        // One upgrade request to the home, but no invalidation/ack pairs.
        assert!(
            coh_after - coh_before <= 1,
            "sole sharer: {}",
            coh_after - coh_before
        );
        for q in 1..16 {
            assert_eq!(e.stats().proc(q).invals_received, 0);
        }
        e.verify_invariants().unwrap();
    }

    #[test]
    fn repeated_upgrade_write_stays_exclusive() {
        let mut e = engine();
        let a = WordAddr(56);
        e.write(P0, a, 1, 0);
        e.write(P0, a, 2, 1);
        e.write(P0, a, 3, 2);
        assert_eq!(
            e.stats().proc(0).upgrades,
            0,
            "exclusive writes need no upgrade"
        );
        assert_eq!(e.stats().proc(0).write_misses, 1);
        e.verify_invariants().unwrap();
    }

    #[test]
    fn presence_bits_scale_past_one_word() {
        // 128 sharers spans two bitmap words; an upgrade must invalidate
        // every one of them and the directory must stay consistent.
        let mut cfg = EngineConfig::paper_default(1 << 20);
        cfg.procs = 128;
        let mut e = DirectoryEngine::full_map(cfg);
        let a = WordAddr(0);
        for q in 0..128 {
            let _ = e.read(ProcId(q), a, ReadKind::Plain, 0, 0);
        }
        e.verify_invariants().unwrap();
        e.write(ProcId(127), a, 1, 10);
        e.verify_invariants().unwrap();
        assert_eq!(e.stats().proc(127).upgrades, 1);
        let dropped: u64 = (0..127).map(|q| e.stats().proc(q).invals_received).sum();
        assert_eq!(dropped, 127, "all 127 other sharers invalidated");
    }
}
