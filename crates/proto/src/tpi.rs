//! The Two-Phase Invalidation (TPI) engine: the paper's HSCD scheme.
//!
//! Hardware behaviour reproduced here (paper Sections 2.2 and 3):
//!
//! * every cache word has a timetag; writes and fills stamp it with the
//!   current epoch counter;
//! * on a line fill, the *non-requested* words are stamped `counter - 1` to
//!   neutralize implicit same-epoch RAW/WAR through multi-word lines
//!   (intra-epoch false sharing can therefore never satisfy a
//!   distance-0 Time-Read);
//! * a `Time-Read(d)` hits only if the word is valid and its tag is at most
//!   `d` epochs old; a verified hit re-stamps the word (it is provably
//!   fresh *now*), extending its reuse window;
//! * caches are write-through / write-allocate with an infinite write
//!   buffer; write misses allocate in the background and never stall;
//! * at each epoch boundary the counter advances and, on a phase crossing,
//!   out-of-phase words are bulk-invalidated at a fixed cost (128 cycles in
//!   the paper).
//!
//! Misses are classified for the paper's necessary/unnecessary analysis: a
//! failed tag check on a word whose value had *not* actually changed is a
//! `Conservative` (compiler-induced) miss; one whose value changed is a
//! necessary `CoherenceTrue` miss.

use crate::stats::{EngineStats, MissClass};
use crate::versions::EpochVersions;
use crate::write_path::WritePath;
use crate::{AccessOutcome, CoherenceEngine, EngineConfig};
use tpi_cache::{Cache, Line, TagClock, WriteBufferStats, WritePolicy};
use tpi_mem::{Cycle, FastSet, LineAddr, ProcId, ReadKind, WordAddr};
use tpi_net::{Network, TrafficClass};

/// The TPI coherence engine.
#[derive(Debug)]
pub struct TpiEngine {
    cfg: EngineConfig,
    caches: Vec<Cache>,
    clock: TagClock,
    wpath: WritePath,
    net: Network,
    stats: EngineStats,
    /// Logical current version of every written word ("memory contents"),
    /// visible to other processors at the next epoch boundary (the write
    /// buffer's drain instant); the writer sees its own stores at once.
    versions: EpochVersions,
    /// Lines each processor has ever cached (cold/replacement split).
    ever_cached: Vec<FastSet<u64>>,
    /// Optional on-chip L1s (two-level TPI, Section 3).
    l1s: Option<Vec<Cache>>,
    /// Profiling-only operation counters (see [`CoherenceEngine::op_counts`]).
    ops: OpCounters,
    /// Scratch buffer of per-word memory versions, reused across
    /// [`TpiEngine::fill`] calls so the hot fill path never allocates.
    fill_versions: Vec<u64>,
    /// Test-only sabotage: when set, epoch boundaries advance the tag
    /// clock but never apply its reset events (see
    /// [`TpiEngine::debug_skip_resets`]).
    skip_resets: bool,
}

/// Cheap monotonic counters over the engine's hot operations; purely
/// observational (reported through [`CoherenceEngine::op_counts`]).
#[derive(Debug, Clone, Copy, Default)]
struct OpCounters {
    /// Per-word timetag freshness checks (marked reads on valid words).
    tag_checks: u64,
    /// Line fills (read misses and write-allocates).
    fills: u64,
    /// Verified-hit re-stamps.
    restamps: u64,
    /// Memory shadow-version updates (one per write).
    version_bumps: u64,
}

impl TpiEngine {
    /// Builds a TPI engine from `cfg`.
    #[must_use]
    pub fn new(cfg: EngineConfig) -> Self {
        let procs = cfg.procs;
        let caches = (0..cfg.procs).map(|_| Cache::new(cfg.cache)).collect();
        let clock = TagClock::new(cfg.tag_bits, cfg.reset_strategy);
        let wpath = WritePath::new(cfg.procs, cfg.wbuffer, cfg.net.word_cycles);
        let net = Network::new(cfg.net);
        let stats = EngineStats::new(cfg.procs);
        let ever_cached = vec![FastSet::default(); cfg.procs as usize];
        let fill_versions = vec![0; cfg.cache.geometry.words_per_line() as usize];
        let l1s = cfg.l1.map(|l1| {
            let l1_cfg = tpi_cache::CacheConfig {
                size_bytes: l1.size_bytes,
                assoc: l1.assoc,
                geometry: cfg.cache.geometry,
            };
            (0..cfg.procs).map(|_| Cache::new(l1_cfg)).collect()
        });
        TpiEngine {
            cfg,
            caches,
            clock,
            wpath,
            net,
            stats,
            versions: EpochVersions::new(procs),
            ever_cached,
            l1s,
            ops: OpCounters::default(),
            fill_versions,
            skip_resets: false,
        }
    }

    /// Test-only sabotage for the `tpi-model` seeded-violation tests:
    /// keep advancing the epoch clock but drop its phase-reset events, so
    /// out-of-phase words survive a tag-range invalidation and alias to
    /// fresh epochs — exactly the bug two-phase invalidation exists to
    /// prevent (`tpi-phase-discipline` catches it).
    #[doc(hidden)]
    pub fn debug_skip_resets(&mut self) {
        self.skip_resets = true;
    }

    /// Checks the two-phase reset discipline (`tpi-model` invariant
    /// `tpi-phase-discipline`): no cached valid word's timetag may be
    /// older than the reset machinery allows. With tag modulus `m` and
    /// half `h = m/2`, a surviving word in the same phase half as the
    /// current tag is at most `t mod h` epochs old, one in the other half
    /// at most `(t mod h) + h`; under [`tpi_cache::ResetStrategy::FullFlushOnWrap`] every
    /// survivor is at most `t` old. Anything older must have been wiped
    /// by a reset — if it wasn't, its tag can alias a future epoch.
    pub(crate) fn check_phase_discipline(&self) -> Result<(), String> {
        let geom = self.cfg.cache.geometry;
        let wpl = geom.words_per_line();
        let t = u64::from(self.clock.hw_tag());
        let h = self.clock.modulus() / 2;
        for (p, cache) in self.caches.iter().enumerate() {
            let mut bad: Option<(u64, u16, u64, u64)> = None;
            cache.for_each_line(|line| {
                for w in 0..wpl {
                    if !line.word_valid(w) {
                        continue;
                    }
                    let tag = line.timetag(w);
                    let age = self.clock.age_of(tag);
                    let limit = match self.cfg.reset_strategy {
                        tpi_cache::ResetStrategy::FullFlushOnWrap => t,
                        tpi_cache::ResetStrategy::TwoPhase => {
                            let same_half = (u64::from(tag) < h) == (t < h);
                            if same_half {
                                t % h
                            } else {
                                (t % h) + h
                            }
                        }
                    };
                    if age > limit && bad.is_none() {
                        let addr = geom.first_word(line.addr).0 + u64::from(w);
                        bad = Some((addr, tag, age, limit));
                    }
                }
            });
            if let Some((addr, tag, age, limit)) = bad {
                return Err(format!(
                    "proc {p} word {addr} kept out-of-phase timetag {tag} \
                     (age {age} > allowed {limit} at epoch tag {t}): a phase \
                     reset failed to invalidate it"
                ));
            }
        }
        Ok(())
    }

    /// The hardware epoch clock (exposed for tests and ablation tooling).
    #[must_use]
    pub fn clock(&self) -> &TagClock {
        &self.clock
    }

    /// Aggregate write-buffer statistics (for the E12 ablation).
    #[must_use]
    pub fn write_buffer_stats(&self) -> WriteBufferStats {
        self.wpath.buffer_stats()
    }

    /// Copies the current off-chip line into processor `p`'s on-chip L1
    /// (valid words and shadow versions only; the L1 carries no timetags).
    fn refill_l1(&mut self, p: usize, la: LineAddr) {
        let Some(l1s) = self.l1s.as_mut() else { return };
        let Some(l2_line) = self.caches[p].peek(la) else {
            return;
        };
        let l2_line = l2_line.clone();
        let wpl = self.cfg.cache.geometry.words_per_line();
        let mut line = Line::new(la, wpl);
        for w in 0..wpl {
            if l2_line.word_valid(w) {
                line.set_word_valid(w, true);
                line.set_version(w, l2_line.version(w));
            }
        }
        let _ = l1s[p].insert(line);
    }

    fn prev_tag(&self) -> u16 {
        let m = self.clock.modulus();
        ((self.clock.epoch().0 + m - 1) % m) as u16
    }

    /// The version of `addr` as processor `p` observes it (memory plus
    /// `p`'s own buffered stores).
    fn mem_version(&self, p: usize, addr: WordAddr) -> u64 {
        self.versions.read(p, addr)
    }

    /// Versions grow monotonically per word; critical writes may be
    /// replayed out of their true order, so memory keeps the max.
    fn bump_mem_version(&mut self, p: usize, addr: WordAddr, version: u64) {
        self.ops.version_bumps += 1;
        self.versions.bump(p, addr, version);
    }

    /// Brings `line_addr` into processor `p`'s cache with the TPI fill
    /// rule: the requested word is stamped with the current epoch, every
    /// other refreshed word with `epoch - 1`. Words already stamped in the
    /// current epoch (local writes / verified reads) are left untouched.
    fn fill(&mut self, p: usize, line_addr: LineAddr, req_word: u32, req_version: u64) {
        self.ops.fills += 1;
        let geom = self.cfg.cache.geometry;
        let wpl = geom.words_per_line();
        let cur = self.clock.hw_tag();
        let prev = self.prev_tag();
        let base = geom.first_word(line_addr).0;
        for w in 0..wpl {
            let v = self.mem_version(p, WordAddr(base + u64::from(w)));
            self.fill_versions[w as usize] = v;
        }
        let cache = &mut self.caches[p];
        if cache.peek(line_addr).is_none() {
            let line = Line::new(line_addr, wpl);
            let victim = cache.insert(line);
            // Under write-through, victims need no writeback; under
            // write-back-at-boundary a dirty victim flushes on eviction.
            if let Some(v) = victim {
                if v.any_dirty() {
                    let dirty = (0..wpl).filter(|&wd| v.word_dirty(wd)).count() as u32;
                    self.net.record(TrafficClass::Write, dirty);
                    self.stats.proc_mut(p).write_backs += 1;
                }
            }
        }
        let line = cache
            .touch_mut(line_addr)
            .expect("line just ensured resident");
        for w in 0..wpl {
            if w == req_word {
                line.set_word_valid(w, true);
                line.set_timetag(w, cur);
                line.set_version(w, req_version);
            } else if !line.word_valid(w) || self.clock.age_of(line.timetag(w)) >= 1 {
                line.set_word_valid(w, true);
                line.set_timetag(w, prev);
                line.set_version(w, self.fill_versions[w as usize]);
            }
            // Words stamped in the current epoch hold local data at least
            // as new as memory; leave them alone.
        }
        line.set_word_accessed(req_word);
        self.ever_cached[p].insert(line_addr.0);
    }
}

impl CoherenceEngine for TpiEngine {
    fn name(&self) -> &'static str {
        "TPI"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn read(
        &mut self,
        proc: ProcId,
        addr: WordAddr,
        kind: ReadKind,
        version: u64,
        _now: Cycle,
    ) -> AccessOutcome {
        let p = proc.0 as usize;
        self.stats.proc_mut(p).reads += 1;
        let geom = self.cfg.cache.geometry;
        let la = geom.line_of(addr);
        let w = geom.word_in_line(addr);
        let cur = self.clock.hw_tag();
        // Two-level operation (Section 3): plain loads may be satisfied by
        // the stock on-chip cache; marked loads execute as a cache-op that
        // drops the L1 word, then consult the tagged off-chip cache.
        let mut l2_cost: Cycle = 0;
        if let Some(l1s) = self.l1s.as_mut() {
            let l1 = &mut l1s[p];
            if kind == ReadKind::Plain {
                if let Some(line) = l1.touch_mut(la) {
                    if line.word_valid(w) {
                        assert!(
                            !self.cfg.verify_freshness || line.version(w) == version,
                            "L1 hit observed a stale version at {addr}"
                        );
                        self.stats.proc_mut(p).read_hits += 1;
                        return AccessOutcome::hit();
                    }
                }
            } else if let Some(line) = l1.touch_mut(la) {
                line.set_word_valid(w, false);
            }
            l2_cost = self.cfg.l1.expect("l1s implies l1 config").l2_hit_cycles;
        }
        if kind == ReadKind::Critical {
            // Section 5: critical-section data is serialized by the lock,
            // not by epochs; fetch the word from memory, uncached.
            let stall = 1 + self.net.word_fetch();
            self.net.record(TrafficClass::Read, 0);
            self.net.record(TrafficClass::Read, 1);
            self.stats
                .proc_mut(p)
                .record_miss(MissClass::Uncached, stall);
            return AccessOutcome::miss(stall, MissClass::Uncached);
        }
        let mut class: Option<MissClass> = None;
        if let Some(line) = self.caches[p].touch_mut(la) {
            if line.word_valid(w) {
                if kind.is_marked() {
                    self.ops.tag_checks += 1;
                }
                let fresh = match kind {
                    ReadKind::Plain => true,
                    ReadKind::TimeRead { distance } => {
                        self.clock.fresh_within(line.timetag(w), distance)
                    }
                    // A Bypass mark reaching the TPI engine behaves like the
                    // strictest Time-Read.
                    ReadKind::Bypass => self.clock.fresh_within(line.timetag(w), 0),
                    ReadKind::Critical => unreachable!("handled above"),
                };
                if fresh {
                    if kind.is_marked() && self.cfg.restamp_verified_hits {
                        // The word is provably fresh *now*: re-stamp it.
                        line.set_timetag(w, cur);
                        self.ops.restamps += 1;
                    }
                    line.set_word_accessed(w);
                    assert!(
                        !self.cfg.verify_freshness || line.version(w) == version,
                        "TPI hit observed a stale version at {addr}: cached {} vs required {version}",
                        line.version(w)
                    );
                    self.stats.proc_mut(p).read_hits += 1;
                    self.refill_l1(p, la);
                    return AccessOutcome {
                        stall: 1 + l2_cost,
                        miss: None,
                    };
                }
                class = Some(if line.version(w) == version {
                    MissClass::Conservative
                } else {
                    MissClass::CoherenceTrue
                });
            } else {
                class = Some(MissClass::Reset);
            }
        }
        let line_present = class.is_some();
        let class = class.unwrap_or_else(|| {
            if self.ever_cached[p].contains(&la.0) {
                MissClass::Replacement
            } else {
                MissClass::Cold
            }
        });
        // A failed tag check on a resident line may refetch just the word
        // (the E22 ablation); line-absent misses always bring the line in.
        if line_present && self.cfg.coherence_fetch == crate::FetchGranularity::Word {
            let stall = 1 + l2_cost + self.net.word_fetch();
            self.net.record(TrafficClass::Read, 0);
            self.net.record(TrafficClass::Read, 1);
            let mem_version = self.mem_version(p, addr).max(version);
            let cur_tag = self.clock.hw_tag();
            let line = self.caches[p].touch_mut(la).expect("resident");
            line.set_word_valid(w, true);
            line.set_timetag(w, cur_tag);
            line.set_version(w, mem_version);
            line.set_word_accessed(w);
            self.refill_l1(p, la);
            self.stats.proc_mut(p).record_miss(class, stall);
            return AccessOutcome::miss(stall, class);
        }
        let line_words = geom.words_per_line();
        let stall = 1 + l2_cost + self.net.line_fetch(line_words);
        self.net.record(TrafficClass::Read, 0);
        self.net.record(TrafficClass::Read, line_words);
        self.fill(p, la, w, version);
        self.refill_l1(p, la);
        self.stats.proc_mut(p).record_miss(class, stall);
        AccessOutcome::miss(stall, class)
    }

    fn write(&mut self, proc: ProcId, addr: WordAddr, version: u64, now: Cycle) -> Cycle {
        let p = proc.0 as usize;
        self.stats.proc_mut(p).writes += 1;
        self.bump_mem_version(p, addr, version);
        let geom = self.cfg.cache.geometry;
        let la = geom.line_of(addr);
        let w = geom.word_in_line(addr);
        let cur = self.clock.hw_tag();
        let resident = self.caches[p].peek(la).is_some();
        if resident {
            let line = self.caches[p].touch_mut(la).expect("resident");
            let nv = if line.word_valid(w) {
                line.version(w).max(version)
            } else {
                version
            };
            line.set_word_valid(w, true);
            line.set_timetag(w, cur);
            line.set_version(w, nv);
            line.set_word_accessed(w);
        } else {
            // Write-allocate: the line is fetched in the background under
            // weak consistency (no processor stall).
            self.stats.proc_mut(p).write_misses += 1;
            let line_words = geom.words_per_line();
            self.net.record(TrafficClass::Read, 0);
            self.net.record(TrafficClass::Read, line_words);
            self.fill(p, la, w, version);
        }
        match self.cfg.write_policy {
            WritePolicy::Through => {
                self.wpath.write(p, addr, now, &mut self.net);
            }
            WritePolicy::BackAtBoundary => {
                // Mark dirty; the word flushes in the boundary burst.
                let line = self.caches[p].touch_mut(la).expect("just ensured resident");
                line.set_word_dirty(w, true);
            }
        }
        if let Some(l1s) = self.l1s.as_mut() {
            // The stock core's own store updates its L1 copy in place.
            if let Some(line) = l1s[p].touch_mut(la) {
                line.set_word_valid(w, true);
                line.set_version(w, version);
            }
        }
        1
    }

    fn write_critical(&mut self, proc: ProcId, addr: WordAddr, version: u64, now: Cycle) -> Cycle {
        let p = proc.0 as usize;
        self.stats.proc_mut(p).writes += 1;
        self.bump_mem_version(p, addr, version);
        let geom = self.cfg.cache.geometry;
        let la = geom.line_of(addr);
        let w = geom.word_in_line(addr);
        // Critical data stays uncached: other lock holders may write the
        // word later in this very epoch, so even our own copy must not be
        // reusable. Drop the word if resident, at both levels.
        if let Some(line) = self.caches[p].touch_mut(la) {
            line.set_word_valid(w, false);
        }
        if let Some(l1s) = self.l1s.as_mut() {
            if let Some(line) = l1s[p].touch_mut(la) {
                line.set_word_valid(w, false);
            }
        }
        self.wpath.write(p, addr, now, &mut self.net);
        1
    }

    fn epoch_boundary(&mut self, per_proc_now: &[Cycle]) -> Vec<Cycle> {
        // The barrier drains every write buffer, so the versions written
        // this epoch become globally visible here.
        self.versions.commit_boundary();
        let mut stalls = self.wpath.boundary(per_proc_now);
        if self.cfg.write_policy == WritePolicy::BackAtBoundary {
            // Burst-flush every dirty word: the whole drain lands on the
            // barrier (the "bursty traffic / longer invalidation latency"
            // cost the paper cites from [10]).
            let word_cycles = self.cfg.net.word_cycles;
            #[allow(clippy::needless_range_loop)] // p indexes three parallel structures
            for p in 0..self.cfg.procs as usize {
                let mut words = 0u64;
                let mut lines = 0u64;
                self.caches[p].retain_lines(|line| {
                    if line.any_dirty() {
                        lines += 1;
                        for wd in 0..self.cfg.cache.geometry.words_per_line() {
                            if line.word_dirty(wd) {
                                words += 1;
                            }
                        }
                        line.clean_all();
                    }
                    true
                });
                if words > 0 {
                    self.stats.proc_mut(p).write_backs += lines;
                    // One message per dirty line: header + its dirty words.
                    for _ in 0..lines {
                        self.net.record(TrafficClass::Write, 0);
                    }
                    for _ in 0..words {
                        self.net.record(TrafficClass::Write, 1);
                    }
                    stalls[p] += (words + lines) * word_cycles;
                }
            }
        }
        if let Some(ev) = self.clock.advance() {
            if !self.skip_resets {
                for (p, stall) in stalls.iter_mut().enumerate() {
                    let dropped = self.caches[p].apply_reset(ev);
                    self.stats.proc_mut(p).reset_words += dropped;
                    *stall += self.cfg.reset_cycles;
                }
            }
        }
        stalls
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    fn stats(&self) -> &EngineStats {
        &self.stats
    }

    fn write_buffer_stats(&self) -> Option<tpi_cache::WriteBufferStats> {
        Some(self.wpath.buffer_stats())
    }

    fn op_counts(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("tpi_tag_checks", self.ops.tag_checks),
            ("tpi_fills", self.ops.fills),
            ("tpi_restamps", self.ops.restamps),
            ("tpi_version_bumps", self.ops.version_bumps),
        ]
    }

    fn shard_safe(&self) -> bool {
        true
    }

    fn enable_shard_tracking(&mut self) {
        self.versions.enable_tracking();
    }

    fn drain_version_updates(&mut self) -> Vec<(u64, u64)> {
        self.versions.drain_updates()
    }

    fn apply_version_updates(&mut self, updates: &[(u64, u64)]) {
        self.versions.apply_updates(updates);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_cache::ResetStrategy;

    fn engine() -> TpiEngine {
        TpiEngine::new(EngineConfig::paper_default(1 << 20))
    }

    fn boundary(e: &mut TpiEngine) {
        let zeros = vec![0; e.cfg.procs as usize];
        let _ = e.epoch_boundary(&zeros);
    }

    const P0: ProcId = ProcId(0);
    const P1: ProcId = ProcId(1);

    #[test]
    fn cold_miss_then_plain_hit() {
        let mut e = engine();
        let a = WordAddr(100);
        let m = e.read(P0, a, ReadKind::Plain, 0, 0);
        assert_eq!(m.miss, Some(MissClass::Cold));
        assert!(m.stall > 100);
        let h = e.read(P0, a, ReadKind::Plain, 0, 10);
        assert_eq!(h.miss, None);
        assert_eq!(h.stall, 1);
        let s = e.stats().proc(0);
        assert_eq!(s.reads, 2);
        assert_eq!(s.read_hits, 1);
    }

    #[test]
    fn local_write_satisfies_same_epoch_time_read() {
        let mut e = engine();
        let a = WordAddr(8);
        e.write(P0, a, 1, 0);
        let h = e.read(P0, a, ReadKind::TimeRead { distance: 0 }, 1, 5);
        assert_eq!(h.miss, None, "own write this epoch is distance-0 fresh");
    }

    #[test]
    fn cross_epoch_reuse_within_distance() {
        let mut e = engine();
        let a = WordAddr(16);
        e.write(P0, a, 1, 0);
        boundary(&mut e);
        boundary(&mut e);
        // Stamped two epochs ago: d=2 hits, d=1 misses.
        let h = e.read(P0, a, ReadKind::TimeRead { distance: 2 }, 1, 0);
        assert_eq!(h.miss, None);
        // The verified hit re-stamped the word: d=0 now hits too.
        let h2 = e.read(P0, a, ReadKind::TimeRead { distance: 0 }, 1, 1);
        assert_eq!(h2.miss, None);
    }

    #[test]
    fn conservative_miss_when_value_unchanged() {
        let mut e = engine();
        let a = WordAddr(24);
        e.write(P0, a, 1, 0);
        boundary(&mut e);
        boundary(&mut e);
        let m = e.read(P0, a, ReadKind::TimeRead { distance: 1 }, 1, 0);
        assert_eq!(
            m.miss,
            Some(MissClass::Conservative),
            "value did not change"
        );
    }

    #[test]
    fn true_coherence_miss_when_value_changed() {
        let mut e = engine();
        let a = WordAddr(32);
        // P1 caches version 0 (cold fill).
        let _ = e.read(P1, a, ReadKind::Plain, 0, 0);
        boundary(&mut e);
        // P0 writes version 1.
        e.write(P0, a, 1, 0);
        boundary(&mut e);
        // P1's Time-Read at distance 1: tag is 2 epochs old -> miss; the
        // word's value really changed -> necessary miss.
        let m = e.read(P1, a, ReadKind::TimeRead { distance: 1 }, 1, 0);
        assert_eq!(m.miss, Some(MissClass::CoherenceTrue));
        // And afterwards P1 sees version 1.
        let h = e.read(P1, a, ReadKind::TimeRead { distance: 0 }, 1, 1);
        assert_eq!(h.miss, None);
    }

    #[test]
    fn fill_stamps_other_words_one_epoch_back() {
        let mut e = engine();
        // Words 40..44 share a line (4-word lines).
        let req = WordAddr(40);
        let other = WordAddr(41);
        let _ = e.read(P0, req, ReadKind::Plain, 0, 0);
        // Same epoch, distance 0 on the sibling word: must MISS (it could
        // have been written by a concurrent task before our fill).
        let m = e.read(P0, other, ReadKind::TimeRead { distance: 0 }, 0, 1);
        assert_eq!(m.miss, Some(MissClass::Conservative));
        // With distance 1 the prefetched sibling is usable.
        let _ = e.read(P0, WordAddr(44), ReadKind::Plain, 0, 2); // new line
        let h = e.read(P0, WordAddr(45), ReadKind::TimeRead { distance: 1 }, 0, 3);
        assert_eq!(h.miss, None);
    }

    #[test]
    fn phase_reset_invalidates_and_classifies() {
        let mut cfg = EngineConfig::paper_default(1 << 20);
        cfg.tag_bits = 2; // tags 0..4, phase crossings every 2 epochs
        let mut e = TpiEngine::new(cfg);
        let a = WordAddr(4);
        let _ = e.read(P0, a, ReadKind::Plain, 0, 0); // stamped epoch 0
                                                      // Advance 4 epochs; crossing at epoch 2 invalidates tags {2,3},
                                                      // crossing at 4 invalidates {0,1} — which drops our word.
        let mut reset_stall = 0;
        for _ in 0..4 {
            let zeros = vec![0; 16];
            reset_stall += e.epoch_boundary(&zeros)[0];
        }
        assert_eq!(
            reset_stall,
            2 * 128,
            "two phase crossings at 128 cycles each"
        );
        assert!(e.stats().proc(0).reset_words >= 1);
        let m = e.read(P0, a, ReadKind::Plain, 0, 0);
        // Whole line was dropped (all 4 words out of phase), so the line is
        // gone: a replacement-class miss... unless only words were dropped.
        assert!(matches!(
            m.miss,
            Some(MissClass::Replacement | MissClass::Reset)
        ));
    }

    #[test]
    fn write_miss_allocates_without_stall() {
        let mut e = engine();
        let stall = e.write(P0, WordAddr(200), 1, 0);
        assert_eq!(stall, 1);
        assert_eq!(e.stats().proc(0).write_misses, 1);
        // Allocation brought the line in: a Plain read of the same word hits.
        let h = e.read(P0, WordAddr(200), ReadKind::Plain, 1, 1);
        assert_eq!(h.miss, None);
    }

    #[test]
    fn replacement_miss_classified() {
        let mut cfg = EngineConfig::paper_default(1 << 30);
        cfg.cache.size_bytes = 128; // 8 lines, direct mapped
        let mut e = TpiEngine::new(cfg);
        let a = WordAddr(0);
        let conflicting = WordAddr(8 * 4); // line 8 maps to set 0
        let _ = e.read(P0, a, ReadKind::Plain, 0, 0);
        let _ = e.read(P0, conflicting, ReadKind::Plain, 0, 1);
        let m = e.read(P0, a, ReadKind::Plain, 0, 2);
        assert_eq!(m.miss, Some(MissClass::Replacement));
    }

    #[test]
    fn traffic_recorded_for_misses_and_writes() {
        let mut e = engine();
        let _ = e.read(P0, WordAddr(0), ReadKind::Plain, 0, 0);
        e.write(P0, WordAddr(0), 1, 1);
        let s = e.network().stats();
        assert!(s.words(TrafficClass::Read) >= 5, "request + line reply");
        // Write-through traffic appears once the write is pushed.
        assert_eq!(s.words(TrafficClass::Write), 2);
    }

    #[test]
    fn fill_preserves_words_stamped_this_epoch() {
        let mut e = engine();
        // Write word 1 of line 0 (allocates, stamps current epoch, version 7).
        e.write(P0, WordAddr(1), 7, 0);
        // Evict nothing; miss on sibling word 0 via a failed tag check is
        // impossible same-epoch, so force a refill through another line
        // first is unnecessary: directly re-read word 0 (invalid? no — the
        // allocation validated the whole line). Instead simulate a refill:
        // read word 0 with Bypass (strictest check) after one boundary.
        boundary(&mut e);
        let m = e.read(P0, WordAddr(0), ReadKind::Bypass, 0, 10);
        assert!(m.miss.is_some(), "stale-checked sibling read misses");
        // The refill must NOT have clobbered word 1 if it were stamped this
        // epoch; it was stamped last epoch, so it is refreshed from memory
        // (same version 7, tag one epoch old).
        let h = e.read(P0, WordAddr(1), ReadKind::TimeRead { distance: 1 }, 7, 20);
        assert_eq!(h.miss, None);
        // Now write word 2 this epoch, then refill the line again via a
        // bypass read of word 3: word 2's local stamp must survive.
        e.write(P0, WordAddr(2), 9, 30);
        let _ = e.read(P0, WordAddr(3), ReadKind::Bypass, 0, 40);
        let h2 = e.read(P0, WordAddr(2), ReadKind::TimeRead { distance: 0 }, 9, 50);
        assert_eq!(
            h2.miss, None,
            "same-epoch local write must survive a line refill"
        );
    }

    #[test]
    fn two_level_plain_hits_in_l1_marked_reads_check_tags() {
        let mut cfg = EngineConfig::paper_default(1 << 20);
        cfg.l1 = Some(crate::L1Config::paper_default());
        let mut e = TpiEngine::new(cfg);
        let a = WordAddr(64);
        // Cold miss fills both levels.
        let m = e.read(P0, a, ReadKind::Plain, 0, 0);
        assert!(m.miss.is_some());
        // Plain re-read: 1-cycle L1 hit.
        let h = e.read(P0, a, ReadKind::Plain, 0, 10);
        assert_eq!(h.stall, 1);
        // Marked re-read: cache-op + off-chip tag check (5-cycle L2 hit).
        let h2 = e.read(P0, a, ReadKind::TimeRead { distance: 0 }, 0, 20);
        assert_eq!(h2.miss, None);
        assert_eq!(h2.stall, 1 + 5, "marked reads bypass the L1");
        // And afterwards the L1 word is refilled: plain read is 1 cycle.
        let h3 = e.read(P0, a, ReadKind::Plain, 0, 30);
        assert_eq!(h3.stall, 1);
    }

    #[test]
    fn two_level_own_writes_keep_l1_coherent() {
        let mut cfg = EngineConfig::paper_default(1 << 20);
        cfg.l1 = Some(crate::L1Config::paper_default());
        let mut e = TpiEngine::new(cfg);
        let a = WordAddr(128);
        let _ = e.read(P0, a, ReadKind::Plain, 1, 0);
        e.write(P0, a, 2, 10);
        // Plain L1 hit must observe the new version (the freshness assert
        // inside would fire otherwise).
        let h = e.read(P0, a, ReadKind::Plain, 2, 20);
        assert_eq!(h.stall, 1);
    }

    #[test]
    fn op_counts_track_fills_checks_and_bumps() {
        let mut e = engine();
        let a = WordAddr(16);
        let _ = e.read(P0, a, ReadKind::Plain, 0, 0); // cold fill
        e.write(P0, a, 1, 1); // version bump, resident line
        let _ = e.read(P0, a, ReadKind::TimeRead { distance: 0 }, 1, 2); // tag check + restamp
        let ops: std::collections::HashMap<_, _> = e.op_counts().into_iter().collect();
        assert_eq!(ops["tpi_fills"], 1);
        assert_eq!(ops["tpi_version_bumps"], 1);
        assert_eq!(ops["tpi_tag_checks"], 1);
        assert_eq!(ops["tpi_restamps"], 1);
    }

    #[test]
    fn full_flush_strategy_drops_everything_at_wrap() {
        let mut cfg = EngineConfig::paper_default(1 << 20);
        cfg.tag_bits = 2;
        cfg.reset_strategy = ResetStrategy::FullFlushOnWrap;
        let mut e = TpiEngine::new(cfg);
        let _ = e.read(P0, WordAddr(0), ReadKind::Plain, 0, 0);
        for _ in 0..4 {
            boundary(&mut e);
        }
        assert!(
            e.stats().proc(0).reset_words >= 4,
            "whole line dropped at wrap"
        );
    }
}
