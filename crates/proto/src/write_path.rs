//! Shared write-through machinery for the BASE, SC and TPI engines.
//!
//! Writes retire through an infinite per-processor write buffer and occupy
//! the processor's network port for the message duration; the processor
//! itself only stalls one cycle. At each epoch boundary (a weak-consistency
//! synchronization point) the buffer must have fully drained, so the
//! barrier stall includes any outstanding port time.

use tpi_cache::{WriteBuffer, WriteBufferKind, WriteBufferStats};
use tpi_mem::{Cycle, WordAddr};
use tpi_net::{Network, TrafficClass};

#[derive(Debug)]
pub(crate) struct WritePath {
    buffers: Vec<WriteBuffer>,
    port_free: Vec<Cycle>,
    /// Port cycles per single-word write-through message (header+payload).
    msg_cycles: Cycle,
}

impl WritePath {
    pub(crate) fn new(procs: u32, kind: WriteBufferKind, word_cycles: Cycle) -> Self {
        WritePath {
            buffers: (0..procs).map(|_| WriteBuffer::new(kind)).collect(),
            port_free: vec![0; procs as usize],
            msg_cycles: 2 * word_cycles,
        }
    }

    /// Accepts a write-through of `addr` by processor `p` at time `now`;
    /// records network traffic unless the buffer coalesces it.
    pub(crate) fn write(&mut self, p: usize, addr: WordAddr, now: Cycle, net: &mut Network) {
        if self.buffers[p].push(addr) {
            net.record(TrafficClass::Write, 1);
            let pf = &mut self.port_free[p];
            *pf = (*pf).max(now) + self.msg_cycles;
        }
    }

    /// Epoch-boundary drain: stall until the port is free, then empty the
    /// buffer.
    pub(crate) fn boundary(&mut self, per_proc_now: &[Cycle]) -> Vec<Cycle> {
        per_proc_now
            .iter()
            .enumerate()
            .map(|(p, &now)| {
                self.buffers[p].drain();
                self.port_free[p].saturating_sub(now)
            })
            .collect()
    }

    /// Combined buffer statistics across processors.
    pub(crate) fn buffer_stats(&self) -> WriteBufferStats {
        let mut total = WriteBufferStats::default();
        for b in &self.buffers {
            let s = b.stats();
            total.enqueued += s.enqueued;
            total.sent += s.sent;
            total.coalesced += s.coalesced;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_net::NetworkConfig;

    #[test]
    fn write_occupies_port_and_boundary_stalls() {
        let mut net = Network::new(NetworkConfig::paper_default(4));
        let mut wp = WritePath::new(4, WriteBufferKind::Fifo, 6);
        wp.write(0, WordAddr(1), 100, &mut net);
        wp.write(0, WordAddr(2), 100, &mut net);
        // Port busy until 100 + 2*12 = 124.
        let stalls = wp.boundary(&[110, 0, 0, 0]);
        assert_eq!(stalls[0], 14);
        assert_eq!(stalls[1], 0);
        assert_eq!(net.stats().words(tpi_net::TrafficClass::Write), 4);
    }

    #[test]
    fn coalescing_skips_port_time() {
        let mut net = Network::new(NetworkConfig::paper_default(4));
        let mut wp = WritePath::new(4, WriteBufferKind::Coalescing, 6);
        wp.write(1, WordAddr(9), 0, &mut net);
        wp.write(1, WordAddr(9), 0, &mut net);
        let stalls = wp.boundary(&[0, 0, 0, 0]);
        assert_eq!(stalls[1], 12, "only one message occupied the port");
        assert_eq!(wp.buffer_stats().coalesced, 1);
    }
}
