//! The Tardis timestamp-lease engine.
//!
//! Tardis (Yu & Devadas) orders memory operations in *logical* time
//! instead of tracking sharers: memory keeps a write timestamp `wts` and a
//! read-lease timestamp `rts` per word, and every processor carries a
//! logical clock `pts`. A read borrows the word until `rts`; a write picks
//! a timestamp past every outstanding lease (`max(pts, rts+1, wts+1)`), so
//! it never has to invalidate anybody — there is **no coherence traffic at
//! all**, the scheme's headline property against the directory protocols.
//!
//! Under this study's weak-consistency model, epoch boundaries join all
//! processor clocks to their maximum. That is what retires stale copies: a
//! write's timestamp exceeds every lease granted before it, so after the
//! barrier every processor's `pts` sits above those leases and the expired
//! copies fail the hit check. Within an epoch, DOALL race freedom (plus
//! uncached critical accesses) guarantees no processor needs another's
//! same-epoch write — the same foundation SC rests on.
//!
//! The cost is the renewal: a lease that expires while the word is
//! *unchanged* forces a refetch that a directory scheme would not pay.
//! Those misses are classified [`MissClass::LeaseRenewal`] (a new,
//! unnecessary class). Compiler marks are ignored entirely.
//!
//! Caches are write-through / write-allocate with an infinite write
//! buffer, like SC and TPI.

use crate::stats::{EngineStats, MissClass};
use crate::write_path::WritePath;
use crate::{AccessOutcome, CoherenceEngine, EngineConfig};
use tpi_cache::{Cache, Line};
use tpi_mem::{Cycle, FastMap, FastSet, LineAddr, ProcId, ReadKind, WordAddr};
use tpi_net::{Network, TrafficClass};

/// The Tardis timestamp-lease coherence engine.
#[derive(Debug)]
pub struct TardisEngine {
    cfg: EngineConfig,
    caches: Vec<Cache>,
    wpath: WritePath,
    net: Network,
    stats: EngineStats,
    mem_versions: FastMap<u64, u64>,
    ever_cached: Vec<FastSet<u64>>,
    /// Per-processor logical clock.
    pts: Vec<u64>,
    /// Per-word write timestamp at the home.
    mem_wts: FastMap<u64, u64>,
    /// Per-word lease expiry at the home (largest lease handed out).
    mem_rts: FastMap<u64, u64>,
    lease_grants: u64,
    lease_renewals: u64,
}

impl TardisEngine {
    /// Builds a Tardis engine from `cfg`.
    #[must_use]
    pub fn new(cfg: EngineConfig) -> Self {
        let caches = (0..cfg.procs).map(|_| Cache::new(cfg.cache)).collect();
        let wpath = WritePath::new(cfg.procs, cfg.wbuffer, cfg.net.word_cycles);
        let net = Network::new(cfg.net);
        let stats = EngineStats::new(cfg.procs);
        let ever_cached = vec![FastSet::default(); cfg.procs as usize];
        let pts = vec![0; cfg.procs as usize];
        TardisEngine {
            cfg,
            caches,
            wpath,
            net,
            stats,
            mem_versions: FastMap::default(),
            ever_cached,
            pts,
            mem_wts: FastMap::default(),
            mem_rts: FastMap::default(),
            lease_grants: 0,
            lease_renewals: 0,
        }
    }

    fn mem_version(&self, addr: WordAddr) -> u64 {
        self.mem_versions.get(&addr.0).copied().unwrap_or(0)
    }

    fn bump_mem_version(&mut self, addr: WordAddr, version: u64) {
        let e = self.mem_versions.entry(addr.0).or_insert(0);
        *e = (*e).max(version);
    }

    fn wts(&self, addr: WordAddr) -> u64 {
        self.mem_wts.get(&addr.0).copied().unwrap_or(0)
    }

    fn rts(&self, addr: WordAddr) -> u64 {
        self.mem_rts.get(&addr.0).copied().unwrap_or(0)
    }

    /// Picks a write timestamp past every outstanding lease on `addr`,
    /// advances the writer's clock to it, and records it at the home.
    fn write_timestamp(&mut self, p: usize, addr: WordAddr) -> u64 {
        let ts = self.pts[p].max(self.rts(addr) + 1).max(self.wts(addr) + 1);
        self.pts[p] = ts;
        self.mem_wts.insert(addr.0, ts);
        ts
    }

    /// Refills `line_addr` from memory, granting every word a fresh lease.
    /// Word versions never move backwards (a word still in the local write
    /// buffer keeps its newer version), and leases only extend.
    fn fill(&mut self, p: usize, line_addr: LineAddr, req_word: u32, req_version: u64) {
        let geom = self.cfg.cache.geometry;
        let wpl = geom.words_per_line();
        let base = geom.first_word(line_addr).0;
        // Reading the requested word observes its write timestamp.
        let req_addr = WordAddr(base + u64::from(req_word));
        self.pts[p] = self.pts[p].max(self.wts(req_addr));
        let lease_floor = self.pts[p] + self.cfg.tardis_lease;
        let mut fills: Vec<(u64, u64)> = Vec::with_capacity(wpl as usize);
        for w in 0..wpl {
            let a = WordAddr(base + u64::from(w));
            let v = if w == req_word {
                req_version
            } else {
                self.mem_version(a)
            };
            let lease_end = self.rts(a).max(lease_floor);
            self.mem_rts.insert(a.0, lease_end);
            fills.push((v, lease_end));
        }
        self.lease_grants += u64::from(wpl);
        let cache = &mut self.caches[p];
        if cache.peek(line_addr).is_none() {
            let _ = cache.insert(Line::new(line_addr, wpl)); // write-through: no victim writeback
        }
        let line = cache
            .touch_mut(line_addr)
            .expect("line just ensured resident");
        for (w, &(v, lease_end)) in fills.iter().enumerate() {
            let w = w as u32;
            if !line.word_valid(w) || line.version(w) <= v {
                line.set_word_valid(w, true);
                line.set_version(w, v);
            }
            line.set_lease(w, line.lease(w).max(lease_end));
        }
        line.set_word_accessed(req_word);
        self.ever_cached[p].insert(line_addr.0);
    }

    /// Checks that every *stale* cached copy is already expired
    /// (`tpi-model` invariant `tardis-stale-copy-lease`): if a cached
    /// word's version is behind memory, some write has happened, and that
    /// write's timestamp was chosen past every outstanding lease — so the
    /// stale copy's lease must sit strictly below the home `wts`. A stale
    /// copy leased at or beyond `wts` could be consumed after the write
    /// in logical time.
    pub(crate) fn check_stale_copy_leases(&self) -> Result<(), String> {
        self.for_each_cached_word(|p, a, line, w| {
            let cached = line.version(w);
            let mem = self.mem_versions.get(&a.0).copied().unwrap_or(0);
            if cached < mem && line.lease(w) >= self.wts(a) {
                return Err(format!(
                    "proc {p} holds stale word {} (version {cached} < memory {mem}) \
                     with live lease {} >= write timestamp {}",
                    a.0,
                    line.lease(w),
                    self.wts(a)
                ));
            }
            Ok(())
        })
    }

    /// Checks that no cache holds a lease the home never granted
    /// (`tpi-model` invariant `tardis-lease-grant`): every cached word's
    /// lease is bounded by `max(rts, wts)` at the home, since `rts`
    /// records the largest read lease handed out and a writer's own copy
    /// is leased exactly at its write timestamp.
    pub(crate) fn check_lease_grants(&self) -> Result<(), String> {
        self.for_each_cached_word(|p, a, line, w| {
            let bound = self.rts(a).max(self.wts(a));
            if line.lease(w) > bound {
                return Err(format!(
                    "proc {p} holds word {} leased to {} but the home only \
                     granted up to {bound} (rts {}, wts {})",
                    a.0,
                    line.lease(w),
                    self.rts(a),
                    self.wts(a)
                ));
            }
            Ok(())
        })
    }

    /// Visits every valid cached word, short-circuiting on the first
    /// error.
    fn for_each_cached_word(
        &self,
        mut f: impl FnMut(usize, WordAddr, &Line, u32) -> Result<(), String>,
    ) -> Result<(), String> {
        let geom = self.cfg.cache.geometry;
        let wpl = geom.words_per_line();
        for (p, cache) in self.caches.iter().enumerate() {
            let mut res = Ok(());
            cache.for_each_line(|line| {
                for w in 0..wpl {
                    if res.is_ok() && line.word_valid(w) {
                        let a = WordAddr(geom.first_word(line.addr).0 + u64::from(w));
                        res = f(p, a, line, w);
                    }
                }
            });
            res?;
        }
        Ok(())
    }

    /// Test-only sabotage for the `tpi-model` seeded-violation tests:
    /// rewind the home write timestamp of `addr` to zero, as if a write
    /// had been ordered before leases it actually succeeded — the
    /// timestamp-ordering bug Tardis's correctness proof rules out.
    #[doc(hidden)]
    pub fn debug_rewind_wts(&mut self, addr: WordAddr) {
        self.mem_wts.insert(addr.0, 0);
    }
}

impl CoherenceEngine for TardisEngine {
    fn name(&self) -> &'static str {
        "TARDIS"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn read(
        &mut self,
        proc: ProcId,
        addr: WordAddr,
        kind: ReadKind,
        version: u64,
        _now: Cycle,
    ) -> AccessOutcome {
        let p = proc.0 as usize;
        self.stats.proc_mut(p).reads += 1;
        let geom = self.cfg.cache.geometry;
        let la = geom.line_of(addr);
        let w = geom.word_in_line(addr);
        if kind == ReadKind::Critical {
            // Critical data stays uncached (lock order, not epoch order,
            // governs it); the read still observes the home's clock.
            self.pts[p] = self.pts[p].max(self.wts(addr));
            let stall = 1 + self.net.word_fetch();
            self.net.record(TrafficClass::Read, 0);
            self.net.record(TrafficClass::Read, 1);
            self.stats
                .proc_mut(p)
                .record_miss(MissClass::Uncached, stall);
            return AccessOutcome::miss(stall, MissClass::Uncached);
        }
        // Compiler marks are ignored: the lease check subsumes them.
        let mut class: Option<MissClass> = None;
        if let Some(line) = self.caches[p].touch_mut(la) {
            if line.word_valid(w) {
                if line.lease(w) >= self.pts[p] {
                    line.set_word_accessed(w);
                    assert!(
                        !self.cfg.verify_freshness || line.version(w) == version,
                        "TARDIS leased hit observed a stale version at {addr}: cached {} vs required {version}",
                        line.version(w)
                    );
                    self.stats.proc_mut(p).read_hits += 1;
                    return AccessOutcome::hit();
                }
                // Lease expired: unnecessary if the word never changed.
                class = Some(if line.version(w) == version {
                    MissClass::LeaseRenewal
                } else {
                    MissClass::CoherenceTrue
                });
            }
        }
        let class = class.unwrap_or_else(|| {
            if self.ever_cached[p].contains(&la.0) {
                MissClass::Replacement
            } else {
                MissClass::Cold
            }
        });
        if class == MissClass::LeaseRenewal {
            self.lease_renewals += 1;
        }
        let line_words = geom.words_per_line();
        let stall = 1 + self.net.line_fetch(line_words);
        self.net.record(TrafficClass::Read, 0);
        self.net.record(TrafficClass::Read, line_words);
        self.fill(p, la, w, version);
        self.stats.proc_mut(p).record_miss(class, stall);
        AccessOutcome::miss(stall, class)
    }

    fn write(&mut self, proc: ProcId, addr: WordAddr, version: u64, now: Cycle) -> Cycle {
        let p = proc.0 as usize;
        self.stats.proc_mut(p).writes += 1;
        let ts = self.write_timestamp(p, addr);
        self.bump_mem_version(addr, version);
        let geom = self.cfg.cache.geometry;
        let la = geom.line_of(addr);
        let w = geom.word_in_line(addr);
        if self.caches[p].peek(la).is_some() {
            let line = self.caches[p].touch_mut(la).expect("resident");
            line.set_word_valid(w, true);
            line.set_version(w, version);
            line.set_word_accessed(w);
            // The writer's own copy is leased at its write timestamp: its
            // clock sits exactly at `ts`, so the copy is self-usable until
            // something else advances the clock past it.
            line.set_lease(w, line.lease(w).max(ts));
        } else {
            self.stats.proc_mut(p).write_misses += 1;
            let line_words = geom.words_per_line();
            self.net.record(TrafficClass::Read, 0);
            self.net.record(TrafficClass::Read, line_words);
            self.fill(p, la, w, version);
        }
        self.wpath.write(p, addr, now, &mut self.net);
        1
    }

    fn write_critical(&mut self, proc: ProcId, addr: WordAddr, version: u64, now: Cycle) -> Cycle {
        let p = proc.0 as usize;
        self.stats.proc_mut(p).writes += 1;
        let _ts = self.write_timestamp(p, addr);
        self.bump_mem_version(addr, version);
        let geom = self.cfg.cache.geometry;
        let la = geom.line_of(addr);
        let w = geom.word_in_line(addr);
        // Critical data stays uncached: drop the word if resident.
        if let Some(line) = self.caches[p].touch_mut(la) {
            line.set_word_valid(w, false);
        }
        self.wpath.write(p, addr, now, &mut self.net);
        1
    }

    fn epoch_boundary(&mut self, per_proc_now: &[Cycle]) -> Vec<Cycle> {
        let stalls = self.wpath.boundary(per_proc_now);
        // The barrier joins every logical clock to the global maximum:
        // leases granted before any pre-barrier write now lie in every
        // processor's past, so the stale copies they covered are dead.
        let m = self.pts.iter().copied().max().unwrap_or(0);
        for pts in &mut self.pts {
            *pts = m;
        }
        stalls
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    fn stats(&self) -> &EngineStats {
        &self.stats
    }

    fn write_buffer_stats(&self) -> Option<tpi_cache::WriteBufferStats> {
        Some(self.wpath.buffer_stats())
    }

    fn op_counts(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("tardis_lease_grants", self.lease_grants),
            ("tardis_lease_renewals", self.lease_renewals),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcId = ProcId(0);
    const P1: ProcId = ProcId(1);

    fn engine() -> TardisEngine {
        let mut cfg = EngineConfig::paper_default(1 << 20);
        cfg.verify_freshness = true;
        TardisEngine::new(cfg)
    }

    fn boundary(e: &mut TardisEngine) {
        let _ = e.epoch_boundary(&[0; 16]);
    }

    #[test]
    fn leased_reads_hit_without_marks() {
        let mut e = engine();
        let a = WordAddr(0);
        let m = e.read(P0, a, ReadKind::Plain, 0, 0);
        assert_eq!(m.miss, Some(MissClass::Cold));
        // Marked or not, the lease serves repeats — Tardis ignores marks.
        assert_eq!(e.read(P0, a, ReadKind::Plain, 0, 1).miss, None);
        assert_eq!(e.read(P0, a, ReadKind::Bypass, 0, 2).miss, None);
        assert_eq!(
            e.read(P0, a, ReadKind::TimeRead { distance: 3 }, 0, 3).miss,
            None
        );
    }

    #[test]
    fn stale_copy_dies_at_the_boundary() {
        let mut e = engine();
        let a = WordAddr(32);
        let _ = e.read(P1, a, ReadKind::Plain, 0, 0);
        e.write(P0, a, 1, 1);
        boundary(&mut e);
        // P1's lease predates the write timestamp; the join killed it.
        let m = e.read(P1, a, ReadKind::Plain, 1, 2);
        assert_eq!(m.miss, Some(MissClass::CoherenceTrue));
    }

    #[test]
    fn expired_lease_on_unchanged_word_is_a_renewal() {
        let mut e = engine();
        let a = WordAddr(64);
        let hot = WordAddr(1 << 16); // different line, different words
        let _ = e.read(P1, a, ReadKind::Plain, 0, 0);
        // P0 hammers an unrelated word, driving its clock past P1's lease.
        for v in 1..=20 {
            e.write(P0, hot, v, v);
            boundary(&mut e);
        }
        // The word P1 cached never changed, but the joined clock outran
        // the lease: an unnecessary renewal miss, Tardis's signature cost.
        let m = e.read(P1, a, ReadKind::Plain, 0, 100);
        assert_eq!(m.miss, Some(MissClass::LeaseRenewal));
        assert!(e.op_counts().contains(&("tardis_lease_renewals", 1)));
    }

    #[test]
    fn no_coherence_traffic_ever() {
        let mut e = engine();
        for v in 1..=10 {
            let _ = e.read(P1, WordAddr(v), ReadKind::Plain, 0, 0);
            e.write(P0, WordAddr(v), v, 1);
            boundary(&mut e);
        }
        assert_eq!(e.network().stats().words(TrafficClass::Coherence), 0);
    }

    #[test]
    fn writer_reuses_its_own_copy() {
        let mut e = engine();
        let a = WordAddr(128);
        let _ = e.read(P0, a, ReadKind::Plain, 0, 0);
        e.write(P0, a, 1, 1);
        assert_eq!(e.read(P0, a, ReadKind::Plain, 1, 2).miss, None);
    }

    #[test]
    fn critical_accesses_stay_uncached() {
        let mut e = engine();
        let a = WordAddr(256);
        e.write_critical(P0, a, 1, 0);
        let m = e.read(P0, a, ReadKind::Critical, 1, 1);
        assert_eq!(m.miss, Some(MissClass::Uncached));
        let m2 = e.read(P0, a, ReadKind::Critical, 1, 2);
        assert_eq!(m2.miss, Some(MissClass::Uncached));
    }

    #[test]
    fn boundary_drains_write_buffers() {
        let mut e = engine();
        e.write(P0, WordAddr(0), 1, 0);
        let stalls = e.epoch_boundary(&[1000; 16]);
        assert_eq!(stalls[0], 0, "port long since free");
    }
}
