//! An oracle engine: perfect coherence at zero cost.
//!
//! Not a scheme from the paper — a *lower bound*. Every read hits unless
//! the processor has truly never seen the line (cold) or lost it to
//! capacity (replacement); coherence is maintained by magic, with no
//! invalidations, no tag checks, no write traffic and no extra latency.
//! Comparing any real scheme against `Ideal` isolates the cost of
//! coherence itself from the cost of cold/capacity misses the workload
//! would pay on any machine.

use crate::stats::{EngineStats, MissClass};
use crate::{AccessOutcome, CoherenceEngine, EngineConfig};
use tpi_cache::{Cache, Line};
use tpi_mem::{Cycle, FastSet, LineAddr, ProcId, ReadKind, WordAddr};
use tpi_net::{Network, TrafficClass};

/// The perfect-coherence oracle.
#[derive(Debug)]
pub struct IdealEngine {
    cfg: EngineConfig,
    caches: Vec<Cache>,
    net: Network,
    stats: EngineStats,
    ever_cached: Vec<FastSet<u64>>,
}

impl IdealEngine {
    /// Builds the oracle from `cfg` (only cache geometry and network
    /// timing are used).
    #[must_use]
    pub fn new(cfg: EngineConfig) -> Self {
        let caches = (0..cfg.procs).map(|_| Cache::new(cfg.cache)).collect();
        let net = Network::new(cfg.net);
        let stats = EngineStats::new(cfg.procs);
        let ever_cached = vec![FastSet::default(); cfg.procs as usize];
        IdealEngine {
            cfg,
            caches,
            net,
            stats,
            ever_cached,
        }
    }

    fn fill(&mut self, p: usize, la: LineAddr, req_word: u32, version: u64) {
        let wpl = self.cfg.cache.geometry.words_per_line();
        let mut line = Line::new(la, wpl);
        for w in 0..wpl {
            line.set_word_valid(w, true);
        }
        line.set_version(req_word, version);
        let _ = self.caches[p].insert(line);
        self.ever_cached[p].insert(la.0);
    }
}

impl CoherenceEngine for IdealEngine {
    fn name(&self) -> &'static str {
        "IDEAL"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn read(
        &mut self,
        proc: ProcId,
        addr: WordAddr,
        _kind: ReadKind,
        version: u64,
        _now: Cycle,
    ) -> AccessOutcome {
        let p = proc.0 as usize;
        self.stats.proc_mut(p).reads += 1;
        let geom = self.cfg.cache.geometry;
        let la = geom.line_of(addr);
        let w = geom.word_in_line(addr);
        if let Some(line) = self.caches[p].touch_mut(la) {
            // Magically always coherent: no version or tag check.
            line.set_word_accessed(w);
            self.stats.proc_mut(p).read_hits += 1;
            return AccessOutcome::hit();
        }
        let class = if self.ever_cached[p].contains(&la.0) {
            MissClass::Replacement
        } else {
            MissClass::Cold
        };
        let line_words = geom.words_per_line();
        let stall = 1 + self.net.line_fetch(line_words);
        self.net.record(TrafficClass::Read, 0);
        self.net.record(TrafficClass::Read, line_words);
        self.fill(p, la, w, version);
        self.stats.proc_mut(p).record_miss(class, stall);
        AccessOutcome::miss(stall, class)
    }

    fn write(&mut self, proc: ProcId, addr: WordAddr, version: u64, _now: Cycle) -> Cycle {
        let p = proc.0 as usize;
        self.stats.proc_mut(p).writes += 1;
        let geom = self.cfg.cache.geometry;
        let la = geom.line_of(addr);
        let w = geom.word_in_line(addr);
        if let Some(line) = self.caches[p].touch_mut(la) {
            line.set_word_valid(w, true);
            line.set_version(w, version);
            line.set_word_accessed(w);
        }
        // No allocation, no traffic: writes are free by fiat.
        1
    }

    fn epoch_boundary(&mut self, per_proc_now: &[Cycle]) -> Vec<Cycle> {
        vec![0; per_proc_now.len()]
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    fn stats(&self) -> &EngineStats {
        &self.stats
    }

    fn shard_safe(&self) -> bool {
        // Per-processor caches with oracle hits: no global state.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcId = ProcId(0);
    const P1: ProcId = ProcId(1);

    #[test]
    fn only_cold_and_replacement_misses() {
        let mut e = IdealEngine::new(EngineConfig::paper_default(1 << 20));
        let a = WordAddr(0);
        assert_eq!(
            e.read(P0, a, ReadKind::Plain, 0, 0).miss,
            Some(MissClass::Cold)
        );
        // Remote write does not invalidate anything.
        e.write(P1, a, 1, 5);
        let h = e.read(P0, a, ReadKind::TimeRead { distance: 0 }, 1, 10);
        assert_eq!(h.miss, None, "the oracle never takes coherence misses");
        let agg = e.stats().aggregate();
        assert_eq!(agg.misses(MissClass::CoherenceTrue), 0);
        assert_eq!(agg.misses(MissClass::Conservative), 0);
    }

    #[test]
    fn writes_cost_nothing() {
        let mut e = IdealEngine::new(EngineConfig::paper_default(1 << 20));
        assert_eq!(e.write(P0, WordAddr(5), 1, 0), 1);
        assert_eq!(e.network().stats().total_words(), 0);
    }
}
