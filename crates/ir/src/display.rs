//! Human-readable pretty-printing of IR programs.
//!
//! Used by the examples and by debugging output; the format is Fortran-ish
//! pseudocode with statement ids so that compiler marking decisions (which
//! are keyed by [`RefSite`](crate::RefSite)) can be related back to source.

use crate::stmt::{ArrayRef, Program, Stmt};
use std::fmt::Write as _;

/// Renders `program` as indented pseudocode.
#[must_use]
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    for (i, decl) in program.arrays.iter().enumerate() {
        let dims: Vec<String> = decl.dims().iter().map(u64::to_string).collect();
        let _ = writeln!(
            out,
            "{:?} array A{} \"{}\"({})",
            decl.sharing(),
            i,
            decl.name(),
            dims.join(", ")
        );
    }
    for (i, proc) in program.procs.iter().enumerate() {
        let marker = if i == program.entry.0 as usize {
            " (entry)"
        } else {
            ""
        };
        let _ = writeln!(out, "procedure {}{}:", proc.name, marker);
        render_stmts(program, &proc.body, 1, &mut out);
    }
    out
}

fn render_stmts(program: &Program, stmts: &[Stmt], depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    for s in stmts {
        match s {
            Stmt::Assign(a) => {
                let _ = write!(out, "{pad}S{}: ", a.id.0);
                match &a.write {
                    Some(w) => {
                        let _ = write!(out, "{} = ", ref_str(program, w));
                    }
                    None => {
                        let _ = write!(out, "use ");
                    }
                }
                if a.reads.is_empty() {
                    let _ = write!(out, "<compute>");
                } else {
                    let reads: Vec<String> = a.reads.iter().map(|r| ref_str(program, r)).collect();
                    let _ = write!(out, "f({})", reads.join(", "));
                }
                let _ = writeln!(out, "  [cost {}]", a.cost);
            }
            Stmt::Loop(l) => {
                let _ = writeln!(out, "{pad}do {} = {}, {}, {}", l.var, l.lo, l.hi, l.step);
                render_stmts(program, &l.body, depth + 1, out);
                let _ = writeln!(out, "{pad}end do");
            }
            Stmt::Doall(l) => {
                let _ = writeln!(out, "{pad}doall {} = {}, {}, {}", l.var, l.lo, l.hi, l.step);
                render_stmts(program, &l.body, depth + 1, out);
                let _ = writeln!(out, "{pad}end doall");
            }
            Stmt::If(i) => {
                let _ = writeln!(out, "{pad}if {:?} then", i.cond);
                render_stmts(program, &i.then_body, depth + 1, out);
                if !i.else_body.is_empty() {
                    let _ = writeln!(out, "{pad}else");
                    render_stmts(program, &i.else_body, depth + 1, out);
                }
                let _ = writeln!(out, "{pad}end if");
            }
            Stmt::Critical(c) => {
                let _ = writeln!(out, "{pad}critical (lock L{})", c.lock.0);
                render_stmts(program, &c.body, depth + 1, out);
                let _ = writeln!(out, "{pad}end critical");
            }
            Stmt::Call(p) => {
                let _ = writeln!(out, "{pad}call {}", program.procs[p.0 as usize].name);
            }
            Stmt::Post { event, index } => {
                let _ = writeln!(out, "{pad}post E{}({})", event.0, index);
            }
            Stmt::Wait { event, index } => {
                let _ = writeln!(out, "{pad}wait E{}({})", event.0, index);
            }
        }
    }
}

fn ref_str(program: &Program, r: &ArrayRef) -> String {
    let name = program.arrays[r.array.0 as usize].name();
    let subs: Vec<String> = r.subs.iter().map(|s| s.to_string()).collect();
    format!("{}({})", name, subs.join(", "))
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::subs;

    #[test]
    fn renders_structure() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [8]);
        let main = p.proc("main", |f| {
            f.doall(0, 7, |i, f| {
                f.store(a.at(subs![i]), vec![a.at(subs![i + 1])], 2);
            });
        });
        let prog = p.finish(main).unwrap();
        let s = super::program_to_string(&prog);
        assert!(s.contains("doall i0 = 0, 7, 1"));
        assert!(s.contains("A(i0) = f(A(i0 + 1))"));
        assert!(s.contains("procedure main (entry):"));
    }
}
