//! Parallel-program intermediate representation for the TPI coherence study.
//!
//! The paper implements its compiler algorithms inside the Polaris
//! parallelizing compiler, operating on Fortran programs whose parallelism
//! Polaris expressed as `DOALL` loops. This crate is the reproduction's
//! stand-in for that infrastructure: a small typed IR with exactly the
//! constructs the paper's analyses consume —
//!
//! * global shared/private arrays with affine (or opaque) subscripts,
//! * `DOALL` loops whose iterations are independent tasks,
//! * serial loops, branches with compiler-opaque conditions, and
//!   parameterless procedure calls (Fortran COMMON-block style),
//! * the epoch segmentation rules shared verbatim by the compiler
//!   (`tpi-compiler`) and the trace generator (`tpi-trace`).
//!
//! Programs are constructed with [`ProgramBuilder`] and are validated
//! (`validate` module) so downstream analyses can rely on well-formedness.
//!
//! # Example
//!
//! ```
//! use tpi_ir::{ProgramBuilder, subs};
//!
//! let mut p = ProgramBuilder::new();
//! let x = p.shared("X", [128]);
//! let main = p.proc("main", |f| {
//!     // Epoch 0: produce X in parallel.
//!     f.doall(0, 127, |i, f| f.store(x.at(subs![i]), vec![], 2));
//!     // Epoch 1: consume X with a one-epoch-old dependence.
//!     f.doall(0, 127, |i, f| f.load(vec![x.at(subs![i])], 2));
//! });
//! let program = p.finish(main)?;
//! assert_eq!(program.num_assigns, 2);
//! # Ok::<(), tpi_ir::ValidateError>(())
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod callgraph;
pub mod display;
pub mod epochs;
pub mod expr;
pub mod parse;
pub mod section;
pub mod stmt;
pub mod validate;

pub use builder::{ArrayHandle, BodyBuilder, ProgramBuilder};
pub use callgraph::CallGraph;
pub use epochs::{EpochShape, Segment};
pub use expr::{Affine, Cond, Env, OpaqueFn, Subscript, VarId};
pub use parse::{parse_program, program_to_source, ParseError};
pub use section::{DimRange, Section, VarRanges};
pub use stmt::{
    ArrayRef, Assign, Critical, EventId, IfStmt, LockId, Loop, ProcIdx, Procedure, Program,
    RefSite, Stmt, StmtId,
};
pub use validate::ValidateError;
