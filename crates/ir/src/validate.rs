//! Static well-formedness checking of IR programs.
//!
//! The analyses in `tpi-compiler` and the interpreter in `tpi-trace` assume
//! the invariants enforced here; [`validate`] is run automatically by
//! [`ProgramBuilder::finish`](crate::ProgramBuilder::finish).

use crate::expr::{Affine, VarId};
use crate::stmt::{ArrayRef, ProcIdx, Program, Stmt};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A violation of the IR's static rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// An `ArrayRef` names an undeclared array.
    UnknownArray {
        /// Offending procedure name.
        proc: String,
    },
    /// Subscript count differs from the array's declared rank.
    RankMismatch {
        /// Offending procedure name.
        proc: String,
        /// Array name.
        array: String,
        /// Number of subscripts supplied.
        got: usize,
        /// Declared rank.
        expected: usize,
    },
    /// An affine expression references a variable not bound by any
    /// enclosing loop.
    UnboundVar {
        /// Offending procedure name.
        proc: String,
        /// The unbound variable.
        var: VarId,
    },
    /// A DOALL loop nested inside another DOALL loop.
    NestedDoall {
        /// Offending procedure name.
        proc: String,
    },
    /// A procedure call inside a DOALL body.
    CallInDoall {
        /// Offending procedure name.
        proc: String,
    },
    /// A loop with a non-positive step.
    NonPositiveStep {
        /// Offending procedure name.
        proc: String,
        /// The bad step value.
        step: i64,
    },
    /// A call targets an out-of-range procedure index.
    UnknownProc {
        /// Offending procedure name.
        proc: String,
        /// The bad target.
        target: ProcIdx,
    },
    /// A call edge to a same-or-later-defined procedure (possible
    /// recursion).
    BackwardCallOrder {
        /// Offending procedure name.
        proc: String,
        /// The offending target.
        target: ProcIdx,
    },
    /// The entry index is out of range.
    BadEntry,
    /// A critical section outside a DOALL body.
    CriticalOutsideDoall {
        /// Offending procedure name.
        proc: String,
    },
    /// A critical section containing a DOALL, call, or nested critical.
    BadCriticalBody {
        /// Offending procedure name.
        proc: String,
    },
    /// A critical section names an undeclared lock.
    UnknownLock {
        /// Offending procedure name.
        proc: String,
    },
    /// A post/wait outside a DOALL body.
    SyncOutsideDoall {
        /// Offending procedure name.
        proc: String,
    },
    /// A post/wait names an undeclared event.
    UnknownEvent {
        /// Offending procedure name.
        proc: String,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UnknownArray { proc } => {
                write!(f, "reference to undeclared array in procedure {proc}")
            }
            ValidateError::RankMismatch { proc, array, got, expected } => write!(
                f,
                "array {array} referenced with {got} subscripts but declared rank {expected} in procedure {proc}"
            ),
            ValidateError::UnboundVar { proc, var } => {
                write!(f, "unbound loop variable {var} in procedure {proc}")
            }
            ValidateError::NestedDoall { proc } => {
                write!(f, "DOALL nested inside DOALL in procedure {proc}")
            }
            ValidateError::CallInDoall { proc } => {
                write!(f, "procedure call inside DOALL body in procedure {proc}")
            }
            ValidateError::NonPositiveStep { proc, step } => {
                write!(f, "loop step {step} is not positive in procedure {proc}")
            }
            ValidateError::UnknownProc { proc, target } => {
                write!(f, "call to unknown procedure index {} in procedure {proc}", target.0)
            }
            ValidateError::BackwardCallOrder { proc, target } => write!(
                f,
                "procedure {proc} calls procedure {} defined at or after it (recursion is not allowed)",
                target.0
            ),
            ValidateError::BadEntry => write!(f, "entry procedure index out of range"),
            ValidateError::CriticalOutsideDoall { proc } => {
                write!(f, "critical section outside a DOALL body in procedure {proc}")
            }
            ValidateError::BadCriticalBody { proc } => write!(
                f,
                "critical section containing a DOALL, call, or nested critical in procedure {proc}"
            ),
            ValidateError::UnknownLock { proc } => {
                write!(f, "critical section names an undeclared lock in procedure {proc}")
            }
            ValidateError::SyncOutsideDoall { proc } => {
                write!(f, "post/wait outside a DOALL body in procedure {proc}")
            }
            ValidateError::UnknownEvent { proc } => {
                write!(f, "post/wait names an undeclared event in procedure {proc}")
            }
        }
    }
}

impl Error for ValidateError {}

/// Checks all static rules; `Ok(())` means the program is well-formed.
///
/// # Errors
///
/// Returns the first violation found (see [`ValidateError`] variants).
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    if program.entry.0 as usize >= program.procs.len() {
        return Err(ValidateError::BadEntry);
    }
    for (pi, proc) in program.procs.iter().enumerate() {
        let mut scope = HashSet::new();
        check_stmts(program, pi, &proc.body, &mut scope, false)?;
    }
    Ok(())
}

fn check_stmts(
    program: &Program,
    proc_ix: usize,
    stmts: &[Stmt],
    scope: &mut HashSet<VarId>,
    in_doall: bool,
) -> Result<(), ValidateError> {
    let pname = || program.procs[proc_ix].name.clone();
    for s in stmts {
        match s {
            Stmt::Assign(a) => {
                if let Some(w) = &a.write {
                    check_ref(program, proc_ix, w, scope)?;
                }
                for r in &a.reads {
                    check_ref(program, proc_ix, r, scope)?;
                }
            }
            Stmt::Loop(l) | Stmt::Doall(l) => {
                if matches!(s, Stmt::Doall(_)) && in_doall {
                    return Err(ValidateError::NestedDoall { proc: pname() });
                }
                if l.step <= 0 {
                    return Err(ValidateError::NonPositiveStep {
                        proc: pname(),
                        step: l.step,
                    });
                }
                check_affine(program, proc_ix, &l.lo, scope)?;
                check_affine(program, proc_ix, &l.hi, scope)?;
                scope.insert(l.var);
                let inner_doall = in_doall || matches!(s, Stmt::Doall(_));
                check_stmts(program, proc_ix, &l.body, scope, inner_doall)?;
                scope.remove(&l.var);
            }
            Stmt::If(i) => {
                check_stmts(program, proc_ix, &i.then_body, scope, in_doall)?;
                check_stmts(program, proc_ix, &i.else_body, scope, in_doall)?;
            }
            Stmt::Critical(c) => {
                if !in_doall {
                    return Err(ValidateError::CriticalOutsideDoall { proc: pname() });
                }
                if c.lock.0 >= program.num_locks {
                    return Err(ValidateError::UnknownLock { proc: pname() });
                }
                if body_contains_forbidden(&c.body) {
                    return Err(ValidateError::BadCriticalBody { proc: pname() });
                }
                check_stmts(program, proc_ix, &c.body, scope, in_doall)?;
            }
            Stmt::Post { event, index } | Stmt::Wait { event, index } => {
                if !in_doall {
                    return Err(ValidateError::SyncOutsideDoall { proc: pname() });
                }
                if event.0 >= program.num_events {
                    return Err(ValidateError::UnknownEvent { proc: pname() });
                }
                check_affine(program, proc_ix, index, scope)?;
            }
            Stmt::Call(target) => {
                if in_doall {
                    return Err(ValidateError::CallInDoall { proc: pname() });
                }
                if target.0 as usize >= program.procs.len() {
                    return Err(ValidateError::UnknownProc {
                        proc: pname(),
                        target: *target,
                    });
                }
                if target.0 as usize >= proc_ix {
                    return Err(ValidateError::BackwardCallOrder {
                        proc: pname(),
                        target: *target,
                    });
                }
            }
        }
    }
    Ok(())
}

fn body_contains_forbidden(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Doall(_)
        | Stmt::Call(_)
        | Stmt::Critical(_)
        | Stmt::Post { .. }
        | Stmt::Wait { .. } => true,
        Stmt::Loop(l) => body_contains_forbidden(&l.body),
        Stmt::If(i) => {
            body_contains_forbidden(&i.then_body) || body_contains_forbidden(&i.else_body)
        }
        Stmt::Assign(_) => false,
    })
}

fn check_ref(
    program: &Program,
    proc_ix: usize,
    r: &ArrayRef,
    scope: &HashSet<VarId>,
) -> Result<(), ValidateError> {
    let pname = program.procs[proc_ix].name.clone();
    let Some(decl) = program.arrays.get(r.array.0 as usize) else {
        return Err(ValidateError::UnknownArray { proc: pname });
    };
    if r.subs.len() != decl.dims().len() {
        return Err(ValidateError::RankMismatch {
            proc: pname,
            array: decl.name().to_owned(),
            got: r.subs.len(),
            expected: decl.dims().len(),
        });
    }
    for s in &r.subs {
        if let Some(a) = s.as_affine() {
            check_affine(program, proc_ix, a, scope)?;
        }
    }
    Ok(())
}

fn check_affine(
    program: &Program,
    proc_ix: usize,
    a: &Affine,
    scope: &HashSet<VarId>,
) -> Result<(), ValidateError> {
    for v in a.vars() {
        if !scope.contains(&v) {
            return Err(ValidateError::UnboundVar {
                proc: program.procs[proc_ix].name.clone(),
                var: v,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::Affine;
    use crate::stmt::{Assign, Loop, Procedure, StmtId};
    use crate::subs;
    use tpi_mem::{ArrayDecl, ArrayId, Sharing};

    #[test]
    fn valid_program_passes() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [8, 8]);
        let main = p.proc("main", |f| {
            f.doall(0, 7, |i, f| {
                f.serial(0, 7, |j, f| {
                    f.store(a.at(subs![i, j]), vec![a.at(subs![j, i])], 1);
                });
            });
        });
        assert!(p.finish(main).is_ok());
    }

    fn raw_program(body: Vec<Stmt>) -> Program {
        Program {
            arrays: vec![ArrayDecl::new("A", vec![8], Sharing::Shared)],
            procs: vec![Procedure {
                name: "main".into(),
                body,
                num_vars: 4,
            }],
            entry: ProcIdx(0),
            num_assigns: 1,
            num_locks: 0,
            num_events: 0,
        }
    }

    #[test]
    fn rank_mismatch_detected() {
        let bad = raw_program(vec![Stmt::Assign(Assign {
            id: StmtId(0),
            write: Some(ArrayRef::new(ArrayId(0), subs![0, 0])),
            reads: vec![],
            cost: 1,
        })]);
        assert!(matches!(
            validate(&bad),
            Err(ValidateError::RankMismatch {
                expected: 1,
                got: 2,
                ..
            })
        ));
    }

    #[test]
    fn unbound_var_detected() {
        let bad = raw_program(vec![Stmt::Assign(Assign {
            id: StmtId(0),
            write: Some(ArrayRef::new(ArrayId(0), subs![VarId(3)])),
            reads: vec![],
            cost: 1,
        })]);
        assert!(matches!(
            validate(&bad),
            Err(ValidateError::UnboundVar { var: VarId(3), .. })
        ));
    }

    #[test]
    fn nested_doall_detected() {
        let inner = Loop {
            var: VarId(1),
            lo: Affine::konst(0),
            hi: Affine::konst(3),
            step: 1,
            body: vec![],
        };
        let outer = Loop {
            var: VarId(0),
            lo: Affine::konst(0),
            hi: Affine::konst(3),
            step: 1,
            body: vec![Stmt::Doall(inner)],
        };
        let bad = raw_program(vec![Stmt::Doall(outer)]);
        assert!(matches!(
            validate(&bad),
            Err(ValidateError::NestedDoall { .. })
        ));
    }

    #[test]
    fn call_in_doall_detected() {
        let l = Loop {
            var: VarId(0),
            lo: Affine::konst(0),
            hi: Affine::konst(3),
            step: 1,
            body: vec![Stmt::Call(ProcIdx(0))],
        };
        let bad = raw_program(vec![Stmt::Doall(l)]);
        assert!(matches!(
            validate(&bad),
            Err(ValidateError::CallInDoall { .. })
        ));
    }

    #[test]
    fn bad_step_detected() {
        let l = Loop {
            var: VarId(0),
            lo: Affine::konst(0),
            hi: Affine::konst(3),
            step: 0,
            body: vec![],
        };
        let bad = raw_program(vec![Stmt::Loop(l)]);
        assert!(matches!(
            validate(&bad),
            Err(ValidateError::NonPositiveStep { step: 0, .. })
        ));
    }

    #[test]
    fn self_call_detected() {
        let bad = raw_program(vec![Stmt::Call(ProcIdx(0))]);
        assert!(matches!(
            validate(&bad),
            Err(ValidateError::BackwardCallOrder { .. })
        ));
    }

    #[test]
    fn error_display_nonempty() {
        let e = ValidateError::NestedDoall { proc: "m".into() };
        assert!(!e.to_string().is_empty());
    }
}
