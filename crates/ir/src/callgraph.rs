//! Procedure call graph.
//!
//! The interprocedural phase of the paper's compiler analyzes procedures
//! bottom-up over the call graph, propagating each procedure's side effects
//! to its callers. The IR forbids recursion (as Fortran 77 does), so the
//! graph is a DAG and the builder's define-callees-first discipline makes
//! definition order a valid bottom-up order.

use crate::stmt::{ProcIdx, Program, Stmt};

/// Immutable call-graph facts for a program.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// `callees[p]` = procedures called (directly) by `p`, deduplicated.
    callees: Vec<Vec<ProcIdx>>,
    /// Procedures reachable from the entry, in definition order.
    reachable: Vec<ProcIdx>,
}

impl CallGraph {
    /// Builds the call graph of `program`.
    #[must_use]
    pub fn of(program: &Program) -> Self {
        let n = program.procs.len();
        let mut callees: Vec<Vec<ProcIdx>> = vec![Vec::new(); n];
        for (i, p) in program.procs.iter().enumerate() {
            let mut cs = Vec::new();
            collect_calls(&p.body, &mut cs);
            cs.sort_unstable();
            cs.dedup();
            callees[i] = cs;
        }
        // Reachability from entry.
        let mut seen = vec![false; n];
        let mut stack = vec![program.entry];
        while let Some(p) = stack.pop() {
            if std::mem::replace(&mut seen[p.0 as usize], true) {
                continue;
            }
            stack.extend(callees[p.0 as usize].iter().copied());
        }
        let reachable = (0..n as u32)
            .map(ProcIdx)
            .filter(|p| seen[p.0 as usize])
            .collect();
        CallGraph { callees, reachable }
    }

    /// Direct callees of `p`.
    #[must_use]
    pub fn callees(&self, p: ProcIdx) -> &[ProcIdx] {
        &self.callees[p.0 as usize]
    }

    /// Procedures reachable from the entry, in bottom-up (definition) order:
    /// every procedure appears after all of its callees.
    #[must_use]
    pub fn bottom_up(&self) -> &[ProcIdx] {
        &self.reachable
    }

    /// Whether every call edge goes to an earlier-defined procedure
    /// (the builder invariant; false for hand-built recursive programs).
    #[must_use]
    pub fn is_forward_free(&self) -> bool {
        self.callees
            .iter()
            .enumerate()
            .all(|(i, cs)| cs.iter().all(|c| (c.0 as usize) < i))
    }
}

fn collect_calls(stmts: &[Stmt], out: &mut Vec<ProcIdx>) {
    for s in stmts {
        match s {
            Stmt::Call(p) => out.push(*p),
            Stmt::Loop(l) | Stmt::Doall(l) => collect_calls(&l.body, out),
            Stmt::If(i) => {
                collect_calls(&i.then_body, out);
                collect_calls(&i.else_body, out);
            }
            Stmt::Critical(c) => collect_calls(&c.body, out),
            Stmt::Assign(_) | Stmt::Post { .. } | Stmt::Wait { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::subs;

    #[test]
    fn bottom_up_order_and_reachability() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [8]);
        let leaf = p.proc("leaf", |f| {
            f.doall(0, 7, |i, f| f.store(a.at(subs![i]), vec![], 1));
        });
        let _orphan = p.proc("orphan", |f| f.compute(1));
        let mid = p.proc("mid", |f| {
            f.call(leaf);
            f.call(leaf);
        });
        let main = p.proc("main", |f| {
            f.call(mid);
            f.call(leaf);
        });
        let prog = p.finish(main).unwrap();
        let cg = CallGraph::of(&prog);
        assert_eq!(cg.callees(mid), &[leaf]);
        let mut main_callees = cg.callees(main).to_vec();
        main_callees.sort_unstable();
        assert_eq!(main_callees, vec![leaf, mid]);
        // orphan is unreachable.
        assert_eq!(cg.bottom_up(), &[leaf, mid, main]);
        assert!(cg.is_forward_free());
    }
}
