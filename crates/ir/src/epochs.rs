//! Epoch segmentation: the single definition of where epoch boundaries fall.
//!
//! The paper divides execution into *epochs*: each DOALL loop is one epoch,
//! and each maximal run of serial code between parallel loops is one epoch.
//! Both the compiler (static epoch flow graph, `tpi-compiler`) and the
//! trace generator (runtime epoch counter, `tpi-trace`) must agree exactly on
//! this segmentation — a disagreement would make compiler-computed Time-Read
//! distances unsound. This module is that shared definition.
//!
//! Segmentation rules, applied recursively to every statement list:
//!
//! * a `Doall` is one epoch;
//! * maximal runs of statements containing no DOALL (assignments, serial
//!   loops and branches without parallel loops inside, calls to parallel-free
//!   procedures) form one serial epoch;
//! * a serial loop / branch / call that *contains* a DOALL is expanded
//!   structurally, and each execution of a contained leaf segment is its own
//!   epoch instance.

use crate::stmt::{IfStmt, Loop, ProcIdx, Program, Stmt};

/// One element of a segmented statement list.
#[derive(Debug)]
pub enum Segment<'p> {
    /// A maximal run of DOALL-free statements: one epoch.
    Serial(Vec<&'p Stmt>),
    /// A parallel loop: one epoch.
    Doall(&'p Loop),
    /// A serial loop whose body contains epochs; every dynamic iteration
    /// re-executes the body segments.
    SerialLoop {
        /// The loop statement.
        l: &'p Loop,
        /// Segmented body.
        body: Vec<Segment<'p>>,
    },
    /// A branch with epochs in at least one arm.
    Branch {
        /// The branch statement.
        s: &'p IfStmt,
        /// Segmented taken arm.
        then_seg: Vec<Segment<'p>>,
        /// Segmented fallthrough arm.
        else_seg: Vec<Segment<'p>>,
    },
    /// A call to a procedure that contains epochs; the callee's segments
    /// splice into the epoch sequence.
    Call(ProcIdx),
}

/// Per-program epoch-shape facts: which procedures transitively contain
/// DOALL loops (and therefore epoch boundaries).
#[derive(Debug, Clone)]
pub struct EpochShape {
    proc_has_epochs: Vec<bool>,
}

impl EpochShape {
    /// Computes epoch-bearing-ness of every procedure.
    ///
    /// Relies on the builder invariant that callees are defined before
    /// callers, so a single forward pass suffices.
    #[must_use]
    pub fn of(program: &Program) -> Self {
        let mut proc_has_epochs = Vec::with_capacity(program.procs.len());
        for p in &program.procs {
            let has = {
                let known = &proc_has_epochs;
                p.body.iter().any(|s| stmt_has_epochs(s, known))
            };
            proc_has_epochs.push(has);
        }
        EpochShape { proc_has_epochs }
    }

    /// Whether `proc` transitively contains a DOALL loop.
    #[must_use]
    pub fn proc_has_epochs(&self, proc: ProcIdx) -> bool {
        self.proc_has_epochs[proc.0 as usize]
    }

    /// Whether `stmt` transitively contains an epoch boundary.
    #[must_use]
    pub fn stmt_has_epochs(&self, stmt: &Stmt) -> bool {
        stmt_has_epochs(stmt, &self.proc_has_epochs)
    }

    /// Segments a statement list into epochs per the module rules.
    #[must_use]
    pub fn segment<'p>(&self, stmts: &'p [Stmt]) -> Vec<Segment<'p>> {
        let mut out = Vec::new();
        let mut run: Vec<&'p Stmt> = Vec::new();
        for s in stmts {
            if self.stmt_has_epochs(s) {
                if !run.is_empty() {
                    out.push(Segment::Serial(std::mem::take(&mut run)));
                }
                match s {
                    Stmt::Doall(l) => out.push(Segment::Doall(l)),
                    Stmt::Loop(l) => out.push(Segment::SerialLoop {
                        l,
                        body: self.segment(&l.body),
                    }),
                    Stmt::If(i) => out.push(Segment::Branch {
                        s: i,
                        then_seg: self.segment(&i.then_body),
                        else_seg: self.segment(&i.else_body),
                    }),
                    Stmt::Call(p) => out.push(Segment::Call(*p)),
                    Stmt::Assign(_) | Stmt::Critical(_) | Stmt::Post { .. } | Stmt::Wait { .. } => {
                        unreachable!("task-level statements never contain epochs")
                    }
                }
            } else {
                run.push(s);
            }
        }
        if !run.is_empty() {
            out.push(Segment::Serial(run));
        }
        out
    }

    /// Segments the body of `proc`.
    #[must_use]
    pub fn segment_proc<'p>(&self, program: &'p Program, proc: ProcIdx) -> Vec<Segment<'p>> {
        self.segment(&program.proc(proc).body)
    }
}

fn stmt_has_epochs(stmt: &Stmt, proc_has: &[bool]) -> bool {
    match stmt {
        Stmt::Assign(_) | Stmt::Critical(_) | Stmt::Post { .. } | Stmt::Wait { .. } => false,
        Stmt::Doall(_) => true,
        Stmt::Loop(l) => l.body.iter().any(|s| stmt_has_epochs(s, proc_has)),
        Stmt::If(i) => {
            i.then_body.iter().any(|s| stmt_has_epochs(s, proc_has))
                || i.else_body.iter().any(|s| stmt_has_epochs(s, proc_has))
        }
        Stmt::Call(p) => proc_has.get(p.0 as usize).copied().unwrap_or(true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::Cond;
    use crate::subs;

    #[test]
    fn serial_runs_merge_into_one_epoch() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [16]);
        let main = p.proc("main", |f| {
            f.compute(1);
            f.store(a.at(subs![0]), vec![], 1);
            f.doall(0, 15, |i, f| f.store(a.at(subs![i]), vec![], 1));
            f.compute(1);
        });
        let prog = p.finish(main).unwrap();
        let shape = EpochShape::of(&prog);
        let segs = shape.segment_proc(&prog, main);
        assert_eq!(segs.len(), 3);
        assert!(matches!(&segs[0], Segment::Serial(v) if v.len() == 2));
        assert!(matches!(&segs[1], Segment::Doall(_)));
        assert!(matches!(&segs[2], Segment::Serial(v) if v.len() == 1));
    }

    #[test]
    fn serial_loop_without_doall_is_one_epoch() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [16]);
        let main = p.proc("main", |f| {
            f.serial(0, 15, |i, f| f.store(a.at(subs![i]), vec![], 1));
            f.doall(0, 15, |i, f| f.load(vec![a.at(subs![i])], 1));
        });
        let prog = p.finish(main).unwrap();
        let shape = EpochShape::of(&prog);
        let segs = shape.segment_proc(&prog, main);
        assert_eq!(segs.len(), 2);
        assert!(matches!(&segs[0], Segment::Serial(v) if v.len() == 1));
    }

    #[test]
    fn serial_loop_with_doall_expands() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [16]);
        let main = p.proc("main", |f| {
            f.serial(0, 3, |_t, f| {
                f.compute(5);
                f.doall(0, 15, |i, f| f.store(a.at(subs![i]), vec![], 1));
            });
        });
        let prog = p.finish(main).unwrap();
        let shape = EpochShape::of(&prog);
        let segs = shape.segment_proc(&prog, main);
        assert_eq!(segs.len(), 1);
        match &segs[0] {
            Segment::SerialLoop { body, .. } => {
                assert_eq!(body.len(), 2);
                assert!(matches!(&body[0], Segment::Serial(_)));
                assert!(matches!(&body[1], Segment::Doall(_)));
            }
            other => panic!("expected SerialLoop, got {other:?}"),
        }
    }

    #[test]
    fn call_epoch_bearing_propagates() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [16]);
        let helper = p.proc("helper", |f| {
            f.doall(0, 15, |i, f| f.store(a.at(subs![i]), vec![], 1));
        });
        let serial_helper = p.proc("serial_helper", |f| {
            f.compute(2);
        });
        let main = p.proc("main", |f| {
            f.call(serial_helper);
            f.call(helper);
        });
        let prog = p.finish(main).unwrap();
        let shape = EpochShape::of(&prog);
        assert!(shape.proc_has_epochs(helper));
        assert!(!shape.proc_has_epochs(serial_helper));
        let segs = shape.segment_proc(&prog, main);
        // serial call merges into a serial epoch; epoch-bearing call splices.
        assert_eq!(segs.len(), 2);
        assert!(matches!(&segs[0], Segment::Serial(v) if v.len() == 1));
        assert!(matches!(&segs[1], Segment::Call(c) if *c == helper));
    }

    #[test]
    fn branch_with_doall_expands() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [16]);
        let main = p.proc("main", |f| {
            f.serial(0, 7, |t, f| {
                f.if_else(
                    Cond::EveryN {
                        var: t,
                        modulus: 2,
                        phase: 0,
                    },
                    |f| f.doall(0, 15, |i, f| f.store(a.at(subs![i]), vec![], 1)),
                    |f| f.compute(3),
                );
            });
        });
        let prog = p.finish(main).unwrap();
        let shape = EpochShape::of(&prog);
        let segs = shape.segment_proc(&prog, main);
        match &segs[0] {
            Segment::SerialLoop { body, .. } => match &body[0] {
                Segment::Branch {
                    then_seg, else_seg, ..
                } => {
                    assert_eq!(then_seg.len(), 1);
                    assert_eq!(else_seg.len(), 1);
                    assert!(matches!(&then_seg[0], Segment::Doall(_)));
                    assert!(matches!(&else_seg[0], Segment::Serial(_)));
                }
                other => panic!("expected Branch, got {other:?}"),
            },
            other => panic!("expected SerialLoop, got {other:?}"),
        }
    }
}
