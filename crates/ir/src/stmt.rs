//! Statements and program structure.
//!
//! A [`Program`] is a set of global array declarations plus procedures whose
//! bodies are statement lists. Parallelism is expressed exactly as Polaris
//! expresses it in the paper: `DOALL` loops whose iterations are independent
//! tasks. Everything between parallel loops is serial code executed by one
//! processor. Procedures take no parameters — like Fortran COMMON-block
//! codes, all sharing happens through global arrays.

use crate::expr::{Affine, Cond, Subscript, VarId};
use tpi_mem::{ArrayDecl, ArrayId};

/// Unique identifier of an [`Assign`] statement within its program.
///
/// Assigned densely by the builder; used to address individual references
/// (via [`RefSite`]) when the compiler publishes marking decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub u32);

/// Identifies one *read* reference: the `idx`-th read of statement `stmt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RefSite {
    /// The assignment statement containing the read.
    pub stmt: StmtId,
    /// Position within the statement's read list.
    pub idx: u32,
}

/// A subscripted array reference `A(s1, s2, ...)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayRef {
    /// The referenced array.
    pub array: ArrayId,
    /// One subscript per declared dimension.
    pub subs: Vec<Subscript>,
}

impl ArrayRef {
    /// Creates a reference to `array` with the given subscripts.
    #[must_use]
    pub fn new(array: ArrayId, subs: Vec<Subscript>) -> Self {
        ArrayRef { array, subs }
    }

    /// Whether every subscript is affine (fully analyzable).
    #[must_use]
    pub fn is_affine(&self) -> bool {
        self.subs.iter().all(|s| s.as_affine().is_some())
    }
}

/// An assignment statement: optional write reference, read references, and a
/// scalar-work cost in cycles (address arithmetic, floating point, private
/// accesses — everything that is not a shared-memory access).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assign {
    /// Program-wide unique id.
    pub id: StmtId,
    /// Destination, if this statement stores to an array.
    pub write: Option<ArrayRef>,
    /// Source array references, in issue order.
    pub reads: Vec<ArrayRef>,
    /// Non-memory work in processor cycles.
    pub cost: u32,
}

/// A counted loop `for var in lo..=hi step step`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// Induction variable, unique within the procedure.
    pub var: VarId,
    /// Inclusive lower bound (affine in enclosing loop variables).
    pub lo: Affine,
    /// Inclusive upper bound (affine in enclosing loop variables).
    pub hi: Affine,
    /// Positive stride.
    pub step: i64,
    /// Loop body.
    pub body: Vec<Stmt>,
}

/// Identifier of a lock variable, dense per program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

/// A lock-guarded critical section inside a DOALL iteration.
///
/// Iterations executing critical sections of the same lock are mutually
/// exclusive at runtime; cross-iteration conflicts on data accessed only
/// under that lock are therefore permitted (the paper's Section 5 model of
/// lock variables and critical sections).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Critical {
    /// The guarding lock.
    pub lock: LockId,
    /// Body statements (assignments, serial loops, branches only).
    pub body: Vec<Stmt>,
}

/// Identifier of a synchronization event variable (element-indexed), dense
/// per program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u32);

/// A two-armed branch with a compiler-opaque condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfStmt {
    /// Runtime-evaluable, compile-time-opaque condition.
    pub cond: Cond,
    /// Taken arm.
    pub then_body: Vec<Stmt>,
    /// Fallthrough arm (possibly empty).
    pub else_body: Vec<Stmt>,
}

/// One statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// An assignment (memory accesses plus scalar work).
    Assign(Assign),
    /// A serial counted loop.
    Loop(Loop),
    /// A parallel loop: iterations are independent tasks spread across
    /// processors; the whole loop is one *epoch*.
    Doall(Loop),
    /// A branch.
    If(IfStmt),
    /// A call to another procedure of the program (serial context only).
    Call(ProcIdx),
    /// A lock-guarded critical section (DOALL bodies only).
    Critical(Critical),
    /// Signal element `index` of `event` (DOALL bodies only): all writes
    /// issued so far by this iteration are globally performed first
    /// (release fence), then waiting iterations may proceed — the paper's
    /// Section 5 "threads with inter-thread communication" (doacross
    /// pipelining).
    Post {
        /// Signalled event variable.
        event: EventId,
        /// Element index (affine in the enclosing loop variables).
        index: Affine,
    },
    /// Block until element `index` of `event` has been posted (DOALL
    /// bodies only).
    Wait {
        /// Awaited event variable.
        event: EventId,
        /// Element index (affine in the enclosing loop variables).
        index: Affine,
    },
}

impl Stmt {
    /// Whether this statement is, or transitively contains, a DOALL loop or a
    /// call to a procedure that contains one (per `contains_doall` of the
    /// callee as precomputed by the caller).
    ///
    /// Calls are conservatively treated as epoch-bearing here; use
    /// [`crate::callgraph::CallGraph`] for the precise query.
    #[must_use]
    pub fn syntactically_contains_doall(&self) -> bool {
        match self {
            Stmt::Assign(_) | Stmt::Critical(_) | Stmt::Post { .. } | Stmt::Wait { .. } => false,
            Stmt::Doall(_) => true,
            Stmt::Call(_) => true,
            Stmt::Loop(l) => l.body.iter().any(Stmt::syntactically_contains_doall),
            Stmt::If(i) => {
                i.then_body.iter().any(Stmt::syntactically_contains_doall)
                    || i.else_body.iter().any(Stmt::syntactically_contains_doall)
            }
        }
    }
}

/// Index of a procedure within its program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcIdx(pub u32);

/// A procedure: a named statement list over the program's global arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Procedure {
    /// Source-level name.
    pub name: String,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Number of loop variables bound in this procedure (dense `VarId`s).
    pub num_vars: u32,
}

/// A whole program: global arrays plus procedures; `entry` is "main".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Global array declarations (indexable by [`ArrayId`]).
    pub arrays: Vec<ArrayDecl>,
    /// All procedures.
    pub procs: Vec<Procedure>,
    /// The entry procedure.
    pub entry: ProcIdx,
    /// Total number of [`Assign`] statements (dense `StmtId` space).
    pub num_assigns: u32,
    /// Number of declared lock variables (dense `LockId` space).
    pub num_locks: u32,
    /// Number of declared event variables (dense `EventId` space).
    pub num_events: u32,
}

impl Program {
    /// The entry procedure.
    #[must_use]
    pub fn entry_proc(&self) -> &Procedure {
        &self.procs[self.entry.0 as usize]
    }

    /// Procedure by index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn proc(&self, idx: ProcIdx) -> &Procedure {
        &self.procs[idx.0 as usize]
    }

    /// Declaration of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0 as usize]
    }

    /// Visits every [`Assign`] in the program (all procedures, any nesting),
    /// passing the owning procedure index.
    pub fn for_each_assign<'p>(&'p self, mut f: impl FnMut(ProcIdx, &'p Assign)) {
        fn walk<'p>(stmts: &'p [Stmt], p: ProcIdx, f: &mut impl FnMut(ProcIdx, &'p Assign)) {
            for s in stmts {
                match s {
                    Stmt::Assign(a) => f(p, a),
                    Stmt::Loop(l) | Stmt::Doall(l) => walk(&l.body, p, f),
                    Stmt::If(i) => {
                        walk(&i.then_body, p, f);
                        walk(&i.else_body, p, f);
                    }
                    Stmt::Critical(c) => walk(&c.body, p, f),
                    Stmt::Call(_) | Stmt::Post { .. } | Stmt::Wait { .. } => {}
                }
            }
        }
        for (i, proc) in self.procs.iter().enumerate() {
            walk(&proc.body, ProcIdx(i as u32), &mut f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Affine;
    use tpi_mem::Sharing;

    fn dummy_assign(id: u32) -> Assign {
        Assign {
            id: StmtId(id),
            write: None,
            reads: vec![],
            cost: 1,
        }
    }

    #[test]
    fn syntactic_doall_detection() {
        let doall = Stmt::Doall(Loop {
            var: VarId(0),
            lo: Affine::konst(0),
            hi: Affine::konst(9),
            step: 1,
            body: vec![],
        });
        let serial_wrapping = Stmt::Loop(Loop {
            var: VarId(1),
            lo: Affine::konst(0),
            hi: Affine::konst(3),
            step: 1,
            body: vec![doall.clone()],
        });
        assert!(doall.syntactically_contains_doall());
        assert!(serial_wrapping.syntactically_contains_doall());
        assert!(!Stmt::Assign(dummy_assign(0)).syntactically_contains_doall());
        assert!(Stmt::Call(ProcIdx(0)).syntactically_contains_doall());
    }

    #[test]
    fn for_each_assign_visits_all_nests() {
        let prog = Program {
            arrays: vec![ArrayDecl::new("x", vec![4], Sharing::Shared)],
            procs: vec![Procedure {
                name: "main".into(),
                num_vars: 2,
                body: vec![
                    Stmt::Assign(dummy_assign(0)),
                    Stmt::Loop(Loop {
                        var: VarId(0),
                        lo: Affine::konst(0),
                        hi: Affine::konst(1),
                        step: 1,
                        body: vec![
                            Stmt::Assign(dummy_assign(1)),
                            Stmt::If(IfStmt {
                                cond: Cond::Always,
                                then_body: vec![Stmt::Assign(dummy_assign(2))],
                                else_body: vec![Stmt::Assign(dummy_assign(3))],
                            }),
                        ],
                    }),
                ],
            }],
            entry: ProcIdx(0),
            num_assigns: 4,
            num_locks: 0,
            num_events: 0,
        };
        let mut seen = vec![];
        prog.for_each_assign(|p, a| {
            assert_eq!(p, ProcIdx(0));
            seen.push(a.id.0);
        });
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }
}
