//! Index expressions: affine forms over loop induction variables, opaque
//! (compile-time-unanalyzable) subscripts, and branch conditions.
//!
//! The paper's compiler reasons about array subscripts that are affine in the
//! surrounding loop indices; anything else (`X(f(i))` in the paper's running
//! example) must be treated conservatively. [`Affine`] is the analyzable
//! form; [`Subscript::Opaque`] is the unanalyzable one, which the interpreter
//! evaluates with a deterministic hash so simulations are reproducible while
//! the compiler sees an unknown.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A loop induction variable, numbered per procedure in binding order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Evaluation environment: the current value of each in-scope loop variable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Env {
    vals: Vec<Option<i64>>,
}

impl Env {
    /// An empty environment with no bound variables.
    #[must_use]
    pub fn new() -> Self {
        Env::default()
    }

    /// Binds `var` to `value` (entering its loop).
    pub fn bind(&mut self, var: VarId, value: i64) {
        let ix = var.0 as usize;
        if self.vals.len() <= ix {
            self.vals.resize(ix + 1, None);
        }
        self.vals[ix] = Some(value);
    }

    /// Unbinds `var` (leaving its loop).
    pub fn unbind(&mut self, var: VarId) {
        if let Some(slot) = self.vals.get_mut(var.0 as usize) {
            *slot = None;
        }
    }

    /// Current value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not bound; the IR validator guarantees that
    /// well-formed programs only reference in-scope variables.
    #[must_use]
    pub fn value(&self, var: VarId) -> i64 {
        self.vals
            .get(var.0 as usize)
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("unbound loop variable {var}"))
    }

    /// Whether `var` currently has a value.
    #[must_use]
    pub fn is_bound(&self, var: VarId) -> bool {
        matches!(self.vals.get(var.0 as usize), Some(Some(_)))
    }

    /// Values of all currently bound variables, in `VarId` order, for use as
    /// deterministic hash input.
    #[must_use]
    pub fn bound_values(&self) -> Vec<(u32, i64)> {
        self.vals
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|v| (i as u32, v)))
            .collect()
    }
}

/// An affine integer expression `c0 + c1*v1 + c2*v2 + ...`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Affine {
    /// `(variable, coefficient)` pairs, sorted by variable, no zero
    /// coefficients, no duplicates.
    terms: Vec<(VarId, i64)>,
    konst: i64,
}

impl Affine {
    /// The constant expression `k`.
    #[must_use]
    pub fn konst(k: i64) -> Self {
        Affine {
            terms: Vec::new(),
            konst: k,
        }
    }

    /// The expression `v` (coefficient one).
    #[must_use]
    pub fn var(v: VarId) -> Self {
        Affine {
            terms: vec![(v, 1)],
            konst: 0,
        }
    }

    /// The expression `c * v`.
    #[must_use]
    pub fn scaled_var(v: VarId, c: i64) -> Self {
        if c == 0 {
            Affine::konst(0)
        } else {
            Affine {
                terms: vec![(v, c)],
                konst: 0,
            }
        }
    }

    /// Constant part.
    #[must_use]
    pub fn constant(&self) -> i64 {
        self.konst
    }

    /// The `(variable, coefficient)` terms, sorted by variable.
    #[must_use]
    pub fn terms(&self) -> &[(VarId, i64)] {
        &self.terms
    }

    /// Coefficient of `v` (zero if absent).
    #[must_use]
    pub fn coeff(&self, v: VarId) -> i64 {
        self.terms
            .iter()
            .find(|(t, _)| *t == v)
            .map_or(0, |&(_, c)| c)
    }

    /// Whether the expression is a constant.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether `v` occurs with nonzero coefficient.
    #[must_use]
    pub fn uses(&self, v: VarId) -> bool {
        self.coeff(v) != 0
    }

    /// All variables with nonzero coefficients.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.iter().map(|&(v, _)| v)
    }

    /// Evaluates under `env`.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable is unbound.
    #[must_use]
    pub fn eval(&self, env: &Env) -> i64 {
        self.terms
            .iter()
            .fold(self.konst, |acc, &(v, c)| acc + c * env.value(v))
    }

    /// The expression with `v` substituted by constant `value`.
    #[must_use]
    pub fn substitute(&self, v: VarId, value: i64) -> Affine {
        let mut out = self.clone();
        if let Some(pos) = out.terms.iter().position(|(t, _)| *t == v) {
            let (_, c) = out.terms.remove(pos);
            out.konst += c * value;
        }
        out
    }

    fn add_term(&mut self, v: VarId, c: i64) {
        if c == 0 {
            return;
        }
        match self.terms.binary_search_by_key(&v, |&(t, _)| t) {
            Ok(pos) => {
                self.terms[pos].1 += c;
                if self.terms[pos].1 == 0 {
                    self.terms.remove(pos);
                }
            }
            Err(pos) => self.terms.insert(pos, (v, c)),
        }
    }
}

impl From<i64> for Affine {
    fn from(k: i64) -> Self {
        Affine::konst(k)
    }
}

impl From<VarId> for Affine {
    fn from(v: VarId) -> Self {
        Affine::var(v)
    }
}

impl Add for Affine {
    type Output = Affine;
    fn add(self, rhs: Affine) -> Affine {
        let mut out = self;
        out.konst += rhs.konst;
        for (v, c) in rhs.terms {
            out.add_term(v, c);
        }
        out
    }
}

impl Add<i64> for Affine {
    type Output = Affine;
    fn add(self, rhs: i64) -> Affine {
        let mut out = self;
        out.konst += rhs;
        out
    }
}

impl Sub for Affine {
    type Output = Affine;
    fn sub(self, rhs: Affine) -> Affine {
        self + rhs * -1
    }
}

impl Sub<i64> for Affine {
    type Output = Affine;
    fn sub(self, rhs: i64) -> Affine {
        self + (-rhs)
    }
}

impl Mul<i64> for Affine {
    type Output = Affine;
    fn mul(self, rhs: i64) -> Affine {
        if rhs == 0 {
            return Affine::konst(0);
        }
        let mut out = self;
        out.konst *= rhs;
        for t in &mut out.terms {
            t.1 *= rhs;
        }
        out
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "{}", self.konst);
        }
        let mut first = true;
        for &(v, c) in &self.terms {
            if first {
                match c {
                    1 => write!(f, "{v}")?,
                    -1 => write!(f, "-{v}")?,
                    _ => write!(f, "{c}*{v}")?,
                }
                first = false;
            } else {
                let sign = if c < 0 { '-' } else { '+' };
                let mag = c.abs();
                if mag == 1 {
                    write!(f, " {sign} {v}")?;
                } else {
                    write!(f, " {sign} {mag}*{v}")?;
                }
            }
        }
        if self.konst != 0 {
            let sign = if self.konst < 0 { '-' } else { '+' };
            write!(f, " {sign} {}", self.konst.abs())?;
        }
        Ok(())
    }
}

/// One array subscript: analyzable affine form or an opaque runtime function.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Subscript {
    /// An affine expression the compiler can analyze.
    Affine(Affine),
    /// A subscript the compiler cannot analyze (an index array, a runtime
    /// permutation, ...). The interpreter evaluates it as a deterministic
    /// pseudo-random function of the bound loop variables, confined to
    /// `0..extent` of the subscripted dimension.
    Opaque(OpaqueFn),
}

impl Subscript {
    /// The affine form, if analyzable.
    #[must_use]
    pub fn as_affine(&self) -> Option<&Affine> {
        match self {
            Subscript::Affine(a) => Some(a),
            Subscript::Opaque(_) => None,
        }
    }
}

impl fmt::Display for Subscript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subscript::Affine(a) => write!(f, "{a}"),
            Subscript::Opaque(o) => write!(f, "f{}(...)", o.salt()),
        }
    }
}

impl From<Affine> for Subscript {
    fn from(a: Affine) -> Self {
        Subscript::Affine(a)
    }
}

impl From<VarId> for Subscript {
    fn from(v: VarId) -> Self {
        Subscript::Affine(Affine::var(v))
    }
}

impl From<i64> for Subscript {
    fn from(k: i64) -> Self {
        Subscript::Affine(Affine::konst(k))
    }
}

impl From<OpaqueFn> for Subscript {
    fn from(f: OpaqueFn) -> Self {
        Subscript::Opaque(f)
    }
}

impl Add<i64> for VarId {
    type Output = Affine;
    fn add(self, rhs: i64) -> Affine {
        Affine::var(self) + rhs
    }
}

impl Sub<i64> for VarId {
    type Output = Affine;
    fn sub(self, rhs: i64) -> Affine {
        Affine::var(self) - rhs
    }
}

impl Mul<i64> for VarId {
    type Output = Affine;
    fn mul(self, rhs: i64) -> Affine {
        Affine::scaled_var(self, rhs)
    }
}

impl Add<VarId> for VarId {
    type Output = Affine;
    fn add(self, rhs: VarId) -> Affine {
        Affine::var(self) + Affine::var(rhs)
    }
}

impl Sub<VarId> for VarId {
    type Output = Affine;
    fn sub(self, rhs: VarId) -> Affine {
        Affine::var(self) - Affine::var(rhs)
    }
}

impl Add<Affine> for VarId {
    type Output = Affine;
    fn add(self, rhs: Affine) -> Affine {
        Affine::var(self) + rhs
    }
}

impl Add<VarId> for Affine {
    type Output = Affine;
    fn add(self, rhs: VarId) -> Affine {
        self + Affine::var(rhs)
    }
}

impl Sub<VarId> for Affine {
    type Output = Affine;
    fn sub(self, rhs: VarId) -> Affine {
        self - Affine::var(rhs)
    }
}

/// Deterministic stand-in for a compile-time-unanalyzable subscript.
///
/// Evaluates to `hash(salt, bound loop variables) % extent`. Two sites with
/// different salts produce uncorrelated index streams; the same site always
/// produces the same stream, keeping simulations reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpaqueFn {
    salt: u64,
}

impl OpaqueFn {
    /// Creates an opaque subscript function with the given `salt`.
    #[must_use]
    pub fn new(salt: u64) -> Self {
        OpaqueFn { salt }
    }

    /// The site salt.
    #[must_use]
    pub fn salt(self) -> u64 {
        self.salt
    }

    /// Evaluates to a value in `0..extent`.
    ///
    /// # Panics
    ///
    /// Panics if `extent` is zero.
    #[must_use]
    pub fn eval(self, env: &Env, extent: u64) -> i64 {
        assert!(extent > 0, "opaque subscript over empty dimension");
        // SplitMix64-style mixing over the salt and each bound (var, value).
        let mut h = self.salt ^ 0x9e37_79b9_7f4a_7c15;
        for (v, val) in env.bound_values() {
            h = h.wrapping_add(u64::from(v).wrapping_mul(0xbf58_476d_1ce4_e5b9));
            h ^= (val as u64).wrapping_mul(0x94d0_49bb_1331_11eb);
            h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            h ^= h >> 31;
        }
        (h % extent) as i64
    }
}

/// A branch condition.
///
/// Conditions are opaque to the compiler (it must assume either arm may run)
/// but deterministic for the interpreter, so traces are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Always true.
    Always,
    /// Always false.
    Never,
    /// True when `var % modulus == phase`. Models convergence checks and
    /// every-N-iterations work (e.g. FLO52's multigrid cycle decisions).
    EveryN {
        /// Controlling loop variable.
        var: VarId,
        /// Period.
        modulus: i64,
        /// Phase within the period.
        phase: i64,
    },
    /// True with a deterministic pseudo-random pattern of the given density
    /// in parts-per-1024, salted per site.
    Sometimes {
        /// Probability numerator out of 1024.
        per_1024: u16,
        /// Site salt.
        salt: u64,
    },
}

impl Cond {
    /// Evaluates under `env`.
    #[must_use]
    pub fn eval(self, env: &Env) -> bool {
        match self {
            Cond::Always => true,
            Cond::Never => false,
            Cond::EveryN {
                var,
                modulus,
                phase,
            } => env.value(var).rem_euclid(modulus) == phase.rem_euclid(modulus),
            Cond::Sometimes { per_1024, salt } => {
                let h = OpaqueFn::new(salt).eval(env, 1024);
                (h as u16) < per_1024
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> VarId {
        VarId(n)
    }

    #[test]
    fn affine_arithmetic_and_eval() {
        let e = Affine::var(v(0)) * 2 + Affine::var(v(1)) + 5;
        assert_eq!(e.coeff(v(0)), 2);
        assert_eq!(e.coeff(v(1)), 1);
        assert_eq!(e.constant(), 5);
        let mut env = Env::new();
        env.bind(v(0), 3);
        env.bind(v(1), 10);
        assert_eq!(e.eval(&env), 21);
    }

    #[test]
    fn affine_cancellation() {
        let e = Affine::var(v(0)) - Affine::var(v(0));
        assert!(e.is_constant());
        assert_eq!(e.constant(), 0);
        #[allow(clippy::erasing_op)]
        let e2 = (Affine::var(v(1)) + 3) * 0;
        assert_eq!(e2, Affine::konst(0));
    }

    #[test]
    fn affine_substitute() {
        let e = Affine::var(v(0)) * 3 + Affine::var(v(1)) + 1;
        let s = e.substitute(v(0), 4);
        assert_eq!(s, Affine::var(v(1)) + 13);
        assert!(!s.uses(v(0)));
    }

    #[test]
    fn env_bind_unbind() {
        let mut env = Env::new();
        env.bind(v(2), 7);
        assert!(env.is_bound(v(2)));
        assert!(!env.is_bound(v(0)));
        assert_eq!(env.value(v(2)), 7);
        env.unbind(v(2));
        assert!(!env.is_bound(v(2)));
    }

    #[test]
    #[should_panic(expected = "unbound")]
    fn env_panics_on_unbound() {
        let env = Env::new();
        let _ = env.value(v(0));
    }

    #[test]
    fn opaque_is_deterministic_and_in_range() {
        let f = OpaqueFn::new(42);
        let mut env = Env::new();
        env.bind(v(0), 5);
        let a = f.eval(&env, 100);
        let b = f.eval(&env, 100);
        assert_eq!(a, b);
        assert!((0..100).contains(&a));
        env.bind(v(0), 6);
        // Different input usually produces a different output; at minimum it
        // must stay in range.
        assert!((0..100).contains(&f.eval(&env, 100)));
    }

    #[test]
    fn opaque_salt_decorrelates_sites() {
        let mut env = Env::new();
        env.bind(v(0), 1);
        let outs: Vec<i64> = (0..32)
            .map(|s| OpaqueFn::new(s).eval(&env, 1 << 30))
            .collect();
        let mut uniq = outs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > 28, "salts should decorrelate sites: {outs:?}");
    }

    #[test]
    fn cond_every_n() {
        let c = Cond::EveryN {
            var: v(0),
            modulus: 4,
            phase: 1,
        };
        let mut env = Env::new();
        env.bind(v(0), 5);
        assert!(c.eval(&env));
        env.bind(v(0), 6);
        assert!(!c.eval(&env));
    }

    #[test]
    fn cond_sometimes_density() {
        let c = Cond::Sometimes {
            per_1024: 512,
            salt: 7,
        };
        let mut env = Env::new();
        let mut hits = 0;
        for i in 0..1000 {
            env.bind(v(0), i);
            if c.eval(&env) {
                hits += 1;
            }
        }
        assert!((350..650).contains(&hits), "density wildly off: {hits}");
    }

    #[test]
    fn affine_display() {
        let e = Affine::var(v(0)) * 2 - Affine::var(v(1)) + 7;
        assert_eq!(e.to_string(), "2*i0 - i1 + 7");
        assert_eq!(Affine::konst(-3).to_string(), "-3");
    }
}
