//! Fluent construction of IR programs.
//!
//! # Example
//!
//! A parallel copy with a one-epoch producer/consumer dependence (the
//! paper's Figure 1 shape):
//!
//! ```
//! use tpi_ir::{ProgramBuilder, subs};
//!
//! let mut p = ProgramBuilder::new();
//! let a = p.shared("A", [64]);
//! let b = p.shared("B", [64]);
//! let main = p.proc("main", |f| {
//!     f.doall(0, 63, |i, f| {
//!         f.store(a.at(subs![i]), vec![], 2); // epoch 0: A(i) = ...
//!     });
//!     f.doall(0, 63, |i, f| {
//!         f.store(b.at(subs![i]), vec![a.at(subs![i])], 2); // epoch 1: B(i) = A(i)
//!     });
//! });
//! let prog = p.finish(main).expect("valid program");
//! assert_eq!(prog.num_assigns, 2);
//! ```

use crate::expr::{Affine, Cond, OpaqueFn, Subscript, VarId};
use crate::stmt::{
    ArrayRef, Assign, Critical, EventId, IfStmt, LockId, Loop, ProcIdx, Procedure, Program, Stmt,
    StmtId,
};
use crate::validate::{self, ValidateError};
use tpi_mem::{ArrayDecl, ArrayId, Sharing};

/// Handle to a declared array, used to form references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayHandle {
    id: ArrayId,
}

impl ArrayHandle {
    /// The underlying array id.
    #[must_use]
    pub fn id(self) -> ArrayId {
        self.id
    }

    /// A reference `A(subs...)`. Use the [`subs!`](crate::subs) macro to
    /// build the subscript vector.
    #[must_use]
    pub fn at(self, subs: Vec<Subscript>) -> ArrayRef {
        ArrayRef::new(self.id, subs)
    }
}

/// Builds [`Subscript`] vectors from mixed index expressions.
///
/// Accepts anything convertible into [`Subscript`]: loop variables, integer
/// constants, [`Affine`](crate::Affine) expressions, and
/// [`OpaqueFn`](crate::OpaqueFn)s.
#[macro_export]
macro_rules! subs {
    ($($e:expr),* $(,)?) => {
        vec![$($crate::Subscript::from($e)),*]
    };
}

/// Top-level program builder. Declare arrays, then procedures (callees
/// first), then [`finish`](ProgramBuilder::finish).
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    arrays: Vec<ArrayDecl>,
    procs: Vec<Procedure>,
    next_stmt: u32,
    next_salt: u64,
    next_lock: u32,
    next_event: u32,
}

impl ProgramBuilder {
    /// An empty program builder.
    #[must_use]
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Declares a shared (coherence-visible) array.
    pub fn shared<const N: usize>(&mut self, name: &str, dims: [u64; N]) -> ArrayHandle {
        self.declare(name, dims.to_vec(), Sharing::Shared)
    }

    /// Declares a processor-private array.
    pub fn private<const N: usize>(&mut self, name: &str, dims: [u64; N]) -> ArrayHandle {
        self.declare(name, dims.to_vec(), Sharing::Private)
    }

    /// Declares a shared array with a runtime-known shape (used by the
    /// textual-format parser).
    pub fn shared_dyn(&mut self, name: &str, dims: Vec<u64>) -> ArrayHandle {
        self.declare(name, dims, Sharing::Shared)
    }

    /// Declares a private array with a runtime-known shape.
    pub fn private_dyn(&mut self, name: &str, dims: Vec<u64>) -> ArrayHandle {
        self.declare(name, dims, Sharing::Private)
    }

    fn declare(&mut self, name: &str, dims: Vec<u64>, sharing: Sharing) -> ArrayHandle {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayDecl::new(name, dims, sharing));
        ArrayHandle { id }
    }

    /// A fresh opaque-subscript function (unique salt per call).
    pub fn opaque(&mut self) -> OpaqueFn {
        self.next_salt += 1;
        OpaqueFn::new(self.next_salt)
    }

    /// Declares a lock variable for use with
    /// [`BodyBuilder::critical`].
    pub fn lock(&mut self) -> LockId {
        let id = LockId(self.next_lock);
        self.next_lock += 1;
        id
    }

    /// Declares an element-indexed event variable for use with
    /// [`BodyBuilder::post`] / [`BodyBuilder::wait`].
    pub fn event(&mut self) -> EventId {
        let id = EventId(self.next_event);
        self.next_event += 1;
        id
    }

    /// Defines a procedure by running `build` against a body builder.
    /// Returns its index for use in [`BodyBuilder::call`]. Callees must be
    /// defined before their callers (Fortran-style, no recursion).
    pub fn proc(&mut self, name: &str, build: impl FnOnce(&mut BodyBuilder<'_>)) -> ProcIdx {
        let idx = ProcIdx(self.procs.len() as u32);
        let mut stmts = Vec::new();
        let mut next_var = 0;
        {
            let mut body = BodyBuilder {
                next_stmt: &mut self.next_stmt,
                next_salt: &mut self.next_salt,
                next_var: &mut next_var,
                known_procs: self.procs.len() as u32,
                stmts: &mut stmts,
            };
            build(&mut body);
        }
        self.procs.push(Procedure {
            name: name.to_owned(),
            body: stmts,
            num_vars: next_var,
        });
        idx
    }

    /// Finalizes and validates the program with `entry` as "main".
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if the program violates the IR's static
    /// rules (nested DOALLs, calls inside DOALLs, rank mismatches, unbound
    /// variables, recursion, ...).
    pub fn finish(self, entry: ProcIdx) -> Result<Program, ValidateError> {
        let program = Program {
            arrays: self.arrays,
            procs: self.procs,
            entry,
            num_assigns: self.next_stmt,
            num_locks: self.next_lock,
            num_events: self.next_event,
        };
        validate::validate(&program)?;
        Ok(program)
    }
}

/// Builds one statement list (a procedure body or a nested block).
#[derive(Debug)]
pub struct BodyBuilder<'a> {
    next_stmt: &'a mut u32,
    next_salt: &'a mut u64,
    next_var: &'a mut u32,
    known_procs: u32,
    stmts: &'a mut Vec<Stmt>,
}

impl BodyBuilder<'_> {
    fn fresh_stmt(&mut self) -> StmtId {
        let id = StmtId(*self.next_stmt);
        *self.next_stmt += 1;
        id
    }

    fn fresh_var(&mut self) -> VarId {
        let v = VarId(*self.next_var);
        *self.next_var += 1;
        v
    }

    /// A fresh opaque-subscript function (unique salt per call).
    pub fn opaque(&mut self) -> OpaqueFn {
        *self.next_salt += 1;
        OpaqueFn::new(*self.next_salt)
    }

    /// Emits `write = f(reads)` with `cost` cycles of scalar work.
    pub fn store(&mut self, write: ArrayRef, reads: Vec<ArrayRef>, cost: u32) {
        let id = self.fresh_stmt();
        self.stmts.push(Stmt::Assign(Assign {
            id,
            write: Some(write),
            reads,
            cost,
        }));
    }

    /// Emits a read-only statement (e.g. accumulating into a private scalar).
    pub fn load(&mut self, reads: Vec<ArrayRef>, cost: u32) {
        let id = self.fresh_stmt();
        self.stmts.push(Stmt::Assign(Assign {
            id,
            write: None,
            reads,
            cost,
        }));
    }

    /// Emits pure scalar work of `cost` cycles (no shared-memory accesses).
    pub fn compute(&mut self, cost: u32) {
        self.load(vec![], cost);
    }

    /// Emits a serial loop `for v in lo..=hi`, building its body in `f`.
    pub fn serial(
        &mut self,
        lo: impl Into<Affine>,
        hi: impl Into<Affine>,
        f: impl FnOnce(VarId, &mut BodyBuilder<'_>),
    ) {
        self.serial_step(lo, hi, 1, f);
    }

    /// Emits a serial loop with an explicit stride.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive.
    pub fn serial_step(
        &mut self,
        lo: impl Into<Affine>,
        hi: impl Into<Affine>,
        step: i64,
        f: impl FnOnce(VarId, &mut BodyBuilder<'_>),
    ) {
        let l = self.build_loop(lo.into(), hi.into(), step, f);
        self.stmts.push(Stmt::Loop(l));
    }

    /// Emits a DOALL (parallel) loop — one epoch whose iterations are
    /// independent tasks.
    pub fn doall(
        &mut self,
        lo: impl Into<Affine>,
        hi: impl Into<Affine>,
        f: impl FnOnce(VarId, &mut BodyBuilder<'_>),
    ) {
        self.doall_step(lo, hi, 1, f);
    }

    /// Emits a DOALL loop with an explicit stride.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive.
    pub fn doall_step(
        &mut self,
        lo: impl Into<Affine>,
        hi: impl Into<Affine>,
        step: i64,
        f: impl FnOnce(VarId, &mut BodyBuilder<'_>),
    ) {
        let l = self.build_loop(lo.into(), hi.into(), step, f);
        self.stmts.push(Stmt::Doall(l));
    }

    fn build_loop(
        &mut self,
        lo: Affine,
        hi: Affine,
        step: i64,
        f: impl FnOnce(VarId, &mut BodyBuilder<'_>),
    ) -> Loop {
        assert!(step > 0, "loop step must be positive, got {step}");
        let var = self.fresh_var();
        let mut body = Vec::new();
        {
            let mut b = BodyBuilder {
                next_stmt: self.next_stmt,
                next_salt: self.next_salt,
                next_var: self.next_var,
                known_procs: self.known_procs,
                stmts: &mut body,
            };
            f(var, &mut b);
        }
        Loop {
            var,
            lo,
            hi,
            step,
            body,
        }
    }

    /// Emits a two-armed branch on a compiler-opaque condition.
    pub fn if_else(
        &mut self,
        cond: Cond,
        then_f: impl FnOnce(&mut BodyBuilder<'_>),
        else_f: impl FnOnce(&mut BodyBuilder<'_>),
    ) {
        let mut then_body = Vec::new();
        {
            let mut b = BodyBuilder {
                next_stmt: self.next_stmt,
                next_salt: self.next_salt,
                next_var: self.next_var,
                known_procs: self.known_procs,
                stmts: &mut then_body,
            };
            then_f(&mut b);
        }
        let mut else_body = Vec::new();
        {
            let mut b = BodyBuilder {
                next_stmt: self.next_stmt,
                next_salt: self.next_salt,
                next_var: self.next_var,
                known_procs: self.known_procs,
                stmts: &mut else_body,
            };
            else_f(&mut b);
        }
        self.stmts.push(Stmt::If(IfStmt {
            cond,
            then_body,
            else_body,
        }));
    }

    /// Emits a one-armed branch.
    pub fn if_then(&mut self, cond: Cond, then_f: impl FnOnce(&mut BodyBuilder<'_>)) {
        self.if_else(cond, then_f, |_| {});
    }

    /// Emits a lock-guarded critical section (valid inside DOALL bodies
    /// only; the validator enforces placement).
    pub fn critical(&mut self, lock: LockId, f: impl FnOnce(&mut BodyBuilder<'_>)) {
        let mut body = Vec::new();
        {
            let mut b = BodyBuilder {
                next_stmt: self.next_stmt,
                next_salt: self.next_salt,
                next_var: self.next_var,
                known_procs: self.known_procs,
                stmts: &mut body,
            };
            f(&mut b);
        }
        self.stmts.push(Stmt::Critical(Critical { lock, body }));
    }

    /// Emits a post: signals element `index` of `event` after fencing this
    /// iteration's prior writes (DOALL bodies only).
    pub fn post(&mut self, event: EventId, index: impl Into<Affine>) {
        self.stmts.push(Stmt::Post {
            event,
            index: index.into(),
        });
    }

    /// Emits a wait: blocks until element `index` of `event` is posted
    /// (DOALL bodies only).
    pub fn wait(&mut self, event: EventId, index: impl Into<Affine>) {
        self.stmts.push(Stmt::Wait {
            event,
            index: index.into(),
        });
    }

    /// Emits a call to a previously defined procedure.
    ///
    /// # Panics
    ///
    /// Panics if `callee` has not been defined yet (forward calls would
    /// permit recursion, which the IR rejects).
    pub fn call(&mut self, callee: ProcIdx) {
        assert!(
            callee.0 < self.known_procs,
            "call target {:?} not yet defined; define callees before callers",
            callee
        );
        self.stmts.push(Stmt::Call(callee));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Affine;

    #[test]
    fn builds_nested_structure_with_dense_ids() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [16, 16]);
        let w = p.private("W", [16]);
        let init = p.proc("init", |f| {
            f.doall(0, 15, |i, f| {
                f.serial(0, 15, |j, f| {
                    f.store(a.at(subs![i, j]), vec![w.at(subs![j])], 3);
                });
            });
        });
        let main = p.proc("main", |f| {
            f.call(init);
            f.compute(10);
        });
        let prog = p.finish(main).unwrap();
        assert_eq!(prog.num_assigns, 2);
        assert_eq!(prog.procs.len(), 2);
        assert_eq!(prog.entry_proc().name, "main");
        assert_eq!(prog.proc(init).num_vars, 2);
    }

    #[test]
    fn var_ids_are_dense_per_procedure() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [8]);
        let _p1 = p.proc("p1", |f| {
            f.doall(0, 7, |i, f| {
                f.store(a.at(subs![i]), vec![], 1);
            });
        });
        let p2 = p.proc("p2", |f| {
            f.serial(0, 3, |t, f| {
                f.doall(0, 7, |i, f| {
                    let _ = t;
                    f.store(a.at(subs![i]), vec![a.at(subs![Affine::var(i)])], 1);
                });
            });
        });
        let prog = p.finish(p2).unwrap();
        assert_eq!(prog.proc(ProcIdx(0)).num_vars, 1);
        assert_eq!(prog.proc(p2).num_vars, 2);
    }

    #[test]
    #[should_panic(expected = "not yet defined")]
    fn forward_call_panics() {
        let mut p = ProgramBuilder::new();
        p.proc("main", |f| f.call(ProcIdx(5)));
    }

    #[test]
    fn opaque_salts_are_unique() {
        let mut p = ProgramBuilder::new();
        let o1 = p.opaque();
        let o2 = p.opaque();
        assert_ne!(o1.salt(), o2.salt());
    }

    #[test]
    fn subs_macro_accepts_mixed_forms() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [8, 8, 8]);
        let _ = p.proc("main", |f| {
            let o = f.opaque();
            f.doall(0, 7, |i, f| {
                let r = a.at(subs![i, Affine::var(i) + 1, 3]);
                assert_eq!(r.subs.len(), 3);
                let r2 = a.at(subs![o, 0, i]);
                assert!(!r2.is_affine());
                f.compute(1);
            });
        });
    }
}
