//! Bounded regular sections: the array-dataflow abstraction.
//!
//! The paper's compiler performs intra- and interprocedural *array* dataflow
//! analysis; the classic abstraction for that is the bounded regular section
//! (triplet notation `lo:hi:step` per dimension). A [`Section`]
//! over-approximates the set of elements an [`ArrayRef`] touches over a loop
//! nest. Intersection tests drive the stale-reference analysis: a read is
//! potentially stale when its section may intersect a section written by an
//! earlier epoch.
//!
//! All operations here are *conservative over-approximations*: if
//! [`Section::may_intersect`] returns `false`, the references provably never
//! touch a common element.

use crate::expr::{Affine, VarId};
use crate::stmt::ArrayRef;
use tpi_mem::ArrayDecl;

/// The value set of one dimension: an arithmetic progression
/// `{lo, lo+step, ..., <= hi}`; `step == 0` encodes a singleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimRange {
    /// Smallest value.
    pub lo: i64,
    /// Largest value (inclusive); `lo > hi` encodes the empty set.
    pub hi: i64,
    /// Common difference; `0` means `lo == hi` (a single point).
    pub step: i64,
}

impl DimRange {
    /// The singleton `{v}`.
    #[must_use]
    pub fn point(v: i64) -> Self {
        DimRange {
            lo: v,
            hi: v,
            step: 0,
        }
    }

    /// The progression `lo..=hi` with the given positive step.
    ///
    /// # Panics
    ///
    /// Panics if `step` is negative.
    #[must_use]
    pub fn new(lo: i64, hi: i64, step: i64) -> Self {
        assert!(step >= 0, "DimRange step must be nonnegative");
        if lo == hi {
            DimRange::point(lo)
        } else {
            DimRange {
                lo,
                hi,
                step: step.max(1),
            }
        }
    }

    /// The dense range `0..extent`.
    #[must_use]
    pub fn full(extent: u64) -> Self {
        DimRange::new(0, extent as i64 - 1, 1)
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// Whether `v` is in the set.
    #[must_use]
    pub fn contains_point(self, v: i64) -> bool {
        if v < self.lo || v > self.hi {
            return false;
        }
        if self.step <= 1 {
            return true; // singleton already handled by bounds; dense always
        }
        (v - self.lo) % self.step == 0
    }

    /// Conservative intersection test: `false` only when the sets provably
    /// share no point.
    ///
    /// # Examples
    ///
    /// ```
    /// use tpi_ir::DimRange;
    ///
    /// let evens = DimRange::new(0, 100, 2);
    /// let odds = DimRange::new(1, 99, 2);
    /// assert!(!evens.may_intersect(odds)); // provably disjoint
    /// assert!(evens.may_intersect(DimRange::new(50, 60, 1)));
    /// ```
    #[must_use]
    pub fn may_intersect(self, other: DimRange) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo > hi {
            return false;
        }
        match (self.step, other.step) {
            (0, 0) => self.lo == other.lo,
            (0, _) => other.contains_point(self.lo),
            (_, 0) => self.contains_point(other.lo),
            (a, b) => {
                // A common point requires lo1 ≡ lo2 (mod gcd); this is a
                // necessary condition, so failing it proves disjointness.
                let g = gcd(a, b);
                (self.lo - other.lo).rem_euclid(g) == 0
            }
        }
    }

    /// Whether every point of `other` is provably in `self`
    /// (conservative: may return `false` for true containment).
    #[must_use]
    pub fn contains(self, other: DimRange) -> bool {
        if other.is_empty() {
            return true;
        }
        if self.is_empty() || other.lo < self.lo || other.hi > self.hi {
            return false;
        }
        if self.step <= 1 {
            return true;
        }
        let aligned = (other.lo - self.lo) % self.step == 0;
        let step_ok = other.step % self.step == 0 && (other.step > 0 || other.lo == other.hi);
        aligned && (step_ok || other.step == 0)
    }

    /// Smallest progression covering both sets.
    #[must_use]
    pub fn hull(self, other: DimRange) -> DimRange {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        let lo = self.lo.min(other.lo);
        let hi = self.hi.max(other.hi);
        let step = gcd(gcd(self.step, other.step), (self.lo - other.lo).abs());
        DimRange::new(lo, hi, step)
    }

    /// Number of points (saturating).
    #[must_use]
    pub fn count(self) -> u64 {
        if self.is_empty() {
            0
        } else if self.step <= 1 {
            (self.hi - self.lo) as u64 + 1
        } else {
            (self.hi - self.lo) as u64 / self.step as u64 + 1
        }
    }

    /// Shifts both bounds by `k`.
    #[must_use]
    pub fn shifted(self, k: i64) -> DimRange {
        DimRange {
            lo: self.lo + k,
            hi: self.hi + k,
            step: self.step,
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// The known value range of each in-scope loop variable.
///
/// Built outside-in while walking a loop nest: each loop's bounds are affine
/// in *outer* variables, so they evaluate to a [`DimRange`] by interval
/// arithmetic over the ranges collected so far.
#[derive(Debug, Clone, Default)]
pub struct VarRanges {
    ranges: Vec<Option<DimRange>>,
}

impl VarRanges {
    /// No variables in scope.
    #[must_use]
    pub fn new() -> Self {
        VarRanges::default()
    }

    /// Binds `var` to `range` (entering its loop).
    pub fn bind(&mut self, var: VarId, range: DimRange) {
        let ix = var.0 as usize;
        if self.ranges.len() <= ix {
            self.ranges.resize(ix + 1, None);
        }
        self.ranges[ix] = Some(range);
    }

    /// Unbinds `var` (leaving its loop).
    pub fn unbind(&mut self, var: VarId) {
        if let Some(slot) = self.ranges.get_mut(var.0 as usize) {
            *slot = None;
        }
    }

    /// Range of `var`, if bound.
    #[must_use]
    pub fn get(&self, var: VarId) -> Option<DimRange> {
        self.ranges.get(var.0 as usize).copied().flatten()
    }

    /// Binds `var` to the value set of the loop `for var in lo..=hi step s`,
    /// evaluating the affine bounds against the current ranges. Returns the
    /// bound range. Unbounded (unknown-variable) bounds yield `None`.
    pub fn bind_loop(
        &mut self,
        var: VarId,
        lo: &Affine,
        hi: &Affine,
        step: i64,
    ) -> Option<DimRange> {
        let lo_r = self.range_of(lo)?;
        let hi_r = self.range_of(hi)?;
        // The variable can take any value from the smallest lower bound to
        // the largest upper bound; the step is exact only when the lower
        // bound is a single point.
        let step = if lo_r.lo == lo_r.hi {
            step
        } else {
            gcd(step, gcd(lo_r.step, 1))
        };
        let r = DimRange::new(lo_r.lo, hi_r.hi, step);
        self.bind(var, r);
        Some(r)
    }

    /// Interval-arithmetic evaluation of an affine expression to the
    /// arithmetic progression over-approximating its value set. `None` if a
    /// referenced variable is unbound.
    #[must_use]
    pub fn range_of(&self, e: &Affine) -> Option<DimRange> {
        let mut lo = e.constant();
        let mut hi = e.constant();
        let mut step = 0i64;
        for &(v, c) in e.terms() {
            let r = self.get(v)?;
            let (a, b) = (c * r.lo, c * r.hi);
            lo += a.min(b);
            hi += a.max(b);
            step = gcd(step, c.abs() * r.step.max(if r.lo == r.hi { 0 } else { 1 }));
        }
        Some(DimRange::new(lo, hi, step))
    }
}

/// Over-approximation of the element set an array reference touches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    dims: Vec<DimRange>,
}

impl Section {
    /// Builds the section of `r` under `ranges`, conservatively widening
    /// opaque subscripts and unbound variables to the whole dimension.
    #[must_use]
    pub fn of_ref(r: &ArrayRef, ranges: &VarRanges, decl: &ArrayDecl) -> Section {
        let dims = r
            .subs
            .iter()
            .zip(decl.dims())
            .map(
                |(s, &extent)| match s.as_affine().and_then(|a| ranges.range_of(a)) {
                    Some(dr) => dr,
                    None => DimRange::full(extent),
                },
            )
            .collect();
        Section { dims }
    }

    /// The whole array.
    #[must_use]
    pub fn full(decl: &ArrayDecl) -> Section {
        Section {
            dims: decl.dims().iter().map(|&d| DimRange::full(d)).collect(),
        }
    }

    /// Per-dimension ranges.
    #[must_use]
    pub fn dims(&self) -> &[DimRange] {
        &self.dims
    }

    /// Whether the sections may share an element (conservative).
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch (sections of different arrays are never
    /// comparable; callers must match on `ArrayId` first).
    #[must_use]
    pub fn may_intersect(&self, other: &Section) -> bool {
        assert_eq!(self.dims.len(), other.dims.len(), "section rank mismatch");
        self.dims
            .iter()
            .zip(&other.dims)
            .all(|(a, b)| a.may_intersect(*b))
    }

    /// Whether `self` provably covers every element of `other`.
    #[must_use]
    pub fn contains(&self, other: &Section) -> bool {
        assert_eq!(self.dims.len(), other.dims.len(), "section rank mismatch");
        self.dims
            .iter()
            .zip(&other.dims)
            .all(|(a, b)| a.contains(*b))
    }

    /// Smallest regular section covering both.
    #[must_use]
    pub fn hull(&self, other: &Section) -> Section {
        assert_eq!(self.dims.len(), other.dims.len(), "section rank mismatch");
        Section {
            dims: self
                .dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| a.hull(*b))
                .collect(),
        }
    }

    /// Whether any dimension is empty (the section touches nothing).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(|d| d.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_mem::Sharing;

    #[test]
    fn dim_range_membership() {
        let r = DimRange::new(2, 10, 4); // {2, 6, 10}
        assert!(r.contains_point(6));
        assert!(!r.contains_point(4));
        assert!(!r.contains_point(11));
        assert_eq!(r.count(), 3);
        assert!(DimRange::point(5).contains_point(5));
    }

    #[test]
    fn disjoint_even_odd() {
        let evens = DimRange::new(0, 100, 2);
        let odds = DimRange::new(1, 99, 2);
        assert!(!evens.may_intersect(odds));
        assert!(evens.may_intersect(DimRange::new(0, 100, 3)));
    }

    #[test]
    fn window_disjointness() {
        let a = DimRange::new(0, 9, 1);
        let b = DimRange::new(10, 19, 1);
        assert!(!a.may_intersect(b));
        assert!(a.may_intersect(DimRange::new(9, 12, 1)));
    }

    #[test]
    fn containment() {
        let outer = DimRange::new(0, 100, 2);
        assert!(outer.contains(DimRange::new(10, 20, 4)));
        assert!(!outer.contains(DimRange::new(1, 9, 2))); // misaligned
        assert!(!outer.contains(DimRange::new(0, 102, 2))); // overflows
        assert!(outer.contains(DimRange::point(42)));
        assert!(!outer.contains(DimRange::point(43)));
    }

    #[test]
    fn hull_widens() {
        let a = DimRange::new(0, 8, 4);
        let b = DimRange::new(2, 10, 4);
        let h = a.hull(b);
        assert_eq!(h, DimRange::new(0, 10, 2));
        assert!(h.contains(a) && h.contains(b));
    }

    #[test]
    fn interval_arithmetic_over_vars() {
        let mut vr = VarRanges::new();
        vr.bind(VarId(0), DimRange::new(0, 9, 1));
        // 4*i + 2 over i in 0..=9 -> {2, 6, ..., 38}
        let e = VarId(0) * 4 + Affine::konst(2);
        let r = vr.range_of(&e).unwrap();
        assert_eq!(r, DimRange::new(2, 38, 4));
        // unbound var -> None
        assert!(vr.range_of(&Affine::var(VarId(3))).is_none());
    }

    #[test]
    fn bind_loop_with_affine_bounds() {
        let mut vr = VarRanges::new();
        vr.bind(VarId(0), DimRange::new(0, 3, 1)); // outer i in 0..=3
                                                   // inner j in i..=i+7 -> overall 0..=10, step conservative 1
        let r = vr
            .bind_loop(VarId(1), &Affine::var(VarId(0)), &(VarId(0) + 7), 1)
            .unwrap();
        assert_eq!(r.lo, 0);
        assert_eq!(r.hi, 10);
    }

    #[test]
    fn section_of_ref_and_intersection() {
        use crate::builder::ProgramBuilder;
        use crate::subs;
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [100]);
        let decl = ArrayDecl::new("A", vec![100], Sharing::Shared);
        let mut captured = Vec::new();
        let _main = p.proc("main", |f| {
            f.doall(0, 49, |i, f| {
                let even = a.at(subs![i * 2]);
                let odd = a.at(subs![i * 2 + 1]);
                captured.push((even.clone(), odd.clone()));
                f.store(even, vec![odd], 1);
            });
        });
        let (even, odd) = &captured[0];
        let mut vr = VarRanges::new();
        vr.bind(VarId(0), DimRange::new(0, 49, 1));
        let se = Section::of_ref(even, &vr, &decl);
        let so = Section::of_ref(odd, &vr, &decl);
        assert!(!se.may_intersect(&so), "evens and odds are disjoint");
        assert!(Section::full(&decl).contains(&se));
    }

    #[test]
    fn opaque_subscript_widens_to_full_dim() {
        use crate::expr::{OpaqueFn, Subscript};
        use crate::stmt::ArrayRef;
        use tpi_mem::ArrayId;
        let decl = ArrayDecl::new("A", vec![64], Sharing::Shared);
        let r = ArrayRef::new(ArrayId(0), vec![Subscript::Opaque(OpaqueFn::new(1))]);
        let s = Section::of_ref(&r, &VarRanges::new(), &decl);
        assert_eq!(s.dims()[0], DimRange::new(0, 63, 1));
    }

    #[test]
    fn empty_section() {
        let s = Section {
            dims: vec![DimRange::new(5, 4, 1)],
        };
        assert!(s.is_empty());
        assert_eq!(DimRange::new(5, 4, 1).count(), 0);
    }
}
