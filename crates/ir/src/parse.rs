//! A Fortran-flavoured textual format for IR programs.
//!
//! Lets kernels be written as plain text files and run with the `tpi-run`
//! tool, instead of through the builder API. The grammar is line-oriented
//! with `end`-terminated blocks:
//!
//! ```text
//! shared A(96, 96)          ! arrays, locks and events are declared first
//! private W(96)
//! lock l
//! event e
//!
//! proc smooth               ! procedures; callees before callers
//!   doall i = 1, 94
//!     do j = 1, 94
//!       A(i, j) = f[4](A(i-1, j), A(i+1, j), W(j))
//!     end
//!   end
//! end
//!
//! proc main
//!   call smooth
//!   do t = 0, 3
//!     doall i = 0, 95
//!       if every(i, 2, 0)
//!         use f[1](A(i, 0))
//!       else
//!         compute[3]
//!       end
//!       critical l
//!         A(0, 0) = f[2](A(0, 0))
//!       end
//!       post e(i)
//!     end
//!   end
//! end
//! ```
//!
//! Subscripts are affine expressions over in-scope loop variables
//! (`2*i + j - 3`) or the opaque token `?` (a compile-time-unanalyzable
//! subscript). Loops take an optional step: `doall i = 0, 95, 2`.
//! Conditions are `every(var, modulus, phase)`, `sometimes(per1024)`,
//! `always`, or `never`. `!` starts a comment.

use crate::builder::{ArrayHandle, BodyBuilder, ProgramBuilder};
use crate::expr::{Affine, Cond, Subscript};
use crate::stmt::{EventId, LockId, ProcIdx, Program};
use crate::validate::ValidateError;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parse (or validation) failure, with the 1-based source line.
#[derive(Debug)]
pub enum ParseError {
    /// Syntax or semantic problem at a source line.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The parsed program failed IR validation.
    Invalid(ValidateError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl Error for ParseError {}

impl From<ValidateError> for ParseError {
    fn from(e: ValidateError) -> Self {
        ParseError::Invalid(e)
    }
}

/// Parses the textual format into a validated [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] on malformed syntax, unknown names, or IR
/// validation failure.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    Parser::new(src)?.finish()
}

// ---------------------------------------------------------------- AST ----

#[derive(Debug)]
enum Node {
    Assign {
        write: Option<RefAst>,
        reads: Vec<RefAst>,
        cost: u32,
    },
    Compute {
        cost: u32,
    },
    Loop {
        parallel: bool,
        var: String,
        lo: ExprAst,
        hi: ExprAst,
        step: i64,
        body: Vec<Node>,
    },
    If {
        cond: CondAst,
        then_body: Vec<Node>,
        else_body: Vec<Node>,
    },
    Critical {
        lock: String,
        body: Vec<Node>,
    },
    Post {
        event: String,
        index: ExprAst,
    },
    Wait {
        event: String,
        index: ExprAst,
    },
    Call {
        name: String,
    },
}

#[derive(Debug)]
struct RefAst {
    array: String,
    subs: Vec<SubAst>,
    line: usize,
}

#[derive(Debug)]
enum SubAst {
    Affine(ExprAst),
    Opaque,
}

/// `konst + Σ coeff * name`.
#[derive(Debug)]
struct ExprAst {
    terms: Vec<(String, i64)>,
    konst: i64,
    line: usize,
}

#[derive(Debug)]
enum CondAst {
    Always,
    Never,
    EveryN {
        var: String,
        modulus: i64,
        phase: i64,
    },
    Sometimes {
        per_1024: u16,
    },
}

// ------------------------------------------------------------- parser ----

struct Parser {
    arrays: Vec<(String, Vec<u64>, bool)>, // (name, dims, shared)
    locks: Vec<String>,
    events: Vec<String>,
    procs: Vec<(String, Vec<Node>)>,
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Syntax {
        line,
        message: message.into(),
    }
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        let mut p = Parser {
            arrays: Vec::new(),
            locks: Vec::new(),
            events: Vec::new(),
            procs: Vec::new(),
        };
        // Strip comments, keep (lineno, content).
        let lines: Vec<(usize, String)> = src
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let content = l.split('!').next().unwrap_or("").trim().to_owned();
                (i + 1, content)
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        let mut pos = 0;
        while pos < lines.len() {
            let (ln, line) = &lines[pos];
            if let Some(rest) = line.strip_prefix("shared ") {
                p.arrays.push(parse_decl(*ln, rest, true)?);
                pos += 1;
            } else if let Some(rest) = line.strip_prefix("private ") {
                p.arrays.push(parse_decl(*ln, rest, false)?);
                pos += 1;
            } else if let Some(rest) = line.strip_prefix("lock ") {
                p.locks.push(ident(*ln, rest)?);
                pos += 1;
            } else if let Some(rest) = line.strip_prefix("event ") {
                p.events.push(ident(*ln, rest)?);
                pos += 1;
            } else if let Some(rest) = line.strip_prefix("proc ") {
                let name = ident(*ln, rest)?;
                let (body, next) = parse_block(&lines, pos + 1)?;
                p.procs.push((name, body));
                pos = next;
            } else {
                return Err(err(
                    *ln,
                    format!("expected a declaration or `proc`, found `{line}`"),
                ));
            }
        }
        Ok(p)
    }

    fn finish(self) -> Result<Program, ParseError> {
        let mut b = ProgramBuilder::new();
        let mut arrays: HashMap<String, (ArrayHandle, usize)> = HashMap::new();
        for (name, dims, shared) in &self.arrays {
            let h = if *shared {
                b.shared_dyn(name, dims.clone())
            } else {
                b.private_dyn(name, dims.clone())
            };
            arrays.insert(name.clone(), (h, dims.len()));
        }
        let mut locks: HashMap<String, LockId> = HashMap::new();
        for name in &self.locks {
            locks.insert(name.clone(), b.lock());
        }
        let mut events: HashMap<String, EventId> = HashMap::new();
        for name in &self.events {
            events.insert(name.clone(), b.event());
        }
        let mut procs: HashMap<String, ProcIdx> = HashMap::new();
        let mut entry = None;
        let names = Names {
            arrays,
            locks,
            events,
        };
        for (name, body) in &self.procs {
            let mut emit_error = None;
            let idx = b.proc(name, |f| {
                let mut vars = HashMap::new();
                if let Err(e) = emit_nodes(body, f, &names, &procs, &mut vars) {
                    emit_error = Some(e);
                }
            });
            if let Some(e) = emit_error {
                return Err(e);
            }
            procs.insert(name.clone(), idx);
            if name == "main" {
                entry = Some(idx);
            }
        }
        let entry = entry.ok_or_else(|| err(0, "no `proc main` defined"))?;
        Ok(b.finish(entry)?)
    }
}

struct Names {
    arrays: HashMap<String, (ArrayHandle, usize)>,
    locks: HashMap<String, LockId>,
    events: HashMap<String, EventId>,
}

fn parse_decl(
    line: usize,
    rest: &str,
    shared: bool,
) -> Result<(String, Vec<u64>, bool), ParseError> {
    let (name, dims_src) = rest
        .split_once('(')
        .ok_or_else(|| err(line, "expected `NAME(dim, ...)`"))?;
    let dims_src = dims_src
        .strip_suffix(')')
        .ok_or_else(|| err(line, "missing `)` in declaration"))?;
    let name = ident(line, name)?;
    let mut dims = Vec::new();
    for d in dims_src.split(',') {
        let v: u64 = d
            .trim()
            .parse()
            .map_err(|_| err(line, format!("bad dimension `{}`", d.trim())))?;
        if v == 0 {
            return Err(err(line, "array extents must be nonzero"));
        }
        dims.push(v);
    }
    Ok((name, dims, shared))
}

fn ident(line: usize, s: &str) -> Result<String, ParseError> {
    let s = s.trim();
    let ok = s.chars().next().is_some_and(|c| c.is_ascii_alphabetic())
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if ok {
        Ok(s.to_owned())
    } else {
        Err(err(line, format!("`{s}` is not a valid identifier")))
    }
}

/// Parses statements until the matching `end`; returns (body, next index).
fn parse_block(
    lines: &[(usize, String)],
    mut pos: usize,
) -> Result<(Vec<Node>, usize), ParseError> {
    let mut body = Vec::new();
    while pos < lines.len() {
        let (ln, line) = &lines[pos];
        let ln = *ln;
        if line == "end" {
            return Ok((body, pos + 1));
        }
        if line == "else" {
            return Err(err(ln, "`else` without matching `if`"));
        }
        if let Some(rest) = line.strip_prefix("doall ") {
            let (var, lo, hi, step) = parse_loop_head(ln, rest)?;
            let (inner, next) = parse_block(lines, pos + 1)?;
            body.push(Node::Loop {
                parallel: true,
                var,
                lo,
                hi,
                step,
                body: inner,
            });
            pos = next;
        } else if let Some(rest) = line.strip_prefix("do ") {
            let (var, lo, hi, step) = parse_loop_head(ln, rest)?;
            let (inner, next) = parse_block(lines, pos + 1)?;
            body.push(Node::Loop {
                parallel: false,
                var,
                lo,
                hi,
                step,
                body: inner,
            });
            pos = next;
        } else if let Some(rest) = line.strip_prefix("if ") {
            let cond = parse_cond(ln, rest)?;
            let (then_body, else_body, next) = parse_if_arms(lines, pos + 1)?;
            body.push(Node::If {
                cond,
                then_body,
                else_body,
            });
            pos = next;
        } else if let Some(rest) = line.strip_prefix("critical ") {
            let lock = ident(ln, rest)?;
            let (inner, next) = parse_block(lines, pos + 1)?;
            body.push(Node::Critical { lock, body: inner });
            pos = next;
        } else if let Some(rest) = line.strip_prefix("post ") {
            let (event, index) = parse_sync(ln, rest)?;
            body.push(Node::Post { event, index });
            pos += 1;
        } else if let Some(rest) = line.strip_prefix("wait ") {
            let (event, index) = parse_sync(ln, rest)?;
            body.push(Node::Wait { event, index });
            pos += 1;
        } else if let Some(rest) = line.strip_prefix("call ") {
            body.push(Node::Call {
                name: ident(ln, rest)?,
            });
            pos += 1;
        } else if let Some(rest) = line.strip_prefix("compute[") {
            let cost = rest
                .strip_suffix(']')
                .and_then(|c| c.parse().ok())
                .ok_or_else(|| err(ln, "expected `compute[COST]`"))?;
            body.push(Node::Compute { cost });
            pos += 1;
        } else if let Some(rest) = line.strip_prefix("use ") {
            let (reads, cost) = parse_rhs(ln, rest)?;
            body.push(Node::Assign {
                write: None,
                reads,
                cost,
            });
            pos += 1;
        } else if let Some((lhs, rhs)) = line.split_once('=').filter(|(l, _)| l.contains('(')) {
            let write = parse_ref(ln, lhs.trim())?;
            let (reads, cost) = parse_rhs(ln, rhs.trim())?;
            body.push(Node::Assign {
                write: Some(write),
                reads,
                cost,
            });
            pos += 1;
        } else {
            return Err(err(ln, format!("cannot parse statement `{line}`")));
        }
    }
    Err(err(lines.last().map_or(0, |(l, _)| *l), "missing `end`"))
}

/// Parses the arms of an if: statements, optional `else`, then `end`.
fn parse_if_arms(
    lines: &[(usize, String)],
    mut pos: usize,
) -> Result<(Vec<Node>, Vec<Node>, usize), ParseError> {
    // Parse the then-arm manually so we can stop at `else` or `end`.
    let mut then_body = Vec::new();
    loop {
        if pos >= lines.len() {
            return Err(err(
                lines.last().map_or(0, |(l, _)| *l),
                "missing `end` for `if`",
            ));
        }
        let (_, line) = &lines[pos];
        if line == "end" {
            return Ok((then_body, Vec::new(), pos + 1));
        }
        if line == "else" {
            let (else_body, next) = parse_block(lines, pos + 1)?;
            return Ok((then_body, else_body, next));
        }
        // Reuse the block parser for exactly one statement: feed it a
        // virtual slice terminated where this statement's subtree ends.
        let (stmt, next) = parse_one(lines, pos)?;
        then_body.push(stmt);
        pos = next;
    }
}

/// Parses exactly one statement (with its nested block if any).
fn parse_one(lines: &[(usize, String)], pos: usize) -> Result<(Node, usize), ParseError> {
    // Delegate to parse_block logic by parsing a single step: simplest is
    // to call parse_block on a window that would stop after one statement.
    // Instead we re-dispatch on the statement head here.
    let (ln, line) = &lines[pos];
    let ln = *ln;
    if let Some(rest) = line.strip_prefix("doall ") {
        let (var, lo, hi, step) = parse_loop_head(ln, rest)?;
        let (inner, next) = parse_block(lines, pos + 1)?;
        Ok((
            Node::Loop {
                parallel: true,
                var,
                lo,
                hi,
                step,
                body: inner,
            },
            next,
        ))
    } else if let Some(rest) = line.strip_prefix("do ") {
        let (var, lo, hi, step) = parse_loop_head(ln, rest)?;
        let (inner, next) = parse_block(lines, pos + 1)?;
        Ok((
            Node::Loop {
                parallel: false,
                var,
                lo,
                hi,
                step,
                body: inner,
            },
            next,
        ))
    } else if let Some(rest) = line.strip_prefix("if ") {
        let cond = parse_cond(ln, rest)?;
        let (then_body, else_body, next) = parse_if_arms(lines, pos + 1)?;
        Ok((
            Node::If {
                cond,
                then_body,
                else_body,
            },
            next,
        ))
    } else if let Some(rest) = line.strip_prefix("critical ") {
        let lock = ident(ln, rest)?;
        let (inner, next) = parse_block(lines, pos + 1)?;
        Ok((Node::Critical { lock, body: inner }, next))
    } else if let Some(rest) = line.strip_prefix("post ") {
        let (event, index) = parse_sync(ln, rest)?;
        Ok((Node::Post { event, index }, pos + 1))
    } else if let Some(rest) = line.strip_prefix("wait ") {
        let (event, index) = parse_sync(ln, rest)?;
        Ok((Node::Wait { event, index }, pos + 1))
    } else if let Some(rest) = line.strip_prefix("call ") {
        Ok((
            Node::Call {
                name: ident(ln, rest)?,
            },
            pos + 1,
        ))
    } else if let Some(rest) = line.strip_prefix("compute[") {
        let cost = rest
            .strip_suffix(']')
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| err(ln, "expected `compute[COST]`"))?;
        Ok((Node::Compute { cost }, pos + 1))
    } else if let Some(rest) = line.strip_prefix("use ") {
        let (reads, cost) = parse_rhs(ln, rest)?;
        Ok((
            Node::Assign {
                write: None,
                reads,
                cost,
            },
            pos + 1,
        ))
    } else if let Some((lhs, rhs)) = line.split_once('=').filter(|(l, _)| l.contains('(')) {
        let write = parse_ref(ln, lhs.trim())?;
        let (reads, cost) = parse_rhs(ln, rhs.trim())?;
        Ok((
            Node::Assign {
                write: Some(write),
                reads,
                cost,
            },
            pos + 1,
        ))
    } else {
        Err(err(ln, format!("cannot parse statement `{line}`")))
    }
}

/// `VAR = LO, HI[, STEP]`.
fn parse_loop_head(line: usize, rest: &str) -> Result<(String, ExprAst, ExprAst, i64), ParseError> {
    let (var, bounds) = rest
        .split_once('=')
        .ok_or_else(|| err(line, "expected `VAR = LO, HI[, STEP]`"))?;
    let var = ident(line, var)?;
    let parts = split_top_level(bounds);
    if parts.len() < 2 || parts.len() > 3 {
        return Err(err(line, "expected `LO, HI[, STEP]`"));
    }
    let lo = parse_expr(line, &parts[0])?;
    let hi = parse_expr(line, &parts[1])?;
    let step = if parts.len() == 3 {
        parts[2]
            .trim()
            .parse()
            .map_err(|_| err(line, format!("bad step `{}`", parts[2].trim())))?
    } else {
        1
    };
    Ok((var, lo, hi, step))
}

fn parse_cond(line: usize, rest: &str) -> Result<CondAst, ParseError> {
    let rest = rest.trim();
    if rest == "always" {
        return Ok(CondAst::Always);
    }
    if rest == "never" {
        return Ok(CondAst::Never);
    }
    if let Some(args) = rest
        .strip_prefix("every(")
        .and_then(|r| r.strip_suffix(')'))
    {
        let parts = split_top_level(args);
        if parts.len() != 3 {
            return Err(err(line, "expected `every(var, modulus, phase)`"));
        }
        let var = ident(line, &parts[0])?;
        let modulus = parts[1]
            .trim()
            .parse()
            .map_err(|_| err(line, "bad modulus"))?;
        let phase = parts[2]
            .trim()
            .parse()
            .map_err(|_| err(line, "bad phase"))?;
        return Ok(CondAst::EveryN {
            var,
            modulus,
            phase,
        });
    }
    if let Some(arg) = rest
        .strip_prefix("sometimes(")
        .and_then(|r| r.strip_suffix(')'))
    {
        let per_1024 = arg
            .trim()
            .parse()
            .map_err(|_| err(line, "bad probability"))?;
        return Ok(CondAst::Sometimes { per_1024 });
    }
    Err(err(line, format!("unknown condition `{rest}`")))
}

/// `NAME(EXPR)`.
fn parse_sync(line: usize, rest: &str) -> Result<(String, ExprAst), ParseError> {
    let (name, idx) = rest
        .split_once('(')
        .ok_or_else(|| err(line, "expected `EVENT(index)`"))?;
    let idx = idx
        .strip_suffix(')')
        .ok_or_else(|| err(line, "missing `)`"))?;
    Ok((ident(line, name)?, parse_expr(line, idx)?))
}

/// `f[COST](ref, ref, ...)` or `f[COST]()`.
fn parse_rhs(line: usize, rest: &str) -> Result<(Vec<RefAst>, u32), ParseError> {
    let rest = rest.trim();
    let inner = rest
        .strip_prefix("f[")
        .ok_or_else(|| err(line, "expected `f[COST](refs...)`"))?;
    let (cost_src, args) = inner
        .split_once(']')
        .ok_or_else(|| err(line, "missing `]` in cost"))?;
    let cost: u32 = cost_src.trim().parse().map_err(|_| err(line, "bad cost"))?;
    let args = args.trim();
    let args = args
        .strip_prefix('(')
        .and_then(|a| a.strip_suffix(')'))
        .ok_or_else(|| err(line, "expected `(refs...)` after cost"))?;
    let mut reads = Vec::new();
    if !args.trim().is_empty() {
        for part in split_top_level(args) {
            reads.push(parse_ref(line, part.trim())?);
        }
    }
    Ok((reads, cost))
}

/// `NAME(sub, sub, ...)`.
fn parse_ref(line: usize, s: &str) -> Result<RefAst, ParseError> {
    let (name, subs_src) = s
        .split_once('(')
        .ok_or_else(|| err(line, format!("expected array reference, found `{s}`")))?;
    let subs_src = subs_src
        .strip_suffix(')')
        .ok_or_else(|| err(line, format!("missing `)` in reference `{s}`")))?;
    let mut subs = Vec::new();
    for part in split_top_level(subs_src) {
        let part = part.trim();
        if part == "?" {
            subs.push(SubAst::Opaque);
        } else {
            subs.push(SubAst::Affine(parse_expr(line, part)?));
        }
    }
    Ok(RefAst {
        array: ident(line, name)?,
        subs,
        line,
    })
}

/// Splits on top-level commas (no nested parentheses in this grammar's
/// comma contexts, but keep it robust).
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => out.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() || !out.is_empty() {
        out.push(cur);
    }
    out
}

/// Affine expression: `[+|-] term {(+|-) term}` with
/// `term := INT | VAR | INT*VAR | VAR*INT`.
fn parse_expr(line: usize, s: &str) -> Result<ExprAst, ParseError> {
    let mut terms = Vec::new();
    let mut konst = 0i64;
    let s = s.trim();
    if s.is_empty() {
        return Err(err(line, "empty expression"));
    }
    // Tokenize into signed terms.
    let mut rest = s;
    let mut sign = 1i64;
    if let Some(r) = rest.strip_prefix('-') {
        sign = -1;
        rest = r.trim_start();
    } else if let Some(r) = rest.strip_prefix('+') {
        rest = r.trim_start();
    }
    loop {
        // Find the end of this term: next top-level + or - not at start.
        let end = rest
            .char_indices()
            .position(|(i, c)| i > 0 && (c == '+' || c == '-'))
            .unwrap_or(rest.len());
        let (term, tail) = rest.split_at(end);
        parse_term(line, term.trim(), sign, &mut terms, &mut konst)?;
        if tail.is_empty() {
            break;
        }
        sign = if tail.starts_with('-') { -1 } else { 1 };
        rest = tail[1..].trim_start();
    }
    Ok(ExprAst { terms, konst, line })
}

fn parse_term(
    line: usize,
    term: &str,
    sign: i64,
    terms: &mut Vec<(String, i64)>,
    konst: &mut i64,
) -> Result<(), ParseError> {
    if term.is_empty() {
        return Err(err(line, "dangling operator in expression"));
    }
    if let Some((a, b)) = term.split_once('*') {
        let (a, b) = (a.trim(), b.trim());
        let (coeff, var) = if let Ok(c) = a.parse::<i64>() {
            (c, ident(line, b)?)
        } else if let Ok(c) = b.parse::<i64>() {
            (c, ident(line, a)?)
        } else {
            return Err(err(line, format!("`{term}` is not linear (INT*VAR)")));
        };
        terms.push((var, sign * coeff));
    } else if let Ok(c) = term.parse::<i64>() {
        *konst += sign * c;
    } else {
        terms.push((ident(line, term)?, sign));
    }
    Ok(())
}

// ----------------------------------------------------------- emission ----

fn emit_nodes(
    nodes: &[Node],
    f: &mut BodyBuilder<'_>,
    names: &Names,
    procs: &HashMap<String, ProcIdx>,
    vars: &mut HashMap<String, crate::expr::VarId>,
) -> Result<(), ParseError> {
    for n in nodes {
        match n {
            Node::Compute { cost } => f.compute(*cost),
            Node::Assign { write, reads, cost } => {
                let mut read_refs = Vec::new();
                for r in reads {
                    read_refs.push(emit_ref(r, f, names, vars)?);
                }
                match write {
                    Some(w) => {
                        let wref = emit_ref(w, f, names, vars)?;
                        f.store(wref, read_refs, *cost);
                    }
                    None => f.load(read_refs, *cost),
                }
            }
            Node::Loop {
                parallel,
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let lo = emit_expr(lo, vars)?;
                let hi = emit_expr(hi, vars)?;
                let mut inner_err = None;
                let emit_body = |v: crate::expr::VarId, f: &mut BodyBuilder<'_>| {
                    let shadow = vars.insert(var.clone(), v);
                    let mut inner_vars = vars.clone();
                    if let Err(e) = emit_nodes(body, f, names, procs, &mut inner_vars) {
                        inner_err = Some(e);
                    }
                    match shadow {
                        Some(old) => {
                            vars.insert(var.clone(), old);
                        }
                        None => {
                            vars.remove(var);
                        }
                    }
                };
                if *parallel {
                    f.doall_step(lo, hi, *step, emit_body);
                } else {
                    f.serial_step(lo, hi, *step, emit_body);
                }
                if let Some(e) = inner_err {
                    return Err(e);
                }
            }
            Node::If {
                cond,
                then_body,
                else_body,
            } => {
                let cond = emit_cond(cond, vars)?;
                let mut e1 = None;
                let mut e2 = None;
                f.if_else(
                    cond,
                    |f| {
                        let mut v = vars.clone();
                        if let Err(e) = emit_nodes(then_body, f, names, procs, &mut v) {
                            e1 = Some(e);
                        }
                    },
                    |f| {
                        let mut v = vars.clone();
                        if let Err(e) = emit_nodes(else_body, f, names, procs, &mut v) {
                            e2 = Some(e);
                        }
                    },
                );
                if let Some(e) = e1.or(e2) {
                    return Err(e);
                }
            }
            Node::Critical { lock, body } => {
                let id = *names
                    .locks
                    .get(lock)
                    .ok_or_else(|| err(0, format!("unknown lock `{lock}`")))?;
                let mut inner_err = None;
                f.critical(id, |f| {
                    let mut v = vars.clone();
                    if let Err(e) = emit_nodes(body, f, names, procs, &mut v) {
                        inner_err = Some(e);
                    }
                });
                if let Some(e) = inner_err {
                    return Err(e);
                }
            }
            Node::Post { event, index } => {
                let id = *names
                    .events
                    .get(event)
                    .ok_or_else(|| err(index.line, format!("unknown event `{event}`")))?;
                let ix = emit_expr(index, vars)?;
                f.post(id, ix);
            }
            Node::Wait { event, index } => {
                let id = *names
                    .events
                    .get(event)
                    .ok_or_else(|| err(index.line, format!("unknown event `{event}`")))?;
                let ix = emit_expr(index, vars)?;
                f.wait(id, ix);
            }
            Node::Call { name } => {
                let idx = *procs.get(name).ok_or_else(|| {
                    err(
                        0,
                        format!("unknown procedure `{name}` (define callees first)"),
                    )
                })?;
                f.call(idx);
            }
        }
    }
    Ok(())
}

fn emit_ref(
    r: &RefAst,
    f: &mut BodyBuilder<'_>,
    names: &Names,
    vars: &HashMap<String, crate::expr::VarId>,
) -> Result<crate::stmt::ArrayRef, ParseError> {
    let (handle, rank) = *names
        .arrays
        .get(&r.array)
        .ok_or_else(|| err(r.line, format!("unknown array `{}`", r.array)))?;
    if r.subs.len() != rank {
        return Err(err(
            r.line,
            format!(
                "array `{}` has rank {rank}, got {} subscripts",
                r.array,
                r.subs.len()
            ),
        ));
    }
    let mut subs: Vec<Subscript> = Vec::new();
    for s in &r.subs {
        match s {
            SubAst::Opaque => subs.push(Subscript::Opaque(f.opaque())),
            SubAst::Affine(e) => subs.push(Subscript::Affine(emit_expr(e, vars)?)),
        }
    }
    Ok(handle.at(subs))
}

fn emit_cond(c: &CondAst, vars: &HashMap<String, crate::expr::VarId>) -> Result<Cond, ParseError> {
    Ok(match c {
        CondAst::Always => Cond::Always,
        CondAst::Never => Cond::Never,
        CondAst::EveryN {
            var,
            modulus,
            phase,
        } => {
            let v = *vars
                .get(var)
                .ok_or_else(|| err(0, format!("unknown loop variable `{var}` in condition")))?;
            Cond::EveryN {
                var: v,
                modulus: *modulus,
                phase: *phase,
            }
        }
        // Salt derived from the condition's parameters keeps sites stable
        // across parses of the same source.
        CondAst::Sometimes { per_1024 } => Cond::Sometimes {
            per_1024: *per_1024,
            salt: 0xC0DE ^ u64::from(*per_1024),
        },
    })
}

fn emit_expr(
    e: &ExprAst,
    vars: &HashMap<String, crate::expr::VarId>,
) -> Result<Affine, ParseError> {
    let mut out = Affine::konst(e.konst);
    for (name, coeff) in &e.terms {
        let v = *vars
            .get(name)
            .ok_or_else(|| err(e.line, format!("unknown loop variable `{name}`")))?;
        out = out + Affine::scaled_var(v, *coeff);
    }
    Ok(out)
}

// ------------------------------------------------------------ exporter ----

/// Renders a [`Program`] in the textual format, such that
/// `parse_program(&program_to_source(p))` reconstructs a semantically
/// identical program (names are canonicalized; opaque-subscript salts and
/// `sometimes` condition salts are regenerated, so programs relying on a
/// specific pseudo-random stream may trace differently).
#[must_use]
pub fn program_to_source(p: &Program) -> String {
    use crate::stmt::Stmt;
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, a) in p.arrays.iter().enumerate() {
        let kind = match a.sharing() {
            tpi_mem::Sharing::Shared => "shared",
            tpi_mem::Sharing::Private => "private",
        };
        let dims: Vec<String> = a.dims().iter().map(u64::to_string).collect();
        let _ = writeln!(out, "{kind} a{i}({})", dims.join(", "));
    }
    for l in 0..p.num_locks {
        let _ = writeln!(out, "lock l{l}");
    }
    for e in 0..p.num_events {
        let _ = writeln!(out, "event e{e}");
    }
    fn expr(a: &Affine) -> String {
        a.to_string()
    }
    fn render(stmts: &[Stmt], depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth);
        for s in stmts {
            match s {
                Stmt::Assign(a) => {
                    let reads: Vec<String> = a.reads.iter().map(ref_src).collect();
                    match &a.write {
                        Some(w) => {
                            let _ = writeln!(
                                out,
                                "{pad}{} = f[{}]({})",
                                ref_src(w),
                                a.cost,
                                reads.join(", ")
                            );
                        }
                        None if reads.is_empty() => {
                            let _ = writeln!(out, "{pad}compute[{}]", a.cost);
                        }
                        None => {
                            let _ = writeln!(out, "{pad}use f[{}]({})", a.cost, reads.join(", "));
                        }
                    }
                }
                Stmt::Loop(l) | Stmt::Doall(l) => {
                    let kw = if matches!(s, Stmt::Doall(_)) {
                        "doall"
                    } else {
                        "do"
                    };
                    let head = if l.step == 1 {
                        format!("{kw} {} = {}, {}", l.var, expr(&l.lo), expr(&l.hi))
                    } else {
                        format!(
                            "{kw} {} = {}, {}, {}",
                            l.var,
                            expr(&l.lo),
                            expr(&l.hi),
                            l.step
                        )
                    };
                    let _ = writeln!(out, "{pad}{head}");
                    render(&l.body, depth + 1, out);
                    let _ = writeln!(out, "{pad}end");
                }
                Stmt::If(i) => {
                    let cond = match i.cond {
                        Cond::Always => "always".to_owned(),
                        Cond::Never => "never".to_owned(),
                        Cond::EveryN {
                            var,
                            modulus,
                            phase,
                        } => {
                            format!("every({var}, {modulus}, {phase})")
                        }
                        Cond::Sometimes { per_1024, .. } => format!("sometimes({per_1024})"),
                    };
                    let _ = writeln!(out, "{pad}if {cond}");
                    render(&i.then_body, depth + 1, out);
                    if !i.else_body.is_empty() {
                        let _ = writeln!(out, "{pad}else");
                        render(&i.else_body, depth + 1, out);
                    }
                    let _ = writeln!(out, "{pad}end");
                }
                Stmt::Critical(c) => {
                    let _ = writeln!(out, "{pad}critical l{}", c.lock.0);
                    render(&c.body, depth + 1, out);
                    let _ = writeln!(out, "{pad}end");
                }
                Stmt::Post { event, index } => {
                    let _ = writeln!(out, "{pad}post e{}({})", event.0, expr(index));
                }
                Stmt::Wait { event, index } => {
                    let _ = writeln!(out, "{pad}wait e{}({})", event.0, expr(index));
                }
                Stmt::Call(c) => {
                    let _ = writeln!(out, "{pad}call p{}", c.0);
                }
            }
        }
    }
    fn ref_src(r: &crate::stmt::ArrayRef) -> String {
        let subs: Vec<String> = r
            .subs
            .iter()
            .map(|s| match s {
                Subscript::Affine(a) => a.to_string(),
                Subscript::Opaque(_) => "?".to_owned(),
            })
            .collect();
        format!("a{}({})", r.array.0, subs.join(", "))
    }
    for (i, proc) in p.procs.iter().enumerate() {
        let name = if i == p.entry.0 as usize {
            "main".to_owned()
        } else {
            format!("p{i}")
        };
        let _ = writeln!(out, "proc {name}");
        render(&proc.body, 1, &mut out);
        let _ = writeln!(out, "end");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::program_to_string;

    const STENCIL: &str = r"
! a tiny stencil benchmark
shared A(16, 16)
shared B(16, 16)
private W(16)

proc sweep
  doall i = 1, 14
    do j = 1, 14
      B(i, j) = f[4](A(i-1, j), A(i+1, j), A(i, j), W(j))
    end
  end
end

proc main
  doall i = 0, 15
    do j = 0, 15
      A(i, j) = f[1]()
    end
  end
  do t = 0, 3
    call sweep
    doall i = 1, 14
      do j = 1, 14
        A(i, j) = f[2](B(i, j))
      end
    end
  end
end
";

    #[test]
    fn parses_the_stencil() {
        let p = parse_program(STENCIL).expect("parses");
        assert_eq!(p.procs.len(), 2);
        assert_eq!(p.entry_proc().name, "main");
        assert_eq!(p.arrays.len(), 3);
        let printed = program_to_string(&p);
        assert!(printed.contains("doall"));
        assert!(printed.contains("call sweep"));
    }

    #[test]
    fn parsed_programs_run_through_the_analyses() {
        let p = parse_program(STENCIL).unwrap();
        let shape = crate::epochs::EpochShape::of(&p);
        assert!(shape.proc_has_epochs(crate::stmt::ProcIdx(1)));
    }

    #[test]
    fn expressions_parse_fully() {
        let src = r"
shared A(100)
proc main
  doall i = 0, 9
    do j = 0, 4
      A(2*i + j - 3 + 5) = f[1](A(i), A(?))
    end
  end
end
";
        let p = parse_program(src).expect("parses");
        assert_eq!(p.num_assigns, 1);
    }

    #[test]
    fn sync_and_critical_parse() {
        let src = r"
shared A(64)
lock l
event e
proc main
  doall i = 1, 63
    wait e(i - 1)
    critical l
      A(0) = f[1](A(0))
    end
    A(i) = f[2](A(i-1))
    post e(i)
  end
end
";
        let p = parse_program(src).expect("parses");
        assert_eq!(p.num_locks, 1);
        assert_eq!(p.num_events, 1);
    }

    #[test]
    fn conditions_parse() {
        let src = r"
shared A(8)
proc main
  doall i = 0, 7
    if every(i, 2, 0)
      A(i) = f[1]()
    else
      compute[2]
    end
    if sometimes(512)
      use f[1](A(i))
    end
  end
end
";
        let p = parse_program(src).expect("parses");
        assert_eq!(p.num_assigns, 3);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "shared A(8)\nproc main\n  A(0) === f[1]()\nend\n";
        let e = parse_program(bad).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 3"), "got: {msg}");
    }

    #[test]
    fn unknown_names_are_reported() {
        for (src, needle) in [
            ("proc main\n  A(0) = f[1]()\nend\n", "unknown array"),
            (
                "shared A(4)\nproc main\n  doall i = 0, 3\n    A(k) = f[1]()\n  end\nend\n",
                "unknown loop variable",
            ),
            (
                "shared A(4)\nproc main\n  call helper\nend\n",
                "unknown procedure",
            ),
        ] {
            let e = parse_program(src).unwrap_err().to_string();
            assert!(e.contains(needle), "`{src}` -> {e}");
        }
    }

    #[test]
    fn missing_main_is_an_error() {
        let e = parse_program("shared A(4)\nproc helper\n  compute[1]\nend\n").unwrap_err();
        assert!(e.to_string().contains("main"));
    }

    #[test]
    fn export_round_trips() {
        let p1 = parse_program(STENCIL).unwrap();
        let exported = program_to_source(&p1);
        let p2 = parse_program(&exported).unwrap_or_else(|e| panic!("{exported}\n{e}"));
        assert_eq!(p1.num_assigns, p2.num_assigns);
        assert_eq!(p1.arrays.len(), p2.arrays.len());
        assert_eq!(p1.procs.len(), p2.procs.len());
        // Exporting the re-parse is a fixed point.
        assert_eq!(exported, program_to_source(&p2));
    }

    #[test]
    fn validation_failures_surface() {
        // Nested doall: parses syntactically, rejected by the validator.
        let src = "shared A(4)\nproc main\n  doall i = 0, 3\n    doall j = 0, 3\n      compute[1]\n    end\n  end\nend\n";
        assert!(matches!(parse_program(src), Err(ParseError::Invalid(_))));
    }
}
