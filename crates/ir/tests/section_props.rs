//! Property tests for the bounded-regular-section domain: all operations
//! must be conservative over-approximations of exact element sets.

use tpi_ir::DimRange;
use tpi_testkit::prelude::*;

fn range() -> impl Strategy<Value = DimRange> {
    (-20i64..60, 0i64..40, 0i64..8).prop_map(|(lo, span, step)| DimRange::new(lo, lo + span, step))
}

/// Exact membership enumeration of a (small) range.
fn members(r: DimRange) -> Vec<i64> {
    if r.is_empty() {
        return Vec::new();
    }
    let step = r.step.max(1);
    (r.lo..=r.hi).step_by(step as usize).collect()
}

proptest! {
    #[test]
    fn count_matches_enumeration(r in range()) {
        prop_assert_eq!(r.count(), members(r).len() as u64);
    }

    #[test]
    fn contains_point_matches_enumeration(r in range(), v in -30i64..90) {
        prop_assert_eq!(r.contains_point(v), members(r).contains(&v));
    }

    #[test]
    fn may_intersect_is_conservative(a in range(), b in range()) {
        let ma = members(a);
        let mb = members(b);
        let really = ma.iter().any(|v| mb.contains(v));
        if really {
            prop_assert!(a.may_intersect(b), "{a:?} and {b:?} truly intersect");
        }
        // The converse need not hold (conservative), but disjoint windows
        // must be detected:
        if !a.is_empty() && !b.is_empty() && (a.hi < b.lo || b.hi < a.lo) {
            prop_assert!(!a.may_intersect(b));
        }
    }

    #[test]
    fn contains_implies_membership(a in range(), b in range()) {
        if a.contains(b) {
            let ma = members(a);
            for v in members(b) {
                prop_assert!(ma.contains(&v), "{a:?} claimed to contain {b:?} but misses {v}");
            }
        }
    }

    #[test]
    fn hull_contains_both(a in range(), b in range()) {
        let h = a.hull(b);
        for v in members(a).into_iter().chain(members(b)) {
            prop_assert!(h.contains_point(v), "hull {h:?} of {a:?},{b:?} misses {v}");
        }
    }

    #[test]
    fn shifted_preserves_count(r in range(), k in -10i64..10) {
        prop_assert_eq!(r.shifted(k).count(), r.count());
    }
}

mod expr_roundtrip {
    use tpi_ir::{Affine, VarId};
    use tpi_testkit::prelude::*;

    fn affine() -> impl Strategy<Value = Affine> {
        (
            prop::collection::vec((0u32..4, -9i64..10), 0..4),
            -20i64..20,
        )
            .prop_map(|(terms, k)| {
                let mut a = Affine::konst(k);
                for (v, c) in terms {
                    a = a + Affine::scaled_var(VarId(v), c);
                }
                a
            })
    }

    proptest! {
        #[test]
        fn display_parses_back_identically(a in affine()) {
            // The textual format's expression grammar must accept every
            // expression `Display` can produce, with identical meaning.
            let src = format!(
                "shared A(1000)\nproc main\n  doall i0 = 0, 3\n    do i1 = 0, 3\n      do i2 = 0, 3\n        do i3 = 0, 3\n          use f[1](A({a} + 500))\n        end\n      end\n    end\n  end\nend\n"
            );
            let prog = tpi_ir::parse_program(&src)
                .unwrap_or_else(|e| panic!("`{a}` failed to parse: {e}"));
            // Find the read back and compare evaluation on sample points.
            let mut found = None;
            prog.for_each_assign(|_, st| {
                if let Some(r) = st.reads.first() {
                    found = r.subs[0].as_affine().cloned();
                }
            });
            let parsed = found.expect("read present");
            let mut env = tpi_ir::Env::new();
            for sample in [[0i64, 1, 2, 3], [3, 1, 0, 2], [1, 1, 1, 1]] {
                for (v, val) in sample.iter().enumerate() {
                    env.bind(VarId(v as u32), *val);
                }
                prop_assert_eq!(parsed.eval(&env), a.eval(&env) + 500);
            }
        }
    }
}
