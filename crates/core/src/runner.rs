//! The experiment engine: artifact memoization and parallel grid
//! execution.
//!
//! The pipeline behind every experiment is
//!
//! ```text
//! program --mark--> marking --interpret--> trace --simulate--> SimResult
//! ```
//!
//! and only the last stage depends on the coherence scheme or the cache
//! geometry. A 4-scheme × 5-point sweep therefore needs each program
//! built once, marked once per compiler option, and interpreted once per
//! trace option — not once per grid cell. The [`Runner`] owns an
//! [`artifact cache`](RunnerStats) that enforces exactly that sharing,
//! and fans the remaining per-cell simulations across OS threads with
//! [`std::thread::scope`].
//!
//! Determinism: every pipeline stage is a pure function of its inputs,
//! cells are simulated independently, and results are returned in
//! submission order — so a parallel, memoized grid produces *bit-identical*
//! results to a serial, non-memoized loop. The equivalence tests in this
//! module and in `tests/runner_equivalence.rs` keep that invariant
//! executable.
//!
//! # Quickstart
//!
//! ```
//! use tpi::Runner;
//! use tpi_proto::{registry, SchemeId};
//! use tpi_workloads::{Kernel, Scale};
//!
//! let runner = Runner::new();
//! let grid = runner
//!     .grid()
//!     .kernels([Kernel::Flo52, Kernel::Ocean])
//!     .scale(Scale::Test)
//!     .schemes(registry::global().main_schemes())
//!     .run()?;
//! let tpi = grid.get(Kernel::Flo52, SchemeId::TPI);
//! let hw = grid.get(Kernel::Flo52, SchemeId::FULL_MAP);
//! assert!(tpi.sim.total_cycles > 0 && hw.sim.total_cycles > 0);
//! // 8 cells, but each kernel was built, marked, and interpreted once.
//! assert_eq!(runner.stats().traces_built, 2);
//! # Ok::<(), tpi_trace::TraceError>(())
//! ```

use crate::config::ExperimentConfig;
use crate::experiment::ExperimentResult;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use tpi_compiler::{mark_program, CompilerOptions, Marking};
use tpi_ir::Program;
use tpi_proto::{build_engine, SchemeId};
use tpi_sim::{run_trace, run_trace_sharded, verify_accounting, ShardOptions};
use tpi_trace::{generate_trace, Trace, TraceError, TraceOptions};
use tpi_workloads::{Kernel, Scale};

/// Where a cell's program comes from.
#[derive(Debug, Clone)]
pub enum ProgramSource {
    /// A benchmark kernel at a given scale, built on demand.
    Kernel(Kernel, Scale),
    /// A caller-supplied program. The name is the cache identity: reusing
    /// a name for a *different* program in one runner is a caller bug.
    Custom {
        /// Cache key for this program.
        name: Arc<str>,
        /// The program itself.
        program: Arc<Program>,
    },
}

impl ProgramSource {
    fn key(&self) -> ProgramKey {
        match self {
            ProgramSource::Kernel(k, s) => ProgramKey::Kernel(*k, *s),
            ProgramSource::Custom { name, .. } => ProgramKey::Custom(Arc::clone(name)),
        }
    }

    /// Human-readable label (kernel name or the custom name).
    #[must_use]
    pub fn label(&self) -> &str {
        match self {
            ProgramSource::Kernel(k, _) => k.name(),
            ProgramSource::Custom { name, .. } => name,
        }
    }
}

/// Cache identity of a program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ProgramKey {
    Kernel(Kernel, Scale),
    Custom(Arc<str>),
}

/// One grid cell: a program plus the full configuration to run it under.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The program to run.
    pub source: ProgramSource,
    /// Every knob of the run.
    pub config: ExperimentConfig,
}

/// The scheme-independent artifacts of one cell, as produced by
/// [`Runner::prepare`]: everything the pipeline computes before a
/// coherence engine gets involved.
#[derive(Debug, Clone)]
pub struct PreparedCell {
    /// The cell these artifacts belong to.
    pub spec: RunSpec,
    /// Built (or cache-shared) program.
    pub program: Arc<Program>,
    /// The compiler's marking under the cell's options.
    pub marking: Arc<Marking>,
    /// The interpreted trace under the cell's options.
    pub trace: Arc<Trace>,
}

type MarkingKey = (ProgramKey, CompilerOptions);
type TraceKey = (ProgramKey, CompilerOptions, TraceOptions);

#[derive(Default)]
struct ArtifactStore {
    programs: HashMap<ProgramKey, Arc<Program>>,
    markings: HashMap<MarkingKey, Arc<Marking>>,
    traces: HashMap<TraceKey, Arc<Trace>>,
}

/// Counters describing how much work the cache avoided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunnerStats {
    /// Programs built (cache misses).
    pub programs_built: u64,
    /// Program cache hits.
    pub program_hits: u64,
    /// Marking passes run (cache misses).
    pub markings_built: u64,
    /// Marking cache hits.
    pub marking_hits: u64,
    /// Traces interpreted (cache misses).
    pub traces_built: u64,
    /// Trace cache hits.
    pub trace_hits: u64,
    /// Cells actually simulated.
    pub cells_simulated: u64,
    /// Cells answered by copying an identical sibling cell's result.
    pub cells_deduped: u64,
}

/// Hit/miss counters of one memo-store stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCache {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that had to compute (and then stored) their artifact.
    pub misses: u64,
}

impl StageCache {
    /// Fraction of lookups answered from the store (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.hits as f64 / total as f64
            }
        }
    }
}

/// The [`Runner`]'s memo-store counters, stage by stage, as hit/miss
/// pairs — the shape an observability layer wants (the `tpi-serve`
/// `/metrics` endpoint and `repro --timing` both report these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Program builds.
    pub programs: StageCache,
    /// Marking passes.
    pub markings: StageCache,
    /// Trace interpretations.
    pub traces: StageCache,
    /// Simulated cells (hits are within-grid deduplications).
    pub cells: StageCache,
}

impl CacheStats {
    /// All stages summed.
    #[must_use]
    pub fn total(&self) -> StageCache {
        StageCache {
            hits: self.programs.hits + self.markings.hits + self.traces.hits + self.cells.hits,
            misses: self.programs.misses
                + self.markings.misses
                + self.traces.misses
                + self.cells.misses,
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stage = |s: &StageCache| format!("{}/{} hits", s.hits, s.hits + s.misses);
        write!(
            f,
            "programs {} ({:.0}%), markings {} ({:.0}%), traces {} ({:.0}%), cells {} ({:.0}%)",
            stage(&self.programs),
            100.0 * self.programs.hit_rate(),
            stage(&self.markings),
            100.0 * self.markings.hit_rate(),
            stage(&self.traces),
            100.0 * self.traces.hit_rate(),
            stage(&self.cells),
            100.0 * self.cells.hit_rate(),
        )
    }
}

impl RunnerStats {
    /// The counters regrouped as per-stage hit/miss pairs.
    #[must_use]
    pub fn cache(&self) -> CacheStats {
        CacheStats {
            programs: StageCache {
                hits: self.program_hits,
                misses: self.programs_built,
            },
            markings: StageCache {
                hits: self.marking_hits,
                misses: self.markings_built,
            },
            traces: StageCache {
                hits: self.trace_hits,
                misses: self.traces_built,
            },
            cells: StageCache {
                hits: self.cells_deduped,
                misses: self.cells_simulated,
            },
        }
    }
}

#[derive(Default)]
struct StatCells {
    programs_built: AtomicU64,
    program_hits: AtomicU64,
    markings_built: AtomicU64,
    marking_hits: AtomicU64,
    traces_built: AtomicU64,
    trace_hits: AtomicU64,
    cells_simulated: AtomicU64,
    cells_deduped: AtomicU64,
}

/// The experiment engine: a memoizing artifact cache plus a parallel,
/// deterministic grid executor. See the [module docs](self).
pub struct Runner {
    threads: usize,
    memoize: bool,
    /// Engine shards per simulated cell (see [`Runner::with_sim_shards`]).
    /// Purely an execution knob: results are bit-identical for any value.
    sim_shards: usize,
    store: Mutex<ArtifactStore>,
    stats: StatCells,
    prof: crate::prof::Profiler,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new()
    }
}

impl Runner {
    /// A runner using every available core (or `TPI_THREADS` if set).
    #[must_use]
    pub fn new() -> Self {
        let threads = std::env::var("TPI_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        Runner::with_threads(threads)
    }

    /// A single-threaded runner (still memoizing).
    #[must_use]
    pub fn serial() -> Self {
        Runner::with_threads(1)
    }

    /// A runner with an explicit worker count (`0` is clamped to 1).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        let sim_shards = std::env::var("TPI_SIM_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1);
        Runner {
            threads: threads.max(1),
            memoize: true,
            sim_shards,
            store: Mutex::new(ArtifactStore::default()),
            stats: StatCells::default(),
            prof: crate::prof::Profiler::new(),
        }
    }

    /// Replays each simulated cell on `shards` engine shards
    /// ([`tpi_sim::run_trace_sharded`]); `0` and `1` both mean the serial
    /// replay loop. `TPI_SIM_SHARDS` sets the default for runners built
    /// by the other constructors.
    ///
    /// This is an execution knob, not an experiment axis: the sharded
    /// replay is bit-identical to the serial one (schemes whose protocol
    /// state is interleaving-order-sensitive fall back to serial
    /// internally), so it does not participate in cell keys, memoization,
    /// or reproducibility stamps.
    #[must_use]
    pub fn with_sim_shards(mut self, shards: usize) -> Self {
        self.sim_shards = shards.max(1);
        self
    }

    /// The configured per-cell shard count.
    #[must_use]
    pub fn sim_shards(&self) -> usize {
        self.sim_shards
    }

    /// Disables the artifact cache: every cell rebuilds, re-marks, and
    /// re-interprets its own pipeline, and identical cells are not
    /// deduplicated — the pre-engine behaviour. Results are bit-identical
    /// to the memoized path; this exists as a timing baseline
    /// (`repro --fresh`) and for the equivalence tests.
    #[must_use]
    pub fn without_memoization(mut self) -> Self {
        self.memoize = false;
        self
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A snapshot of the memo-store counters as per-stage hit/miss
    /// pairs. Equivalent to `self.stats().cache()`.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.stats().cache()
    }

    /// A deterministic snapshot of the `tpi-prof` stage profiler: wall
    /// time per pipeline stage (`prepare/build`, `prepare/mark`,
    /// `prepare/interp`, `simulate`, …, plus the self-measured sub-stages
    /// the lower layers report, e.g. `simulate/replay`) and monotonic
    /// counters (`sim_events`, engine op counts).
    ///
    /// `RunnerStats` stays a `Copy` counter block; the profile lives here
    /// because a report carries heap-allocated stage paths.
    #[must_use]
    pub fn profile(&self) -> crate::prof::ProfileReport {
        self.prof.report()
    }

    /// Attributes one simulated cell's self-measured host profile to the
    /// report's stable stage paths and counters.
    fn harvest_sim(&self, sim: &tpi_sim::SimResult) {
        self.prof.add("simulate/replay", sim.host.replay_nanos, 1);
        self.prof
            .add("simulate/boundary", sim.host.boundary_nanos, 1);
        self.prof.incr("sim_events", sim.host.events);
        self.prof.incr("sim_epochs", sim.epochs);
        for (name, n) in &sim.host.ops {
            self.prof.incr(name, *n);
        }
    }

    /// Attributes one freshly interpreted trace's self-measured host
    /// profile to the report.
    fn harvest_trace(&self, trace: &Trace) {
        self.prof
            .add("prepare/interp/serial", trace.host.serial_nanos, 1);
        self.prof
            .add("prepare/interp/doall", trace.host.doall_nanos, 1);
        self.prof.incr("interp_epochs", trace.stats.epochs);
    }

    /// A snapshot of the cache counters.
    #[must_use]
    pub fn stats(&self) -> RunnerStats {
        RunnerStats {
            programs_built: self.stats.programs_built.load(Ordering::Relaxed),
            program_hits: self.stats.program_hits.load(Ordering::Relaxed),
            markings_built: self.stats.markings_built.load(Ordering::Relaxed),
            marking_hits: self.stats.marking_hits.load(Ordering::Relaxed),
            traces_built: self.stats.traces_built.load(Ordering::Relaxed),
            trace_hits: self.stats.trace_hits.load(Ordering::Relaxed),
            cells_simulated: self.stats.cells_simulated.load(Ordering::Relaxed),
            cells_deduped: self.stats.cells_deduped.load(Ordering::Relaxed),
        }
    }

    /// Starts an empty cross-product grid over this runner's cache.
    #[must_use]
    pub fn grid(&self) -> GridBuilder<'_> {
        GridBuilder {
            runner: self,
            scale: Scale::Test,
            base: ExperimentConfig::paper(),
            kernels: Vec::new(),
            programs: Vec::new(),
            schemes: Vec::new(),
            variants: Vec::new(),
        }
    }

    /// Starts an empty free-form cell list (for ragged grids the
    /// cross-product [`GridBuilder`] cannot express).
    #[must_use]
    pub fn cells(&self) -> CellGrid<'_> {
        CellGrid {
            runner: self,
            cells: Vec::new(),
        }
    }

    /// Runs one kernel, reusing cached artifacts.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if the program races under the configured
    /// schedule.
    pub fn run_kernel(
        &self,
        kernel: Kernel,
        scale: Scale,
        config: &ExperimentConfig,
    ) -> Result<ExperimentResult, TraceError> {
        let mut grid = self.cells();
        let cell = grid.add(kernel, scale, *config);
        Ok(grid.run()?.take(cell))
    }

    /// Runs a caller-supplied program, reusing cached artifacts. `name`
    /// is the cache identity (see [`ProgramSource::Custom`]).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if the program races under the configured
    /// schedule.
    pub fn run_program(
        &self,
        name: &str,
        program: impl Into<Arc<Program>>,
        config: &ExperimentConfig,
    ) -> Result<ExperimentResult, TraceError> {
        let mut grid = self.cells();
        let cell = grid.add_program(name, program, *config);
        Ok(grid.run()?.take(cell))
    }

    /// Locks the artifact store, tolerating poisoning: every insert is
    /// complete-on-write, so a panicking worker thread cannot leave a
    /// half-written entry behind.
    fn store(&self) -> std::sync::MutexGuard<'_, ArtifactStore> {
        crate::sync::lock_unpoisoned(&self.store)
    }

    /// Panic-safe variant of [`run_kernel`](Self::run_kernel): a panic
    /// anywhere in the build → mark → interpret → simulate pipeline is
    /// contained and reported as the outer `Err(message)` instead of
    /// unwinding through the caller's thread. The runner stays usable
    /// afterwards — its store locks tolerate poisoning and every cache
    /// insert is complete-on-write, so nothing the panicking cell touched
    /// is observable half-written.
    ///
    /// Long-lived callers that feed one `Runner` from many worker threads
    /// (the `tpi-serve` pool) use this entry so one pathological cell
    /// cannot take the engine down.
    ///
    /// # Errors
    ///
    /// The outer error is a panic message; the inner error is an ordinary
    /// [`TraceError`] from a non-panicking run.
    pub fn run_kernel_safe(
        &self,
        kernel: Kernel,
        scale: Scale,
        config: &ExperimentConfig,
    ) -> Result<Result<ExperimentResult, TraceError>, String> {
        crate::sync::catch_cell_panic(|| self.run_kernel(kernel, scale, config))
    }

    /// Runs the scheme-independent front of the pipeline — build, mark,
    /// interpret — for every cell, exactly as a simulation grid would
    /// (memoized, parallel, deterministic), but stops before simulation
    /// and hands back the per-cell artifacts.
    ///
    /// This is the entry point for the analysis layer's staleness-oracle
    /// replays: an oracle pass over a kernel×config cell reuses the same
    /// cached trace that a simulation of that cell uses, so linting after
    /// (or before) an experiment run never re-interprets a program.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] in submission order if any cell's
    /// program races under its schedule.
    pub fn prepare(&self, cells: &[RunSpec]) -> Result<Vec<PreparedCell>, TraceError> {
        if !self.memoize {
            let prepare_scope = self.prof.scope("prepare");
            let prepared = parallel_map(self.threads, cells, |cell| {
                let program = match &cell.source {
                    ProgramSource::Kernel(k, s) => Arc::new(k.build(*s)),
                    ProgramSource::Custom { program, .. } => Arc::clone(program),
                };
                let marking = Arc::new(mark_program(
                    program.as_ref(),
                    &cell.config.compiler_options(),
                ));
                let trace = generate_trace(
                    program.as_ref(),
                    marking.as_ref(),
                    &cell.config.trace_options(),
                )
                .map(Arc::new)?;
                self.harvest_trace(&trace);
                Ok(PreparedCell {
                    spec: cell.clone(),
                    program,
                    marking,
                    trace,
                })
            });
            prepare_scope.finish();
            let n = cells.len() as u64;
            self.stats.programs_built.fetch_add(n, Ordering::Relaxed);
            self.stats.markings_built.fetch_add(n, Ordering::Relaxed);
            self.stats.traces_built.fetch_add(n, Ordering::Relaxed);
            return prepared.into_iter().collect();
        }
        self.build_artifacts(cells)?;
        let store = self.store();
        Ok(cells
            .iter()
            .map(|cell| {
                let pkey = cell.source.key();
                let copts = cell.config.compiler_options();
                let program = Arc::clone(&store.programs[&pkey]);
                let marking = Arc::clone(&store.markings[&(pkey.clone(), copts)]);
                let trace = Arc::clone(&store.traces[&(pkey, copts, cell.config.trace_options())]);
                PreparedCell {
                    spec: cell.clone(),
                    program,
                    marking,
                    trace,
                }
            })
            .collect())
    }

    /// Phases 1–3 of [`execute`](Self::execute): fills the artifact store
    /// with every program, marking, and trace `cells` needs.
    fn build_artifacts(&self, cells: &[RunSpec]) -> Result<(), TraceError> {
        let _prepare_scope = self.prof.scope("prepare");
        // Phase 1 — programs. Unique keys in first-appearance order keep
        // the whole pipeline deterministic.
        let mut program_jobs: Vec<(ProgramKey, Option<Arc<Program>>)> = Vec::new();
        {
            let store = self.store();
            for cell in cells {
                let key = cell.source.key();
                if store.programs.contains_key(&key) || program_jobs.iter().any(|(k, _)| *k == key)
                {
                    self.stats.program_hits.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let prebuilt = match &cell.source {
                    ProgramSource::Kernel(..) => None,
                    ProgramSource::Custom { program, .. } => Some(Arc::clone(program)),
                };
                program_jobs.push((key, prebuilt));
            }
        }
        self.stats
            .programs_built
            .fetch_add(program_jobs.len() as u64, Ordering::Relaxed);
        let built = {
            let _s = self.prof.scope("build");
            parallel_map(self.threads, &program_jobs, |(key, prebuilt)| {
                match (key, prebuilt) {
                    (_, Some(p)) => Arc::clone(p),
                    (ProgramKey::Kernel(k, s), None) => Arc::new(k.build(*s)),
                    (ProgramKey::Custom(name), None) => {
                        unreachable!("custom program {name} submitted without a body")
                    }
                }
            })
        };
        {
            let mut store = self.store();
            for ((key, _), program) in program_jobs.into_iter().zip(built) {
                store.programs.insert(key, program);
            }
        }

        // Phase 2 — markings (scheme-independent).
        let mut marking_jobs: Vec<(MarkingKey, Arc<Program>)> = Vec::new();
        {
            let store = self.store();
            for cell in cells {
                let key = (cell.source.key(), cell.config.compiler_options());
                if store.markings.contains_key(&key) || marking_jobs.iter().any(|(k, _)| *k == key)
                {
                    self.stats.marking_hits.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let program = Arc::clone(&store.programs[&key.0]);
                marking_jobs.push((key, program));
            }
        }
        self.stats
            .markings_built
            .fetch_add(marking_jobs.len() as u64, Ordering::Relaxed);
        let marked = {
            let _s = self.prof.scope("mark");
            parallel_map(self.threads, &marking_jobs, |(key, program)| {
                Arc::new(mark_program(program.as_ref(), &key.1))
            })
        };
        {
            let mut store = self.store();
            for ((key, _), marking) in marking_jobs.into_iter().zip(marked) {
                store.markings.insert(key, marking);
            }
        }

        // Phase 3 — traces (scheme- and cache-geometry-independent).
        let mut trace_jobs: Vec<(TraceKey, Arc<Program>, Arc<Marking>)> = Vec::new();
        {
            let store = self.store();
            for cell in cells {
                let key = (
                    cell.source.key(),
                    cell.config.compiler_options(),
                    cell.config.trace_options(),
                );
                if store.traces.contains_key(&key) || trace_jobs.iter().any(|(k, ..)| *k == key) {
                    self.stats.trace_hits.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let program = Arc::clone(&store.programs[&key.0]);
                let marking = Arc::clone(&store.markings[&(key.0.clone(), key.1)]);
                trace_jobs.push((key, program, marking));
            }
        }
        self.stats
            .traces_built
            .fetch_add(trace_jobs.len() as u64, Ordering::Relaxed);
        let traced = {
            let _s = self.prof.scope("interp");
            parallel_map(self.threads, &trace_jobs, |(key, program, marking)| {
                generate_trace(program.as_ref(), marking.as_ref(), &key.2).map(Arc::new)
            })
        };
        for trace in traced.iter().filter_map(|t| t.as_ref().ok()) {
            self.harvest_trace(trace);
        }
        {
            let mut store = self.store();
            for ((key, ..), trace) in trace_jobs.into_iter().zip(traced) {
                store.traces.insert(key, trace?);
            }
        }
        Ok(())
    }

    /// Executes `cells`, returning results in submission order.
    fn execute(&self, cells: &[RunSpec]) -> Result<Vec<ExperimentResult>, TraceError> {
        if !self.memoize {
            return self.execute_fresh(cells);
        }
        self.build_artifacts(cells)?;

        // Phase 4 — simulate. Identical cells are computed once and
        // copied; distinct cells fan out across the worker threads.
        let mut unique: Vec<(&RunSpec, Arc<Trace>, Arc<Marking>)> = Vec::new();
        let mut cell_to_unique: Vec<usize> = Vec::with_capacity(cells.len());
        {
            let store = self.store();
            for cell in cells {
                let same = unique.iter().position(|(u, ..)| {
                    u.config == cell.config && u.source.key() == cell.source.key()
                });
                if let Some(i) = same {
                    self.stats.cells_deduped.fetch_add(1, Ordering::Relaxed);
                    cell_to_unique.push(i);
                    continue;
                }
                let pkey = cell.source.key();
                let copts = cell.config.compiler_options();
                let marking = Arc::clone(&store.markings[&(pkey.clone(), copts)]);
                let trace = Arc::clone(&store.traces[&(pkey, copts, cell.config.trace_options())]);
                cell_to_unique.push(unique.len());
                unique.push((cell, trace, marking));
            }
        }
        self.stats
            .cells_simulated
            .fetch_add(unique.len() as u64, Ordering::Relaxed);
        let simulated = {
            let _s = self.prof.scope("simulate");
            parallel_map(self.threads, &unique, |(cell, trace, marking)| {
                simulate_cell(
                    &cell.config,
                    trace.as_ref(),
                    marking.as_ref(),
                    self.sim_shards,
                )
            })
        };
        for r in &simulated {
            self.harvest_sim(&r.sim);
        }
        Ok(cell_to_unique
            .into_iter()
            .map(|i| simulated[i].clone())
            .collect())
    }

    /// The no-cache path: each cell runs its full pipeline independently
    /// (still fanned across the worker threads).
    fn execute_fresh(&self, cells: &[RunSpec]) -> Result<Vec<ExperimentResult>, TraceError> {
        let fresh_scope = self.prof.scope("fresh");
        let results = parallel_map(self.threads, cells, |cell| {
            let program = match &cell.source {
                ProgramSource::Kernel(k, s) => Arc::new(k.build(*s)),
                ProgramSource::Custom { program, .. } => Arc::clone(program),
            };
            let marking = mark_program(program.as_ref(), &cell.config.compiler_options());
            let trace = generate_trace(program.as_ref(), &marking, &cell.config.trace_options())?;
            self.harvest_trace(&trace);
            Ok(simulate_cell(
                &cell.config,
                &trace,
                &marking,
                self.sim_shards,
            ))
        });
        fresh_scope.finish();
        for r in results.iter().filter_map(|r| r.as_ref().ok()) {
            self.harvest_sim(&r.sim);
        }
        self.stats
            .programs_built
            .fetch_add(cells.len() as u64, Ordering::Relaxed);
        self.stats
            .markings_built
            .fetch_add(cells.len() as u64, Ordering::Relaxed);
        self.stats
            .traces_built
            .fetch_add(cells.len() as u64, Ordering::Relaxed);
        self.stats
            .cells_simulated
            .fetch_add(cells.len() as u64, Ordering::Relaxed);
        // First error in submission order, as in the memoized path.
        results.into_iter().collect()
    }
}

/// The scheme-dependent tail of the pipeline; bit-identical to what
/// [`crate::run_program`] does after trace generation.
fn simulate_cell(
    config: &ExperimentConfig,
    trace: &Trace,
    marking: &Marking,
    shards: usize,
) -> ExperimentResult {
    let sim = if shards > 1 {
        let shard_opts = ShardOptions {
            shards,
            ..ShardOptions::default()
        };
        run_trace_sharded(
            trace,
            config.scheme,
            &config.engine_config(trace.layout.total_words()),
            &config.sim_options(),
            &shard_opts,
        )
    } else {
        let mut engine = build_engine(
            config.scheme,
            config.engine_config(trace.layout.total_words()),
        );
        run_trace(trace, engine.as_mut(), &config.sim_options())
    };
    verify_accounting(&sim).expect("engine accounting identity");
    ExperimentResult {
        sim,
        marking: marking.summary(),
        trace: trace.stats,
    }
}

/// Runs `f` over `items` on up to `threads` workers; results keep item
/// order. Falls back to a plain loop when one worker suffices.
fn parallel_map<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(
    threads: usize,
    items: &[T],
    f: F,
) -> Vec<R> {
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                *crate::sync::lock_unpoisoned(&slots[i]) = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| crate::sync::into_inner_unpoisoned(m).expect("worker filled every claimed slot"))
        .collect()
}

/// Handle to one submitted cell of a [`CellGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellId(usize);

/// A free-form list of grid cells (ragged sweeps, mixed kernels and
/// custom programs). Submission order is result order.
pub struct CellGrid<'r> {
    runner: &'r Runner,
    cells: Vec<RunSpec>,
}

impl CellGrid<'_> {
    /// Queues a kernel run; the returned id indexes the outcome.
    pub fn add(&mut self, kernel: Kernel, scale: Scale, config: ExperimentConfig) -> CellId {
        self.cells.push(RunSpec {
            source: ProgramSource::Kernel(kernel, scale),
            config,
        });
        CellId(self.cells.len() - 1)
    }

    /// Queues a custom-program run; `name` is the cache identity.
    pub fn add_program(
        &mut self,
        name: &str,
        program: impl Into<Arc<Program>>,
        config: ExperimentConfig,
    ) -> CellId {
        self.cells.push(RunSpec {
            source: ProgramSource::Custom {
                name: Arc::from(name),
                program: program.into(),
            },
            config,
        });
        CellId(self.cells.len() - 1)
    }

    /// Number of queued cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cell is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Executes every queued cell (memoized, parallel, deterministic).
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] in submission order if any cell's
    /// program races under its schedule.
    pub fn run(self) -> Result<GridOutcome, TraceError> {
        let results = self.runner.execute(&self.cells)?;
        Ok(GridOutcome { results })
    }
}

/// Results of a [`CellGrid`] run, indexed by [`CellId`].
#[derive(Debug, Clone)]
pub struct GridOutcome {
    results: Vec<ExperimentResult>,
}

impl GridOutcome {
    /// The result of one cell.
    #[must_use]
    pub fn get(&self, id: CellId) -> &ExperimentResult {
        &self.results[id.0]
    }

    /// Moves one cell's result out (clones if other handles remain).
    #[must_use]
    pub fn take(&self, id: CellId) -> ExperimentResult {
        self.results[id.0].clone()
    }
}

impl std::ops::Index<CellId> for GridOutcome {
    type Output = ExperimentResult;

    fn index(&self, id: CellId) -> &ExperimentResult {
        &self.results[id.0]
    }
}

type VariantFn = Rc<dyn Fn(&mut ExperimentConfig)>;

/// Fluent cross-product grid: kernels × schemes × swept variants, all on
/// one base configuration.
///
/// Cell order (and so result order) is kernels-major, then programs,
/// then schemes, then variants — matching the row order of the paper's
/// tables.
pub struct GridBuilder<'r> {
    runner: &'r Runner,
    scale: Scale,
    base: ExperimentConfig,
    kernels: Vec<Kernel>,
    programs: Vec<(Arc<str>, Arc<Program>)>,
    schemes: Vec<SchemeId>,
    variants: Vec<VariantFn>,
}

impl<'r> GridBuilder<'r> {
    /// Adds kernels (run at the builder's [`scale`](Self::scale)).
    #[must_use]
    pub fn kernels(mut self, kernels: impl IntoIterator<Item = Kernel>) -> Self {
        self.kernels.extend(kernels);
        self
    }

    /// Adds one kernel.
    #[must_use]
    pub fn kernel(self, kernel: Kernel) -> Self {
        self.kernels([kernel])
    }

    /// Adds a custom program (crossed with schemes and variants like a
    /// kernel); `name` is the cache identity.
    #[must_use]
    pub fn program(mut self, name: &str, program: impl Into<Arc<Program>>) -> Self {
        self.programs.push((Arc::from(name), program.into()));
        self
    }

    /// Sets the scale kernels are built at (default [`Scale::Test`]).
    #[must_use]
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the base configuration (default [`ExperimentConfig::paper`]).
    #[must_use]
    pub fn base(mut self, config: ExperimentConfig) -> Self {
        self.base = config;
        self
    }

    /// Adds schemes to cross with every kernel and variant — anything
    /// convertible into registry [`SchemeId`]s (e.g.
    /// `registry::global().main_schemes()`). Without any, the base
    /// configuration's scheme runs alone.
    #[must_use]
    pub fn schemes<S: Into<SchemeId>>(mut self, schemes: impl IntoIterator<Item = S>) -> Self {
        self.schemes.extend(schemes.into_iter().map(Into::into));
        self
    }

    /// Adds one scheme.
    #[must_use]
    pub fn scheme(self, scheme: impl Into<SchemeId>) -> Self {
        self.schemes([scheme.into()])
    }

    /// Sweeps a parameter: one variant per value, applied via `apply`.
    /// Multiple sweeps compose as a cross product in call order.
    #[must_use]
    pub fn sweep<V: 'static>(
        mut self,
        values: impl IntoIterator<Item = V>,
        apply: impl Fn(&mut ExperimentConfig, &V) + 'static,
    ) -> Self {
        let apply = Rc::new(apply);
        let news: Vec<VariantFn> = values
            .into_iter()
            .map(|v| {
                let apply = Rc::clone(&apply);
                Rc::new(move |cfg: &mut ExperimentConfig| apply(cfg, &v)) as VariantFn
            })
            .collect();
        if self.variants.is_empty() {
            self.variants = news;
        } else {
            self.variants = self
                .variants
                .iter()
                .flat_map(|old| {
                    news.iter().map(move |new| {
                        let (old, new) = (Rc::clone(old), Rc::clone(new));
                        Rc::new(move |cfg: &mut ExperimentConfig| {
                            old(cfg);
                            new(cfg);
                        }) as VariantFn
                    })
                })
                .collect();
        }
        self
    }

    /// Executes the cross product (memoized, parallel, deterministic).
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] in cell order if any program
    /// races under its schedule.
    pub fn run(self) -> Result<GridResult, TraceError> {
        let schemes = if self.schemes.is_empty() {
            vec![self.base.scheme]
        } else {
            self.schemes.clone()
        };
        let n_variants = self.variants.len().max(1);
        let mut grid = self.runner.cells();
        let mut sources: Vec<ProgramSource> = self
            .kernels
            .iter()
            .map(|&k| ProgramSource::Kernel(k, self.scale))
            .collect();
        sources.extend(
            self.programs
                .iter()
                .map(|(name, program)| ProgramSource::Custom {
                    name: Arc::clone(name),
                    program: Arc::clone(program),
                }),
        );
        for source in &sources {
            for &scheme in &schemes {
                for vi in 0..n_variants {
                    let mut config = self.base;
                    config.scheme = scheme;
                    if let Some(variant) = self.variants.get(vi) {
                        variant(&mut config);
                    }
                    grid.cells.push(RunSpec {
                        source: source.clone(),
                        config,
                    });
                }
            }
        }
        let outcome = grid.run()?;
        Ok(GridResult {
            outcome,
            sources,
            schemes,
            n_variants,
        })
    }
}

/// Results of a [`GridBuilder`] run, addressable by kernel, scheme, and
/// sweep position.
pub struct GridResult {
    outcome: GridOutcome,
    sources: Vec<ProgramSource>,
    schemes: Vec<SchemeId>,
    n_variants: usize,
}

impl GridResult {
    /// The result for `(kernel, scheme)` at sweep position `variant`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates were not part of the grid.
    #[must_use]
    pub fn at(
        &self,
        kernel: Kernel,
        scheme: impl Into<SchemeId>,
        variant: usize,
    ) -> &ExperimentResult {
        let scheme = scheme.into();
        let si = self
            .schemes
            .iter()
            .position(|&s| s == scheme)
            .unwrap_or_else(|| panic!("scheme {scheme:?} not in grid"));
        let ki = self
            .sources
            .iter()
            .position(|s| matches!(s, ProgramSource::Kernel(k, _) if *k == kernel))
            .unwrap_or_else(|| panic!("kernel {kernel:?} not in grid"));
        assert!(variant < self.n_variants, "variant {variant} out of range");
        &self.outcome.results[(ki * self.schemes.len() + si) * self.n_variants + variant]
    }

    /// The result for `(kernel, scheme)` (single-variant grids).
    #[must_use]
    pub fn get(&self, kernel: Kernel, scheme: impl Into<SchemeId>) -> &ExperimentResult {
        self.at(kernel, scheme, 0)
    }

    /// The result for a named custom program under `scheme` at sweep
    /// position `variant`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates were not part of the grid.
    #[must_use]
    pub fn at_program(
        &self,
        name: &str,
        scheme: impl Into<SchemeId>,
        variant: usize,
    ) -> &ExperimentResult {
        let scheme = scheme.into();
        let si = self
            .schemes
            .iter()
            .position(|&s| s == scheme)
            .unwrap_or_else(|| panic!("scheme {scheme:?} not in grid"));
        let ki = self
            .sources
            .iter()
            .position(|s| matches!(s, ProgramSource::Custom { name: n, .. } if **n == *name))
            .unwrap_or_else(|| panic!("program {name:?} not in grid"));
        assert!(variant < self.n_variants, "variant {variant} out of range");
        &self.outcome.results[(ki * self.schemes.len() + si) * self.n_variants + variant]
    }

    /// Number of sweep positions.
    #[must_use]
    pub fn variants(&self) -> usize {
        self.n_variants
    }

    /// Every result, in cell order.
    pub fn iter(&self) -> impl Iterator<Item = &ExperimentResult> {
        self.outcome.results.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_kernel;
    use tpi_proto::{registry, SchemeId};

    #[test]
    fn memoized_equals_fresh() {
        let cfg = ExperimentConfig::paper();
        let fresh = run_kernel(Kernel::Flo52, Scale::Test, &cfg).unwrap();
        let runner = Runner::serial();
        let a = runner.run_kernel(Kernel::Flo52, Scale::Test, &cfg).unwrap();
        let b = runner.run_kernel(Kernel::Flo52, Scale::Test, &cfg).unwrap();
        for r in [&a, &b] {
            assert_eq!(r.sim.total_cycles, fresh.sim.total_cycles);
            assert_eq!(r.sim.agg, fresh.sim.agg);
            assert_eq!(r.trace, fresh.trace);
            assert_eq!(r.marking, fresh.marking);
        }
        let stats = runner.stats();
        assert_eq!(stats.programs_built, 1);
        assert_eq!(stats.traces_built, 1);
        assert_eq!(stats.trace_hits, 1);
    }

    #[test]
    fn schemes_share_one_trace() {
        let runner = Runner::new();
        let grid = runner
            .grid()
            .kernel(Kernel::Ocean)
            .scale(Scale::Test)
            .schemes(registry::global().main_schemes())
            .run()
            .unwrap();
        let stats = runner.stats();
        assert_eq!(stats.traces_built, 1);
        assert_eq!(stats.trace_hits, 3);
        assert_eq!(stats.cells_simulated, 4);
        // And every scheme really ran.
        for scheme in registry::global().main_schemes() {
            assert_eq!(grid.get(Kernel::Ocean, scheme).sim.scheme, scheme.label());
        }
    }

    #[test]
    fn registry_schemes_run_through_the_grid() {
        let runner = Runner::new();
        let grid = runner
            .grid()
            .kernel(Kernel::Ocean)
            .scale(Scale::Test)
            .schemes([SchemeId::TARDIS, SchemeId::HYBRID])
            .run()
            .unwrap();
        let tardis = grid.get(Kernel::Ocean, SchemeId::TARDIS);
        let hybrid = grid.get(Kernel::Ocean, SchemeId::HYBRID);
        assert_eq!(tardis.sim.scheme, "TARDIS");
        assert_eq!(hybrid.sim.scheme, "HYB");
        assert!(tardis.sim.total_cycles > 0 && hybrid.sim.total_cycles > 0);
        // Both rode the same cached trace as any other scheme would.
        assert_eq!(runner.stats().traces_built, 1);
    }

    #[test]
    fn changed_compiler_or_trace_option_invalidates_reuse() {
        let runner = Runner::serial();
        let base = ExperimentConfig::paper();
        runner.run_kernel(Kernel::Trfd, Scale::Test, &base).unwrap();

        // Scheme-only change: trace reused.
        let mut scheme_only = base;
        scheme_only.scheme = SchemeId::SC;
        runner
            .run_kernel(Kernel::Trfd, Scale::Test, &scheme_only)
            .unwrap();
        assert_eq!(runner.stats().traces_built, 1);

        // Compiler option change: new marking, new trace.
        let mut weaker = base;
        weaker.opt_level = tpi_compiler::OptLevel::Naive;
        runner
            .run_kernel(Kernel::Trfd, Scale::Test, &weaker)
            .unwrap();
        let stats = runner.stats();
        assert_eq!(stats.markings_built, 2);
        assert_eq!(stats.traces_built, 2);

        // Trace option change (seed feeds dynamic scheduling): new trace,
        // same marking.
        let mut reseeded = base;
        reseeded.seed ^= 1;
        runner
            .run_kernel(Kernel::Trfd, Scale::Test, &reseeded)
            .unwrap();
        let stats = runner.stats();
        assert_eq!(stats.markings_built, 2);
        assert_eq!(stats.traces_built, 3);
        // The program itself was only ever built once.
        assert_eq!(stats.programs_built, 1);
    }

    #[test]
    fn cache_stats_regroup_the_counters() {
        let runner = Runner::serial();
        let cfg = ExperimentConfig::paper();
        runner.run_kernel(Kernel::Flo52, Scale::Test, &cfg).unwrap();
        runner.run_kernel(Kernel::Flo52, Scale::Test, &cfg).unwrap();
        let cache = runner.cache_stats();
        assert_eq!(cache, runner.stats().cache());
        assert_eq!(cache.programs, StageCache { hits: 1, misses: 1 });
        assert_eq!(cache.traces, StageCache { hits: 1, misses: 1 });
        assert!((cache.programs.hit_rate() - 0.5).abs() < 1e-12);
        let total = cache.total();
        assert_eq!(total.hits + total.misses, 8);
        // Display stays a one-line summary.
        assert!(cache.to_string().contains("programs 1/2 hits (50%)"));
        assert_eq!(StageCache::default().hit_rate(), 0.0);
    }

    #[test]
    fn run_kernel_safe_matches_the_plain_entry() {
        let runner = Runner::serial();
        let cfg = ExperimentConfig::paper();
        let plain = runner.run_kernel(Kernel::Flo52, Scale::Test, &cfg).unwrap();
        let safe = runner
            .run_kernel_safe(Kernel::Flo52, Scale::Test, &cfg)
            .expect("no panic")
            .expect("no trace error");
        assert_eq!(safe.sim.total_cycles, plain.sim.total_cycles);
        assert_eq!(safe.trace, plain.trace);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(8, &items, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn identical_cells_are_deduped() {
        let runner = Runner::new();
        let cfg = ExperimentConfig::paper();
        let mut grid = runner.cells();
        let a = grid.add(Kernel::Qcd2, Scale::Test, cfg);
        let b = grid.add(Kernel::Qcd2, Scale::Test, cfg);
        let out = grid.run().unwrap();
        assert_eq!(out[a].sim.total_cycles, out[b].sim.total_cycles);
        let stats = runner.stats();
        assert_eq!(stats.cells_simulated, 1);
        assert_eq!(stats.cells_deduped, 1);
    }

    #[test]
    fn profile_reports_pipeline_stages_and_counters() {
        let runner = Runner::serial();
        let cfg = ExperimentConfig::paper();
        runner.run_kernel(Kernel::Flo52, Scale::Test, &cfg).unwrap();
        let prof = runner.profile();
        for stage in [
            "prepare",
            "prepare/build",
            "prepare/mark",
            "prepare/interp",
            "simulate",
            "simulate/replay",
            "simulate/boundary",
        ] {
            assert!(
                prof.stage(stage).is_some(),
                "missing stage {stage}:\n{prof}"
            );
        }
        assert!(prof.counter("sim_events") > 0);
        assert_eq!(prof.counter("sim_epochs"), prof.counter("interp_epochs"));
        // A memoized re-run opens the phase scopes again but interprets
        // nothing new, so the harvested per-trace sub-stages stay put.
        let calls_before = prof.stage("prepare/interp").unwrap().calls;
        runner.run_kernel(Kernel::Flo52, Scale::Test, &cfg).unwrap();
        let prof2 = runner.profile();
        assert_eq!(
            prof2.stage("prepare/interp").unwrap().calls,
            calls_before + 1,
            "the phase scope reopens on every grid"
        );
        assert_eq!(
            prof2.stage("prepare/interp/doall").unwrap().calls,
            prof.stage("prepare/interp/doall").unwrap().calls,
            "cache hit must not re-harvest interpreter time"
        );
    }

    #[test]
    fn sweeps_cross_product_in_call_order() {
        let runner = Runner::new();
        let grid = runner
            .grid()
            .kernel(Kernel::Flo52)
            .scale(Scale::Test)
            .scheme(SchemeId::TPI)
            .sweep([4u32, 8], |cfg, &w| cfg.line_words = w)
            .sweep([1u32, 2], |cfg, &a| cfg.assoc = a)
            .run()
            .unwrap();
        assert_eq!(grid.variants(), 4);
        // Variant order: (4,1), (4,2), (8,1), (8,2) — line sweep major.
        let cells: Vec<_> = grid.iter().collect();
        assert_eq!(cells.len(), 4);
        // All four share one trace (geometry affects layout => new trace
        // per line_words, so exactly two traces).
        assert_eq!(runner.stats().traces_built, 2);
    }
}
