//! One configuration object spanning compiler, trace, machine, and scheme.

use tpi_cache::{CacheConfig, ResetStrategy, WriteBufferKind, WritePolicy};
use tpi_compiler::OptLevel;
use tpi_mem::{Cycle, LineGeometry};
use tpi_net::NetworkConfig;
use tpi_proto::{EngineConfig, SchemeKind};
use tpi_sim::SimOptions;
use tpi_trace::{SchedulePolicy, TraceOptions};

/// Every knob of one simulated experiment.
///
/// [`ExperimentConfig::paper`] reproduces the paper's Figure 8 machine:
/// 16 single-issue processors, 64 KB direct-mapped caches with 4-word
/// (16-byte) lines, 8-bit timetags with a 128-cycle two-phase reset, an
/// analytic multistage network with a 100-cycle base line-miss latency,
/// write-through write-allocate caches with infinite write buffers for the
/// HSCD schemes, and weak consistency throughout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Coherence scheme under test.
    pub scheme: SchemeKind,
    /// Compiler optimization level (marking quality).
    pub opt_level: OptLevel,
    /// Number of processors.
    pub procs: u32,
    /// Cache capacity per node, bytes.
    pub cache_bytes: usize,
    /// Words per cache line.
    pub line_words: u32,
    /// Cache associativity.
    pub assoc: u32,
    /// Timetag width (TPI).
    pub tag_bits: u32,
    /// Timetag recycling strategy (TPI).
    pub reset_strategy: ResetStrategy,
    /// Stall per two-phase reset (TPI).
    pub reset_cycles: Cycle,
    /// Write buffer organization (write-through schemes).
    pub wbuffer: WriteBufferKind,
    /// HSCD cache write policy (TPI).
    pub write_policy: WritePolicy,
    /// DOALL scheduling policy.
    pub policy: SchedulePolicy,
    /// Seed for dynamic scheduling and opaque subscripts.
    pub seed: u64,
    /// Barrier / loop-scheduling overhead per epoch.
    pub epoch_setup_cycles: Cycle,
    /// LimitLess hardware pointers.
    pub limitless_pointers: u32,
    /// LimitLess software-trap penalty.
    pub limitless_trap_cycles: Cycle,
    /// Whether verified Time-Read hits re-stamp their word (TPI).
    pub restamp_verified_hits: bool,
    /// Panic if any cache hit observes stale data (always on in debug
    /// builds; enable in release to make soundness executable).
    pub verify_freshness: bool,
    /// Optional on-chip L1 in front of the tagged TPI cache (two-level
    /// operation, Section 3).
    pub l1: Option<tpi_proto::L1Config>,
    /// Rotate serial epochs across processors instead of pinning them to
    /// processor 0.
    pub rotate_serial: bool,
    /// What a failed TPI tag check refetches.
    pub coherence_fetch: tpi_proto::FetchGranularity,
}

impl ExperimentConfig {
    /// The paper's default machine, running the TPI scheme.
    #[must_use]
    pub fn paper() -> Self {
        ExperimentConfig {
            scheme: SchemeKind::Tpi,
            opt_level: OptLevel::Full,
            procs: 16,
            cache_bytes: 64 * 1024,
            line_words: 4,
            assoc: 1,
            tag_bits: 8,
            reset_strategy: ResetStrategy::TwoPhase,
            reset_cycles: 128,
            wbuffer: WriteBufferKind::Fifo,
            write_policy: WritePolicy::Through,
            policy: SchedulePolicy::StaticBlock,
            seed: 0xC0FF_EE00,
            epoch_setup_cycles: 100,
            limitless_pointers: 10,
            limitless_trap_cycles: 50,
            restamp_verified_hits: true,
            verify_freshness: cfg!(debug_assertions),
            l1: None,
            rotate_serial: false,
            coherence_fetch: tpi_proto::FetchGranularity::Line,
        }
    }

    /// Line geometry derived from `line_words`.
    #[must_use]
    pub fn geometry(&self) -> LineGeometry {
        LineGeometry::new(self.line_words)
    }

    /// The trace-generation options this configuration induces.
    #[must_use]
    pub fn trace_options(&self) -> TraceOptions {
        TraceOptions {
            num_procs: self.procs,
            policy: self.policy,
            seed: self.seed,
            check_races: true,
            geometry: self.geometry(),
            rotate_serial: self.rotate_serial,
        }
    }

    /// The engine configuration this experiment induces, given the shared
    /// segment bound (total words of the program's layout).
    #[must_use]
    pub fn engine_config(&self, shared_limit: u64) -> EngineConfig {
        EngineConfig {
            procs: self.procs,
            cache: CacheConfig {
                size_bytes: self.cache_bytes,
                assoc: self.assoc,
                geometry: self.geometry(),
            },
            net: NetworkConfig::paper_default(self.procs),
            tag_bits: self.tag_bits,
            reset_strategy: self.reset_strategy,
            reset_cycles: self.reset_cycles,
            wbuffer: self.wbuffer,
            write_policy: self.write_policy,
            shared_limit,
            limitless_pointers: self.limitless_pointers,
            limitless_trap_cycles: self.limitless_trap_cycles,
            restamp_verified_hits: self.restamp_verified_hits,
            verify_freshness: self.verify_freshness,
            l1: self.l1,
            coherence_fetch: self.coherence_fetch,
        }
    }

    /// The simulator options this experiment induces.
    #[must_use]
    pub fn sim_options(&self) -> SimOptions {
        SimOptions {
            epoch_setup_cycles: self.epoch_setup_cycles,
        }
    }

    /// Compiler options this experiment induces.
    #[must_use]
    pub fn compiler_options(&self) -> tpi_compiler::CompilerOptions {
        tpi_compiler::CompilerOptions {
            level: self.opt_level,
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_figure8() {
        let c = ExperimentConfig::paper();
        assert_eq!(c.procs, 16);
        assert_eq!(c.cache_bytes, 64 * 1024);
        assert_eq!(c.line_words, 4);
        assert_eq!(c.assoc, 1);
        assert_eq!(c.tag_bits, 8);
        assert_eq!(c.reset_cycles, 128);
        let e = c.engine_config(1000);
        assert_eq!(e.cache.num_lines(), 4096);
        assert_eq!(e.shared_limit, 1000);
        assert_eq!(c.trace_options().num_procs, 16);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(ExperimentConfig::default(), ExperimentConfig::paper());
    }
}
