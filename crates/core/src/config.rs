//! One configuration object spanning compiler, trace, machine, and scheme.

use tpi_cache::{CacheConfig, ResetStrategy, WriteBufferKind, WritePolicy};
use tpi_compiler::OptLevel;
use tpi_mem::{Cycle, LineGeometry};
use tpi_net::NetworkConfig;
use tpi_proto::{EngineConfig, SchemeId};
use tpi_sim::SimOptions;
use tpi_trace::{SchedulePolicy, TraceOptions};

/// Every knob of one simulated experiment.
///
/// [`ExperimentConfig::paper`] reproduces the paper's Figure 8 machine:
/// 16 single-issue processors, 64 KB direct-mapped caches with 4-word
/// (16-byte) lines, 8-bit timetags with a 128-cycle two-phase reset, an
/// analytic multistage network with a 100-cycle base line-miss latency,
/// write-through write-allocate caches with infinite write buffers for the
/// HSCD schemes, and weak consistency throughout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Coherence scheme under test (a registry [`SchemeId`], resolved
    /// through [`tpi_proto::registry::global()`]).
    pub scheme: SchemeId,
    /// Compiler optimization level (marking quality).
    pub opt_level: OptLevel,
    /// Number of processors.
    ///
    /// The paper's machine is 16 processors, but this is the scalability
    /// axis of the large-scale study (EXPERIMENTS.md E24): 64, 256, and
    /// 1024 are the studied points, and the builder accepts anything in
    /// `1..=`[`ExperimentConfig::MAX_PROCS`]. Pair large counts with
    /// [`Scale::Large`](tpi_workloads::Scale) kernels so the widest DOALL
    /// still covers every processor.
    pub procs: u32,
    /// Cache capacity per node, bytes.
    pub cache_bytes: usize,
    /// Words per cache line.
    pub line_words: u32,
    /// Cache associativity.
    pub assoc: u32,
    /// Timetag width (TPI).
    pub tag_bits: u32,
    /// Timetag recycling strategy (TPI).
    pub reset_strategy: ResetStrategy,
    /// Stall per two-phase reset (TPI).
    pub reset_cycles: Cycle,
    /// Write buffer organization (write-through schemes).
    pub wbuffer: WriteBufferKind,
    /// HSCD cache write policy (TPI).
    pub write_policy: WritePolicy,
    /// DOALL scheduling policy.
    pub policy: SchedulePolicy,
    /// Seed for dynamic scheduling and opaque subscripts.
    pub seed: u64,
    /// Barrier / loop-scheduling overhead per epoch.
    pub epoch_setup_cycles: Cycle,
    /// LimitLess hardware pointers.
    pub limitless_pointers: u32,
    /// LimitLess software-trap penalty.
    pub limitless_trap_cycles: Cycle,
    /// Whether verified Time-Read hits re-stamp their word (TPI).
    pub restamp_verified_hits: bool,
    /// Panic if any cache hit observes stale data (always on in debug
    /// builds; enable in release to make soundness executable).
    pub verify_freshness: bool,
    /// Optional on-chip L1 in front of the tagged TPI cache (two-level
    /// operation, Section 3).
    pub l1: Option<tpi_proto::L1Config>,
    /// Rotate serial epochs across processors instead of pinning them to
    /// processor 0.
    pub rotate_serial: bool,
    /// What a failed TPI tag check refetches.
    pub coherence_fetch: tpi_proto::FetchGranularity,
    /// Logical-timestamp lease length granted to reads (TARDIS).
    pub tardis_lease: u64,
    /// Competitive update/invalidate threshold (HYB).
    pub hybrid_threshold: u32,
}

impl ExperimentConfig {
    /// Upper bound on [`procs`](ExperimentConfig::procs) accepted by the
    /// builder (and therefore by every front end that builds through it,
    /// including the `tpi-serve` wire layer). Directory state, network
    /// queues, and per-processor replay state all grow linearly in the
    /// processor count, so an unbounded axis would let one request
    /// exhaust memory; 4096 is 4x the largest studied point (1024).
    pub const MAX_PROCS: u32 = 4096;

    /// Starts a [`ConfigBuilder`] from the paper's defaults. This is the
    /// preferred way to describe a non-default machine: invalid
    /// combinations are rejected at [`build`](ConfigBuilder::build) time
    /// with a [`ConfigError`] instead of panicking mid-simulation.
    ///
    /// ```
    /// use tpi::ExperimentConfig;
    /// use tpi_proto::SchemeId;
    ///
    /// let cfg = ExperimentConfig::builder()
    ///     .scheme(SchemeId::SC)
    ///     .line_words(8)
    ///     .cache_bytes(128 * 1024)
    ///     .build()
    ///     .expect("valid machine");
    /// assert_eq!(cfg.line_words, 8);
    /// ```
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder {
            cfg: ExperimentConfig::paper(),
        }
    }

    /// The paper's default machine, running the TPI scheme.
    #[must_use]
    pub fn paper() -> Self {
        ExperimentConfig {
            scheme: SchemeId::TPI,
            opt_level: OptLevel::Full,
            procs: 16,
            cache_bytes: 64 * 1024,
            line_words: 4,
            assoc: 1,
            tag_bits: 8,
            reset_strategy: ResetStrategy::TwoPhase,
            reset_cycles: 128,
            wbuffer: WriteBufferKind::Fifo,
            write_policy: WritePolicy::Through,
            policy: SchedulePolicy::StaticBlock,
            seed: 0xC0FF_EE00,
            epoch_setup_cycles: 100,
            limitless_pointers: 10,
            limitless_trap_cycles: 50,
            restamp_verified_hits: true,
            verify_freshness: cfg!(debug_assertions),
            l1: None,
            rotate_serial: false,
            coherence_fetch: tpi_proto::FetchGranularity::Line,
            tardis_lease: 8,
            hybrid_threshold: 4,
        }
    }

    /// Line geometry derived from `line_words`.
    #[must_use]
    pub fn geometry(&self) -> LineGeometry {
        LineGeometry::new(self.line_words)
    }

    /// The trace-generation options this configuration induces.
    #[must_use]
    pub fn trace_options(&self) -> TraceOptions {
        TraceOptions {
            num_procs: self.procs,
            policy: self.policy,
            seed: self.seed,
            check_races: true,
            geometry: self.geometry(),
            rotate_serial: self.rotate_serial,
        }
    }

    /// The engine configuration this experiment induces, given the shared
    /// segment bound (total words of the program's layout).
    #[must_use]
    pub fn engine_config(&self, shared_limit: u64) -> EngineConfig {
        EngineConfig {
            procs: self.procs,
            cache: CacheConfig {
                size_bytes: self.cache_bytes,
                assoc: self.assoc,
                geometry: self.geometry(),
            },
            net: NetworkConfig::paper_default(self.procs),
            tag_bits: self.tag_bits,
            reset_strategy: self.reset_strategy,
            reset_cycles: self.reset_cycles,
            wbuffer: self.wbuffer,
            write_policy: self.write_policy,
            shared_limit,
            limitless_pointers: self.limitless_pointers,
            limitless_trap_cycles: self.limitless_trap_cycles,
            restamp_verified_hits: self.restamp_verified_hits,
            verify_freshness: self.verify_freshness,
            l1: self.l1,
            coherence_fetch: self.coherence_fetch,
            tardis_lease: self.tardis_lease,
            hybrid_threshold: self.hybrid_threshold,
        }
    }

    /// The simulator options this experiment induces.
    #[must_use]
    pub fn sim_options(&self) -> SimOptions {
        SimOptions {
            epoch_setup_cycles: self.epoch_setup_cycles,
        }
    }

    /// Compiler options this experiment induces.
    #[must_use]
    pub fn compiler_options(&self) -> tpi_compiler::CompilerOptions {
        tpi_compiler::CompilerOptions {
            level: self.opt_level,
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::paper()
    }
}

/// Why a [`ConfigBuilder`] refused to produce a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `procs` was zero.
    NoProcessors,
    /// `procs` exceeded [`ExperimentConfig::MAX_PROCS`].
    TooManyProcessors(u32),
    /// `line_words` outside `1..=64` (the per-word state bitmasks are 64
    /// bits wide).
    LineWords(u32),
    /// `assoc` was zero.
    ZeroAssociativity,
    /// A cache level's capacity / line size / associativity don't form a
    /// power-of-two number of sets. The string names the level and the
    /// failed constraint.
    CacheGeometry(String),
    /// Timetag width the reset hardware cannot support: two-phase reset
    /// needs at least one tag bit to split the space into halves, and tags
    /// are stored in 16-bit fields — so `2..=16` is representable.
    TagWidth {
        /// The rejected width.
        bits: u32,
        /// The reset strategy it was paired with.
        strategy: ResetStrategy,
    },
    /// LimitLESS was selected with zero hardware pointers.
    NoLimitlessPointers,
    /// The scheme id is not in the global registry.
    UnknownScheme(SchemeId),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoProcessors => write!(f, "need at least one processor"),
            ConfigError::TooManyProcessors(p) => write!(
                f,
                "procs {p} exceeds the supported maximum of {}",
                ExperimentConfig::MAX_PROCS
            ),
            ConfigError::LineWords(w) => {
                write!(f, "line_words must be in 1..=64, got {w}")
            }
            ConfigError::ZeroAssociativity => write!(f, "associativity must be at least 1"),
            ConfigError::CacheGeometry(why) => write!(f, "inconsistent cache geometry: {why}"),
            ConfigError::TagWidth { bits, strategy } => write!(
                f,
                "timetag width {bits} unsupported ({strategy:?} reset needs 2..=16 bits)"
            ),
            ConfigError::NoLimitlessPointers => {
                write!(f, "LimitLESS needs at least one hardware pointer")
            }
            ConfigError::UnknownScheme(id) => {
                write!(f, "scheme \"{}\" is not registered", id.as_str())
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`ExperimentConfig`], seeded with the paper's defaults.
/// Every setter overrides one knob; [`build`](ConfigBuilder::build)
/// validates the combination. See [`ExperimentConfig::builder`].
#[derive(Debug, Clone)]
#[must_use = "call .build() to obtain the configuration"]
pub struct ConfigBuilder {
    cfg: ExperimentConfig,
}

macro_rules! setters {
    ($($(#[$doc:meta])+ $field:ident: $ty:ty),+ $(,)?) => {
        $(
            $(#[$doc])+
            pub fn $field(mut self, $field: $ty) -> Self {
                self.cfg.$field = $field;
                self
            }
        )+
    };
}

impl ConfigBuilder {
    /// Coherence scheme under test: anything convertible into a registry
    /// [`SchemeId`].
    pub fn scheme(mut self, scheme: impl Into<SchemeId>) -> Self {
        self.cfg.scheme = scheme.into();
        self
    }

    setters! {
        /// Compiler optimization level (marking quality).
        opt_level: OptLevel,
        /// Number of processors.
        procs: u32,
        /// Cache capacity per node, bytes.
        cache_bytes: usize,
        /// Words per cache line.
        line_words: u32,
        /// Cache associativity.
        assoc: u32,
        /// Timetag width (TPI).
        tag_bits: u32,
        /// Timetag recycling strategy (TPI).
        reset_strategy: ResetStrategy,
        /// Stall per two-phase reset (TPI).
        reset_cycles: Cycle,
        /// Write buffer organization (write-through schemes).
        wbuffer: WriteBufferKind,
        /// HSCD cache write policy (TPI).
        write_policy: WritePolicy,
        /// DOALL scheduling policy.
        policy: SchedulePolicy,
        /// Seed for dynamic scheduling and opaque subscripts.
        seed: u64,
        /// Barrier / loop-scheduling overhead per epoch.
        epoch_setup_cycles: Cycle,
        /// LimitLess hardware pointers.
        limitless_pointers: u32,
        /// LimitLess software-trap penalty.
        limitless_trap_cycles: Cycle,
        /// Whether verified Time-Read hits re-stamp their word (TPI).
        restamp_verified_hits: bool,
        /// Panic if any cache hit observes stale data.
        verify_freshness: bool,
        /// Optional on-chip L1 in front of the tagged TPI cache.
        l1: Option<tpi_proto::L1Config>,
        /// Rotate serial epochs across processors instead of pinning them
        /// to processor 0.
        rotate_serial: bool,
        /// What a failed TPI tag check refetches.
        coherence_fetch: tpi_proto::FetchGranularity,
        /// Logical-timestamp lease length granted to reads (TARDIS).
        tardis_lease: u64,
        /// Competitive update/invalidate threshold (HYB).
        hybrid_threshold: u32,
    }

    /// Validates the combination and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint:
    /// zero processors, an unrepresentable line size, a cache level whose
    /// capacity / line size / associativity don't yield a power-of-two
    /// number of sets, a timetag width the reset hardware can't support,
    /// or LimitLESS with no pointers.
    pub fn build(self) -> Result<ExperimentConfig, ConfigError> {
        let cfg = self.cfg;
        if cfg.procs == 0 {
            return Err(ConfigError::NoProcessors);
        }
        if cfg.procs > ExperimentConfig::MAX_PROCS {
            return Err(ConfigError::TooManyProcessors(cfg.procs));
        }
        if !(1..=64).contains(&cfg.line_words) {
            return Err(ConfigError::LineWords(cfg.line_words));
        }
        if cfg.assoc == 0 {
            return Err(ConfigError::ZeroAssociativity);
        }
        let line_bytes = cfg.geometry().line_bytes();
        check_level("cache", cfg.cache_bytes, line_bytes, cfg.assoc)?;
        if let Some(l1) = cfg.l1 {
            if l1.assoc == 0 {
                return Err(ConfigError::ZeroAssociativity);
            }
            check_level("L1", l1.size_bytes, line_bytes, l1.assoc)?;
        }
        if !(2..=16).contains(&cfg.tag_bits) {
            return Err(ConfigError::TagWidth {
                bits: cfg.tag_bits,
                strategy: cfg.reset_strategy,
            });
        }
        if tpi_proto::registry::global().get(cfg.scheme).is_err() {
            return Err(ConfigError::UnknownScheme(cfg.scheme));
        }
        if cfg.scheme == SchemeId::LIMITLESS && cfg.limitless_pointers == 0 {
            return Err(ConfigError::NoLimitlessPointers);
        }
        Ok(cfg)
    }
}

/// Checks one cache level's capacity / line size / associativity the same
/// way [`tpi_cache::CacheConfig`] asserts them, but as `Err` not panic.
fn check_level(
    level: &str,
    size_bytes: usize,
    line_bytes: usize,
    assoc: u32,
) -> Result<(), ConfigError> {
    if size_bytes == 0 || !size_bytes.is_multiple_of(line_bytes) {
        return Err(ConfigError::CacheGeometry(format!(
            "{level} capacity {size_bytes} B is not a positive multiple of the {line_bytes} B line"
        )));
    }
    let lines = size_bytes / line_bytes;
    if !lines.is_multiple_of(assoc as usize) {
        return Err(ConfigError::CacheGeometry(format!(
            "{level}: {lines} lines do not divide into {assoc}-way sets"
        )));
    }
    let sets = lines / assoc as usize;
    if !sets.is_power_of_two() {
        return Err(ConfigError::CacheGeometry(format!(
            "{level}: {sets} sets is not a power of two"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_figure8() {
        let c = ExperimentConfig::paper();
        assert_eq!(c.procs, 16);
        assert_eq!(c.cache_bytes, 64 * 1024);
        assert_eq!(c.line_words, 4);
        assert_eq!(c.assoc, 1);
        assert_eq!(c.tag_bits, 8);
        assert_eq!(c.reset_cycles, 128);
        let e = c.engine_config(1000);
        assert_eq!(e.cache.num_lines(), 4096);
        assert_eq!(e.shared_limit, 1000);
        assert_eq!(c.trace_options().num_procs, 16);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(ExperimentConfig::default(), ExperimentConfig::paper());
    }

    #[test]
    fn builder_defaults_to_paper() {
        assert_eq!(
            ExperimentConfig::builder().build().unwrap(),
            ExperimentConfig::paper()
        );
    }

    #[test]
    fn builder_applies_every_setter() {
        let cfg = ExperimentConfig::builder()
            .scheme(SchemeId::SC)
            .opt_level(OptLevel::Intra)
            .procs(8)
            .cache_bytes(32 * 1024)
            .line_words(8)
            .assoc(2)
            .tag_bits(4)
            .reset_strategy(ResetStrategy::FullFlushOnWrap)
            .reset_cycles(64)
            .wbuffer(WriteBufferKind::Coalescing)
            .write_policy(WritePolicy::BackAtBoundary)
            .policy(SchedulePolicy::StaticCyclic)
            .seed(7)
            .epoch_setup_cycles(50)
            .limitless_pointers(4)
            .limitless_trap_cycles(25)
            .restamp_verified_hits(false)
            .verify_freshness(true)
            .l1(Some(tpi_proto::L1Config::paper_default()))
            .rotate_serial(true)
            .coherence_fetch(tpi_proto::FetchGranularity::Word)
            .tardis_lease(16)
            .hybrid_threshold(2)
            .build()
            .unwrap();
        assert_eq!(cfg.scheme, SchemeId::SC);
        assert_eq!(cfg.tardis_lease, 16);
        assert_eq!(cfg.hybrid_threshold, 2);
        assert_eq!(cfg.procs, 8);
        assert_eq!(cfg.line_words, 8);
        assert_eq!(cfg.assoc, 2);
        assert_eq!(cfg.tag_bits, 4);
        assert!(cfg.rotate_serial);
        assert!(cfg.l1.is_some());
    }

    #[test]
    fn builder_rejects_unsupported_tag_widths() {
        for bits in [0, 1, 17, 32] {
            let err = ExperimentConfig::builder()
                .tag_bits(bits)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, ConfigError::TagWidth { bits: b, .. } if b == bits),
                "{bits}: {err}"
            );
        }
        // The boundary widths the reset hardware does support.
        for bits in [2, 16] {
            assert!(ExperimentConfig::builder().tag_bits(bits).build().is_ok());
        }
    }

    #[test]
    fn builder_rejects_degenerate_machines() {
        assert_eq!(
            ExperimentConfig::builder().procs(0).build().unwrap_err(),
            ConfigError::NoProcessors
        );
        assert_eq!(
            ExperimentConfig::builder().procs(5000).build().unwrap_err(),
            ConfigError::TooManyProcessors(5000)
        );
        // Every studied point of the scalability axis builds.
        for procs in [64, 256, 1024] {
            assert!(ExperimentConfig::builder().procs(procs).build().is_ok());
        }
        assert_eq!(
            ExperimentConfig::builder().assoc(0).build().unwrap_err(),
            ConfigError::ZeroAssociativity
        );
        assert!(matches!(
            ExperimentConfig::builder()
                .line_words(65)
                .build()
                .unwrap_err(),
            ConfigError::LineWords(65)
        ));
        assert!(matches!(
            ExperimentConfig::builder()
                .scheme(SchemeId::LIMITLESS)
                .limitless_pointers(0)
                .build()
                .unwrap_err(),
            ConfigError::NoLimitlessPointers
        ));
    }

    #[test]
    fn builder_accepts_any_registered_scheme_and_rejects_others() {
        for scheme in tpi_proto::registry::global().all() {
            let cfg = ExperimentConfig::builder().scheme(scheme.id()).build();
            assert!(cfg.is_ok(), "{} must build", scheme.id().as_str());
        }
        let err = ExperimentConfig::builder()
            .scheme(SchemeId::new("mesi"))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::UnknownScheme(SchemeId::new("mesi")));
    }

    #[test]
    fn builder_rejects_inconsistent_cache_geometry() {
        // 48 KB of 4-word (16 B) lines is 3072 lines -> 3072 direct-mapped
        // sets, not a power of two.
        let err = ExperimentConfig::builder()
            .cache_bytes(48 * 1024)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::CacheGeometry(_)), "{err}");
        // 3-way over a power-of-two line count doesn't divide evenly.
        let err = ExperimentConfig::builder().assoc(3).build().unwrap_err();
        assert!(matches!(err, ConfigError::CacheGeometry(_)), "{err}");
        // The same checks guard the optional L1.
        let err = ExperimentConfig::builder()
            .l1(Some(tpi_proto::L1Config {
                size_bytes: 3000,
                assoc: 1,
                l2_hit_cycles: 5,
            }))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::CacheGeometry(_)), "{err}");
        // A valid 2-way 128 KB machine passes.
        assert!(ExperimentConfig::builder()
            .cache_bytes(128 * 1024)
            .assoc(2)
            .build()
            .is_ok());
    }
}
