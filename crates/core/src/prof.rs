//! `tpi-prof`: a zero-dependency stage profiler for the experiment engine.
//!
//! The paper's argument is quantitative, so the harness that reproduces it
//! must be measurable too. This module provides the profiling layer used by
//! [`Runner`](crate::Runner): scoped wall-clock stage timers, monotonic
//! counters, and a deterministic [`ProfileReport`] that `repro --timing`,
//! `tpi-run --profile`, the `/metrics` endpoint of `tpi-serve`, and the
//! `tpi-bench --bin perf` baseline harness all render from.
//!
//! # Design
//!
//! * **Zero dependencies.** Like the rest of the workspace the profiler is
//!   std-only: `Instant` for wall time, a `Mutex<BTreeMap>` for aggregation.
//!   No `tracing`, no `criterion` — the repo builds offline.
//! * **Scoped timers with nesting.** [`Profiler::scope`] returns an RAII
//!   guard; nested scopes compose their names into `/`-separated paths
//!   (`"simulate"` inside `"grid"` records as `"grid/simulate"`). The
//!   nesting stack is thread-local, so concurrent worker threads profile
//!   independently and aggregate into the same report.
//! * **Cheap enough to leave on.** One `Instant::now()` pair plus one map
//!   update per scope. Scopes are placed at *stage* granularity (per
//!   artifact build, per simulated cell) — never per event — so overhead is
//!   nanoseconds against milliseconds of work. The measured overhead is
//!   documented in `DESIGN.md` (§ Profiling & performance).
//! * **Overflow-safe.** All accumulation is saturating: a pathological
//!   accumulated duration pins at `u64::MAX` nanoseconds instead of
//!   wrapping to a small number and corrupting the report.
//! * **Deterministic reports.** Stages sort by total wall time descending,
//!   ties broken by path; counters sort by name. Two reports over the same
//!   set of stage names always list them in a stable order.
//!
//! # Example
//!
//! ```
//! use tpi::prof::Profiler;
//!
//! let prof = Profiler::new();
//! {
//!     let _outer = prof.scope("prepare");
//!     let _inner = prof.scope("interp"); // records as "prepare/interp"
//!     prof.incr("events", 128);
//! }
//! let report = prof.report();
//! assert_eq!(report.stages.len(), 2);
//! assert_eq!(report.counter("events"), 128);
//! ```

use crate::sync::lock_unpoisoned;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;
use std::sync::Mutex;
use std::time::Instant;

thread_local! {
    /// Per-thread stack of active scope names; composed into the full
    /// `/`-separated path when a scope closes.
    static SCOPE_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated totals for one stage path.
#[derive(Debug, Clone, Copy, Default)]
struct StageAgg {
    calls: u64,
    nanos: u64,
}

#[derive(Debug, Default)]
struct ProfState {
    stages: BTreeMap<String, StageAgg>,
    counters: BTreeMap<String, u64>,
}

/// Aggregating stage profiler. Shared by reference across worker threads;
/// all methods take `&self`.
#[derive(Debug, Default)]
pub struct Profiler {
    state: Mutex<ProfState>,
}

impl Profiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Opens a named timing scope; the returned guard records the elapsed
    /// wall time (and one call) when dropped.
    ///
    /// Scopes opened while another scope is active *on the same thread*
    /// nest: their recorded path is `outer/inner`. The guard is `!Send` —
    /// it must be dropped on the thread that opened it.
    #[must_use = "the scope is timed until the guard is dropped"]
    pub fn scope(&self, name: &'static str) -> ScopeGuard<'_> {
        SCOPE_STACK.with(|s| s.borrow_mut().push(name));
        ScopeGuard {
            prof: self,
            start: Instant::now(),
            armed: true,
            _not_send: PhantomData,
        }
    }

    /// Adds `nanos` of wall time (and one call) to the stage at `path`,
    /// ignoring the thread-local nesting stack.
    ///
    /// This is how the runner attributes time measured *inside* the lower
    /// layers (the interpreter and the simulator self-report per-phase
    /// nanoseconds on their results) to stable report paths.
    pub fn add_nanos(&self, path: &str, nanos: u64) {
        self.add(path, nanos, 1);
    }

    /// Adds `nanos` and `calls` to the stage at `path` in one update.
    pub fn add(&self, path: &str, nanos: u64, calls: u64) {
        let mut st = lock_unpoisoned(&self.state);
        let agg = st.stages.entry(path.to_string()).or_default();
        agg.nanos = agg.nanos.saturating_add(nanos);
        agg.calls = agg.calls.saturating_add(calls);
    }

    /// Increments the monotonic counter `name` by `n` (saturating).
    pub fn incr(&self, name: &str, n: u64) {
        let mut st = lock_unpoisoned(&self.state);
        let c = st.counters.entry(name.to_string()).or_default();
        *c = c.saturating_add(n);
    }

    /// Snapshots the current totals as a deterministic [`ProfileReport`].
    #[must_use]
    pub fn report(&self) -> ProfileReport {
        let st = lock_unpoisoned(&self.state);
        let mut stages: Vec<StageProfile> = st
            .stages
            .iter()
            .map(|(path, agg)| StageProfile {
                path: path.clone(),
                calls: agg.calls,
                nanos: agg.nanos,
            })
            .collect();
        // Hottest first; ties broken by path so the order is total.
        stages.sort_by(|a, b| b.nanos.cmp(&a.nanos).then_with(|| a.path.cmp(&b.path)));
        let counters = st.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
        ProfileReport { stages, counters }
    }

    /// Discards all recorded stages and counters.
    pub fn reset(&self) {
        let mut st = lock_unpoisoned(&self.state);
        st.stages.clear();
        st.counters.clear();
    }

    fn close_scope(&self, start: Instant) {
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let path = SCOPE_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        self.add(&path, nanos, 1);
    }
}

/// RAII guard for one open [`Profiler::scope`]; records on drop.
#[derive(Debug)]
pub struct ScopeGuard<'p> {
    prof: &'p Profiler,
    start: Instant,
    armed: bool,
    /// Scope guards pop a thread-local stack, so moving one to another
    /// thread would corrupt both threads' paths; `*mut ()` makes the guard
    /// `!Send` at zero cost.
    _not_send: PhantomData<*mut ()>,
}

impl ScopeGuard<'_> {
    /// Closes the scope now, recording elapsed time, instead of at end of
    /// block.
    pub fn finish(mut self) {
        self.armed = false;
        self.prof.close_scope(self.start);
    }
}

impl Drop for ScopeGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.prof.close_scope(self.start);
        }
    }
}

/// One stage's totals inside a [`ProfileReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageProfile {
    /// `/`-separated stage path, e.g. `"simulate/replay"`.
    pub path: String,
    /// Number of times the stage ran.
    pub calls: u64,
    /// Total wall time across all calls, in nanoseconds (saturating).
    pub nanos: u64,
}

impl StageProfile {
    /// Nesting depth: `1` for a top-level stage, `2` for `a/b`, …
    #[must_use]
    pub fn depth(&self) -> usize {
        self.path.split('/').count()
    }

    /// Mean wall time per call, in nanoseconds.
    #[must_use]
    pub fn mean_nanos(&self) -> u64 {
        self.nanos.checked_div(self.calls).unwrap_or(0)
    }
}

/// Deterministic snapshot of a [`Profiler`]: stages hottest-first plus
/// name-sorted counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// Stage totals, sorted by wall time descending then path.
    pub stages: Vec<StageProfile>,
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl ProfileReport {
    /// `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty() && self.counters.is_empty()
    }

    /// The stage with the most total wall time, if any.
    #[must_use]
    pub fn hottest(&self) -> Option<&StageProfile> {
        self.stages.first()
    }

    /// Totals for the stage at `path`, if recorded.
    #[must_use]
    pub fn stage(&self, path: &str) -> Option<&StageProfile> {
        self.stages.iter().find(|s| s.path == path)
    }

    /// Value of counter `name` (0 if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Sum of wall time over *top-level* stages only, in nanoseconds.
    ///
    /// Nested stages (`a/b`) overlap their parents (`a`), so summing every
    /// stage would double-count; the top-level sum is the report's honest
    /// account of profiled wall time.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.depth() == 1)
            .fold(0u64, |acc, s| acc.saturating_add(s.nanos))
    }
}

/// Formats nanoseconds with an adaptive unit (`ns`/`µs`/`ms`/`s`).
#[must_use]
pub fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_nanos();
        writeln!(
            f,
            "{:<28} {:>8} {:>10} {:>10} {:>7}",
            "stage", "calls", "total", "mean", "share"
        )?;
        for s in &self.stages {
            let share = if total == 0 || s.depth() != 1 {
                "-".to_string()
            } else {
                format!("{:.1}%", 100.0 * s.nanos as f64 / total as f64)
            };
            writeln!(
                f,
                "{:<28} {:>8} {:>10} {:>10} {:>7}",
                s.path,
                s.calls,
                fmt_nanos(s.nanos),
                fmt_nanos(s.mean_nanos()),
                share
            )?;
        }
        if !self.counters.is_empty() {
            writeln!(f, "{:<28} {:>8}", "counter", "value")?;
            for (name, v) in &self.counters {
                writeln!(f, "{name:<28} {v:>8}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn scope_records_call_and_time() {
        let p = Profiler::new();
        {
            let _g = p.scope("work");
            std::thread::sleep(Duration::from_millis(2));
        }
        let r = p.report();
        let s = r.stage("work").expect("stage recorded");
        assert_eq!(s.calls, 1);
        assert!(s.nanos >= 1_000_000, "slept 2ms but recorded {}ns", s.nanos);
    }

    #[test]
    fn nested_scopes_compose_paths() {
        let p = Profiler::new();
        {
            let _outer = p.scope("outer");
            {
                let _inner = p.scope("inner");
            }
            {
                let _inner = p.scope("inner");
            }
        }
        let r = p.report();
        assert!(r.stage("outer").is_some());
        let inner = r.stage("outer/inner").expect("nested path");
        assert_eq!(inner.calls, 2);
        assert!(r.stage("inner").is_none(), "inner must not appear bare");
    }

    #[test]
    fn sibling_scopes_do_not_nest() {
        let p = Profiler::new();
        {
            let _a = p.scope("a");
        }
        {
            let _b = p.scope("b");
        }
        let r = p.report();
        assert!(r.stage("a").is_some());
        assert!(r.stage("b").is_some());
        assert!(r.stage("a/b").is_none());
    }

    #[test]
    fn deep_nesting_and_finish() {
        let p = Profiler::new();
        let g1 = p.scope("l1");
        let g2 = p.scope("l2");
        let g3 = p.scope("l3");
        g3.finish();
        g2.finish();
        g1.finish();
        let r = p.report();
        assert!(r.stage("l1/l2/l3").is_some());
        assert_eq!(r.stages.len(), 3);
    }

    #[test]
    fn threads_have_independent_stacks() {
        let p = Profiler::new();
        let _main = p.scope("main");
        std::thread::scope(|s| {
            s.spawn(|| {
                // A worker's scope must NOT nest under the main thread's
                // open "main" scope.
                let _w = p.scope("worker");
            });
        });
        drop(_main);
        let r = p.report();
        assert!(r.stage("worker").is_some());
        assert!(r.stage("main/worker").is_none());
    }

    #[test]
    fn accumulation_saturates_instead_of_wrapping() {
        let p = Profiler::new();
        p.add_nanos("big", u64::MAX - 5);
        p.add_nanos("big", 1_000_000);
        let s = p.report();
        let big = s.stage("big").unwrap();
        assert_eq!(big.nanos, u64::MAX, "must saturate, not wrap");
        assert_eq!(big.calls, 2);

        p.incr("c", u64::MAX);
        p.incr("c", 7);
        assert_eq!(p.report().counter("c"), u64::MAX);
    }

    #[test]
    fn total_counts_only_top_level() {
        let p = Profiler::new();
        p.add_nanos("a", 100);
        p.add_nanos("a/sub", 90);
        p.add_nanos("b", 50);
        let r = p.report();
        assert_eq!(r.total_nanos(), 150, "nested stage must not double-count");
    }

    #[test]
    fn report_is_sorted_hottest_first_and_deterministic() {
        let p = Profiler::new();
        p.add_nanos("cold", 10);
        p.add_nanos("hot", 1000);
        p.add_nanos("warm", 500);
        p.add("tied-b", 10, 1);
        p.add("tied-a", 10, 1);
        let r = p.report();
        let order: Vec<&str> = r.stages.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(order, ["hot", "warm", "cold", "tied-a", "tied-b"]);
        assert_eq!(r.hottest().unwrap().path, "hot");
        assert_eq!(p.report(), r, "same state must snapshot identically");
    }

    #[test]
    fn counters_sorted_and_missing_reads_zero() {
        let p = Profiler::new();
        p.incr("zz", 2);
        p.incr("aa", 1);
        p.incr("zz", 3);
        let r = p.report();
        assert_eq!(
            r.counters,
            vec![("aa".to_string(), 1), ("zz".to_string(), 5)]
        );
        assert_eq!(r.counter("nope"), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let p = Profiler::new();
        p.add_nanos("s", 5);
        p.incr("c", 5);
        p.reset();
        assert!(p.report().is_empty());
    }

    #[test]
    fn display_renders_stages_and_counters() {
        let p = Profiler::new();
        p.add("sim", 2_500_000, 3);
        p.add_nanos("sim/replay", 2_000_000);
        p.incr("events", 42);
        let text = p.report().to_string();
        assert!(text.contains("sim"));
        assert!(text.contains("sim/replay"));
        assert!(text.contains("events"));
        assert!(text.contains("100.0%"), "top-level share: {text}");
        assert!(text.contains('-'), "nested stages show no share");
    }

    #[test]
    fn fmt_nanos_units() {
        assert_eq!(fmt_nanos(900), "900ns");
        assert_eq!(fmt_nanos(1_500), "1.5µs");
        assert_eq!(fmt_nanos(2_500_000), "2.50ms");
        assert_eq!(fmt_nanos(3_200_000_000), "3.20s");
    }

    #[test]
    fn concurrent_aggregation_is_complete() {
        let p = Profiler::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        p.add_nanos("shared", 1);
                        p.incr("n", 1);
                    }
                });
            }
        });
        let r = p.report();
        assert_eq!(r.stage("shared").unwrap().calls, 400);
        assert_eq!(r.stage("shared").unwrap().nanos, 400);
        assert_eq!(r.counter("n"), 400);
    }
}
