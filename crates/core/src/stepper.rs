//! Step-level engine driver: one access at a time through a live
//! [`CoherenceEngine`], with the ground truth the timing simulator keeps
//! implicitly made explicit.
//!
//! The trace simulator ([`tpi_sim`]) replays whole epochs of a recorded
//! trace; `tpi-model` instead needs to *choose* the next access while
//! exploring interleavings, observe the engine after every single step,
//! and replay the same prefix deterministically many times. The
//! [`EngineStepper`] provides exactly that: it owns the engine, the
//! per-processor clocks, the epoch counter, and a per-word ground-truth
//! log (version = number of writes so far, plus the epoch of the last
//! write), and derives sound [`ReadKind`]s from that log — a never-written
//! word reads as [`ReadKind::Plain`], anything else as a
//! [`ReadKind::TimeRead`] whose distance is exactly the word's age in
//! epochs, the tightest bound a correct compiler could emit.
//!
//! Engines are not `Clone`, so exploration is *stateless*: the checker
//! re-executes each prefix from a fresh stepper and prunes revisits with
//! [`EngineStepper::fingerprint`], a conservative hash of the full engine
//! state (via its `Debug` rendering) plus the epoch and clocks.

use std::hash::{Hash, Hasher};

use tpi_mem::{Cycle, FastMap, ProcId, ReadKind, WordAddr};
use tpi_proto::{build_engine, AccessOutcome, CoherenceEngine, EngineConfig, SchemeId};

/// Drives one coherence engine a single access at a time, tracking the
/// ground truth needed to issue sound reads and judge the results.
pub struct EngineStepper {
    engine: Box<dyn CoherenceEngine>,
    procs: u32,
    /// Per-processor local clocks (cycle time handed to the engine).
    clocks: Vec<Cycle>,
    /// Epochs completed so far (boundaries crossed).
    epoch: u64,
    /// Ground truth: number of writes each word has received.
    versions: FastMap<u64, u64>,
    /// Epoch in which each word was last written.
    last_write_epoch: FastMap<u64, u64>,
}

impl EngineStepper {
    /// Builds a stepper over a fresh engine for `scheme`.
    #[must_use]
    pub fn new(scheme: SchemeId, cfg: EngineConfig) -> Self {
        let procs = cfg.procs;
        EngineStepper {
            engine: build_engine(scheme, cfg),
            procs,
            clocks: vec![0; procs as usize],
            epoch: 0,
            versions: FastMap::default(),
            last_write_epoch: FastMap::default(),
        }
    }

    /// The live engine, for invariant checks and statistics.
    #[must_use]
    pub fn engine(&self) -> &dyn CoherenceEngine {
        self.engine.as_ref()
    }

    /// Mutable engine access (test sabotage hooks downcast through this).
    pub fn engine_mut(&mut self) -> &mut dyn CoherenceEngine {
        self.engine.as_mut()
    }

    /// Number of processors driven.
    #[must_use]
    pub fn procs(&self) -> u32 {
        self.procs
    }

    /// Epochs completed so far.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Ground-truth version of `addr` (number of writes it has received).
    #[must_use]
    pub fn version(&self, addr: WordAddr) -> u64 {
        self.versions.get(&addr.0).copied().unwrap_or(0)
    }

    /// The read marking the ground truth dictates for `addr`: `Plain` for
    /// a never-written word, otherwise a Time-Read whose distance is the
    /// exact epoch age of the last write (0 inside the writing epoch).
    #[must_use]
    pub fn read_kind(&self, addr: WordAddr) -> ReadKind {
        match self.last_write_epoch.get(&addr.0) {
            None => ReadKind::Plain,
            Some(&e) => ReadKind::TimeRead {
                distance: u32::try_from(self.epoch - e).unwrap_or(u32::MAX),
            },
        }
    }

    /// Issues a plain (epoch-ordered) read by `proc` and advances its
    /// clock by the stall.
    pub fn read(&mut self, proc: ProcId, addr: WordAddr) -> AccessOutcome {
        let kind = self.read_kind(addr);
        let version = self.version(addr);
        let now = self.clocks[proc.0 as usize];
        let out = self.engine.read(proc, addr, kind, version, now);
        self.clocks[proc.0 as usize] += out.stall;
        out
    }

    /// Issues a critical-section read (lock-ordered, exempt from the
    /// epoch freshness machinery).
    pub fn read_critical(&mut self, proc: ProcId, addr: WordAddr) -> AccessOutcome {
        let version = self.version(addr);
        let now = self.clocks[proc.0 as usize];
        let out = self
            .engine
            .read(proc, addr, ReadKind::Critical, version, now);
        self.clocks[proc.0 as usize] += out.stall;
        out
    }

    /// Issues a write by `proc`, bumping the ground-truth version.
    pub fn write(&mut self, proc: ProcId, addr: WordAddr) {
        let version = self.version(addr) + 1;
        self.versions.insert(addr.0, version);
        self.last_write_epoch.insert(addr.0, self.epoch);
        let now = self.clocks[proc.0 as usize];
        let stall = self.engine.write(proc, addr, version, now);
        self.clocks[proc.0 as usize] += stall;
    }

    /// Issues a critical-section write.
    pub fn write_critical(&mut self, proc: ProcId, addr: WordAddr) {
        let version = self.version(addr) + 1;
        self.versions.insert(addr.0, version);
        self.last_write_epoch.insert(addr.0, self.epoch);
        let now = self.clocks[proc.0 as usize];
        let stall = self.engine.write_critical(proc, addr, version, now);
        self.clocks[proc.0 as usize] += stall;
    }

    /// Crosses an epoch boundary: drains write buffers, advances epoch
    /// counters and timetag clocks, joins processor clocks at the barrier.
    pub fn boundary(&mut self) {
        let stalls = self.engine.epoch_boundary(&self.clocks);
        let mut barrier = 0;
        for (clock, stall) in self.clocks.iter_mut().zip(stalls) {
            *clock += stall;
            barrier = barrier.max(*clock);
        }
        for clock in &mut self.clocks {
            *clock = barrier;
        }
        self.epoch += 1;
    }

    /// Per-processor accounting identity: every read is either a hit or a
    /// classified miss. Returns the first processor breaking it.
    ///
    /// # Errors
    ///
    /// Returns a description of the first broken identity.
    pub fn check_accounting(&self) -> Result<(), String> {
        for (p, s) in self.engine.stats().per_proc().iter().enumerate() {
            let sum = s.read_hits + s.read_misses();
            if s.reads != sum {
                return Err(format!(
                    "proc {p} accounting identity broken: {} reads but \
                     {} hits + {} classified misses = {sum}",
                    s.reads,
                    s.read_hits,
                    s.read_misses()
                ));
            }
        }
        Ok(())
    }

    /// Conservative state fingerprint for visited-state pruning: equal
    /// fingerprints (with equal program positions, mixed in by the
    /// caller) imply identical future protocol behaviour. The engine's
    /// derived `Debug` rendering covers every protocol field — caches,
    /// directories, timetags, leases, write buffers — and the epoch and
    /// clocks are mixed in on top. One logical state rendered from two
    /// insertion histories may hash two ways — that costs pruning, not
    /// soundness (standard hash compaction: a 64-bit collision between
    /// genuinely different states is the only unsound event, and it is
    /// vanishingly unlikely at these state counts).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.epoch.hash(&mut h);
        self.clocks.hash(&mut h);
        format!("{:?}", self.engine).hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> EngineConfig {
        let mut cfg = EngineConfig::paper_default(1024);
        cfg.procs = 2;
        cfg.verify_freshness = true;
        cfg
    }

    #[test]
    fn read_kinds_follow_the_ground_truth() {
        let mut s = EngineStepper::new(SchemeId::TPI, tiny_cfg());
        let a = WordAddr(0);
        assert_eq!(s.read_kind(a), ReadKind::Plain);
        s.write(ProcId(0), a);
        assert_eq!(s.read_kind(a), ReadKind::TimeRead { distance: 0 });
        s.boundary();
        assert_eq!(s.read_kind(a), ReadKind::TimeRead { distance: 1 });
        assert_eq!(s.version(a), 1);
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn producer_consumer_round_trip_is_fresh_and_accounted() {
        for scheme in tpi_proto::registry::global().all() {
            let mut s = EngineStepper::new(scheme.id(), tiny_cfg());
            let a = WordAddr(0);
            s.write(ProcId(0), a);
            s.boundary();
            let _ = s.read(ProcId(1), a);
            let _ = s.read(ProcId(1), a);
            s.check_accounting()
                .unwrap_or_else(|e| panic!("{}: {e}", scheme.id()));
        }
    }

    #[test]
    fn same_prefix_same_fingerprint() {
        let run = || {
            let mut s = EngineStepper::new(SchemeId::TARDIS, tiny_cfg());
            s.write(ProcId(0), WordAddr(0));
            s.boundary();
            let _ = s.read(ProcId(1), WordAddr(0));
            s.fingerprint()
        };
        assert_eq!(run(), run());
        // A different prefix lands elsewhere.
        let mut s = EngineStepper::new(SchemeId::TARDIS, tiny_cfg());
        s.write(ProcId(0), WordAddr(0));
        assert_ne!(s.fingerprint(), run());
    }
}
