//! End-to-end experiment execution: program → marking → trace → timing.

use crate::config::ExperimentConfig;
use tpi_compiler::{mark_program, MarkingSummary};
use tpi_ir::Program;
use tpi_proto::build_engine;
use tpi_sim::{run_trace, verify_accounting, SimResult};
use tpi_trace::{generate_trace, TraceError, TraceStats};
use tpi_workloads::{Kernel, Scale};

/// Everything one experiment run produced.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Timing, misses, traffic.
    pub sim: SimResult,
    /// What the compiler decided about each read.
    pub marking: MarkingSummary,
    /// Raw event counts of the trace.
    pub trace: TraceStats,
}

/// Runs `program` under `config`.
///
/// # Errors
///
/// Returns [`TraceError`] if the program violates DOALL race freedom.
///
/// # Panics
///
/// Panics if the scheme's internal accounting identity breaks (a bug in
/// the engine, not in user input).
pub fn run_program(
    program: &Program,
    config: &ExperimentConfig,
) -> Result<ExperimentResult, TraceError> {
    let marking = mark_program(program, &config.compiler_options());
    let trace = generate_trace(program, &marking, &config.trace_options())?;
    let mut engine = build_engine(
        config.scheme,
        config.engine_config(trace.layout.total_words()),
    );
    let sim = run_trace(&trace, engine.as_mut(), &config.sim_options());
    verify_accounting(&sim).expect("engine accounting identity");
    Ok(ExperimentResult {
        sim,
        marking: marking.summary(),
        trace: trace.stats,
    })
}

/// Runs one of the benchmark kernels under `config`.
///
/// # Errors
///
/// Returns [`TraceError`] if the kernel races under the configured
/// schedule (the shipped kernels never do).
pub fn run_kernel(
    kernel: Kernel,
    scale: Scale,
    config: &ExperimentConfig,
) -> Result<ExperimentResult, TraceError> {
    let program = kernel.build(scale);
    run_program(&program, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_proto::{registry, SchemeId};

    #[test]
    fn all_schemes_run_all_kernels_at_test_scale() {
        for kernel in Kernel::ALL {
            for scheme in registry::global().main_schemes() {
                let cfg = ExperimentConfig::builder().scheme(scheme).build().unwrap();
                let r = run_kernel(kernel, Scale::Test, &cfg)
                    .unwrap_or_else(|e| panic!("{kernel} under {scheme}: {e}"));
                assert!(r.sim.total_cycles > 0);
                assert_eq!(r.sim.scheme, scheme.label());
            }
        }
    }

    #[test]
    fn headline_shape_tpi_comparable_to_hw_and_better_than_base() {
        // The paper's central claim, checked at test scale on the stencil
        // kernel: TPI within range of the directory scheme, both far ahead
        // of no-caching.
        let mut cycles = std::collections::HashMap::new();
        for scheme in registry::global().main_schemes() {
            let cfg = ExperimentConfig::builder().scheme(scheme).build().unwrap();
            let r = run_kernel(Kernel::Flo52, Scale::Test, &cfg).unwrap();
            cycles.insert(scheme.label(), r.sim.total_cycles);
        }
        assert!(cycles["TPI"] < cycles["BASE"]);
        assert!(cycles["HW"] < cycles["BASE"]);
        assert!(cycles["TPI"] <= cycles["SC"], "{cycles:?}");
        let ratio = cycles["TPI"] as f64 / cycles["HW"] as f64;
        assert!((0.4..2.0).contains(&ratio), "TPI/HW = {ratio} ({cycles:?})");
    }

    #[test]
    fn limitless_runs_too() {
        let cfg = ExperimentConfig::builder()
            .scheme(SchemeId::LIMITLESS)
            .limitless_pointers(2)
            .build()
            .unwrap();
        let r = run_kernel(Kernel::Spec77, Scale::Test, &cfg).unwrap();
        assert!(
            r.sim.agg.traps > 0,
            "broadcast table must overflow 2 pointers"
        );
    }
}
