//! Shared command-line error handling for the workspace's tools
//! (`tpi-lint`, `tpi-model`, `tpi-run`, `tpi-fuzz`, `tpi-serve`,
//! `tpi-loadgen`, `tpi-chaos`, `tpi-router`).
//!
//! Argument failures split into two classes with different renderings:
//!
//! * [`CliError::Usage`] — the invocation itself is malformed (unknown
//!   flag, missing value). Tools print the message followed by their full
//!   usage text and exit 2.
//! * [`CliError::Field`] — the invocation is well-formed but a value is
//!   out of range or names something that does not exist. The message is
//!   already rendered with the same stable code the serve wire layer uses
//!   (`error[bad_field]: …`), including the list of known names, and is
//!   printed bare (no usage dump) with exit 2 — a typo in `--schemes` or
//!   `--kernel` lists the registry instead of drowning it in usage text.

use std::process::ExitCode;
use tpi_proto::{registry, SchemeId};
use tpi_workloads::Kernel;

/// An argument error, split by rendering: `Usage` gets the tool's usage
/// dump appended, `Field` is a structured bad-value error printed bare.
#[derive(Debug)]
pub enum CliError {
    /// Malformed invocation; render with the tool's usage text.
    Usage(String),
    /// Bad value for a well-formed flag; message is already fully
    /// rendered (`error[bad_field]: …`).
    Field(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

impl CliError {
    /// Renders the error to stderr (appending `usage` for the `Usage`
    /// class) and returns the conventional argument-error exit code 2.
    pub fn exit(&self, usage: &str) -> ExitCode {
        match self {
            CliError::Usage(msg) => eprintln!("error: {msg}\n\n{usage}"),
            CliError::Field(msg) => eprintln!("{msg}"),
        }
        ExitCode::from(2)
    }
}

/// Parses an integer flag value and range-checks it.
///
/// # Errors
///
/// `Usage` if the value is not an integer, `Field` if it is out of
/// `lo..=hi`.
pub fn parse_bounded(flag: &str, value: &str, lo: u64, hi: u64) -> Result<u64, CliError> {
    let n: u64 = value
        .parse()
        .map_err(|_| CliError::Usage(format!("{flag} needs an integer")))?;
    if n < lo || n > hi {
        return Err(CliError::Field(format!(
            "error[bad_field]: {flag} must be in {lo}..={hi}, got {n}"
        )));
    }
    Ok(n)
}

/// Resolves one scheme name through the global registry.
///
/// # Errors
///
/// `Field` with the registry's structured unknown-name listing.
pub fn scheme_by_name(name: &str) -> Result<SchemeId, CliError> {
    registry::global()
        .lookup(name)
        .map(|s| s.id())
        .map_err(|e| CliError::Field(format!("error[{}]: {e}", e.code())))
}

/// Parses a `--schemes` list: `all`, or comma-separated registry names.
///
/// # Errors
///
/// `Field` for any unknown scheme name.
pub fn parse_scheme_list(list: &str) -> Result<Vec<SchemeId>, CliError> {
    if list == "all" {
        return Ok(registry::global().all().iter().map(|s| s.id()).collect());
    }
    list.split(',').map(str::trim).map(scheme_by_name).collect()
}

/// Resolves a kernel name against the full suite (the paper's six plus
/// the extension workloads), case-insensitively.
///
/// # Errors
///
/// `Field` with an `error[bad_field]` listing of every known kernel.
pub fn kernel_by_name(name: &str) -> Result<Kernel, CliError> {
    Kernel::ALL
        .into_iter()
        .chain(Kernel::EXTENDED)
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let known: Vec<&str> = Kernel::ALL
                .into_iter()
                .chain(Kernel::EXTENDED)
                .map(Kernel::name)
                .collect();
            CliError::Field(format!(
                "error[bad_field]: unknown kernel {name:?} (known: {})",
                known.join(", ")
            ))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_splits_usage_and_field() {
        assert!(matches!(
            parse_bounded("--n", "x", 0, 9),
            Err(CliError::Usage(_))
        ));
        let err = parse_bounded("--n", "12", 0, 9).unwrap_err();
        match err {
            CliError::Field(msg) => {
                assert_eq!(msg, "error[bad_field]: --n must be in 0..=9, got 12");
            }
            CliError::Usage(_) => panic!("range errors are Field errors"),
        }
        assert_eq!(parse_bounded("--n", "9", 0, 9).unwrap(), 9);
    }

    #[test]
    fn scheme_lists_resolve_and_reject() {
        assert_eq!(parse_scheme_list("all").unwrap().len(), 8);
        let ids = parse_scheme_list("tpi, tardis").unwrap();
        assert_eq!(ids, vec![SchemeId::TPI, SchemeId::TARDIS]);
        let err = parse_scheme_list("tpi,nope").unwrap_err();
        match err {
            CliError::Field(msg) => {
                assert!(
                    msg.starts_with("error[bad_field]: unknown scheme \"nope\""),
                    "{msg}"
                );
                assert!(msg.contains("registered:"), "{msg}");
            }
            CliError::Usage(_) => panic!("unknown schemes are Field errors"),
        }
    }

    #[test]
    fn kernels_resolve_case_insensitively_and_list_on_error() {
        assert_eq!(kernel_by_name("ocean").unwrap(), Kernel::Ocean);
        assert_eq!(kernel_by_name("MDG").unwrap(), Kernel::Mdg);
        let err = kernel_by_name("NOPE").unwrap_err();
        match err {
            CliError::Field(msg) => {
                assert!(
                    msg.starts_with("error[bad_field]: unknown kernel \"NOPE\""),
                    "{msg}"
                );
                assert!(msg.contains("SPEC77"), "{msg}");
                assert!(msg.contains("MDG"), "{msg}");
            }
            CliError::Usage(_) => panic!("unknown kernels are Field errors"),
        }
    }
}
