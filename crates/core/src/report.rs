//! Canonical report tables built from experiment results.
//!
//! The `repro` harness, the `tpi-run` tool and the examples all need the
//! same handful of tables; this module is the single implementation so
//! downstream users get them too.

use crate::experiment::ExperimentResult;
use crate::tables::{f, pct, Table};
use tpi_net::TrafficClass;
use tpi_proto::MissClass;

/// One row per scheme: cycles, miss rate, latency, traffic, lock waits.
#[must_use]
pub fn scheme_comparison(title: impl Into<String>, rows: &[(&str, &ExperimentResult)]) -> Table {
    let mut t = Table::new(title);
    t.headers([
        "scheme",
        "cycles",
        "miss rate",
        "avg miss lat",
        "net words",
        "lock waits",
    ]);
    for (label, r) in rows {
        t.row([
            (*label).to_string(),
            r.sim.total_cycles.to_string(),
            pct(r.sim.miss_rate()),
            f(r.sim.avg_miss_latency(), 1),
            r.sim.traffic.total_words().to_string(),
            r.sim.lock_wait_cycles.to_string(),
        ]);
    }
    t
}

/// Read-miss breakdown by cause, as percentages of all read misses.
#[must_use]
pub fn miss_classes(title: impl Into<String>, r: &ExperimentResult) -> Table {
    let mut t = Table::new(title);
    t.headers(["cause", "misses", "share"]);
    let total = r.sim.agg.read_misses().max(1) as f64;
    for class in MissClass::ALL {
        let n = r.sim.agg.misses(class);
        if n > 0 {
            t.row([class.to_string(), n.to_string(), pct(n as f64 / total)]);
        }
    }
    t
}

/// Network words per memory reference, split by traffic class.
#[must_use]
pub fn traffic(title: impl Into<String>, r: &ExperimentResult) -> Table {
    let mut t = Table::new(title);
    t.headers(["class", "messages", "words", "words/ref"]);
    let refs = (r.sim.agg.reads + r.sim.agg.writes).max(1) as f64;
    for class in TrafficClass::ALL {
        t.row([
            class.to_string(),
            r.sim.traffic.messages(class).to_string(),
            r.sim.traffic.words(class).to_string(),
            f(r.sim.traffic.words(class) as f64 / refs, 3),
        ]);
    }
    t
}

/// The arrays responsible for the most read misses (descending).
#[must_use]
pub fn hot_arrays(title: impl Into<String>, r: &ExperimentResult, top: usize) -> Table {
    let mut t = Table::new(title);
    t.headers(["array", "misses", "share"]);
    let total = r.sim.agg.read_misses().max(1) as f64;
    for (name, n) in r.sim.miss_by_array.iter().take(top) {
        t.row([name.clone(), n.to_string(), pct(*n as f64 / total)]);
    }
    t
}

/// Compiler-marking summary: how many reads were marked and at what
/// distances.
#[must_use]
pub fn marking_summary(title: impl Into<String>, r: &ExperimentResult) -> Table {
    let mut t = Table::new(title);
    t.headers(["metric", "value"]);
    t.row([
        "shared read sites".to_string(),
        r.marking.shared_reads.to_string(),
    ]);
    t.row([
        "marked (potentially stale)".to_string(),
        r.marking.marked.to_string(),
    ]);
    t.row([
        "plain (never stale)".to_string(),
        r.marking.plain.to_string(),
    ]);
    t.row([
        "  of which covered".to_string(),
        r.marking.covered.to_string(),
    ]);
    for (d, n) in &r.marking.distance_histogram {
        t.row([format!("  distance {d}"), n.to_string()]);
    }
    t
}

/// Per-epoch timeline (cycles and misses), up to `max_rows` epochs.
#[must_use]
pub fn epoch_timeline(title: impl Into<String>, r: &ExperimentResult, max_rows: usize) -> Table {
    let mut t = Table::new(title);
    t.headers(["epoch", "cycles", "misses"]);
    for p in r.sim.profile.iter().take(max_rows) {
        t.row([
            p.epoch.to_string(),
            p.cycles.to_string(),
            p.misses.to_string(),
        ]);
    }
    t
}

/// Per-processor busy time and load-imbalance summary.
#[must_use]
pub fn load_balance(title: impl Into<String>, r: &ExperimentResult) -> Table {
    let mut t = Table::new(title);
    t.headers(["metric", "value"]);
    let max = r.sim.busy_cycles.iter().copied().max().unwrap_or(0);
    let sum: u64 = r.sim.busy_cycles.iter().sum();
    let n = r.sim.busy_cycles.len().max(1) as u64;
    let mean = sum / n;
    t.row(["processors".to_string(), n.to_string()]);
    t.row(["busiest processor (cycles)".to_string(), max.to_string()]);
    t.row(["mean busy (cycles)".to_string(), mean.to_string()]);
    t.row([
        "imbalance (max/mean)".to_string(),
        f(max as f64 / mean.max(1) as f64, 2),
    ]);
    t.row([
        "parallel efficiency (busy/total)".to_string(),
        pct(sum as f64 / (r.sim.total_cycles.max(1) * n) as f64),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_kernel, ExperimentConfig};
    use tpi_proto::SchemeId;
    use tpi_workloads::{Kernel, Scale};

    fn result(scheme: SchemeId) -> ExperimentResult {
        let cfg = ExperimentConfig::builder().scheme(scheme).build().unwrap();
        run_kernel(Kernel::Arc2d, Scale::Test, &cfg).expect("runs")
    }

    #[test]
    fn all_reports_render() {
        let tpi = result(SchemeId::TPI);
        let hw = result(SchemeId::FULL_MAP);
        let cmp = scheme_comparison("cmp", &[("TPI", &tpi), ("HW", &hw)]);
        assert_eq!(cmp.len(), 2);
        let mc = miss_classes("classes", &tpi);
        assert!(!mc.is_empty());
        let tr = traffic("traffic", &tpi);
        assert_eq!(tr.len(), 3);
        let hot = hot_arrays("hot", &tpi, 4);
        assert!(hot.len() >= 2, "ARC2D misses on Q and R");
        let ms = marking_summary("marking", &tpi);
        assert!(ms.len() >= 4);
        let tl = epoch_timeline("timeline", &tpi, 5);
        assert!(tl.len() <= 5 && !tl.is_empty());
        let lb = load_balance("balance", &tpi);
        assert_eq!(lb.len(), 5);
        // Everything renders without panicking.
        for t in [cmp, mc, tr, hot, ms, tl, lb] {
            assert!(t.to_string().contains("##"));
        }
    }

    #[test]
    fn miss_class_shares_sum_to_one() {
        let r = result(SchemeId::TPI);
        let total: u64 = MissClass::ALL.iter().map(|&c| r.sim.agg.misses(c)).sum();
        assert_eq!(total, r.sim.agg.read_misses());
    }
}
