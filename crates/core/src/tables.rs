//! Plain-text table rendering for experiment reports.
//!
//! The benchmark harness regenerates the paper's tables and figures as
//! aligned text; this module is the shared renderer.

use std::fmt;

/// A column-aligned text table with a title and a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with the given title.
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the header row.
    pub fn headers<S: Into<String>>(&mut self, headers: impl IntoIterator<Item = S>) -> &mut Self {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width (when headers
    /// are set).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        if !self.headers.is_empty() {
            assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        }
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table as RFC-4180-ish CSV (quotes applied where cells
    /// contain commas or quotes), headers first.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        if !self.headers.is_empty() {
            out.push_str(
                &self
                    .headers
                    .iter()
                    .map(|h| cell(h))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map_or("", String::as_str);
                // First column left-aligned, the rest right-aligned
                // (labels left, numbers right).
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("  {cell:>w$}"));
                }
            }
            writeln!(f, "{}", line.trim_end())
        };
        if !self.headers.is_empty() {
            render(f, &self.headers)?;
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
            writeln!(f, "{}", "-".repeat(total))?;
        }
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// A horizontal ASCII bar chart — the closest a terminal gets to the
/// paper's figures.
///
/// # Examples
///
/// ```
/// use tpi::tables::BarChart;
///
/// let mut c = BarChart::new("Miss rates", "%");
/// c.bar("TPI", 4.7);
/// c.bar("HW", 4.6);
/// let s = c.to_string();
/// assert!(s.contains("TPI"));
/// assert!(s.contains('#'));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BarChart {
    title: String,
    unit: String,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// A new chart with a title and a value unit suffix.
    #[must_use]
    pub fn new(title: impl Into<String>, unit: impl Into<String>) -> Self {
        BarChart {
            title: title.into(),
            unit: unit.into(),
            bars: Vec::new(),
        }
    }

    /// Appends one bar.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        self.bars.push((label.into(), value.max(0.0)));
        self
    }

    /// Number of bars.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// Whether the chart has no bars.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }
}

impl fmt::Display for BarChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const WIDTH: f64 = 50.0;
        writeln!(f, "## {}", self.title)?;
        let max = self.bars.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
        let lw = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, v) in &self.bars {
            let n = if max > 0.0 {
                (v / max * WIDTH).round() as usize
            } else {
                0
            };
            writeln!(
                f,
                "{label:<lw$}  {}{} {v:.2}{}",
                "#".repeat(n),
                if n == 0 && *v > 0.0 { "." } else { "" },
                self.unit
            )?;
        }
        Ok(())
    }
}

/// Formats a float with `prec` decimals.
#[must_use]
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a ratio as a percentage with two decimals.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Miss rates");
        t.headers(["bench", "TPI", "HW"]);
        t.row(["FLO52", "1.20%", "1.10%"]);
        t.row(["QCD2", "11.00%", "9.80%"]);
        let s = t.to_string();
        assert!(s.contains("## Miss rates"));
        assert!(s.contains("bench"));
        assert!(s.contains("FLO52"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows end aligned on the last column.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x");
        t.headers(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn csv_rendering_escapes() {
        let mut t = Table::new("x");
        t.headers(["a", "b"]);
        t.row(["plain", "with,comma"]);
        t.row(["quote\"inside", "ok"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\nplain,\"with,comma\"\n\"quote\"\"inside\",ok\n");
        assert_eq!(t.title(), "x");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.0123), "1.23%");
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let mut c = BarChart::new("t", "x");
        c.bar("big", 10.0);
        c.bar("half", 5.0);
        c.bar("zero", 0.0);
        let s = c.to_string();
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str| l.chars().filter(|&ch| ch == '#').count();
        assert_eq!(count(lines[1]), 50);
        assert_eq!(count(lines[2]), 25);
        assert_eq!(count(lines[3]), 0);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }
}
