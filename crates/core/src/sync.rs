//! Poison-tolerant locking and panic containment, shared by every layer
//! that runs experiment pipelines on worker threads.
//!
//! The whole workspace follows one rule for shared state: every insert
//! into a store is complete-on-write — a panicking thread can abandon a
//! lock, but never leave a half-written entry behind it. Under that rule
//! a poisoned [`Mutex`] carries no extra information, so the uniform
//! response is to take the guard anyway ([`lock_unpoisoned`]) instead of
//! sprinkling `unwrap_or_else(PoisonError::into_inner)` at every site.
//!
//! [`catch_cell_panic`] is the matching containment primitive: it fences
//! one unit of work (one grid cell, one injected fault) so a panic
//! becomes a structured error for that unit's waiters instead of tearing
//! down the worker — the failure-isolation contract `tpi-serve` builds
//! on.

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `mutex`, tolerating poisoning.
///
/// Safe under the workspace's complete-on-write store discipline: a
/// panicking holder cannot have left the protected value in a
/// half-updated state, so the poison flag is noise, not signal.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Blocks on `condvar` like [`Condvar::wait`], tolerating poisoning.
pub fn wait_unpoisoned<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Blocks on `condvar` like [`Condvar::wait_timeout`], tolerating
/// poisoning.
pub fn wait_timeout_unpoisoned<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: std::time::Duration,
) -> (MutexGuard<'a, T>, std::sync::WaitTimeoutResult) {
    condvar
        .wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
}

/// Consumes `mutex` like [`Mutex::into_inner`], tolerating poisoning.
pub fn into_inner_unpoisoned<T>(mutex: Mutex<T>) -> T {
    mutex.into_inner().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a panic payload as the human-readable message `panic!` was
/// given (or a placeholder for non-string payloads).
#[must_use]
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `f`, converting a panic into `Err(message)`.
///
/// The closure is asserted unwind-safe: every store the experiment
/// pipeline touches is complete-on-write and locked via
/// [`lock_unpoisoned`], so an unwound computation can be retried or
/// reported without observing torn state.
///
/// # Errors
///
/// Returns the panic's message if `f` panicked.
pub fn catch_cell_panic<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    std::panic::catch_unwind(AssertUnwindSafe(f)).map_err(|payload| panic_message(&*payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_unpoisoned_recovers_a_poisoned_mutex() {
        let mutex = std::sync::Arc::new(Mutex::new(7u32));
        let clone = std::sync::Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(mutex.is_poisoned());
        assert_eq!(*lock_unpoisoned(&mutex), 7);
    }

    #[test]
    fn catch_cell_panic_reports_the_message() {
        assert_eq!(catch_cell_panic(|| 42), Ok(42));
        let err = catch_cell_panic(|| panic!("boom")).unwrap_err();
        assert_eq!(err, "boom");
        let err = catch_cell_panic(|| panic!("cell {} failed", 3)).unwrap_err();
        assert_eq!(err, "cell 3 failed");
    }
}
