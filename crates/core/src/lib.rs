//! `tpi` — hardware-supported, compiler-directed cache coherence, end to
//! end.
//!
//! This crate is the public facade of the reproduction of Choi & Yew,
//! *"Compiler and Hardware Support for Cache Coherence in Large-Scale
//! Multiprocessors"* (ISCA 1996). It wires the layers together:
//!
//! 1. a parallel program (one of the six Perfect-Club-like kernels from
//!    [`tpi_workloads`], or your own [`tpi_ir`] program),
//! 2. the Polaris-style stale-reference marking pass ([`tpi_compiler`]),
//! 3. execution-driven trace generation ([`tpi_trace`]),
//! 4. a coherence engine — BASE / SC / TPI / full-map directory /
//!    LimitLess ([`tpi_proto`]) — timed by the multiprocessor simulator
//!    ([`tpi_sim`]) over a Kruskal–Snir network model ([`tpi_net`]).
//!
//! # Quickstart
//!
//! ```
//! use tpi::{ExperimentConfig, run_kernel};
//! use tpi_proto::SchemeKind;
//! use tpi_workloads::{Kernel, Scale};
//!
//! let mut cfg = ExperimentConfig::paper();
//! cfg.scheme = SchemeKind::Tpi;
//! let tpi = run_kernel(Kernel::Flo52, Scale::Test, &cfg)?;
//! cfg.scheme = SchemeKind::FullMap;
//! let hw = run_kernel(Kernel::Flo52, Scale::Test, &cfg)?;
//! println!(
//!     "TPI: {} cycles ({:.2}% miss), HW: {} cycles ({:.2}% miss)",
//!     tpi.sim.total_cycles,
//!     100.0 * tpi.sim.miss_rate(),
//!     hw.sim.total_cycles,
//!     100.0 * hw.sim.miss_rate(),
//! );
//! # Ok::<(), tpi_trace::TraceError>(())
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod experiment;
pub mod report;
pub mod tables;

pub use config::ExperimentConfig;
pub use experiment::{run_kernel, run_program, ExperimentResult};
pub use tables::{BarChart, Table};

// Re-export the layer crates so downstream users need only one dependency.
pub use tpi_cache as cache;
pub use tpi_compiler as compiler;
pub use tpi_ir as ir;
pub use tpi_mem as mem;
pub use tpi_net as net;
pub use tpi_proto as proto;
pub use tpi_sim as sim;
pub use tpi_trace as trace;
pub use tpi_workloads as workloads;
