//! `tpi` — hardware-supported, compiler-directed cache coherence, end to
//! end.
//!
//! This crate is the public facade of the reproduction of Choi & Yew,
//! *"Compiler and Hardware Support for Cache Coherence in Large-Scale
//! Multiprocessors"* (ISCA 1996). It wires the layers together:
//!
//! 1. a parallel program (one of the six Perfect-Club-like kernels from
//!    [`tpi_workloads`], or your own [`tpi_ir`] program),
//! 2. the Polaris-style stale-reference marking pass ([`tpi_compiler`]),
//! 3. execution-driven trace generation ([`tpi_trace`]),
//! 4. a coherence engine — BASE / SC / TPI / full-map directory /
//!    LimitLess ([`tpi_proto`]) — timed by the multiprocessor simulator
//!    ([`tpi_sim`]) over a Kruskal–Snir network model ([`tpi_net`]).
//!
//! # Quickstart
//!
//! ```
//! use tpi::Runner;
//! use tpi_proto::{registry, SchemeId};
//! use tpi_workloads::{Kernel, Scale};
//!
//! // The Runner compiles and traces the kernel once, then simulates both
//! // schemes from the shared trace (in parallel on a multicore host).
//! let runner = Runner::new();
//! let grid = runner
//!     .grid()
//!     .kernel(Kernel::Flo52)
//!     .scale(Scale::Test)
//!     .schemes([SchemeId::TPI, SchemeId::FULL_MAP])
//!     .run()?;
//! let tpi = grid.get(Kernel::Flo52, SchemeId::TPI);
//! let hw = grid.get(Kernel::Flo52, SchemeId::FULL_MAP);
//! println!(
//!     "TPI: {} cycles ({:.2}% miss), HW: {} cycles ({:.2}% miss)",
//!     tpi.sim.total_cycles,
//!     100.0 * tpi.sim.miss_rate(),
//!     hw.sim.total_cycles,
//!     100.0 * hw.sim.miss_rate(),
//! );
//! # Ok::<(), tpi_trace::TraceError>(())
//! ```
//!
//! One-off machine variations go through [`ExperimentConfig::builder`],
//! which validates the machine description before anything runs:
//!
//! ```
//! use tpi::{run_kernel, ExperimentConfig};
//! use tpi_workloads::{Kernel, Scale};
//!
//! let cfg = ExperimentConfig::builder()
//!     .procs(32)
//!     .tag_bits(4)
//!     .build()
//!     .expect("a valid machine");
//! let r = run_kernel(Kernel::Ocean, Scale::Test, &cfg)?;
//! assert!(r.sim.total_cycles > 0);
//! # Ok::<(), tpi_trace::TraceError>(())
//! ```

#![warn(missing_docs)]

pub mod cli;
pub mod config;
pub mod experiment;
pub mod prof;
pub mod report;
pub mod runner;
pub mod stepper;
pub mod sync;
pub mod tables;

pub use cli::CliError;
pub use config::{ConfigBuilder, ConfigError, ExperimentConfig};
pub use experiment::{run_kernel, run_program, ExperimentResult};
pub use prof::{ProfileReport, Profiler, StageProfile};
pub use runner::{
    CacheStats, CellGrid, CellId, GridBuilder, GridOutcome, GridResult, PreparedCell,
    ProgramSource, RunSpec, Runner, RunnerStats, StageCache,
};
pub use stepper::EngineStepper;
pub use sync::{
    catch_cell_panic, into_inner_unpoisoned, lock_unpoisoned, panic_message,
    wait_timeout_unpoisoned, wait_unpoisoned,
};
pub use tables::{BarChart, Table};

// Re-export the layer crates so downstream users need only one dependency.
pub use tpi_cache as cache;
pub use tpi_compiler as compiler;
pub use tpi_ir as ir;
pub use tpi_mem as mem;
pub use tpi_net as net;
pub use tpi_proto as proto;
pub use tpi_sim as sim;
pub use tpi_trace as trace;
pub use tpi_workloads as workloads;
