//! Edge cases of the epoch flow graph and distance computation: skip
//! edges, provably-nonempty loops, multi-site merging, call chains, and
//! zero-iteration epochs.

use tpi_compiler::{mark_program, CompilerOptions, MarkReason, OptLevel};
use tpi_ir::{subs, Cond, ProgramBuilder, RefSite, StmtId};

fn full() -> CompilerOptions {
    CompilerOptions {
        level: OptLevel::Full,
    }
}

fn site(stmt: u32, idx: u32) -> RefSite {
    RefSite {
        stmt: StmtId(stmt),
        idx,
    }
}

#[test]
fn provably_nonempty_loop_lengthens_distance() {
    // writer; loop (definitely >= 1 iteration) { unrelated doall }; reader.
    // The loop body cannot be skipped, so the minimum distance is 2.
    let mut p = ProgramBuilder::new();
    let a = p.shared("A", [32]);
    let b = p.shared("B", [32]);
    let main = p.proc("main", |f| {
        f.doall(0, 31, |i, f| f.store(a.at(subs![i]), vec![], 1)); // S0
        f.serial(0, 1, |_t, f| {
            f.doall(0, 31, |i, f| f.store(b.at(subs![i]), vec![], 1)); // S1
        });
        f.doall(0, 31, |i, f| f.load(vec![a.at(subs![i])], 1)); // S2
    });
    let prog = p.finish(main).unwrap();
    let m = mark_program(&prog, &full());
    assert_eq!(m.decision(site(2, 0)).unwrap().distance, 2);
}

#[test]
fn possibly_empty_loop_adds_skip_edge() {
    // Same shape but the inner loop's bounds depend on an outer variable,
    // so the analysis cannot prove it executes: the skip edge shortens the
    // sound distance to 1.
    let mut p = ProgramBuilder::new();
    let a = p.shared("A", [32]);
    let b = p.shared("B", [32]);
    let main = p.proc("main", |f| {
        f.serial(0, 1, |t, f| {
            f.doall(0, 31, |i, f| f.store(a.at(subs![i]), vec![], 1)); // S0
                                                                       // Loop from t..=0: empty when t = 1.
            f.serial(t, 0, |_u, f| {
                f.doall(0, 31, |i, f| f.store(b.at(subs![i]), vec![], 1)); // S1
            });
            f.doall(0, 31, |i, f| f.load(vec![a.at(subs![i])], 1)); // S2
        });
    });
    let prog = p.finish(main).unwrap();
    let m = mark_program(&prog, &full());
    assert_eq!(
        m.decision(site(2, 0)).unwrap().distance,
        1,
        "skippable epoch must not widen the window"
    );
}

#[test]
fn empty_branch_arm_is_a_passthrough() {
    let mut p = ProgramBuilder::new();
    let a = p.shared("A", [32]);
    let b = p.shared("B", [32]);
    let main = p.proc("main", |f| {
        f.serial(0, 3, |t, f| {
            f.doall(0, 31, |i, f| f.store(a.at(subs![i]), vec![], 1)); // S0
                                                                       // Branch whose taken arm has an epoch and whose else arm is
                                                                       // empty: the reader may follow either path.
            f.if_then(
                Cond::EveryN {
                    var: t,
                    modulus: 2,
                    phase: 0,
                },
                |f| {
                    f.doall(0, 31, |i, f| f.store(b.at(subs![i]), vec![], 1)); // S1
                },
            );
            f.doall(0, 31, |i, f| f.load(vec![a.at(subs![i])], 1)); // S2
        });
    });
    let prog = p.finish(main).unwrap();
    let m = mark_program(&prog, &full());
    assert_eq!(m.decision(site(2, 0)).unwrap().distance, 1);
}

#[test]
fn multi_call_site_marking_merges_to_minimum() {
    // A reader procedure invoked from two contexts: right after the writer
    // (distance 1) and two epochs after it (distance 2). The single static
    // site must carry the sound minimum, 1.
    let mut p = ProgramBuilder::new();
    let a = p.shared("A", [32]);
    let b = p.shared("B", [32]);
    let reader = p.proc("reader", |f| {
        f.doall(0, 31, |i, f| f.load(vec![a.at(subs![i])], 1)); // S0
    });
    let main = p.proc("main", |f| {
        f.doall(0, 31, |i, f| f.store(a.at(subs![i]), vec![], 1)); // S1
        f.call(reader); // context 1: distance 1
        f.doall(0, 31, |i, f| f.store(b.at(subs![i]), vec![], 1)); // S2
        f.call(reader); // context 2: distance 3 (through reader + b-epoch)
    });
    let prog = p.finish(main).unwrap();
    let m = mark_program(&prog, &full());
    assert_eq!(m.decision(site(0, 0)).unwrap().distance, 1);
}

#[test]
fn three_deep_call_chain_is_analyzed() {
    let mut p = ProgramBuilder::new();
    let a = p.shared("A", [32]);
    let b = p.shared("B", [32]);
    let leaf = p.proc("leaf", |f| {
        f.doall(0, 31, |i, f| f.store(b.at(subs![i]), vec![], 1)); // S0
    });
    let mid = p.proc("mid", |f| {
        f.call(leaf);
        f.call(leaf);
    });
    let main = p.proc("main", |f| {
        f.doall(0, 31, |i, f| f.store(a.at(subs![i]), vec![], 1)); // S1
        f.call(mid); // expands to two b-writing epochs
        f.doall(0, 31, |i, f| f.load(vec![a.at(subs![i])], 1)); // S2
    });
    let prog = p.finish(main).unwrap();
    let m = mark_program(&prog, &full());
    // Two epochs of `leaf` sit between writer and reader.
    assert_eq!(m.decision(site(2, 0)).unwrap().distance, 3);
}

#[test]
fn serial_only_call_is_inlined_into_the_epoch() {
    // A call to a DOALL-free procedure merges into the surrounding serial
    // epoch; its writes count as same-processor (non-staling) writes.
    let mut p = ProgramBuilder::new();
    let a = p.shared("A", [32]);
    let helper = p.proc("helper", |f| {
        f.store(a.at(subs![3]), vec![], 1); // S0, serial
    });
    let main = p.proc("main", |f| {
        f.call(helper);
        f.load(vec![a.at(subs![3])], 1); // S1: same serial epoch, covered
        f.doall(0, 31, |i, f| f.load(vec![a.at(subs![i])], 1)); // S2: d=1
    });
    let prog = p.finish(main).unwrap();
    let m = mark_program(&prog, &full());
    let d1 = m.decision(site(1, 0)).unwrap();
    assert!(!d1.stale, "helper's write covers the same-epoch read");
    assert_eq!(d1.reason, MarkReason::Covered);
    let d2 = m.decision(site(2, 0)).unwrap();
    assert_eq!(d2.distance, 1);
}

#[test]
fn two_dimensional_disjoint_sections() {
    // Writers touch the upper half of a matrix, readers the lower half:
    // never stale despite both being "the same array".
    let mut p = ProgramBuilder::new();
    let a = p.shared("A", [64, 64]);
    let main = p.proc("main", |f| {
        f.doall(0, 31, |i, f| {
            f.serial(0, 63, |j, f| f.store(a.at(subs![i, j]), vec![], 1));
        });
        f.doall(32, 63, |i, f| {
            f.serial(0, 63, |j, f| f.load(vec![a.at(subs![i, j])], 1)); // S1
        });
    });
    let prog = p.finish(main).unwrap();
    let m = mark_program(&prog, &full());
    assert_eq!(m.decision(site(1, 0)).unwrap().reason, MarkReason::NoWriter);
}

#[test]
fn branch_arms_inside_a_task_are_both_analyzed() {
    // Reads in both arms of an if inside a DOALL body get decisions.
    let mut p = ProgramBuilder::new();
    let a = p.shared("A", [32]);
    let b = p.shared("B", [32]);
    let main = p.proc("main", |f| {
        f.doall(0, 31, |i, f| f.store(a.at(subs![i]), vec![], 1)); // S0
        f.doall(0, 31, |i, f| {
            f.if_else(
                Cond::EveryN {
                    var: i,
                    modulus: 2,
                    phase: 0,
                },
                |f| f.store(b.at(subs![i]), vec![a.at(subs![i])], 1), // S1
                |f| f.store(b.at(subs![i]), vec![a.at(subs![i])], 2), // S2
            );
        });
    });
    let prog = p.finish(main).unwrap();
    let m = mark_program(&prog, &full());
    assert_eq!(m.decision(site(1, 0)).unwrap().distance, 1);
    assert_eq!(m.decision(site(2, 0)).unwrap().distance, 1);
}

#[test]
fn unreachable_procedures_are_not_marked_in_full_mode() {
    let mut p = ProgramBuilder::new();
    let a = p.shared("A", [32]);
    let _orphan = p.proc("orphan", |f| {
        f.doall(0, 31, |i, f| f.load(vec![a.at(subs![i])], 1)); // S0
    });
    let main = p.proc("main", |f| {
        f.doall(0, 31, |i, f| f.store(a.at(subs![i]), vec![], 1)); // S1
    });
    let prog = p.finish(main).unwrap();
    let m = mark_program(&prog, &full());
    // Both modes analyze only procedures reachable from the entry; the
    // orphan's site is unseen and defaults to Plain — sound only because
    // it never executes.
    assert!(m.decision(site(0, 0)).is_none());
    let mi = mark_program(
        &prog,
        &CompilerOptions {
            level: OptLevel::Intra,
        },
    );
    assert!(mi.decision(site(0, 0)).is_none());
    // The reachable writer is seen by both.
    assert!(
        m.decision(site(1, 0)).is_none(),
        "writes have no read decisions"
    );
}
