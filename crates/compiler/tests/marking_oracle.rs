//! Property-based marking soundness, judged by the staleness oracle.
//!
//! The engine-level property tests (`tests/properties.rs` at the workspace
//! root) check soundness through the simulators' shadow versions. These
//! tests use the *oracle* from `tpi-analysis` as an independent judge: it
//! replays traces against a worst-case never-evict cache model, so it
//! flags any marking a real cache of any geometry could be burned by.
//!
//! Two properties are pinned:
//!
//! * **Shrinking is sound**: reducing any Time-Read distance (toward 0 =
//!   always refetch) can never introduce a violation. The compiler is free
//!   to round distances down — e.g. when the timetag width can't represent
//!   them — without a correctness argument.
//! * **Weaker analysis marks more**: every read Full marks stale, Intra
//!   marks stale too (site-by-site, not just in aggregate), and with a
//!   distance that is never larger — so falling back to the cheaper
//!   analysis is always safe.

use tpi_analysis::{check_trace, OracleMode};
use tpi_compiler::{mark_program, CompilerOptions, MarkDecision, OptLevel};
use tpi_ir::{subs, Program, ProgramBuilder};
use tpi_testkit::prelude::*;
use tpi_trace::{generate_trace, TraceOptions};

const N_ITER: i64 = 31;
const ARR: u64 = 40;
const N_ARRAYS: usize = 3;

/// One read in a DOALL body: `A_array[i + shift]`.
#[derive(Debug, Clone)]
struct ReadSpec {
    array: usize,
    shift: i64,
}

/// One epoch-to-be: `doall i: A_write[i] = f(reads...)`.
#[derive(Debug, Clone)]
struct SegSpec {
    write: usize,
    reads: Vec<ReadSpec>,
}

fn seg_spec() -> impl Strategy<Value = SegSpec> {
    (
        0..N_ARRAYS,
        prop::collection::vec((0..N_ARRAYS, 0..5i64), 0..3),
    )
        .prop_map(|(write, reads)| SegSpec {
            write,
            reads: reads
                .into_iter()
                .map(|(array, shift)| ReadSpec { array, shift })
                .collect(),
        })
}

fn prog_spec() -> impl Strategy<Value = Vec<SegSpec>> {
    prop::collection::vec(seg_spec(), 1..6)
}

/// Builds a race-free program: owner-computes DOALLs with shifted reads.
/// A read of the epoch's own written array is repaired to shift 0 so no
/// iteration reads what another concurrently writes.
fn build_program(segs: &[SegSpec]) -> Program {
    let mut p = ProgramBuilder::new();
    let arrays: Vec<_> = (0..N_ARRAYS)
        .map(|k| p.shared(&format!("A{k}"), [ARR]))
        .collect();
    let main = p.proc("main", |f| {
        for a in &arrays {
            let a = *a;
            f.doall(0, ARR as i64 - 1, move |i, f| {
                f.store(a.at(subs![i]), vec![], 1)
            });
        }
        for seg in segs {
            let write = seg.write;
            let reads: Vec<ReadSpec> = seg
                .reads
                .iter()
                .map(|r| {
                    if r.array == write {
                        ReadSpec {
                            array: write,
                            shift: 0,
                        }
                    } else {
                        r.clone()
                    }
                })
                .collect();
            let arrays = arrays.clone();
            f.doall(0, N_ITER, move |i, f| {
                let read_refs: Vec<_> = reads
                    .iter()
                    .map(|r| arrays[r.array].at(subs![i + r.shift]))
                    .collect();
                f.store(arrays[write].at(subs![i]), read_refs, 2);
            });
        }
    });
    p.finish(main).expect("generated programs are well-formed")
}

fn trace_opts() -> TraceOptions {
    TraceOptions {
        num_procs: 8,
        ..TraceOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn shrinking_any_distance_stays_sound(segs in prog_spec()) {
        let program = build_program(&segs);
        let marking = mark_program(&program, &CompilerOptions { level: OptLevel::Full });
        let trace = generate_trace(&program, &marking, &trace_opts())
            .expect("race-free by construction");
        prop_assert!(check_trace(&trace, OracleMode::Tpi).is_sound());

        // Round every stale distance down by one (floor 0) and replay:
        // being more conservative can never create a violation.
        let mut shrunk = marking.clone();
        let sites: Vec<_> = marking
            .sites()
            .filter(|(_, d)| d.stale && d.distance > 0)
            .map(|(site, d)| (site, *d))
            .collect();
        for (site, d) in sites {
            shrunk.set_decision(site, MarkDecision::stale(d.distance - 1, d.reason));
        }
        let trace = generate_trace(&program, &shrunk, &trace_opts())
            .expect("shrinking distances cannot introduce races");
        let report = check_trace(&trace, OracleMode::Tpi);
        prop_assert!(report.is_sound(), "violations: {:?}", report.violations);
        prop_assert!(check_trace(&trace, OracleMode::Sc).is_sound());
    }

    #[test]
    fn intra_marks_a_superset_of_full_site_by_site(segs in prog_spec()) {
        let program = build_program(&segs);
        let full = mark_program(&program, &CompilerOptions { level: OptLevel::Full });
        let intra = mark_program(&program, &CompilerOptions { level: OptLevel::Intra });
        for (site, fd) in full.sites() {
            if !fd.stale {
                continue;
            }
            let id = intra.decision(site).expect("intra decided every site full did");
            prop_assert!(
                id.stale,
                "full marks stmt {} read {} stale (d={}) but intra does not",
                site.stmt.0, site.idx, fd.distance
            );
            prop_assert!(
                id.distance <= fd.distance,
                "intra distance {} exceeds full's {} at stmt {} read {}",
                id.distance, fd.distance, site.stmt.0, site.idx
            );
        }
    }
}
