//! The epoch flow graph: static epochs and the control flow between them.
//!
//! This is the paper's "modified flow graph, called the epoch flow graph"
//! (\[21\] in the paper): nodes are static epochs (one DOALL loop or one
//! maximal serial region), edges connect epochs that can execute
//! consecutively, and every node carries the array references executed
//! within it, summarized as bounded regular sections.
//!
//! Interprocedural analysis is performed by *inlining* callee epoch
//! structure at each call site (the IR forbids recursion, so this
//! terminates); this is at least as precise as the paper's bottom-up
//! side-effect propagation. The intraprocedural-only ablation
//! ([`OptLevel::Intra`](crate::OptLevel)) instead models each epoch-bearing
//! call as an opaque node that may write every shared array — reproducing
//! the "invalidate at procedure boundaries" behaviour of earlier schemes the
//! paper improves upon.

use crate::OptLevel;
use std::collections::HashSet;
use tpi_ir::epochs::{EpochShape, Segment};
use tpi_ir::{
    ArrayRef, Assign, DimRange, ProcIdx, Program, RefSite, Section, Stmt, Subscript, VarId,
    VarRanges,
};
use tpi_mem::{ArrayId, Sharing};

/// Index of a node in the epoch flow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// What kind of epoch a node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochKind {
    /// A maximal serial region: executes on a single processor.
    Serial,
    /// A DOALL loop over the given induction variable: iterations are
    /// distributed over processors with compile-time-unknown scheduling.
    Doall(VarId),
    /// An epoch-bearing call treated opaquely (intraprocedural mode only):
    /// may write any shared array, any number of internal boundaries is
    /// possible (conservatively one).
    OpaqueCall,
}

/// Per-dimension shape of a subscript relative to the node's DOALL variable,
/// used by the same-iteration disjointness test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimShape {
    /// Affine subscript split as `coeff_v * v + rest`.
    Affine {
        /// Coefficient of the DOALL variable (zero in serial epochs).
        coeff_v: i64,
        /// The subscript with the DOALL-variable term removed.
        rest: tpi_ir::Affine,
        /// Value range of `rest` under the bindings in scope at the
        /// reference (None when some variable is unbounded).
        rest_range: Option<DimRange>,
    },
    /// Unanalyzable subscript.
    Opaque,
}

/// A read reference recorded in a node.
#[derive(Debug, Clone)]
pub struct NodeRead {
    /// Static identity of the reference.
    pub site: RefSite,
    /// Referenced array.
    pub array: ArrayId,
    /// Over-approximate element set across the whole epoch.
    pub section: Section,
    /// Raw subscripts (for coverage tests).
    pub raw: ArrayRef,
    /// Per-dimension shape w.r.t. the node's DOALL variable.
    pub shape: Vec<DimShape>,
    /// Whether an earlier access in the same task provably covers this read
    /// (read-after-local-access: never stale).
    pub covered: bool,
}

/// A write reference recorded in a node.
#[derive(Debug, Clone)]
pub struct NodeWrite {
    /// Written array.
    pub array: ArrayId,
    /// Over-approximate element set across the whole epoch.
    pub section: Section,
    /// Per-dimension shape w.r.t. the node's DOALL variable.
    pub shape: Vec<DimShape>,
    /// Whether the write sits inside a lock-guarded critical section (the
    /// lock, not the iteration space, serializes it).
    pub critical: bool,
}

/// One static epoch.
#[derive(Debug, Clone)]
pub struct EpochNode {
    /// Serial, DOALL, or opaque call.
    pub kind: EpochKind,
    /// Reads executed in this epoch, in walk order.
    pub reads: Vec<NodeRead>,
    /// Writes executed in this epoch.
    pub writes: Vec<NodeWrite>,
    /// If set, the node may write any element of any shared array
    /// (opaque-call conservatism).
    pub writes_everything: bool,
    /// Whether the epoch contains post/wait synchronization: accesses may
    /// be ordered by events rather than the iteration space.
    pub has_sync: bool,
}

impl EpochNode {
    /// Whether this node may write an element of `array` intersecting
    /// `section`.
    #[must_use]
    pub fn may_write(&self, array: ArrayId, section: &Section) -> bool {
        self.writes_everything
            || self
                .writes
                .iter()
                .any(|w| w.array == array && w.section.may_intersect(section))
    }

    /// Whether this node writes anything at all.
    #[must_use]
    pub fn writes_anything(&self) -> bool {
        self.writes_everything || !self.writes.is_empty()
    }
}

/// The epoch flow graph of a program (or of one procedure in
/// intraprocedural mode).
#[derive(Debug, Clone)]
pub struct EpochFlowGraph {
    nodes: Vec<EpochNode>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
}

impl EpochFlowGraph {
    /// All nodes.
    #[must_use]
    pub fn nodes(&self) -> &[EpochNode] {
        &self.nodes
    }

    /// Node by id.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &EpochNode {
        &self.nodes[id.0]
    }

    /// Immediate predecessor epochs of `id`.
    #[must_use]
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id.0]
    }

    /// Immediate successor epochs of `id`.
    #[must_use]
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.0]
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no epochs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Builds the interprocedural (inlined) graph of the whole program.
    #[must_use]
    pub fn of_program(program: &Program) -> Self {
        let shape = EpochShape::of(program);
        let mut b = GraphBuilder::new(program, &shape, OptLevel::Full);
        let mut ranges = VarRanges::new();
        let segs = shape.segment_proc(program, program.entry);
        let _ = b.build_segments(&segs, program.entry, &mut ranges);
        b.finish()
    }

    /// Builds the intraprocedural graph of one procedure: epoch-bearing
    /// calls become opaque may-write-everything nodes, and a virtual opaque
    /// predecessor models the unknown caller context.
    #[must_use]
    pub fn of_proc_intra(program: &Program, proc: ProcIdx) -> Self {
        let shape = EpochShape::of(program);
        let mut b = GraphBuilder::new(program, &shape, OptLevel::Intra);
        // Virtual entry: unknown prior context that may have written
        // everything (procedure-boundary conservatism).
        let virt = b.new_node(EpochKind::OpaqueCall);
        b.nodes[virt.0].writes_everything = true;
        let mut ranges = VarRanges::new();
        let segs = shape.segment_proc(program, proc);
        let region = b.build_segments(&segs, proc, &mut ranges);
        for e in &region.entries {
            b.edge(virt, *e);
        }
        b.finish()
    }
}

/// Entry/exit summary of a built sub-region of the graph.
struct Region {
    entries: Vec<NodeId>,
    exits: Vec<NodeId>,
    /// Whether the region can execute without entering any epoch.
    passthrough: bool,
}

struct GraphBuilder<'p> {
    program: &'p Program,
    shape: &'p EpochShape,
    level: OptLevel,
    nodes: Vec<EpochNode>,
    succs: Vec<Vec<NodeId>>,
}

impl<'p> GraphBuilder<'p> {
    fn new(program: &'p Program, shape: &'p EpochShape, level: OptLevel) -> Self {
        GraphBuilder {
            program,
            shape,
            level,
            nodes: Vec::new(),
            succs: Vec::new(),
        }
    }

    fn new_node(&mut self, kind: EpochKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(EpochNode {
            kind,
            reads: Vec::new(),
            writes: Vec::new(),
            writes_everything: false,
            has_sync: false,
        });
        self.succs.push(Vec::new());
        id
    }

    fn edge(&mut self, from: NodeId, to: NodeId) {
        if !self.succs[from.0].contains(&to) {
            self.succs[from.0].push(to);
        }
    }

    fn finish(self) -> EpochFlowGraph {
        let mut preds = vec![Vec::new(); self.nodes.len()];
        for (u, ss) in self.succs.iter().enumerate() {
            for v in ss {
                preds[v.0].push(NodeId(u));
            }
        }
        EpochFlowGraph {
            nodes: self.nodes,
            succs: self.succs,
            preds,
        }
    }

    fn build_segments(
        &mut self,
        segs: &[Segment<'p>],
        proc: ProcIdx,
        ranges: &mut VarRanges,
    ) -> Region {
        let mut entries: Vec<NodeId> = Vec::new();
        let mut exits: Vec<NodeId> = Vec::new();
        let mut passthrough = true; // empty prefix executes no epoch
        for seg in segs {
            let r = self.build_segment(seg, proc, ranges);
            // Connect current exits to the new region's entries.
            for x in &exits {
                for e in &r.entries {
                    self.edge(*x, *e);
                }
            }
            if passthrough {
                entries.extend(r.entries.iter().copied());
            }
            if r.passthrough {
                exits.extend(r.exits.iter().copied());
            } else {
                exits = r.exits;
            }
            passthrough &= r.passthrough;
            dedup(&mut entries);
            dedup(&mut exits);
        }
        Region {
            entries,
            exits,
            passthrough,
        }
    }

    fn build_segment(
        &mut self,
        seg: &Segment<'p>,
        proc: ProcIdx,
        ranges: &mut VarRanges,
    ) -> Region {
        match seg {
            Segment::Serial(stmts) => {
                let id = self.new_node(EpochKind::Serial);
                let mut walk = RefWalk::new(self.program, self.level, None);
                walk.walk_stmts(stmts.iter().copied(), ranges);
                let (reads, writes, we, sync) = walk.into_parts();
                self.nodes[id.0].reads = reads;
                self.nodes[id.0].writes = writes;
                self.nodes[id.0].writes_everything = we;
                self.nodes[id.0].has_sync = sync;
                Region {
                    entries: vec![id],
                    exits: vec![id],
                    passthrough: false,
                }
            }
            Segment::Doall(l) => {
                let id = self.new_node(EpochKind::Doall(l.var));
                let bound = ranges.bind_loop(l.var, &l.lo, &l.hi, l.step);
                if bound.is_none() {
                    ranges.unbind(l.var);
                }
                let mut walk = RefWalk::new(self.program, self.level, Some(l.var));
                walk.walk_stmts(l.body.iter(), ranges);
                ranges.unbind(l.var);
                let (reads, writes, we, sync) = walk.into_parts();
                self.nodes[id.0].reads = reads;
                self.nodes[id.0].writes = writes;
                self.nodes[id.0].writes_everything = we;
                self.nodes[id.0].has_sync = sync;
                Region {
                    entries: vec![id],
                    exits: vec![id],
                    passthrough: false,
                }
            }
            Segment::SerialLoop { l, body } => {
                let bound = ranges.bind_loop(l.var, &l.lo, &l.hi, l.step);
                if bound.is_none() {
                    ranges.unbind(l.var);
                }
                let may_be_empty = loop_may_be_empty(&l.lo, &l.hi, ranges);
                let r = self.build_segments(body, proc, ranges);
                ranges.unbind(l.var);
                // Back edge: each iteration re-enters the body.
                for x in &r.exits {
                    for e in &r.entries {
                        self.edge(*x, *e);
                    }
                }
                Region {
                    entries: r.entries,
                    exits: r.exits,
                    passthrough: r.passthrough || may_be_empty,
                }
            }
            Segment::Branch {
                then_seg, else_seg, ..
            } => {
                let t = self.build_segments(then_seg, proc, ranges);
                let e = self.build_segments(else_seg, proc, ranges);
                let mut entries = t.entries;
                entries.extend(e.entries);
                let mut exits = t.exits;
                exits.extend(e.exits);
                Region {
                    entries,
                    exits,
                    passthrough: t.passthrough || e.passthrough,
                }
            }
            Segment::Call(callee) => match self.level {
                OptLevel::Full => {
                    let segs = self.shape.segment(&self.program.proc(*callee).body);
                    let mut callee_ranges = VarRanges::new();
                    self.build_segments(&segs, *callee, &mut callee_ranges)
                }
                OptLevel::Intra | OptLevel::Naive => {
                    let id = self.new_node(EpochKind::OpaqueCall);
                    self.nodes[id.0].writes_everything = true;
                    Region {
                        entries: vec![id],
                        exits: vec![id],
                        passthrough: false,
                    }
                }
            },
        }
    }
}

fn dedup(v: &mut Vec<NodeId>) {
    let mut seen = HashSet::new();
    v.retain(|x| seen.insert(*x));
}

fn loop_may_be_empty(lo: &tpi_ir::Affine, hi: &tpi_ir::Affine, ranges: &VarRanges) -> bool {
    match (ranges.range_of(lo), ranges.range_of(hi)) {
        // Definitely nonempty iff even the largest lower bound is at most
        // the smallest upper bound.
        (Some(l), Some(h)) => l.hi > h.lo,
        _ => true,
    }
}

/// Walks the statements of one epoch, collecting reads/writes with sections,
/// shapes and task-local coverage.
struct RefWalk<'p> {
    program: &'p Program,
    level: OptLevel,
    doall_var: Option<VarId>,
    reads: Vec<NodeRead>,
    writes: Vec<NodeWrite>,
    writes_everything: bool,
    covered: HashSet<(ArrayId, Vec<Subscript>)>,
    /// Inside a lock-guarded critical section.
    in_critical: bool,
    /// Saw post/wait synchronization anywhere in the epoch.
    saw_sync: bool,
}

impl<'p> RefWalk<'p> {
    fn new(program: &'p Program, level: OptLevel, doall_var: Option<VarId>) -> Self {
        RefWalk {
            program,
            level,
            doall_var,
            reads: Vec::new(),
            writes: Vec::new(),
            writes_everything: false,
            covered: HashSet::new(),
            in_critical: false,
            saw_sync: false,
        }
    }

    fn into_parts(self) -> (Vec<NodeRead>, Vec<NodeWrite>, bool, bool) {
        (
            self.reads,
            self.writes,
            self.writes_everything,
            self.saw_sync,
        )
    }

    fn walk_stmts<'s>(&mut self, stmts: impl IntoIterator<Item = &'s Stmt>, ranges: &mut VarRanges)
    where
        'p: 's,
    {
        for s in stmts {
            self.walk_stmt(s, ranges);
        }
    }

    fn walk_stmt(&mut self, s: &Stmt, ranges: &mut VarRanges) {
        match s {
            Stmt::Assign(a) => self.visit_assign(a, ranges),
            Stmt::Loop(l) => {
                let bound = ranges.bind_loop(l.var, &l.lo, &l.hi, l.step);
                if bound.is_none() {
                    ranges.unbind(l.var);
                }
                let snapshot = self.covered.clone();
                self.walk_stmts(&l.body, ranges);
                ranges.unbind(l.var);
                // Entries added inside the loop are only valid within one
                // iteration; conservatively restore the entry coverage.
                self.covered = snapshot;
            }
            Stmt::If(i) => {
                let entry = self.covered.clone();
                self.walk_stmts(&i.then_body, ranges);
                let after_then = std::mem::replace(&mut self.covered, entry);
                self.walk_stmts(&i.else_body, ranges);
                // Only coverage established on *both* arms survives the join.
                self.covered = self.covered.intersection(&after_then).cloned().collect();
            }
            Stmt::Call(p) => match self.level {
                OptLevel::Full => {
                    // Serial-only callee inside this epoch: inline its
                    // references. Its own variable space starts fresh; its
                    // coverage is task-local and composes with ours.
                    let mut callee_ranges = VarRanges::new();
                    let body = &self.program.proc(*p).body;
                    self.walk_stmts(body, &mut callee_ranges);
                }
                OptLevel::Intra | OptLevel::Naive => {
                    // Opaque serial call: runs on the same processor, so it
                    // cannot *stale* anything here, but we cannot inline its
                    // references either (they are analyzed in the callee's
                    // own graph).
                }
            },
            Stmt::Critical(c) => {
                // Lock-serialized accesses: writes may touch any
                // iteration's elements regardless of their subscripts (the
                // lock, not the iteration space, serializes them), so
                // their shapes are opaque for the same-iteration proof and
                // they establish no task-local coverage. Reads will be
                // forced to `ReadKind::Critical` by the trace generator.
                let was = self.in_critical;
                self.in_critical = true;
                self.walk_stmts(&c.body, ranges);
                self.in_critical = was;
            }
            Stmt::Post { .. } | Stmt::Wait { .. } => {
                // Synchronization carries no array references; reads made
                // safe by post/wait ordering still receive the distance-0
                // marking from the same-epoch conflict rule, which is what
                // forces them to fetch the freshly published data.
                self.saw_sync = true;
            }
            Stmt::Doall(_) => {
                unreachable!("segmentation guarantees no DOALL inside an epoch body")
            }
        }
    }

    fn visit_assign(&mut self, a: &Assign, ranges: &VarRanges) {
        for (idx, r) in a.reads.iter().enumerate() {
            let site = RefSite {
                stmt: a.id,
                idx: idx as u32,
            };
            let decl = self.program.array(r.array);
            if decl.sharing() == Sharing::Private {
                continue; // private data is never stale
            }
            let key = (r.array, r.subs.clone());
            let covered = !self.in_critical && self.covered.contains(&key);
            self.reads.push(NodeRead {
                site,
                array: r.array,
                section: Section::of_ref(r, ranges, decl),
                raw: r.clone(),
                shape: self.shape_of(r, ranges),
                covered,
            });
            if !self.in_critical {
                self.covered.insert(key);
            }
        }
        if let Some(w) = &a.write {
            let decl = self.program.array(w.array);
            if decl.sharing() == Sharing::Shared {
                let shape = if self.in_critical {
                    // Lock-serialized write: may touch other iterations'
                    // elements; defeat the same-iteration disjointness
                    // proof.
                    w.subs.iter().map(|_| DimShape::Opaque).collect()
                } else {
                    self.shape_of(w, ranges)
                };
                self.writes.push(NodeWrite {
                    array: w.array,
                    section: Section::of_ref(w, ranges, decl),
                    shape,
                    critical: self.in_critical,
                });
            }
            if !self.in_critical {
                self.covered.insert((w.array, w.subs.clone()));
            }
        }
    }

    fn shape_of(&self, r: &ArrayRef, ranges: &VarRanges) -> Vec<DimShape> {
        r.subs
            .iter()
            .map(|s| match s.as_affine() {
                Some(a) => {
                    let coeff_v = self.doall_var.map_or(0, |v| a.coeff(v));
                    let rest = match self.doall_var {
                        Some(v) => {
                            let mut r = a.clone();
                            r = r - tpi_ir::Affine::scaled_var(v, coeff_v);
                            r
                        }
                        None => a.clone(),
                    };
                    let rest_range = ranges.range_of(&rest);
                    DimShape::Affine {
                        coeff_v,
                        rest,
                        rest_range,
                    }
                }
                None => DimShape::Opaque,
            })
            .collect()
    }
}

/// Conservative test: can a write with shape `w` and a read with shape `r`
/// (both in the same DOALL epoch) only ever touch a common element when
/// executed by the *same* iteration?
///
/// Returns `true` only when provable; `false` means a cross-iteration
/// (cross-processor) conflict is possible.
#[must_use]
pub fn same_iteration_only(w: &[DimShape], r: &[DimShape]) -> bool {
    w.iter().zip(r).any(|(ws, rs)| match (ws, rs) {
        (
            DimShape::Affine {
                coeff_v: cw,
                rest: rw,
                rest_range: rrw,
            },
            DimShape::Affine {
                coeff_v: cr,
                rest: rr,
                rest_range: rrr,
            },
        ) => {
            if cw != cr || *cw == 0 {
                return false;
            }
            // Same coefficient c != 0: a common element at iterations
            // i1 != i2 requires c*(i1-i2) == rest_r - rest_w, impossible when
            // |c| exceeds every achievable |rest_r - rest_w|.
            if rw == rr && rw.is_constant() {
                return true;
            }
            match (rrw, rrr) {
                (Some(a), Some(b)) => {
                    let max_delta = (b.hi - a.lo).abs().max((b.lo - a.hi).abs());
                    cw.abs() > max_delta
                }
                _ => false,
            }
        }
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_ir::{subs, Cond, ProgramBuilder};

    fn two_epoch_program() -> (Program, ProcIdx) {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let b = p.shared("B", [64]);
        let main = p.proc("main", |f| {
            f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1));
            f.doall(0, 63, |i, f| {
                f.store(b.at(subs![i]), vec![a.at(subs![i])], 1)
            });
        });
        (p.finish(main).unwrap(), main)
    }

    #[test]
    fn builds_chain_for_straightline_epochs() {
        let (prog, _) = two_epoch_program();
        let g = EpochFlowGraph::of_program(&prog);
        assert_eq!(g.len(), 2);
        assert_eq!(g.succs(NodeId(0)), &[NodeId(1)]);
        assert_eq!(g.preds(NodeId(1)), &[NodeId(0)]);
        assert!(matches!(g.node(NodeId(0)).kind, EpochKind::Doall(_)));
        assert_eq!(g.node(NodeId(0)).writes.len(), 1);
        assert_eq!(g.node(NodeId(1)).reads.len(), 1);
    }

    #[test]
    fn serial_loop_creates_back_edge() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let main = p.proc("main", |f| {
            f.serial(0, 9, |_t, f| {
                f.doall(0, 63, |i, f| {
                    f.store(a.at(subs![i]), vec![a.at(subs![i])], 1)
                });
            });
        });
        let prog = p.finish(main).unwrap();
        let g = EpochFlowGraph::of_program(&prog);
        assert_eq!(g.len(), 1);
        assert_eq!(g.succs(NodeId(0)), &[NodeId(0)], "self back edge");
    }

    #[test]
    fn branch_creates_diamond() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let main = p.proc("main", |f| {
            f.serial(0, 9, |t, f| {
                f.if_else(
                    Cond::EveryN {
                        var: t,
                        modulus: 2,
                        phase: 0,
                    },
                    |f| f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1)),
                    |f| f.doall(0, 63, |i, f| f.load(vec![a.at(subs![i])], 1)),
                );
            });
        });
        let prog = p.finish(main).unwrap();
        let g = EpochFlowGraph::of_program(&prog);
        assert_eq!(g.len(), 2);
        // Both arms loop back to both arms.
        let mut s0 = g.succs(NodeId(0)).to_vec();
        s0.sort();
        assert_eq!(s0, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn full_mode_inlines_calls() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let helper = p.proc("helper", |f| {
            f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1));
        });
        let main = p.proc("main", |f| {
            f.call(helper);
            f.doall(0, 63, |i, f| f.load(vec![a.at(subs![i])], 1));
        });
        let prog = p.finish(main).unwrap();
        let g = EpochFlowGraph::of_program(&prog);
        assert_eq!(g.len(), 2);
        assert!(!g.nodes().iter().any(|n| n.writes_everything));
        assert!(g.node(NodeId(0)).writes_anything());
    }

    #[test]
    fn intra_mode_makes_calls_opaque_with_virtual_entry() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let helper = p.proc("helper", |f| {
            f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1));
        });
        let main = p.proc("main", |f| {
            f.call(helper);
            f.doall(0, 63, |i, f| f.load(vec![a.at(subs![i])], 1));
        });
        let prog = p.finish(main).unwrap();
        let g = EpochFlowGraph::of_proc_intra(&prog, main);
        // virtual entry + opaque call + reader doall
        assert_eq!(g.len(), 3);
        assert!(g.node(NodeId(0)).writes_everything);
        assert!(g.node(NodeId(1)).writes_everything);
    }

    #[test]
    fn coverage_within_iteration() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let b = p.shared("B", [64]);
        let main = p.proc("main", |f| {
            f.doall(0, 63, |i, f| {
                f.store(b.at(subs![i]), vec![a.at(subs![i])], 1); // first read of A(i)
                f.store(b.at(subs![i]), vec![a.at(subs![i])], 1); // covered
            });
        });
        let prog = p.finish(main).unwrap();
        let g = EpochFlowGraph::of_program(&prog);
        let n = g.node(NodeId(0));
        assert_eq!(n.reads.len(), 2);
        assert!(!n.reads[0].covered);
        assert!(n.reads[1].covered);
    }

    #[test]
    fn coverage_does_not_leak_from_branches() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let main = p.proc("main", |f| {
            f.doall(0, 63, |i, f| {
                f.if_else(
                    Cond::EveryN {
                        var: i,
                        modulus: 2,
                        phase: 0,
                    },
                    |f| f.load(vec![a.at(subs![i])], 1),
                    |f| f.compute(1),
                );
                f.load(vec![a.at(subs![i])], 1); // only one arm covered it
            });
        });
        let prog = p.finish(main).unwrap();
        let g = EpochFlowGraph::of_program(&prog);
        let n = g.node(NodeId(0));
        assert!(!n.reads[1].covered, "coverage must require both arms");
    }

    #[test]
    fn same_iteration_only_tests() {
        let (prog, _) = two_epoch_program();
        let g = EpochFlowGraph::of_program(&prog);
        let writer = &g.node(NodeId(1)).writes[0]; // B(i)
        let reader = &g.node(NodeId(1)).reads[0]; // A(i)
                                                  // Same subscript pattern (coeff 1, rest 0): same-iteration only.
        assert!(same_iteration_only(&writer.shape, &reader.shape));
    }

    #[test]
    fn cross_iteration_conflict_detected() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [65]);
        let main = p.proc("main", |f| {
            f.doall(0, 63, |i, f| {
                // read of the neighbour written by iteration i+1: conflict.
                f.store(a.at(subs![i]), vec![a.at(subs![i + 1])], 1);
            });
        });
        let prog = p.finish(main).unwrap();
        let g = EpochFlowGraph::of_program(&prog);
        let n = g.node(NodeId(0));
        assert!(!same_iteration_only(&n.writes[0].shape, &n.reads[0].shape));
    }

    #[test]
    fn inner_serial_loop_defeats_same_iteration_proof_when_spans_overlap() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64, 64]);
        let main = p.proc("main", |f| {
            f.doall(0, 63, |i, f| {
                f.serial(0, 63, |j, f| {
                    // A(i, j): dim 0 has coeff 1 on i with constant rest ->
                    // provably same-iteration.
                    f.store(a.at(subs![i, j]), vec![a.at(subs![i, j])], 1);
                });
            });
        });
        let prog = p.finish(main).unwrap();
        let g = EpochFlowGraph::of_program(&prog);
        let n = g.node(NodeId(0));
        assert!(same_iteration_only(&n.writes[0].shape, &n.reads[0].shape));

        // Now flatten: A2(64*i + j) vs A2(64*i + j): rest j spans 0..63,
        // |coeff|=64 > 63 -> still provably same-iteration.
        let mut p2 = ProgramBuilder::new();
        let a2 = p2.shared("A2", [4096]);
        let main2 = p2.proc("main", |f| {
            f.doall(0, 63, |i, f| {
                f.serial(0, 63, |j, f| {
                    f.store(a2.at(subs![i * 64 + j]), vec![a2.at(subs![i * 64 + j])], 1);
                });
            });
        });
        let prog2 = p2.finish(main2).unwrap();
        let g2 = EpochFlowGraph::of_program(&prog2);
        let n2 = g2.node(NodeId(0));
        assert!(same_iteration_only(&n2.writes[0].shape, &n2.reads[0].shape));

        // But with stride 32 the tiles overlap across iterations.
        let mut p3 = ProgramBuilder::new();
        let a3 = p3.shared("A3", [4096]);
        let main3 = p3.proc("main", |f| {
            f.doall(0, 63, |i, f| {
                f.serial(0, 63, |j, f| {
                    f.store(a3.at(subs![i * 32 + j]), vec![a3.at(subs![i * 32 + j])], 1);
                });
            });
        });
        let prog3 = p3.finish(main3).unwrap();
        let g3 = EpochFlowGraph::of_program(&prog3);
        let n3 = g3.node(NodeId(0));
        assert!(!same_iteration_only(
            &n3.writes[0].shape,
            &n3.reads[0].shape
        ));
    }

    #[test]
    fn private_arrays_are_not_collected() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let w = p.private("W", [64]);
        let main = p.proc("main", |f| {
            f.doall(0, 63, |i, f| {
                f.store(w.at(subs![i]), vec![a.at(subs![i]), w.at(subs![i])], 1);
            });
        });
        let prog = p.finish(main).unwrap();
        let g = EpochFlowGraph::of_program(&prog);
        let n = g.node(NodeId(0));
        assert_eq!(n.reads.len(), 1, "private read skipped");
        assert!(n.writes.is_empty(), "private write skipped");
    }
}
