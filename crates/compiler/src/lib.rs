//! Compiler-directed stale-reference analysis for the TPI coherence study.
//!
//! This crate reproduces the compiler half of the paper's
//! hardware-supported, compiler-directed (HSCD) scheme as implemented on
//! Polaris: it builds the *epoch flow graph* of a parallel program
//! ([`epochflow`]), performs array-section dataflow over it, and emits a
//! per-reference *marking* ([`marking`]) telling the hardware which loads
//! are potentially stale and how many epoch boundaries back the nearest
//! possible writer is (the Time-Read distance).
//!
//! Three optimization levels reproduce the spectrum the paper discusses:
//!
//! * [`OptLevel::Full`] — intra- **and** interprocedural analysis (calls are
//!   inlined into the epoch flow graph), the paper's configuration;
//! * [`OptLevel::Intra`] — per-procedure analysis with opaque calls: the
//!   "invalidate at procedure boundaries" conservatism of earlier schemes;
//! * [`OptLevel::Naive`] — every shared read marked stale with distance 0,
//!   the behaviour of indiscriminate-invalidation schemes.
//!
//! # Example
//!
//! ```
//! use tpi_compiler::{mark_program, CompilerOptions};
//! use tpi_ir::{ProgramBuilder, subs};
//!
//! let mut p = ProgramBuilder::new();
//! let a = p.shared("A", [64]);
//! let b = p.shared("B", [64]);
//! let main = p.proc("main", |f| {
//!     f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1));
//!     f.doall(0, 63, |i, f| f.store(b.at(subs![i]), vec![a.at(subs![i])], 1));
//! });
//! let prog = p.finish(main).expect("valid");
//! let marking = mark_program(&prog, &CompilerOptions::default());
//! assert_eq!(marking.summary().marked, 1); // only the A(i) read is stale
//! ```

#![warn(missing_docs)]

pub mod epochflow;
pub mod marking;

pub use epochflow::{
    same_iteration_only, DimShape, EpochFlowGraph, EpochKind, EpochNode, NodeId, NodeRead,
    NodeWrite,
};
pub use marking::{mark_program, MarkDecision, MarkReason, Marking, MarkingSummary};

/// How aggressively the compiler analyzes the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// Mark every shared read stale with distance 0 (no analysis).
    Naive,
    /// Intraprocedural only: calls are opaque, procedure entries assume an
    /// unknown caller that may have written anything.
    Intra,
    /// Full intra- and interprocedural analysis (paper configuration).
    #[default]
    Full,
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptLevel::Naive => write!(f, "naive"),
            OptLevel::Intra => write!(f, "intra"),
            OptLevel::Full => write!(f, "full"),
        }
    }
}

/// Options controlling the marking pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CompilerOptions {
    /// Analysis aggressiveness.
    pub level: OptLevel,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_full() {
        assert_eq!(CompilerOptions::default().level, OptLevel::Full);
    }

    #[test]
    fn opt_level_display() {
        assert_eq!(OptLevel::Full.to_string(), "full");
        assert_eq!(OptLevel::Intra.to_string(), "intra");
        assert_eq!(OptLevel::Naive.to_string(), "naive");
    }
}
