//! Reference marking: the paper's core compiler algorithm.
//!
//! For every read of a shared array the compiler decides whether the
//! reference is *potentially stale* — i.e. whether the accessed data may
//! have been written by another processor in an earlier epoch — and, for the
//! TPI scheme, how far back the nearest possible writer is. The decision
//! procedure is:
//!
//! 1. **Task-local coverage.** If an earlier access in the same task
//!    (same serial epoch, or same DOALL iteration) provably touches the same
//!    element, the read can never be stale: mark `Plain`.
//! 2. **Same-epoch conflicts.** In a DOALL epoch, a write by a *different
//!    iteration* that may touch the read's section forces the fully
//!    conservative distance 0 (only data produced or fetched in the current
//!    epoch may be reused). Serial-epoch writes execute on the reading
//!    processor and never stale.
//! 3. **Cross-epoch distance.** A breadth-first search backward over the
//!    epoch flow graph finds the minimum number of epoch boundaries to any
//!    epoch that may write an intersecting section; that minimum is the
//!    Time-Read `distance`. A smaller distance is always sound (it only
//!    makes the hardware check stricter), so the min over all static paths
//!    and all inlined instances of the reference is used.
//! 4. **No writer anywhere** ⇒ the read can never be stale: `Plain`.
//!
//! The SC (software cache-bypass) scheme uses the same staleness analysis
//! but downgrades every potentially-stale read to a bypass access.

use crate::epochflow::{same_iteration_only, EpochFlowGraph, EpochKind, NodeId, NodeRead};
use crate::{CompilerOptions, OptLevel};
use std::collections::{BTreeMap, HashSet, VecDeque};
use tpi_ir::{CallGraph, Program, RefSite};
use tpi_mem::{ReadKind, Sharing};

/// Why a reference received its marking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkReason {
    /// Covered by an earlier same-task access.
    Covered,
    /// No epoch on any path may write the referenced section.
    NoWriter,
    /// A different iteration of the same DOALL epoch may write the section.
    SameEpochConflict,
    /// Nearest potentially-writing epoch is `distance` boundaries back.
    CrossEpoch,
    /// Marked stale indiscriminately (naive optimization level).
    Indiscriminate,
}

/// The compiler's verdict for one read reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkDecision {
    /// Whether the reference is potentially stale.
    pub stale: bool,
    /// For stale references: epoch-boundary distance to the nearest
    /// potential writer (0 = may be written in the current epoch).
    pub distance: u32,
    /// Explanation of the decision.
    pub reason: MarkReason,
}

impl MarkDecision {
    /// A never-stale (`Plain`) decision.
    #[must_use]
    pub fn plain(reason: MarkReason) -> Self {
        MarkDecision {
            stale: false,
            distance: 0,
            reason,
        }
    }

    /// A potentially-stale decision with Time-Read `distance`.
    #[must_use]
    pub fn stale(distance: u32, reason: MarkReason) -> Self {
        MarkDecision {
            stale: true,
            distance,
            reason,
        }
    }

    /// Conservative merge of decisions for the same static site arriving
    /// from different inlined contexts.
    fn merge(self, other: MarkDecision) -> MarkDecision {
        match (self.stale, other.stale) {
            (false, false) => self,
            (true, false) => self,
            (false, true) => other,
            (true, true) => {
                if other.distance < self.distance {
                    other
                } else {
                    self
                }
            }
        }
    }
}

/// The result of the marking pass: a decision per shared read site.
///
/// Lookups ([`Marking::tpi_kind`] / [`Marking::sc_kind`]) run once per
/// shared read during interpretation, so the table uses the deterministic
/// [`tpi_mem::FastMap`] rather than the std `HashMap`.
#[derive(Debug, Clone, Default)]
pub struct Marking {
    decisions: tpi_mem::FastMap<RefSite, MarkDecision>,
}

impl Marking {
    /// The decision for `site`, if it is a shared-array read the pass saw.
    #[must_use]
    pub fn decision(&self, site: RefSite) -> Option<&MarkDecision> {
        self.decisions.get(&site)
    }

    /// The annotation the TPI hardware receives for `site`.
    ///
    /// Unknown sites (private arrays) are `Plain`.
    #[must_use]
    pub fn tpi_kind(&self, site: RefSite) -> ReadKind {
        match self.decisions.get(&site) {
            Some(d) if d.stale => ReadKind::TimeRead {
                distance: d.distance,
            },
            _ => ReadKind::Plain,
        }
    }

    /// The annotation the SC (cache-bypass) hardware receives for `site`.
    #[must_use]
    pub fn sc_kind(&self, site: RefSite) -> ReadKind {
        match self.decisions.get(&site) {
            Some(d) if d.stale => ReadKind::Bypass,
            _ => ReadKind::Plain,
        }
    }

    /// Aggregate statistics over all decisions.
    #[must_use]
    pub fn summary(&self) -> MarkingSummary {
        let mut s = MarkingSummary::default();
        for d in self.decisions.values() {
            s.shared_reads += 1;
            if d.stale {
                s.marked += 1;
                *s.distance_histogram.entry(d.distance).or_insert(0) += 1;
            } else {
                s.plain += 1;
                if d.reason == MarkReason::Covered {
                    s.covered += 1;
                }
            }
        }
        s
    }

    /// Iterates over every analyzed shared-read site and its decision.
    pub fn sites(&self) -> impl Iterator<Item = (RefSite, &MarkDecision)> {
        self.decisions.iter().map(|(s, d)| (*s, d))
    }

    /// Overwrites (or inserts) the decision for `site`.
    ///
    /// This is the mutation hook for the analysis layer's
    /// weakening/differential experiments: it deliberately bypasses the
    /// conservative [`merge`](MarkDecision) rule, so the result may be
    /// *unsound* — which is exactly what the staleness oracle exists to
    /// detect.
    pub fn set_decision(&mut self, site: RefSite, d: MarkDecision) {
        self.decisions.insert(site, d);
    }

    fn record(&mut self, site: RefSite, d: MarkDecision) {
        self.decisions
            .entry(site)
            .and_modify(|old| *old = old.merge(d))
            .or_insert(d);
    }
}

/// Aggregate marking statistics (reported by examples and experiments).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MarkingSummary {
    /// Number of distinct shared-array read sites analyzed.
    pub shared_reads: usize,
    /// Sites left unmarked (provably never stale).
    pub plain: usize,
    /// Sites marked potentially stale.
    pub marked: usize,
    /// Of the plain sites, how many were proven by task-local coverage.
    pub covered: usize,
    /// Marked sites per Time-Read distance.
    pub distance_histogram: BTreeMap<u32, usize>,
}

impl MarkingSummary {
    /// Fraction of shared read sites that had to be marked.
    #[must_use]
    pub fn marked_fraction(&self) -> f64 {
        if self.shared_reads == 0 {
            0.0
        } else {
            self.marked as f64 / self.shared_reads as f64
        }
    }
}

/// Runs the marking pass over `program` at the configured optimization
/// level.
#[must_use]
pub fn mark_program(program: &Program, options: &CompilerOptions) -> Marking {
    match options.level {
        OptLevel::Naive => mark_naive(program),
        OptLevel::Intra => {
            let mut m = Marking::default();
            let cg = CallGraph::of(program);
            for &p in cg.bottom_up() {
                let g = EpochFlowGraph::of_proc_intra(program, p);
                mark_graph(&g, &mut m);
            }
            m
        }
        OptLevel::Full => {
            let g = EpochFlowGraph::of_program(program);
            let mut m = Marking::default();
            mark_graph(&g, &mut m);
            m
        }
    }
}

fn mark_naive(program: &Program) -> Marking {
    let mut m = Marking::default();
    program.for_each_assign(|_, a| {
        for (idx, r) in a.reads.iter().enumerate() {
            if program.array(r.array).sharing() == Sharing::Shared {
                let site = RefSite {
                    stmt: a.id,
                    idx: idx as u32,
                };
                m.record(site, MarkDecision::stale(0, MarkReason::Indiscriminate));
            }
        }
    });
    m
}

fn mark_graph(g: &EpochFlowGraph, m: &mut Marking) {
    for (ni, node) in g.nodes().iter().enumerate() {
        let nid = NodeId(ni);
        for read in &node.reads {
            let d = decide(g, nid, read);
            m.record(read.site, d);
        }
    }
}

fn decide(g: &EpochFlowGraph, nid: NodeId, read: &NodeRead) -> MarkDecision {
    if read.covered {
        return MarkDecision::plain(MarkReason::Covered);
    }
    let node = g.node(nid);
    // Same-epoch conflicts: only DOALL epochs can have remote same-epoch
    // writers (serial epochs run entirely on one processor).
    if matches!(node.kind, EpochKind::Doall(_)) {
        let conflict = node.writes.iter().any(|w| {
            w.array == read.array
                && w.section.may_intersect(&read.section)
                && !same_iteration_only(&w.shape, &read.shape)
        });
        if conflict || node.writes_everything {
            return MarkDecision::stale(0, MarkReason::SameEpochConflict);
        }
    }
    // Cross-epoch: BFS backward for the nearest potential writer.
    let mut visited: HashSet<NodeId> = HashSet::new();
    let mut frontier: VecDeque<(NodeId, u32)> = g.preds(nid).iter().map(|&p| (p, 1)).collect();
    for (p, _) in &frontier {
        visited.insert(*p);
    }
    while let Some((cur, depth)) = frontier.pop_front() {
        if g.node(cur).may_write(read.array, &read.section) {
            return MarkDecision::stale(depth, MarkReason::CrossEpoch);
        }
        for &p in g.preds(cur) {
            if visited.insert(p) {
                frontier.push_back((p, depth + 1));
            }
        }
    }
    MarkDecision::plain(MarkReason::NoWriter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_ir::{subs, Cond, ProgramBuilder, StmtId};

    fn opts_full() -> CompilerOptions {
        CompilerOptions {
            level: OptLevel::Full,
        }
    }

    /// Convenience: find the site of the `idx`-th read of assign `stmt`.
    fn site(stmt: u32, idx: u32) -> RefSite {
        RefSite {
            stmt: StmtId(stmt),
            idx,
        }
    }

    #[test]
    fn producer_consumer_distance_one() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let b = p.shared("B", [64]);
        let main = p.proc("main", |f| {
            f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1)); // S0
            f.doall(0, 63, |i, f| {
                f.store(b.at(subs![i]), vec![a.at(subs![i])], 1)
            }); // S1
        });
        let prog = p.finish(main).unwrap();
        let m = mark_program(&prog, &opts_full());
        let d = m.decision(site(1, 0)).unwrap();
        assert!(d.stale);
        assert_eq!(d.distance, 1);
        assert_eq!(m.tpi_kind(site(1, 0)), ReadKind::TimeRead { distance: 1 });
        assert_eq!(m.sc_kind(site(1, 0)), ReadKind::Bypass);
    }

    #[test]
    fn intertask_locality_across_unrelated_epoch() {
        // The paper's key improvement over version-control/timestamp
        // schemes: an intervening epoch that does NOT write A must not
        // shrink the reuse window.
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let b = p.shared("B", [64]);
        let main = p.proc("main", |f| {
            f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1)); // S0 epoch0
            f.doall(0, 63, |i, f| f.store(b.at(subs![i]), vec![], 1)); // S1 epoch1
            f.doall(0, 63, |i, f| f.load(vec![a.at(subs![i])], 1)); // S2 epoch2
        });
        let prog = p.finish(main).unwrap();
        let m = mark_program(&prog, &opts_full());
        let d = m.decision(site(2, 0)).unwrap();
        assert!(d.stale);
        assert_eq!(d.distance, 2, "A was last written two epochs back");
    }

    #[test]
    fn same_iteration_write_then_read_is_plain() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let main = p.proc("main", |f| {
            f.doall(0, 63, |i, f| {
                f.store(a.at(subs![i]), vec![], 1); // S0 writes A(i)
                f.load(vec![a.at(subs![i])], 1); // S1 reads A(i): covered
            });
        });
        let prog = p.finish(main).unwrap();
        let m = mark_program(&prog, &opts_full());
        let d = m.decision(site(1, 0)).unwrap();
        assert!(!d.stale);
        assert_eq!(d.reason, MarkReason::Covered);
    }

    #[test]
    fn neighbour_read_in_same_epoch_is_distance_zero() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [65]);
        let main = p.proc("main", |f| {
            f.doall(0, 63, |i, f| {
                f.store(a.at(subs![i]), vec![a.at(subs![i + 1])], 1);
            });
        });
        let prog = p.finish(main).unwrap();
        let m = mark_program(&prog, &opts_full());
        let d = m.decision(site(0, 0)).unwrap();
        assert!(d.stale);
        assert_eq!(d.distance, 0);
        assert_eq!(d.reason, MarkReason::SameEpochConflict);
    }

    #[test]
    fn no_writer_anywhere_is_plain() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let b = p.shared("B", [64]);
        let main = p.proc("main", |f| {
            f.doall(0, 63, |i, f| {
                f.store(b.at(subs![i]), vec![a.at(subs![i])], 1)
            });
            f.doall(0, 63, |i, f| f.load(vec![a.at(subs![i])], 1));
        });
        let prog = p.finish(main).unwrap();
        let m = mark_program(&prog, &opts_full());
        assert_eq!(m.decision(site(0, 0)).unwrap().reason, MarkReason::NoWriter);
        assert_eq!(m.decision(site(1, 0)).unwrap().reason, MarkReason::NoWriter);
        assert_eq!(m.summary().marked, 0);
    }

    #[test]
    fn loop_carried_distance_counts_epochs_per_iteration() {
        // do t: { doall write A; doall write B; doall read A } -> reading A
        // written in the same t-iteration, 2 epochs back.
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let b = p.shared("B", [64]);
        let main = p.proc("main", |f| {
            f.serial(0, 9, |_t, f| {
                f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1)); // S0
                f.doall(0, 63, |i, f| f.store(b.at(subs![i]), vec![], 1)); // S1
                f.doall(0, 63, |i, f| f.load(vec![a.at(subs![i])], 1)); // S2
            });
        });
        let prog = p.finish(main).unwrap();
        let m = mark_program(&prog, &opts_full());
        assert_eq!(m.decision(site(2, 0)).unwrap().distance, 2);
        // And the writer epoch's own *next* write of A is 3 epochs around
        // the loop — check a read placed first in the body.
        let mut p2 = ProgramBuilder::new();
        let a2 = p2.shared("A", [64]);
        let main2 = p2.proc("main", |f| {
            f.serial(0, 9, |_t, f| {
                f.doall(0, 63, |i, f| f.load(vec![a2.at(subs![i])], 1)); // S0
                f.doall(0, 63, |i, f| f.store(a2.at(subs![i]), vec![], 1)); // S1
            });
        });
        let prog2 = p2.finish(main2).unwrap();
        let m2 = mark_program(&prog2, &opts_full());
        assert_eq!(m2.decision(site(0, 0)).unwrap().distance, 1);
    }

    #[test]
    fn branch_takes_minimum_distance() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let main = p.proc("main", |f| {
            f.serial(0, 9, |t, f| {
                f.if_else(
                    Cond::EveryN {
                        var: t,
                        modulus: 2,
                        phase: 0,
                    },
                    |f| {
                        f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1));
                    },
                    |f| {
                        f.doall(0, 63, |_i, f| f.compute(1));
                    },
                );
                f.doall(0, 63, |i, f| f.load(vec![a.at(subs![i])], 1));
            });
        });
        let prog = p.finish(main).unwrap();
        let m = mark_program(&prog, &opts_full());
        // Reader's predecessor may be the writer arm (distance 1).
        assert_eq!(m.decision(site(2, 0)).unwrap().distance, 1);
    }

    #[test]
    fn disjoint_sections_are_not_stale() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [128]);
        let main = p.proc("main", |f| {
            // writes evens, reads odds: disjoint.
            f.doall(0, 63, |i, f| f.store(a.at(subs![i * 2]), vec![], 1));
            f.doall(0, 63, |i, f| f.load(vec![a.at(subs![i * 2 + 1])], 1));
        });
        let prog = p.finish(main).unwrap();
        let m = mark_program(&prog, &opts_full());
        assert_eq!(m.decision(site(1, 0)).unwrap().reason, MarkReason::NoWriter);
    }

    #[test]
    fn opaque_subscript_forces_conservative_marking() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [128]);
        let main = p.proc("main", |f| {
            f.doall(0, 63, |i, f| f.store(a.at(subs![i * 2]), vec![], 1));
            let o = f.opaque();
            f.doall(0, 63, |_i, f| f.load(vec![a.at(subs![o])], 1));
        });
        let prog = p.finish(main).unwrap();
        let m = mark_program(&prog, &opts_full());
        let d = m.decision(site(1, 0)).unwrap();
        assert!(
            d.stale,
            "opaque subscript must be treated as touching anything"
        );
        assert_eq!(d.distance, 1);
    }

    #[test]
    fn intra_mode_is_conservative_after_calls() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let b = p.shared("B", [64]);
        let helper = p.proc("helper", |f| {
            f.doall(0, 63, |i, f| f.store(b.at(subs![i]), vec![], 1)); // S0: writes B only
        });
        let main = p.proc("main", |f| {
            f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1)); // S1
            f.call(helper);
            f.doall(0, 63, |i, f| f.load(vec![a.at(subs![i])], 1)); // S2
        });
        let prog = p.finish(main).unwrap();

        let full = mark_program(&prog, &opts_full());
        // Full: helper only writes B, so A's reuse window spans the call.
        assert_eq!(full.decision(site(2, 0)).unwrap().distance, 2);

        let intra = mark_program(
            &prog,
            &CompilerOptions {
                level: OptLevel::Intra,
            },
        );
        // Intra: the call may have written anything, distance collapses to 1.
        assert_eq!(intra.decision(site(2, 0)).unwrap().distance, 1);
    }

    #[test]
    fn naive_mode_marks_everything_distance_zero() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let w = p.private("W", [64]);
        let main = p.proc("main", |f| {
            f.doall(0, 63, |i, f| {
                f.store(a.at(subs![i]), vec![a.at(subs![i]), w.at(subs![i])], 1);
            });
        });
        let prog = p.finish(main).unwrap();
        let m = mark_program(
            &prog,
            &CompilerOptions {
                level: OptLevel::Naive,
            },
        );
        let d = m.decision(site(0, 0)).unwrap();
        assert!(d.stale);
        assert_eq!(d.distance, 0);
        // Private read has no decision and defaults to Plain.
        assert_eq!(m.tpi_kind(site(0, 1)), ReadKind::Plain);
    }

    #[test]
    fn summary_counts() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let b = p.shared("B", [64]);
        let main = p.proc("main", |f| {
            f.doall(0, 63, |i, f| f.store(a.at(subs![i]), vec![], 1));
            f.doall(0, 63, |i, f| {
                f.store(b.at(subs![i]), vec![a.at(subs![i])], 1); // marked d=1
                f.load(vec![a.at(subs![i])], 1); // covered
            });
        });
        let prog = p.finish(main).unwrap();
        let m = mark_program(&prog, &opts_full());
        let s = m.summary();
        assert_eq!(s.shared_reads, 2);
        assert_eq!(s.marked, 1);
        assert_eq!(s.plain, 1);
        assert_eq!(s.covered, 1);
        assert_eq!(s.distance_histogram.get(&1), Some(&1));
        assert!((s.marked_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn serial_epoch_reuse_is_plain() {
        let mut p = ProgramBuilder::new();
        let a = p.shared("A", [64]);
        let main = p.proc("main", |f| {
            // One serial epoch: write then read the same element.
            f.store(a.at(subs![3]), vec![], 1); // S0
            f.load(vec![a.at(subs![3])], 1); // S1: covered
            f.doall(0, 63, |i, f| f.load(vec![a.at(subs![i])], 1)); // S2
        });
        let prog = p.finish(main).unwrap();
        let m = mark_program(&prog, &opts_full());
        assert!(!m.decision(site(1, 0)).unwrap().stale);
        // The doall readers see the serial write one epoch back.
        let d2 = m.decision(site(2, 0)).unwrap();
        assert!(d2.stale);
        assert_eq!(d2.distance, 1);
    }
}
