//! End-to-end tests for the generative differential fuzzer: determinism
//! of the corpus and the verdicts, sabotage detection, and the
//! minimizer's violation-preservation contract.

use std::sync::Arc;
use tpi::proto::SchemeId;
use tpi_fuzz::{
    fuzz_config, generate_kernel, minimize, run_fuzz, violates, FuzzOptions, GenOptions, Sabotage,
    ViolationClass,
};
use tpi_testkit::prelude::*;
use tpi_testkit::splitmix64;

fn small_opts() -> FuzzOptions {
    FuzzOptions {
        seed: 7,
        count: 12,
        depth: 3,
        minimize: false,
        sabotage: None,
        ..FuzzOptions::default()
    }
}

/// The config seed `run_fuzz` derives for kernel `index` (kept in sync
/// with `check.rs` so tests can re-drive `violates` standalone).
fn cfg_seed(seed: u64, index: u64) -> u64 {
    splitmix64(seed ^ index.wrapping_add(17))
}

#[test]
fn healthy_engines_survive_the_corpus() {
    let report = run_fuzz(&small_opts());
    assert_eq!(report.checked, 12);
    assert!(report.parallel_epochs > 0, "corpus exercised no DOALLs");
    assert!(report.sims > 0);
    assert!(
        report.is_clean(),
        "healthy engines violated: {:?}",
        report.diagnostics()
    );
}

#[test]
fn same_seed_gives_byte_identical_corpus_and_verdicts() {
    let opts = small_opts();
    let gen = GenOptions {
        seed: opts.seed,
        depth: opts.depth,
    };
    // Kernel sources are a pure function of (seed, depth, index).
    for index in 0..opts.count {
        let a = generate_kernel(&gen, index);
        let b = generate_kernel(&gen, index);
        assert_eq!(a.name, b.name);
        assert_eq!(a.source, b.source, "kernel {index} not deterministic");
    }
    // And the full differential verdict stream is byte-identical too.
    let first = run_fuzz(&opts).json();
    let second = run_fuzz(&opts).json();
    assert_eq!(first, second);
}

#[test]
fn distinct_seeds_give_distinct_corpora() {
    let a = generate_kernel(&GenOptions { seed: 1, depth: 3 }, 0);
    let b = generate_kernel(&GenOptions { seed: 2, depth: 3 }, 0);
    assert_ne!(a.source, b.source);
}

#[test]
fn sabotaged_engine_is_caught_and_minimized() {
    let opts = FuzzOptions {
        seed: 7,
        count: 20,
        schemes: vec![SchemeId::HYBRID],
        minimize: true,
        sabotage: Some(Sabotage::HybridDropSharer),
        ..FuzzOptions::default()
    };
    let report = run_fuzz(&opts);
    assert!(
        !report.is_clean(),
        "a sabotaged hybrid directory must produce violations"
    );
    let v = &report.violations[0];
    assert_eq!(v.class, ViolationClass::Invariant);
    assert_eq!(v.scheme, Some(SchemeId::HYBRID));
    let d = v.diagnostic().human();
    assert!(d.starts_with("error[TPI902] fuzz-violation:"), "{d}");

    // The minimized reproducer re-parses and still violates.
    let min_src = v.minimized.as_ref().expect("minimize was requested");
    assert!(min_src.len() <= v.source.len());
    let min_prog = Arc::new(tpi_ir::parse_program(min_src).expect("reproducer must re-parse"));
    assert!(violates(
        &min_prog,
        cfg_seed(opts.seed, v.index as u64),
        &opts.schemes,
        opts.sabotage,
        v.class,
        v.scheme,
    ));
}

#[test]
fn fuzz_config_is_deterministic_and_freshness_verified() {
    let a = fuzz_config(3);
    let b = fuzz_config(3);
    assert_eq!(a.verify_freshness, b.verify_freshness);
    assert!(a.verify_freshness);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The minimizer only ever returns programs still exhibiting the
    /// original violation class (here: the sabotaged hybrid directory's
    /// invariant break), and never grows the program.
    #[test]
    fn minimizer_preserves_violation_class(seed in 0u64..40) {
        let kernel = generate_kernel(&GenOptions { seed, depth: 3 }, 0);
        let schemes = [SchemeId::HYBRID];
        let sabotage = Some(Sabotage::HybridDropSharer);
        let class = ViolationClass::Invariant;
        let scheme = Some(SchemeId::HYBRID);
        let cs = cfg_seed(seed, 0);
        if !violates(&kernel.program, cs, &schemes, sabotage, class, scheme) {
            // This kernel happens not to trip the hook; nothing to shrink.
            return Ok(());
        }
        let min = minimize(&kernel.program, |cand| {
            violates(cand, cs, &schemes, sabotage, class, scheme)
        });
        let min = Arc::new(min);
        prop_assert!(violates(&min, cs, &schemes, sabotage, class, scheme));
        let src = tpi_ir::program_to_source(&min);
        prop_assert!(src.len() <= kernel.source.len());
    }
}
