//! `tpi-fuzz`: generative kernel fuzzing with differential oracle
//! checks, auto-minimized reproducers, and a promoted adversarial
//! workload corpus.
//!
//! The repository's sixth correctness level. The first five argue that
//! the compiler, oracle, engines, and model checker agree *on the
//! programs we thought to write*; this crate removes the "we thought to
//! write" qualifier by generating unbounded streams of race-free-by-
//! construction kernels ([`gen`]) and pushing every one through the
//! entire pipeline under a differential predicate ([`check`]): static
//! lints, trace generation at two optimization levels, the staleness
//! oracle in both TPI and SC semantics, freshness-verified simulation under
//! every registry scheme, the miss-accounting identity, and
//! registry-capability-driven cross-scheme/cross-level agreement.
//!
//! Violating kernels shrink to 1-minimal `.tpi` reproducers
//! ([`minimize()`]) and surface as stable `TPI902 fuzz-violation`
//! diagnostics. The `tpi-fuzz` binary drives it all:
//!
//! ```text
//! tpi-fuzz --seed 7 --count 200 --depth 3 --schemes all --deny violations
//! tpi-fuzz --seed 7 --count 20 --sabotage base-cache-shared --minimize
//! ```
//!
//! Everything is a pure function of the seed: the same seed and options
//! produce a byte-identical corpus and byte-identical verdicts.

#![warn(missing_docs)]

pub mod check;
pub mod gen;
pub mod minimize;

pub use check::{
    check_kernel, fuzz_config, run_fuzz, violates, FuzzOptions, FuzzReport, FuzzViolation,
    Sabotage, ViolationClass,
};
pub use gen::{generate_kernel, GenKernel, GenOptions};
pub use minimize::minimize;
