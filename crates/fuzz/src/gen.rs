//! Seeded random kernel generator over the `tpi-ir` epoch grammar.
//!
//! Kernels are *data-race-free by construction* so every generated
//! program is a legal input to the whole pipeline (the trace interpreter
//! rejects racy schedules): within each DOALL epoch exactly one array is
//! written, at a subscript injective in the loop variable, and only the
//! writing iteration reads its own element (or its own row for 2-D
//! outputs). Accumulator updates go through a single program-wide lock.
//! Serial epochs run on one task and are unconstrained.
//!
//! Every built program is canonicalized through a
//! [`program_to_source`] / [`parse_program`] round trip, so the `.tpi`
//! source string *is* the kernel's identity: the corpus a seed produces
//! is byte-stable, and reproducers re-parse to exactly the program the
//! harness checked.

use std::sync::Arc;
use tpi_ir::{
    parse_program, program_to_source, subs, Affine, ArrayHandle, ArrayRef, BodyBuilder, Cond,
    LockId, OpaqueFn, Program, ProgramBuilder, Subscript, VarId,
};
use tpi_testkit::{splitmix64, Rng};

/// Generator parameters: the corpus is a pure function of these.
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Master seed; kernel `index` draws from an independent substream.
    pub seed: u64,
    /// Serial-nest depth budget (1..=4): how deep DOALLs may sit inside
    /// serial loops.
    pub depth: usize,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions { seed: 1, depth: 3 }
    }
}

/// One generated kernel: canonical source plus the re-parsed program.
#[derive(Debug, Clone)]
pub struct GenKernel {
    /// Position in the corpus stream.
    pub index: usize,
    /// Stable name (`fuzz-<seed>-<index>`), used as the runner cache key.
    pub name: String,
    /// Canonical `.tpi` source (round-trip fixpoint).
    pub source: String,
    /// The program the harness checks (parsed back from `source`).
    pub program: Arc<Program>,
}

/// Generates the `index`-th kernel of the corpus `opts` describes.
///
/// # Panics
///
/// Panics if a built program fails its own round trip — that is itself a
/// generator bug worth a loud failure.
#[must_use]
pub fn generate_kernel(opts: &GenOptions, index: usize) -> GenKernel {
    let mut rng = Rng::new(splitmix64(opts.seed ^ splitmix64(index as u64 + 1)));
    let built = build_random(&mut rng, opts.depth.max(1));
    let source = program_to_source(&built);
    let program = parse_program(&source).expect("generated kernels round-trip");
    GenKernel {
        index,
        name: format!("fuzz-{}-{}", opts.seed, index),
        source,
        program: Arc::new(program),
    }
}

/// A loop variable usable in subscripts, with its inclusive value range.
#[derive(Clone, Copy)]
struct Scope {
    var: VarId,
    lo: i64,
    hi: i64,
}

/// An array the generator may reference.
#[derive(Clone)]
struct ArrInfo {
    h: ArrayHandle,
    dims: Vec<u64>,
    private: bool,
}

/// Immutable generation context: the declared world of one program.
struct Ctx {
    /// DOALL trip count.
    n: i64,
    /// Inner serial (second-dimension) trip count.
    jn: i64,
    arrays: Vec<ArrInfo>,
    acc: Option<(ArrayHandle, LockId)>,
    opaques: Vec<OpaqueFn>,
}

fn build_random(rng: &mut Rng, depth: usize) -> Program {
    let mut p = ProgramBuilder::new();
    let n = 8 + 4 * rng.below(5) as i64;
    let jn = 2 + rng.below(3) as i64;
    let d1 = (3 * (n + 2) + 9) as u64;
    let d2 = (3 * (jn - 1) + 5) as u64;

    let mut arrays = Vec::new();
    for k in 0..(2 + rng.below(3)) {
        let name = format!("D{k}");
        let dims = if rng.below(10) < 3 {
            vec![(n + 2) as u64, d2]
        } else {
            vec![d1]
        };
        arrays.push(ArrInfo {
            h: p.shared_dyn(&name, dims.clone()),
            dims,
            private: false,
        });
    }
    let acc = if rng.below(2) == 0 {
        Some((p.shared("ACC", [8]), p.lock()))
    } else {
        None
    };
    if rng.below(2) == 0 {
        arrays.push(ArrInfo {
            h: p.private_dyn("P", vec![d1]),
            dims: vec![d1],
            private: true,
        });
    }
    let opaques = vec![p.opaque(), p.opaque()];
    let ctx = Ctx {
        n,
        jn,
        arrays,
        acc,
        opaques,
    };

    let helper = if rng.below(10) < 4 {
        let epochs = 1 + rng.below(2) as usize;
        Some(p.proc("helper", |f| {
            for _ in 0..epochs {
                gen_doall(rng, &ctx, f, &mut Vec::new());
            }
        }))
    } else {
        None
    };

    let items = 3 + rng.below(3) as usize;
    let main = p.proc("main", |f| {
        let mut scopes = Vec::new();
        let mut helper = helper;
        // The first item is always a DOALL so every kernel has at least
        // one parallel epoch.
        gen_doall(rng, &ctx, f, &mut scopes);
        for _ in 1..items {
            if helper.is_some() && rng.below(10) < 3 {
                f.call(helper.take().expect("checked"));
                continue;
            }
            gen_item(rng, &ctx, f, depth, &mut scopes);
        }
    });
    p.finish(main).expect("generated programs validate")
}

/// Emits one top-level (or serial-nested) item.
fn gen_item(
    rng: &mut Rng,
    ctx: &Ctx,
    f: &mut BodyBuilder<'_>,
    depth: usize,
    scopes: &mut Vec<Scope>,
) {
    match rng.below(9) {
        0..=3 => gen_doall(rng, ctx, f, scopes),
        4 | 5 if depth > 1 => {
            let hi = 1 + rng.below(2) as i64;
            let inner = 1 + rng.below(2) as usize;
            f.serial(0, hi, |t, f| {
                scopes.push(Scope { var: t, lo: 0, hi });
                for _ in 0..inner {
                    gen_item(rng, ctx, f, depth - 1, scopes);
                }
                scopes.pop();
            });
        }
        4 | 5 => gen_doall(rng, ctx, f, scopes),
        6 | 7 => gen_serial_stmt(rng, ctx, f, scopes),
        _ => {
            // Serial initialization sweep: single-task epoch, so any
            // subscript shape is race-free.
            let a = pick(rng, &ctx.arrays).clone();
            let hi = ctx.n - 1;
            f.serial(0, hi, |v, f| {
                let scopes = vec![Scope { var: v, lo: 0, hi }];
                let w = ref_into(rng, ctx, &a, &scopes);
                let reads = gen_reads(rng, ctx, &scopes, None, 2);
                f.store(w, reads, cost(rng));
            });
        }
    }
}

/// Emits a statement that lives in a serial segment (single task).
fn gen_serial_stmt(rng: &mut Rng, ctx: &Ctx, f: &mut BodyBuilder<'_>, scopes: &[Scope]) {
    match rng.below(3) {
        0 => {
            let a = pick(rng, &ctx.arrays).clone();
            let w = ref_into(rng, ctx, &a, scopes);
            let reads = gen_reads(rng, ctx, scopes, None, 2);
            f.store(w, reads, cost(rng));
        }
        1 => {
            let reads = gen_reads(rng, ctx, scopes, None, 3);
            if reads.is_empty() {
                f.compute(cost(rng));
            } else {
                f.load(reads, cost(rng));
            }
        }
        _ => f.compute(cost(rng)),
    }
}

/// Emits one DOALL epoch obeying the race-freedom discipline.
fn gen_doall(rng: &mut Rng, ctx: &Ctx, f: &mut BodyBuilder<'_>, scopes: &mut Vec<Scope>) {
    let lo = rng.below(3) as i64;
    let hi = lo + ctx.n - 1;
    let step = if rng.below(10) < 2 { 2 } else { 1 };
    let w = pick(rng, &ctx.arrays).clone();
    let self_read = rng.below(10) < 4;
    let extra = rng.below(3);
    f.doall_step(lo, hi, step, |i, f| {
        scopes.push(Scope { var: i, lo, hi });
        if w.dims.len() == 2 {
            // Row `i` belongs to this iteration: the store runs in an
            // inner serial loop over the second dimension.
            let jhi = ctx.jn - 1;
            let c2 = 1 + rng.below(3) as i64;
            let d2 = rng.below(4) as i64;
            f.serial(0, jhi, |j, f| {
                let sub2 = Affine::scaled_var(j, c2) + d2;
                let wref = w.h.at(subs![i, sub2]);
                let mut reads = Vec::new();
                if self_read {
                    // Reads of the output stay inside the owned row.
                    let row = [Scope {
                        var: j,
                        lo: 0,
                        hi: jhi,
                    }];
                    let s = sub_for(rng, ctx, w.dims[1], &row, false);
                    reads.push(w.h.at(vec![Subscript::from(Affine::var(i)), s]));
                }
                scopes.push(Scope {
                    var: j,
                    lo: 0,
                    hi: jhi,
                });
                reads.extend(gen_reads(rng, ctx, scopes, Some(&w), 2));
                scopes.pop();
                f.store(wref, reads, cost(rng));
            });
        } else {
            let c = 1 + rng.below(3) as i64;
            let d = rng.below(3) as i64;
            let ws = Affine::scaled_var(i, c) + d;
            let wref = w.h.at(subs![ws.clone()]);
            let mut reads = Vec::new();
            if self_read {
                reads.push(w.h.at(subs![ws]));
            }
            reads.extend(gen_reads(rng, ctx, scopes, Some(&w), 2));
            f.store(wref, reads, cost(rng));
        }
        for _ in 0..extra {
            gen_doall_extra(rng, ctx, f, scopes, &w);
        }
        scopes.pop();
    });
}

/// Extra read-only / critical / branch statements inside a DOALL body.
fn gen_doall_extra(
    rng: &mut Rng,
    ctx: &Ctx,
    f: &mut BodyBuilder<'_>,
    scopes: &[Scope],
    w: &ArrInfo,
) {
    match rng.below(8) {
        0..=2 => {
            let reads = gen_reads(rng, ctx, scopes, Some(w), 3);
            if reads.is_empty() {
                f.compute(cost(rng));
            } else {
                f.load(reads, cost(rng));
            }
        }
        3 | 4 => {
            if let Some((acc, lock)) = ctx.acc {
                let o1 = pick(rng, &ctx.opaques).to_owned();
                let o2 = pick(rng, &ctx.opaques).to_owned();
                let mut reads = vec![acc.at(subs![o2])];
                reads.extend(gen_reads(rng, ctx, scopes, Some(w), 1));
                f.critical(lock, |f| f.store(acc.at(subs![o1]), reads, cost(rng)));
            } else {
                f.compute(cost(rng));
            }
        }
        5 | 6 => {
            let i = scopes.last().expect("doall var in scope").var;
            let modulus = 2 + rng.below(2) as i64;
            let phase = rng.below(modulus as u64) as i64;
            let cond = if rng.below(10) < 2 {
                Cond::Always
            } else {
                Cond::EveryN {
                    var: i,
                    modulus,
                    phase,
                }
            };
            let reads = gen_reads(rng, ctx, scopes, Some(w), 2);
            if rng.below(2) == 0 {
                f.if_else(
                    cond,
                    |f| {
                        if reads.is_empty() {
                            f.compute(1);
                        } else {
                            f.load(reads, 2);
                        }
                    },
                    |f| f.compute(1),
                );
            } else {
                f.if_then(cond, |f| {
                    if reads.is_empty() {
                        f.compute(1);
                    } else {
                        f.load(reads, 2);
                    }
                });
            }
        }
        _ => f.compute(cost(rng)),
    }
}

/// 0..=`max` read references drawn from arrays other than the epoch's
/// output (`avoid`); private arrays are always fair game (per-task
/// replicas never share).
fn gen_reads(
    rng: &mut Rng,
    ctx: &Ctx,
    scopes: &[Scope],
    avoid: Option<&ArrInfo>,
    max: u64,
) -> Vec<ArrayRef> {
    let count = rng.below(max + 1);
    let mut out = Vec::new();
    for _ in 0..count {
        let candidates: Vec<&ArrInfo> = ctx
            .arrays
            .iter()
            .filter(|a| a.private || avoid.is_none_or(|w| w.private || a.h.id() != w.h.id()))
            .collect();
        if candidates.is_empty() {
            break;
        }
        let a = (*pick(rng, &candidates)).clone();
        out.push(ref_into(rng, ctx, &a, scopes));
    }
    out
}

/// A fully in-bounds reference into `a` using the vars in scope.
fn ref_into(rng: &mut Rng, ctx: &Ctx, a: &ArrInfo, scopes: &[Scope]) -> ArrayRef {
    let subs: Vec<Subscript> = a
        .dims
        .iter()
        .map(|&extent| sub_for(rng, ctx, extent, scopes, false))
        .collect();
    a.h.at(subs)
}

/// One in-bounds subscript for a dimension of the given extent.
///
/// `plain_only` forbids opaque subscripts (used where the caller must be
/// able to reason about the touched words).
fn sub_for(rng: &mut Rng, ctx: &Ctx, extent: u64, scopes: &[Scope], plain_only: bool) -> Subscript {
    let roll = rng.below(10);
    if !plain_only && roll < 2 {
        return Subscript::from(pick(rng, &ctx.opaques).to_owned());
    }
    if roll < 3 || scopes.is_empty() {
        return Subscript::from(Affine::konst(rng.below(extent) as i64));
    }
    let s = *pick(rng, scopes);
    let limit = extent as i64 - 1;
    let c_max = if s.hi <= 0 { 3 } else { (limit / s.hi).min(3) };
    if c_max < 1 {
        return Subscript::from(Affine::konst(rng.below(extent) as i64));
    }
    let c = 1 + rng.below(c_max as u64) as i64;
    let d_hi = (limit - c * s.hi).min(4);
    let d_lo = (-(c * s.lo)).max(-4);
    let d = d_lo + rng.below((d_hi - d_lo + 1) as u64) as i64;
    Subscript::from(Affine::scaled_var(s.var, c) + d)
}

fn cost(rng: &mut Rng) -> u32 {
    1 + rng.below(6) as u32
}

fn pick<'a, T>(rng: &mut Rng, items: &'a [T]) -> &'a T {
    &items[rng.below(items.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_round_trips() {
        let opts = GenOptions { seed: 42, depth: 3 };
        for index in 0..16 {
            let a = generate_kernel(&opts, index);
            let b = generate_kernel(&opts, index);
            assert_eq!(a.source, b.source, "kernel {index} must be byte-stable");
            // Canonical source is a round-trip fixpoint.
            assert_eq!(a.source, program_to_source(&a.program));
        }
    }

    #[test]
    fn distinct_indices_give_distinct_kernels() {
        let opts = GenOptions { seed: 7, depth: 2 };
        let a = generate_kernel(&opts, 0);
        let b = generate_kernel(&opts, 1);
        assert_ne!(a.source, b.source);
    }
}
