//! Greedy structural minimizer for violating kernels.
//!
//! Mirrors the shrink discipline of the model checker's counterexample
//! reducer: enumerate single structural simplifications, accept one only
//! if the caller's predicate still holds on the simplified program, and
//! iterate to a fixpoint — the result is 1-minimal with respect to the
//! mutation vocabulary:
//!
//! 1. **Drop a statement** (any statement anywhere in any procedure,
//!    which removes whole epochs when the statement is a loop).
//! 2. **Shrink a loop**: collapse to a single iteration, halve the trip
//!    count, or reduce a stride to 1.
//! 3. **Simplify a subscript**: opaque → `0`, drop the additive offset,
//!    collapse to a bare variable, or constant-fold to `0`.
//! 4. **Drop a read** (or a store's destination, turning it into a pure
//!    use).
//! 5. **Drop an unreferenced array declaration** (garbage left behind by
//!    the other passes), remapping the surviving ids.
//! 6. **Drop an uncalled procedure** (left behind once its call site is
//!    removed), remapping the surviving indices.
//! 7. **Drop unused lock declarations** (shrink the lock count to the
//!    number of locks actually guarding a critical section).
//!
//! Every candidate is re-canonicalized through a
//! [`program_to_source`] / [`parse_program`] round trip before the
//! predicate runs, so accepted programs are always well-formed,
//! validated, and printable as self-contained `.tpi` reproducers; a
//! candidate that no longer parses or validates is silently rejected.

use std::sync::Arc;
use tpi_ir::{parse_program, program_to_source, Affine, Assign, Loop, Program, Stmt, Subscript};

/// Shrinks `program` while `still_violates` keeps holding, to a
/// 1-minimal fixpoint. The predicate is never called on programs that
/// fail validation.
pub fn minimize(program: &Arc<Program>, still_violates: impl Fn(&Arc<Program>) -> bool) -> Program {
    let mut cur = Arc::clone(program);
    loop {
        let mut changed = false;
        for pass in [
            Pass::DropStmt,
            Pass::ShrinkLoop,
            Pass::SimplifySubscript,
            Pass::DropRead,
            Pass::DropArray,
            Pass::DropProc,
            Pass::DropLocks,
        ] {
            // Re-run each pass until it stops finding an accepted
            // mutation, then move on (greedy, first-accept).
            while let Some(next) = try_pass(&cur, pass, &still_violates) {
                cur = next;
                changed = true;
            }
        }
        if !changed {
            return (*cur).clone();
        }
    }
}

#[derive(Clone, Copy)]
enum Pass {
    DropStmt,
    ShrinkLoop,
    SimplifySubscript,
    DropRead,
    DropArray,
    DropProc,
    DropLocks,
}

/// Tries every mutation the pass knows, in order; returns the first
/// accepted candidate.
fn try_pass(
    cur: &Arc<Program>,
    pass: Pass,
    still_violates: &impl Fn(&Arc<Program>) -> bool,
) -> Option<Arc<Program>> {
    let limit = match pass {
        Pass::DropStmt => count_stmts(cur),
        Pass::ShrinkLoop => count_loops(cur) * LOOP_OPS,
        Pass::SimplifySubscript => count_subs(cur) * SUB_OPS,
        Pass::DropRead => count_refs(cur),
        Pass::DropArray => cur.arrays.len(),
        Pass::DropProc => cur.procs.len(),
        Pass::DropLocks => 1,
    };
    for k in 0..limit {
        let mut cand = (**cur).clone();
        let mutated = match pass {
            Pass::DropStmt => {
                let mut k = k as i64;
                on_nth_slot(&mut cand, &mut k, &mut |body, i| {
                    body.remove(i);
                    true
                })
            }
            Pass::ShrinkLoop => {
                let op = k % LOOP_OPS;
                let mut k = (k / LOOP_OPS) as i64;
                on_nth_loop(&mut cand, &mut k, &mut |l| shrink_loop(l, op))
            }
            Pass::SimplifySubscript => {
                let op = k % SUB_OPS;
                on_slot_in_assigns(&mut cand, k / SUB_OPS, sub_slots, &mut |a, slot| {
                    let mut idx = slot;
                    for r in a.write.iter_mut().chain(a.reads.iter_mut()) {
                        if idx < r.subs.len() {
                            return simplify_sub(&mut r.subs[idx], op);
                        }
                        idx -= r.subs.len();
                    }
                    false
                })
            }
            Pass::DropRead => on_slot_in_assigns(&mut cand, k, ref_slots, &mut |a, slot| {
                if slot == 0 {
                    if a.write.is_none() {
                        return false;
                    }
                    a.write = None;
                } else {
                    a.reads.remove(slot - 1);
                }
                true
            }),
            Pass::DropArray => drop_array(&mut cand, k),
            Pass::DropProc => drop_proc(&mut cand, k),
            Pass::DropLocks => drop_unused_locks(&mut cand),
        };
        if !mutated {
            continue;
        }
        // Canonicalize: reject anything that no longer prints + parses.
        let Ok(reparsed) = parse_program(&program_to_source(&cand)) else {
            continue;
        };
        let candidate = Arc::new(reparsed);
        if still_violates(&candidate) {
            return Some(candidate);
        }
    }
    None
}

const LOOP_OPS: usize = 3;

fn shrink_loop(l: &mut Loop, op: usize) -> bool {
    match op {
        // Collapse to a single iteration.
        0 => {
            if !l.lo.is_constant() || !l.hi.is_constant() || l.hi.constant() <= l.lo.constant() {
                return false;
            }
            l.hi = Affine::konst(l.lo.constant());
            true
        }
        // Halve the trip count.
        1 => {
            if !l.lo.is_constant() || !l.hi.is_constant() {
                return false;
            }
            let (lo, hi) = (l.lo.constant(), l.hi.constant());
            let mid = lo + (hi - lo) / 2;
            if mid >= hi {
                return false;
            }
            l.hi = Affine::konst(mid);
            true
        }
        // Reduce the stride to 1.
        _ => {
            if l.step == 1 {
                return false;
            }
            l.step = 1;
            true
        }
    }
}

const SUB_OPS: usize = 3;

fn simplify_sub(s: &mut Subscript, op: usize) -> bool {
    match (op, &*s) {
        // Opaque (or anything) → constant 0.
        (0, Subscript::Opaque(_)) => {
            *s = Subscript::from(Affine::konst(0));
            true
        }
        (0, Subscript::Affine(a)) => {
            if a.is_constant() && a.constant() == 0 {
                return false;
            }
            *s = Subscript::from(Affine::konst(0));
            true
        }
        // Drop the additive offset.
        (1, Subscript::Affine(a)) => {
            if a.constant() == 0 {
                return false;
            }
            let trimmed = a.clone() - a.constant();
            *s = Subscript::from(trimmed);
            true
        }
        // Collapse to the first variable, bare.
        (2, Subscript::Affine(a)) => {
            let Some(&(v, c)) = a.terms().first() else {
                return false;
            };
            if a.terms().len() == 1 && c == 1 && a.constant() == 0 {
                return false;
            }
            *s = Subscript::from(Affine::var(v));
            true
        }
        _ => false,
    }
}

/// Removes array `k` if nothing references it, shifting higher ids down.
fn drop_array(p: &mut Program, k: usize) -> bool {
    if k >= p.arrays.len() {
        return false;
    }
    let id = k as u32;
    let mut referenced = false;
    visit_assigns_mut(p, &mut |a| {
        for r in a.write.iter().chain(a.reads.iter()) {
            if r.array.0 == id {
                referenced = true;
            }
        }
    });
    if referenced {
        return false;
    }
    p.arrays.remove(k);
    visit_assigns_mut(p, &mut |a| {
        for r in a.write.iter_mut().chain(a.reads.iter_mut()) {
            if r.array.0 > id {
                r.array.0 -= 1;
            }
        }
    });
    true
}

/// Removes procedure `k` if it is not the entry and nothing calls it,
/// shifting higher indices down.
fn drop_proc(p: &mut Program, k: usize) -> bool {
    if k >= p.procs.len() || p.entry.0 as usize == k {
        return false;
    }
    let idx = k as u32;
    let mut called = false;
    visit_stmts(p, &mut |s| {
        if matches!(s, Stmt::Call(c) if c.0 == idx) {
            called = true;
        }
    });
    if called {
        return false;
    }
    p.procs.remove(k);
    if p.entry.0 > idx {
        p.entry.0 -= 1;
    }
    let fix = |stmts: &mut Vec<Stmt>| {
        fn go(stmts: &mut [Stmt], idx: u32) {
            for s in stmts {
                match s {
                    Stmt::Call(c) if c.0 > idx => c.0 -= 1,
                    Stmt::Loop(l) | Stmt::Doall(l) => go(&mut l.body, idx),
                    Stmt::Critical(c) => go(&mut c.body, idx),
                    Stmt::If(i) => {
                        go(&mut i.then_body, idx);
                        go(&mut i.else_body, idx);
                    }
                    _ => {}
                }
            }
        }
        go(stmts, idx);
    };
    for pr in &mut p.procs {
        fix(&mut pr.body);
    }
    true
}

/// Shrinks `num_locks` to the number of locks actually guarding a
/// critical section (locks are only referenced by id, so trailing unused
/// declarations can simply fall off).
fn drop_unused_locks(p: &mut Program) -> bool {
    let mut needed = 0;
    visit_stmts(p, &mut |s| {
        if let Stmt::Critical(c) = s {
            needed = needed.max(c.lock.0 + 1);
        }
    });
    if p.num_locks <= needed {
        return false;
    }
    p.num_locks = needed;
    true
}

// ---- counting / targeting walkers -------------------------------------
//
// Each walker visits the statement tree of every procedure in a fixed
// pre-order; `k` counts down to the targeted site and the closure
// reports whether it actually mutated anything.

fn count_stmts(p: &Program) -> usize {
    fn go(stmts: &[Stmt]) -> usize {
        stmts.iter().map(|s| 1 + go(children(s))).sum()
    }
    p.procs.iter().map(|pr| go(&pr.body)).sum()
}

fn children(s: &Stmt) -> &[Stmt] {
    match s {
        Stmt::Loop(l) | Stmt::Doall(l) => &l.body,
        Stmt::Critical(c) => &c.body,
        Stmt::If(_) => &[], // handled specially: two arms
        _ => &[],
    }
}

fn count_loops(p: &Program) -> usize {
    let mut n = 0;
    visit_stmts(p, &mut |s| {
        if matches!(s, Stmt::Loop(_) | Stmt::Doall(_)) {
            n += 1;
        }
    });
    n
}

fn count_subs(p: &Program) -> usize {
    let mut n = 0;
    visit_assigns(p, &mut |a| {
        n += a.write.iter().map(|w| w.subs.len()).sum::<usize>();
        n += a.reads.iter().map(|r| r.subs.len()).sum::<usize>();
    });
    n
}

fn count_refs(p: &Program) -> usize {
    let mut n = 0;
    visit_assigns(p, &mut |a| n += 1 + a.reads.len());
    n
}

fn visit_stmts(p: &Program, f: &mut impl FnMut(&Stmt)) {
    fn go(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
        for s in stmts {
            f(s);
            if let Stmt::If(i) = s {
                go(&i.then_body, f);
                go(&i.else_body, f);
            } else {
                go(children(s), f);
            }
        }
    }
    for pr in &p.procs {
        go(&pr.body, f);
    }
}

fn visit_assigns(p: &Program, f: &mut impl FnMut(&Assign)) {
    visit_stmts(p, &mut |s| {
        if let Stmt::Assign(a) = s {
            f(a);
        }
    });
}

/// Runs `op` on the `k`-th statement slot (its containing body and
/// index), pre-order across all procedures.
fn on_nth_slot(
    p: &mut Program,
    k: &mut i64,
    op: &mut impl FnMut(&mut Vec<Stmt>, usize) -> bool,
) -> bool {
    fn go(
        stmts: &mut Vec<Stmt>,
        k: &mut i64,
        op: &mut impl FnMut(&mut Vec<Stmt>, usize) -> bool,
    ) -> bool {
        let mut i = 0;
        while i < stmts.len() {
            if *k == 0 {
                *k = -1;
                return op(stmts, i);
            }
            *k -= 1;
            let done = match &mut stmts[i] {
                Stmt::Loop(l) | Stmt::Doall(l) => go(&mut l.body, k, op),
                Stmt::Critical(c) => go(&mut c.body, k, op),
                Stmt::If(s) => {
                    go(&mut s.then_body, k, op) || (*k >= 0 && go(&mut s.else_body, k, op))
                }
                _ => false,
            };
            if done {
                return true;
            }
            if *k < 0 {
                return false;
            }
            i += 1;
        }
        false
    }
    for pr in &mut p.procs {
        if go(&mut pr.body, k, op) {
            return true;
        }
        if *k < 0 {
            return false;
        }
    }
    false
}

fn on_nth_loop(p: &mut Program, k: &mut i64, op: &mut impl FnMut(&mut Loop) -> bool) -> bool {
    fn go(stmts: &mut [Stmt], k: &mut i64, op: &mut impl FnMut(&mut Loop) -> bool) -> bool {
        for s in stmts {
            let done = match s {
                Stmt::Loop(l) | Stmt::Doall(l) => {
                    if *k == 0 {
                        *k = -1;
                        return op(l);
                    }
                    *k -= 1;
                    go(&mut l.body, k, op)
                }
                Stmt::Critical(c) => go(&mut c.body, k, op),
                Stmt::If(i) => {
                    go(&mut i.then_body, k, op) || (*k >= 0 && go(&mut i.else_body, k, op))
                }
                _ => false,
            };
            if done {
                return true;
            }
            if *k < 0 {
                return false;
            }
        }
        false
    }
    for pr in &mut p.procs {
        if go(&mut pr.body, k, op) {
            return true;
        }
        if *k < 0 {
            return false;
        }
    }
    false
}

fn visit_assigns_mut(p: &mut Program, f: &mut impl FnMut(&mut Assign)) {
    fn go(stmts: &mut [Stmt], f: &mut impl FnMut(&mut Assign)) {
        for s in stmts {
            match s {
                Stmt::Assign(a) => f(a),
                Stmt::Loop(l) | Stmt::Doall(l) => go(&mut l.body, f),
                Stmt::Critical(c) => go(&mut c.body, f),
                Stmt::If(i) => {
                    go(&mut i.then_body, f);
                    go(&mut i.else_body, f);
                }
                _ => {}
            }
        }
    }
    for pr in &mut p.procs {
        go(&mut pr.body, f);
    }
}

fn sub_slots(a: &Assign) -> usize {
    a.write.iter().map(|w| w.subs.len()).sum::<usize>()
        + a.reads.iter().map(|r| r.subs.len()).sum::<usize>()
}

fn ref_slots(a: &Assign) -> usize {
    1 + a.reads.len()
}

/// Runs `op` on the assign owning global slot `k`, where each assign in
/// pre-order contributes `slots_of(assign)` consecutive slots. Returns
/// whether `op` reported a real mutation.
fn on_slot_in_assigns(
    p: &mut Program,
    k: usize,
    slots_of: impl Fn(&Assign) -> usize,
    op: &mut impl FnMut(&mut Assign, usize) -> bool,
) -> bool {
    let mut remaining = k;
    let mut consumed = false;
    let mut result = false;
    visit_assigns_mut(p, &mut |a| {
        if consumed {
            return;
        }
        let n = slots_of(a);
        if remaining < n {
            result = op(a, remaining);
            consumed = true;
        } else {
            remaining -= n;
        }
    });
    result
}
