//! The differential predicate: everything a generated kernel must
//! survive, and the sabotage hooks that prove the harness can catch a
//! broken engine.
//!
//! Each kernel runs through [`tpi::Runner::prepare`] at the Naive and
//! Full optimization levels, the static lint passes, the staleness
//! oracle in both HSCD semantics, and an end-to-end simulation under
//! every requested registry scheme with `verify_freshness` forced on.
//! Six checks guard the result, each a [`ViolationClass`]:
//!
//! 1. **Generation** — the program must trace (no DOALL races, no
//!    interpreter failures). The generator promises this by
//!    construction.
//! 2. **Lint** — no `Error`-severity static diagnostic (the only one is
//!    `TPI002 doall-write-write-conflict`, which a race-free-by-
//!    construction kernel must never trip).
//! 3. **Oracle** — the compiler marking admits no stale observation
//!    under either HSCD replay semantics.
//! 4. **Freshness** — no simulated cache hit observes stale data (the
//!    engine panics, fenced by [`catch_cell_panic`]).
//! 5. **Accounting** — hits + misses = reads, per processor and in
//!    aggregate ([`verify_accounting`]).
//! 6. **Invariant** — the scheme's own structural invariants (the model
//!    checker's catalog: directory bookkeeping, timetag ranges, lease
//!    ordering) must hold on the post-run engine.
//! 7. **Agreement** — mark-ignoring schemes (`SchemeCaps::uses_compiler_marks`
//!    false) must produce cycle-identical results at Naive and Full
//!    (only the marks differ between those traces), and every scheme
//!    must agree on the trace-determined read/write totals.
//!
//! Violations become stable `TPI902 fuzz-violation` diagnostics.

use std::sync::Arc;

use crate::gen::{generate_kernel, GenKernel, GenOptions};
use crate::minimize::minimize;
use tpi::mem::WordAddr;
use tpi::proto::{
    build_engine, registry, BaseEngine, CoherenceEngine, DirectoryEngine, HybridEngine, SchemeId,
    TardisEngine, TpiEngine,
};
use tpi::runner::{ProgramSource, RunSpec};
use tpi::sim::{run_trace, verify_accounting, SimResult};
use tpi::trace::SchedulePolicy;
use tpi::{catch_cell_panic, ExperimentConfig, Runner};
use tpi_analysis::diag::json_string;
use tpi_analysis::{lint_program, Code, Diagnostic, LintOptions, OracleMode, Severity};
use tpi_compiler::OptLevel;
use tpi_ir::Program;
use tpi_testkit::splitmix64;

/// What a fuzzing run sweeps.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Master corpus seed.
    pub seed: u64,
    /// Kernels to generate and check.
    pub count: usize,
    /// Serial-nest depth budget per kernel.
    pub depth: usize,
    /// Schemes to simulate (default: the whole registry).
    pub schemes: Vec<SchemeId>,
    /// Shrink each violating kernel to a 1-minimal reproducer.
    pub minimize: bool,
    /// Optional engine sabotage, to prove the harness catches real bugs.
    pub sabotage: Option<Sabotage>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 1,
            count: 50,
            depth: 3,
            schemes: registry::global().all().iter().map(|s| s.id()).collect(),
            minimize: true,
            sabotage: None,
        }
    }
}

/// Which differential check a kernel failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationClass {
    /// The program failed to trace (DOALL race or interpreter error).
    Generation,
    /// An `Error`-severity static lint fired.
    Lint,
    /// The staleness oracle saw a read the marking lets go stale.
    Oracle,
    /// A simulated cache hit observed stale data.
    Freshness,
    /// The miss-accounting identity failed.
    Accounting,
    /// A scheme-specific structural invariant (directory bookkeeping,
    /// timetag ranges, lease ordering) failed on the post-run engine.
    Invariant,
    /// Scheme results disagree where the registry says they must not.
    Agreement,
}

impl ViolationClass {
    /// Stable lower-case label used in diagnostics and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ViolationClass::Generation => "generation",
            ViolationClass::Lint => "lint",
            ViolationClass::Oracle => "oracle",
            ViolationClass::Freshness => "freshness",
            ViolationClass::Accounting => "accounting",
            ViolationClass::Invariant => "invariant",
            ViolationClass::Agreement => "agreement",
        }
    }
}

/// A named way of hand-breaking a live engine mid-run (applied at every
/// epoch boundary), reusing the debug hooks the model checker's
/// self-tests use. Fuzzing with a sabotaged engine must produce
/// violations — that is the harness's own test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// TPI stops performing two-phase timetag resets.
    TpiSkipResets,
    /// The full-map directory forgets processor 0's sharer bit for word 0.
    FullmapDropSharer,
    /// The LimitLESS directory forgets the same sharer bit.
    LimitlessDropSharer,
    /// BASE illegally caches shared word 0.
    BaseCacheShared,
    /// The hybrid directory forgets processor 0's sharer bit for word 0.
    HybridDropSharer,
    /// Tardis rewinds word 0's write timestamp.
    TardisRewindWts,
}

impl Sabotage {
    /// Every hook, in a stable order.
    pub const ALL: [Sabotage; 6] = [
        Sabotage::TpiSkipResets,
        Sabotage::FullmapDropSharer,
        Sabotage::LimitlessDropSharer,
        Sabotage::BaseCacheShared,
        Sabotage::HybridDropSharer,
        Sabotage::TardisRewindWts,
    ];

    /// Stable name (accepted by `tpi-fuzz --sabotage`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Sabotage::TpiSkipResets => "tpi-skip-resets",
            Sabotage::FullmapDropSharer => "hw-drop-sharer",
            Sabotage::LimitlessDropSharer => "ll-drop-sharer",
            Sabotage::BaseCacheShared => "base-cache-shared",
            Sabotage::HybridDropSharer => "hybrid-drop-sharer",
            Sabotage::TardisRewindWts => "tardis-rewind-wts",
        }
    }

    /// The scheme whose engine this hook breaks.
    #[must_use]
    pub fn target(self) -> SchemeId {
        match self {
            Sabotage::TpiSkipResets => SchemeId::TPI,
            Sabotage::FullmapDropSharer => SchemeId::FULL_MAP,
            Sabotage::LimitlessDropSharer => SchemeId::LIMITLESS,
            Sabotage::BaseCacheShared => SchemeId::BASE,
            Sabotage::HybridDropSharer => SchemeId::HYBRID,
            Sabotage::TardisRewindWts => SchemeId::TARDIS,
        }
    }

    /// Resolves a hook by its stable name.
    ///
    /// # Errors
    ///
    /// Returns the list of known hook names.
    pub fn parse(name: &str) -> Result<Sabotage, String> {
        Sabotage::ALL
            .into_iter()
            .find(|s| s.label() == name)
            .ok_or_else(|| {
                let known: Vec<&str> = Sabotage::ALL.into_iter().map(Sabotage::label).collect();
                format!("unknown sabotage {name:?} (known: {})", known.join(", "))
            })
    }

    /// Breaks `engine` in place (no-op if it is not the targeted type).
    pub fn apply(self, engine: &mut dyn CoherenceEngine) {
        let any = engine.as_any_mut();
        match self {
            Sabotage::TpiSkipResets => {
                if let Some(e) = any.downcast_mut::<TpiEngine>() {
                    e.debug_skip_resets();
                }
            }
            Sabotage::FullmapDropSharer | Sabotage::LimitlessDropSharer => {
                if let Some(e) = any.downcast_mut::<DirectoryEngine>() {
                    e.debug_drop_sharer_bit(0, WordAddr(0));
                }
            }
            Sabotage::BaseCacheShared => {
                if let Some(e) = any.downcast_mut::<BaseEngine>() {
                    e.debug_cache_shared_word(WordAddr(0));
                }
            }
            Sabotage::HybridDropSharer => {
                if let Some(e) = any.downcast_mut::<HybridEngine>() {
                    e.debug_drop_sharer_bit(0, WordAddr(0));
                }
            }
            Sabotage::TardisRewindWts => {
                if let Some(e) = any.downcast_mut::<TardisEngine>() {
                    e.debug_rewind_wts(WordAddr(0));
                }
            }
        }
    }
}

/// Delegating engine wrapper that re-applies a [`Sabotage`] hook at
/// construction and at every epoch boundary, so the damage survives the
/// engine's own recovery (resets, invalidation, line replacement).
#[derive(Debug)]
struct SabotagedEngine {
    inner: Box<dyn CoherenceEngine>,
    hook: Sabotage,
}

impl SabotagedEngine {
    fn new(mut inner: Box<dyn CoherenceEngine>, hook: Sabotage) -> Self {
        hook.apply(inner.as_mut());
        SabotagedEngine { inner, hook }
    }
}

impl CoherenceEngine for SabotagedEngine {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self.inner.as_any()
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self.inner.as_any_mut()
    }
    fn read(
        &mut self,
        proc: tpi::mem::ProcId,
        addr: WordAddr,
        kind: tpi::mem::ReadKind,
        version: u64,
        now: tpi::mem::Cycle,
    ) -> tpi::proto::AccessOutcome {
        self.inner.read(proc, addr, kind, version, now)
    }
    fn write(
        &mut self,
        proc: tpi::mem::ProcId,
        addr: WordAddr,
        version: u64,
        now: tpi::mem::Cycle,
    ) -> tpi::mem::Cycle {
        self.inner.write(proc, addr, version, now)
    }
    fn write_critical(
        &mut self,
        proc: tpi::mem::ProcId,
        addr: WordAddr,
        version: u64,
        now: tpi::mem::Cycle,
    ) -> tpi::mem::Cycle {
        self.inner.write_critical(proc, addr, version, now)
    }
    fn epoch_boundary(&mut self, per_proc_now: &[tpi::mem::Cycle]) -> Vec<tpi::mem::Cycle> {
        let stalls = self.inner.epoch_boundary(per_proc_now);
        self.hook.apply(self.inner.as_mut());
        stalls
    }
    fn network(&self) -> &tpi::net::Network {
        self.inner.network()
    }
    fn network_mut(&mut self) -> &mut tpi::net::Network {
        self.inner.network_mut()
    }
    fn stats(&self) -> &tpi::proto::EngineStats {
        self.inner.stats()
    }
    fn write_buffer_stats(&self) -> Option<tpi::cache::WriteBufferStats> {
        self.inner.write_buffer_stats()
    }
    fn op_counts(&self) -> Vec<(&'static str, u64)> {
        self.inner.op_counts()
    }
}

/// One confirmed violation, with enough context to reproduce it.
#[derive(Debug, Clone)]
pub struct FuzzViolation {
    /// Kernel name (`fuzz-<seed>-<index>`).
    pub kernel: String,
    /// Corpus index.
    pub index: usize,
    /// Which check failed.
    pub class: ViolationClass,
    /// The scheme involved, when the check is per-scheme.
    pub scheme: Option<SchemeId>,
    /// The optimization level involved, when the check is per-level.
    pub level: Option<OptLevel>,
    /// Human detail (panic message, accounting delta, …).
    pub detail: String,
    /// Canonical source of the violating kernel.
    pub source: String,
    /// 1-minimal source still exhibiting the violation, if shrinking ran.
    pub minimized: Option<String>,
}

impl FuzzViolation {
    /// The stable `TPI902 fuzz-violation` diagnostic for this finding.
    #[must_use]
    pub fn diagnostic(&self) -> Diagnostic {
        let mut d = Diagnostic::new(Code::Tpi902, Severity::Error, self.detail.clone())
            .with("kernel", &self.kernel)
            .with("class", self.class.label());
        if let Some(s) = self.scheme {
            d = d.with("scheme", s.as_str());
        }
        if let Some(l) = self.level {
            d = d.with("level", format!("{l:?}"));
        }
        d
    }
}

/// The outcome of a whole fuzzing sweep.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The options that produced it.
    pub options: FuzzOptions,
    /// Kernels generated and checked.
    pub checked: usize,
    /// Parallel (DOALL) epochs across all checked traces (Full level).
    pub parallel_epochs: u64,
    /// Simulations executed (kernel × level × scheme cells).
    pub sims: u64,
    /// Every confirmed violation.
    pub violations: Vec<FuzzViolation>,
}

impl FuzzReport {
    /// True when no kernel violated anything.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// All findings as `TPI902` diagnostics.
    #[must_use]
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        self.violations
            .iter()
            .map(FuzzViolation::diagnostic)
            .collect()
    }

    /// Machine-readable rendering (schema `tpi-fuzz/1`). Byte-stable for
    /// a given seed and options — the determinism tests compare these.
    #[must_use]
    pub fn json(&self) -> String {
        let schemes: Vec<String> = self
            .options
            .schemes
            .iter()
            .map(|s| json_string(s.as_str()))
            .collect();
        let mut out = format!(
            "{{\"schema\":\"tpi-fuzz/1\",\"seed\":{},\"count\":{},\"depth\":{},\
             \"schemes\":[{}],\"sabotage\":{},\"checked\":{},\"parallel_epochs\":{},\
             \"sims\":{},\"violations\":[",
            self.options.seed,
            self.options.count,
            self.options.depth,
            schemes.join(","),
            self.options
                .sabotage
                .map_or_else(|| "null".to_string(), |s| json_string(s.label())),
            self.checked,
            self.parallel_epochs,
            self.sims,
        );
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"diagnostic\":{},\"source\":{},\"minimized\":{}}}",
                v.diagnostic().json(),
                json_string(&v.source),
                v.minimized
                    .as_deref()
                    .map_or_else(|| "null".to_string(), json_string),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// The small-machine configuration every generated kernel is checked
/// under: 4 processors, a deliberately tiny direct-mapped cache (so
/// replacement and tag-wrap paths are exercised), and a per-kernel
/// schedule policy and seed.
#[must_use]
pub fn fuzz_config(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper();
    cfg.procs = 4;
    cfg.cache_bytes = 256;
    cfg.line_words = 4;
    cfg.assoc = 1;
    cfg.tag_bits = 4;
    cfg.reset_cycles = 8;
    cfg.tardis_lease = 4;
    cfg.hybrid_threshold = 2;
    cfg.verify_freshness = true;
    cfg.seed = seed;
    cfg.policy = match seed % 3 {
        0 => SchedulePolicy::StaticBlock,
        1 => SchedulePolicy::StaticCyclic,
        _ => SchedulePolicy::Dynamic { chunk: 2 },
    };
    cfg
}

/// A raw finding before it is joined with kernel identity.
struct RawViolation {
    class: ViolationClass,
    scheme: Option<SchemeId>,
    level: Option<OptLevel>,
    detail: String,
}

/// Result fingerprint used by the agreement checks.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    total_cycles: u64,
    traffic_words: u64,
    reads: u64,
    read_hits: u64,
    miss_by_class: [u64; 8],
    writes: u64,
}

impl Fingerprint {
    fn of(sim: &SimResult) -> Self {
        Fingerprint {
            total_cycles: sim.total_cycles,
            traffic_words: sim.traffic.total_words(),
            reads: sim.agg.reads,
            read_hits: sim.agg.read_hits,
            miss_by_class: sim.agg.miss_by_class,
            writes: sim.agg.writes,
        }
    }
}

fn scheme_caps(scheme: SchemeId) -> tpi::proto::SchemeCaps {
    registry::global()
        .all()
        .iter()
        .find(|s| s.id() == scheme)
        .expect("scheme came from the registry")
        .caps()
}

fn scheme_invariants(scheme: SchemeId) -> Vec<tpi::proto::ModelInvariant> {
    registry::global()
        .all()
        .iter()
        .find(|s| s.id() == scheme)
        .expect("scheme came from the registry")
        .model_invariants()
}

/// Runs the whole differential predicate over one program.
///
/// Returns the findings plus (parallel epochs, simulations executed).
fn check_program(
    runner: &Runner,
    name: &str,
    program: &Arc<Program>,
    cfg_seed: u64,
    schemes: &[SchemeId],
    sabotage: Option<Sabotage>,
) -> (Vec<RawViolation>, u64, u64) {
    let mut out = Vec::new();

    // 2. Static lints: the only Error-severity pass is TPI002, which a
    // race-free-by-construction kernel must never trip.
    for d in lint_program(program, &LintOptions::default()) {
        if d.severity == Severity::Error {
            out.push(RawViolation {
                class: ViolationClass::Lint,
                scheme: None,
                level: None,
                detail: d.human(),
            });
        }
    }

    // 1. Trace generation at both optimization levels.
    let base = fuzz_config(cfg_seed);
    let levels = [OptLevel::Naive, OptLevel::Full];
    let specs: Vec<RunSpec> = levels
        .iter()
        .map(|&level| {
            let mut config = base;
            config.opt_level = level;
            RunSpec {
                source: ProgramSource::Custom {
                    name: Arc::from(name),
                    program: Arc::clone(program),
                },
                config,
            }
        })
        .collect();
    let cells = match runner.prepare(&specs) {
        Ok(cells) => cells,
        Err(e) => {
            out.push(RawViolation {
                class: ViolationClass::Generation,
                scheme: None,
                level: None,
                detail: e.to_string(),
            });
            return (out, 0, 0);
        }
    };

    // 3. Staleness oracle, both HSCD semantics, both levels.
    for cell in &cells {
        for mode in [OracleMode::Tpi, OracleMode::Sc] {
            let report = tpi_analysis::check_trace(cell.trace.as_ref(), mode);
            if !report.is_sound() {
                out.push(RawViolation {
                    class: ViolationClass::Oracle,
                    scheme: None,
                    level: Some(cell.spec.config.opt_level),
                    detail: format!(
                        "{} stale read(s); first: {}",
                        report.violations.len(),
                        report.violations[0].diagnostic().human()
                    ),
                });
            }
        }
    }

    // 4 + 5. Simulate each scheme at each level with freshness verified.
    let mut sims = 0u64;
    let mut results: Vec<(SchemeId, OptLevel, Fingerprint)> = Vec::new();
    for cell in &cells {
        let cfg = cell.spec.config;
        let trace = cell.trace.as_ref();
        let total_words = trace.layout.total_words();
        for &scheme in schemes {
            sims += 1;
            let outcome = catch_cell_panic(|| {
                let built = build_engine(scheme, cfg.engine_config(total_words));
                let mut engine: Box<dyn CoherenceEngine> = match sabotage {
                    Some(hook) if hook.target() == scheme => {
                        Box::new(SabotagedEngine::new(built, hook))
                    }
                    _ => built,
                };
                let sim = run_trace(trace, engine.as_mut(), &cfg.sim_options());
                (sim, engine)
            });
            match outcome {
                Err(panic) => out.push(RawViolation {
                    class: ViolationClass::Freshness,
                    scheme: Some(scheme),
                    level: Some(cfg.opt_level),
                    detail: panic,
                }),
                Ok((sim, engine)) => {
                    if let Err(delta) = verify_accounting(&sim) {
                        out.push(RawViolation {
                            class: ViolationClass::Accounting,
                            scheme: Some(scheme),
                            level: Some(cfg.opt_level),
                            detail: delta,
                        });
                    }
                    // Structural invariants on the post-run engine: the
                    // same catalog the model checker applies per step.
                    for inv in scheme_invariants(scheme) {
                        if let Err(broken) = (inv.check)(engine.as_ref()) {
                            out.push(RawViolation {
                                class: ViolationClass::Invariant,
                                scheme: Some(scheme),
                                level: Some(cfg.opt_level),
                                detail: format!("{}: {broken}", inv.name),
                            });
                        }
                    }
                    results.push((scheme, cfg.opt_level, Fingerprint::of(&sim)));
                }
            }
        }
    }

    // 6a. Mark-ignoring schemes must be level-invariant: the Naive and
    // Full traces differ only in the compiler marks.
    for &scheme in schemes {
        if scheme_caps(scheme).uses_compiler_marks {
            continue;
        }
        let per_level: Vec<&Fingerprint> = levels
            .iter()
            .filter_map(|&l| {
                results
                    .iter()
                    .find(|(s, rl, _)| *s == scheme && *rl == l)
                    .map(|(_, _, f)| f)
            })
            .collect();
        if per_level.len() == 2 && per_level[0] != per_level[1] {
            out.push(RawViolation {
                class: ViolationClass::Agreement,
                scheme: Some(scheme),
                level: None,
                detail: format!(
                    "mark-ignoring scheme differs across levels: naive={:?} full={:?}",
                    per_level[0], per_level[1]
                ),
            });
        }
    }

    // 6b. Every scheme replays the same trace: the trace-determined
    // read/write totals must agree across the board, per level.
    for &level in &levels {
        let at_level: Vec<&(SchemeId, OptLevel, Fingerprint)> =
            results.iter().filter(|(_, l, _)| *l == level).collect();
        if let Some(first) = at_level.first() {
            for r in &at_level[1..] {
                if (r.2.reads, r.2.writes) != (first.2.reads, first.2.writes) {
                    out.push(RawViolation {
                        class: ViolationClass::Agreement,
                        scheme: Some(r.0),
                        level: Some(level),
                        detail: format!(
                            "access totals disagree with {}: ({}, {}) vs ({}, {})",
                            first.0.as_str(),
                            r.2.reads,
                            r.2.writes,
                            first.2.reads,
                            first.2.writes
                        ),
                    });
                }
            }
        }
    }

    let epochs = cells
        .iter()
        .find(|c| c.spec.config.opt_level == OptLevel::Full)
        .map_or(0, |c| c.trace.stats.parallel_epochs);
    (out, epochs, sims)
}

/// Generates `opts.count` kernels and runs every one through the full
/// differential predicate, optionally shrinking violators to 1-minimal
/// reproducers.
#[must_use]
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzReport {
    let runner = Runner::new();
    let gen = GenOptions {
        seed: opts.seed,
        depth: opts.depth,
    };
    let mut report = FuzzReport {
        options: opts.clone(),
        checked: 0,
        parallel_epochs: 0,
        sims: 0,
        violations: Vec::new(),
    };
    for index in 0..opts.count {
        let kernel = generate_kernel(&gen, index);
        let cfg_seed = splitmix64(opts.seed ^ (index as u64).wrapping_add(17));
        let (raw, epochs, sims) = check_program(
            &runner,
            &kernel.name,
            &kernel.program,
            cfg_seed,
            &opts.schemes,
            opts.sabotage,
        );
        report.checked += 1;
        report.parallel_epochs += epochs;
        report.sims += sims;
        for r in raw {
            let minimized = if opts.minimize {
                Some(minimize_violation(
                    &kernel, cfg_seed, opts, r.class, r.scheme,
                ))
            } else {
                None
            };
            report.violations.push(FuzzViolation {
                kernel: kernel.name.clone(),
                index,
                class: r.class,
                scheme: r.scheme,
                level: r.level,
                detail: r.detail,
                source: kernel.source.clone(),
                minimized,
            });
        }
    }
    report
}

/// Runs one already-parsed kernel through the full differential
/// predicate on healthy engines and returns every violation found.
///
/// This is the corpus regression entry point: committed reproducers
/// were minted against *sabotaged* engines, so re-checking them here
/// must come back clean — a non-empty result means a real engine,
/// compiler, or oracle defect crept in.
#[must_use]
pub fn check_kernel(
    name: &str,
    program: &Arc<Program>,
    cfg_seed: u64,
    schemes: &[SchemeId],
) -> Vec<FuzzViolation> {
    let runner = Runner::serial().without_memoization();
    let (raw, _, _) = check_program(&runner, name, program, cfg_seed, schemes, None);
    raw.into_iter()
        .map(|r| FuzzViolation {
            kernel: name.to_string(),
            index: 0,
            class: r.class,
            scheme: r.scheme,
            level: r.level,
            detail: r.detail,
            source: tpi_ir::program_to_source(program),
            minimized: None,
        })
        .collect()
}

/// True when `program` still exhibits a violation of `class` (for
/// `scheme`, when given) under the fuzz predicate — and, unless `class`
/// is [`ViolationClass::Lint`] itself, no lint violation, so shrinking
/// never trades a dynamic violation for a statically racy program. This
/// is the minimizer's acceptance test.
///
/// The whole check is fenced: a shrink candidate that panics the
/// pipeline (e.g. a subscript simplification that walked out of an
/// array) simply does not qualify, instead of killing the run.
#[must_use]
pub fn violates(
    program: &Arc<Program>,
    cfg_seed: u64,
    schemes: &[SchemeId],
    sabotage: Option<Sabotage>,
    class: ViolationClass,
    scheme: Option<SchemeId>,
) -> bool {
    let program = Arc::clone(program);
    let schemes = schemes.to_vec();
    catch_cell_panic(move || {
        let runner = Runner::serial().without_memoization();
        let (raw, _, _) =
            check_program(&runner, "candidate", &program, cfg_seed, &schemes, sabotage);
        // The target violation must persist — and (unless the target IS a
        // lint violation) the shrink must not leave the statically-clean
        // envelope, or committed reproducers would trip the conservative
        // lints on healthy engines too.
        raw.iter().any(|r| r.class == class && r.scheme == scheme)
            && (class == ViolationClass::Lint
                || raw.iter().all(|r| r.class != ViolationClass::Lint))
    })
    .unwrap_or(false)
}

fn minimize_violation(
    kernel: &GenKernel,
    cfg_seed: u64,
    opts: &FuzzOptions,
    class: ViolationClass,
    scheme: Option<SchemeId>,
) -> String {
    let schemes: Vec<SchemeId> = match scheme {
        Some(s) => vec![s],
        None => opts.schemes.clone(),
    };
    let min = minimize(&kernel.program, |candidate| {
        violates(candidate, cfg_seed, &schemes, opts.sabotage, class, scheme)
    });
    tpi_ir::program_to_source(&min)
}
