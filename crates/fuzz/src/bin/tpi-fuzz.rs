//! Command-line front end for the generative differential fuzzer.
//!
//! ```text
//! tpi-fuzz --seed 7 --count 200 --depth 3 --schemes all --deny violations
//! tpi-fuzz --seed 7 --count 20 --sabotage base-cache-shared --emit-corpus tests/corpus
//! ```

use std::process::ExitCode;
use tpi::cli::{parse_bounded, parse_scheme_list, CliError};
use tpi_fuzz::{run_fuzz, FuzzOptions, FuzzReport, Sabotage};

const USAGE: &str = "\
tpi-fuzz: generative kernel fuzzing with differential oracle checks

USAGE:
    tpi-fuzz [OPTIONS]

OPTIONS:
    --seed <n>            corpus master seed                [default: 1]
    --count <n>           kernels to generate, 1-100000     [default: 50]
    --depth <n>           serial-nest depth budget, 1-4     [default: 3]
    --schemes <list>      all, or comma-separated registry schemes
                          (base, sc, tpi, hw, ll, ideal,
                          tardis, hybrid)                   [default: all]
    --minimize            shrink violations to 1-minimal reproducers
    --sabotage <hook>     break one engine on purpose (tpi-skip-resets,
                          hw-drop-sharer, ll-drop-sharer,
                          base-cache-shared, hybrid-drop-sharer,
                          tardis-rewind-wts)
    --emit-corpus <dir>   write each violation's minimized (or full)
                          reproducer as <dir>/<kernel>.tpi
    --format <fmt>        human|json                        [default: human]
    --deny violations     exit nonzero on any violation
    -h, --help            show this help
";

struct Options {
    fuzz: FuzzOptions,
    emit_corpus: Option<String>,
    json: bool,
    deny_violations: bool,
}

fn parse_args() -> Result<Option<Options>, CliError> {
    let mut opts = Options {
        fuzz: FuzzOptions {
            minimize: false,
            ..FuzzOptions::default()
        },
        emit_corpus: None,
        json: false,
        deny_violations: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--seed" => {
                opts.fuzz.seed = parse_bounded("--seed", &value("--seed")?, 0, u64::MAX)?;
            }
            "--count" => {
                opts.fuzz.count =
                    parse_bounded("--count", &value("--count")?, 1, 100_000)? as usize;
            }
            "--depth" => {
                opts.fuzz.depth = parse_bounded("--depth", &value("--depth")?, 1, 4)? as usize;
            }
            "--schemes" => {
                opts.fuzz.schemes = parse_scheme_list(&value("--schemes")?)?;
            }
            "--minimize" => opts.fuzz.minimize = true,
            "--sabotage" => {
                opts.fuzz.sabotage = Some(
                    Sabotage::parse(&value("--sabotage")?)
                        .map_err(|e| CliError::Field(format!("error[bad_field]: {e}")))?,
                );
            }
            "--emit-corpus" => opts.emit_corpus = Some(value("--emit-corpus")?),
            "--format" => {
                opts.json = match value("--format")?.as_str() {
                    "human" => false,
                    "json" => true,
                    s => return Err(CliError::Usage(format!("unknown format {s:?}"))),
                }
            }
            "--deny" => {
                let what = value("--deny")?;
                if what != "violations" {
                    return Err(CliError::Usage(format!("unknown deny class {what:?}")));
                }
                opts.deny_violations = true;
            }
            f => return Err(CliError::Usage(format!("unknown flag {f:?}"))),
        }
    }
    Ok(Some(opts))
}

fn print_human(report: &FuzzReport) {
    let o = &report.options;
    let schemes: Vec<&str> = o.schemes.iter().map(|s| s.as_str()).collect();
    println!(
        "tpi-fuzz: seed={} count={} depth={} schemes=[{}]{}",
        o.seed,
        o.count,
        o.depth,
        schemes.join(","),
        o.sabotage
            .map_or_else(String::new, |s| format!(" sabotage={}", s.label())),
    );
    println!(
        "  checked {} kernel(s): {} parallel epoch(s), {} simulation(s)",
        report.checked, report.parallel_epochs, report.sims
    );
    for v in &report.violations {
        println!("  {}", v.diagnostic().human());
        if let Some(min) = &v.minimized {
            println!("    minimized reproducer ({} bytes):", min.len());
            for line in min.lines() {
                println!("      {line}");
            }
        }
    }
    println!("tpi-fuzz: {} violation(s)", report.violations.len());
}

fn emit_corpus(report: &FuzzReport, dir: &str) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    let mut written = 0;
    for v in &report.violations {
        let path = format!("{dir}/{}.tpi", v.kernel);
        let body = v.minimized.as_deref().unwrap_or(&v.source);
        let mut text = String::new();
        text.push_str(&format!("! {}\n", v.diagnostic().human()));
        text.push_str(&format!(
            "! reproduce: tpi-fuzz --seed {} --count {} --depth {}{}\n",
            report.options.seed,
            v.index + 1,
            report.options.depth,
            report
                .options
                .sabotage
                .map_or_else(String::new, |s| format!(" --sabotage {}", s.label())),
        ));
        text.push_str(body);
        std::fs::write(&path, text)?;
        written += 1;
    }
    Ok(written)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => return e.exit(USAGE),
    };
    // Freshness violations surface as fenced panics inside the harness;
    // silence the default hook's backtrace spam while fuzzing.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = run_fuzz(&opts.fuzz);
    std::panic::set_hook(prev_hook);
    if opts.json {
        println!("{}", report.json());
    } else {
        print_human(&report);
    }
    if let Some(dir) = &opts.emit_corpus {
        match emit_corpus(&report, dir) {
            Ok(n) => eprintln!("tpi-fuzz: wrote {n} reproducer(s) to {dir}"),
            Err(e) => {
                eprintln!("tpi-fuzz: failed writing corpus to {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if opts.deny_violations && !report.is_clean() {
        eprintln!("tpi-fuzz: denied: {} violation(s)", report.violations.len());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
